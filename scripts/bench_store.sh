#!/usr/bin/env bash
# Measures the artifact store and the analysis daemon: each workload's
# pipeline end-to-end against a cold store and again against the warm
# store (the re-analysis speedup the cache buys), plus one daemon round
# with 8 concurrent clients cold and again through the in-memory LRU
# front. Writes BENCH_store.json at the repo root.
#
# Usage: ./scripts/bench_store.sh
# OHA_SMOKE=1 shrinks the workloads to unit-test scale (CI validation);
# the committed BENCH_store.json is generated at full benchmark scale.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="BENCH_store.json"

cargo build --locked --release -q -p oha-bench
./target/release/bench_store --json "$OUT"
echo "==> wrote $OUT" >&2
