#!/usr/bin/env bash
# Measures the wall-clock effect of the oha-par fan-out: runs fig5 (workload
# fan-out) and fig8 (profiling fan-out inside each workload) on the smoke
# workload scale at OHA_THREADS=1 vs OHA_THREADS=N, and writes the timings
# plus host metadata to BENCH_parallel.json at the repo root.
#
# Usage: ./scripts/bench_parallel.sh [N]   (default N=4)
set -euo pipefail
cd "$(dirname "$0")/.."

THREADS="${1:-4}"
OUT="BENCH_parallel.json"
BINS=(fig5_optft_runtimes fig8_slice_convergence)

cargo build --locked --release -q -p oha-bench

time_run() { # bin threads -> seconds (median of 3)
    local bin="$1" threads="$2"
    python3 - "$bin" "$threads" <<'EOF'
import subprocess, sys, time, statistics, os
bin_name, threads = sys.argv[1], sys.argv[2]
env = dict(os.environ, OHA_SMOKE="1", OHA_THREADS=threads)
samples = []
for _ in range(3):
    start = time.perf_counter()
    subprocess.run([f"./target/release/{bin_name}"], env=env,
                   stdout=subprocess.DEVNULL, check=True)
    samples.append(time.perf_counter() - start)
print(f"{statistics.median(samples):.4f}")
EOF
}

declare -A SERIAL PARALLEL
for bin in "${BINS[@]}"; do
    echo "==> $bin (OHA_THREADS=1)" >&2
    SERIAL[$bin]="$(time_run "$bin" 1)"
    echo "==> $bin (OHA_THREADS=$THREADS)" >&2
    PARALLEL[$bin]="$(time_run "$bin" "$THREADS")"
done

# Host metadata comes from the harness itself (oha_bench records host.*
# meta in every --json report), not a parallel python reimplementation.
HOST_JSON="$(mktemp)"
trap 'rm -f "$HOST_JSON"' EXIT
OHA_SMOKE=1 OHA_THREADS=1 "./target/release/${BINS[0]}" --json "$HOST_JSON" \
    > /dev/null

python3 - "$THREADS" "$OUT" "$HOST_JSON" <<EOF
import json, sys

threads, out = int(sys.argv[1]), sys.argv[2]
with open(sys.argv[3]) as f:
    meta = json.load(f)["meta"]
host = {k.split(".", 1)[1]: v for k, v in meta.items()
        if k.startswith("host.")}
host["available_parallelism"] = int(host["available_parallelism"])
serial = {"fig5_optft_runtimes": ${SERIAL[fig5_optft_runtimes]},
          "fig8_slice_convergence": ${SERIAL[fig8_slice_convergence]}}
parallel = {"fig5_optft_runtimes": ${PARALLEL[fig5_optft_runtimes]},
            "fig8_slice_convergence": ${PARALLEL[fig8_slice_convergence]}}

report = {
    "harness": "scripts/bench_parallel.sh",
    "workload_scale": "OHA_SMOKE=1 (WorkloadParams::small)",
    "samples_per_point": 3,
    "aggregate": "median",
    "host": host,
    "threads_compared": [1, threads],
    "benches": {
        name: {
            "serial_s": serial[name],
            "parallel_s": parallel[name],
            "speedup": round(serial[name] / parallel[name], 3)
                       if parallel[name] else None,
        }
        for name in sorted(serial)
    },
}
with open(out, "w") as f:
    json.dump(report, f, indent=2, sort_keys=True)
    f.write("\n")
print(json.dumps(report["benches"], indent=2))
EOF

echo "wrote $OUT" >&2
