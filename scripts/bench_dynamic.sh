#!/usr/bin/env bash
# Measures the dynamic phase: the fast path (compiled instrumentation
# plans + dense shadow memory) vs. the reference configuration (plan-off
# dispatch, spill-map-only shadow state) across the OptFT workload suite
# (`bench_dynamic`), and writes per-sample medians plus host metadata to
# BENCH_dynamic.json at the repo root. Every sample is also an
# equivalence check: bench_dynamic aborts unless both configurations
# produce byte-identical canonical results in the same process.
#
# Usage: ./scripts/bench_dynamic.sh [runs]   (default runs=3)
# bench_dynamic itself takes OHA_DYN_REPS (default 5) interleaved
# reference/fast repetitions per workload and reports per-mode minima;
# this script then takes the median of those minima across [runs]
# process invocations.
# OHA_SMOKE=1 shrinks the workloads to unit-test scale (CI validation);
# the committed BENCH_dynamic.json is generated at full benchmark scale.
set -euo pipefail
cd "$(dirname "$0")/.."

RUNS="${1:-3}"
OUT="BENCH_dynamic.json"

cargo build --locked --release -q -p oha-bench

TMPDIR_SAMPLES="$(mktemp -d)"
trap 'rm -rf "$TMPDIR_SAMPLES"' EXIT
for i in $(seq 1 "$RUNS"); do
    echo "==> bench_dynamic (run $i/$RUNS)" >&2
    ./target/release/bench_dynamic > "$TMPDIR_SAMPLES/run$i.json"
done

python3 - "$OUT" "$RUNS" "$TMPDIR_SAMPLES" <<'EOF'
import json, os, statistics, sys

out, runs, tmpdir = sys.argv[1], int(sys.argv[2]), sys.argv[3]
by_workload = {}
host = None
for i in range(1, runs + 1):
    with open(os.path.join(tmpdir, f"run{i}.json")) as f:
        doc = json.load(f)
    # Host metadata comes from the binary itself (oha_bench::host_json),
    # so it reflects what the timed process actually saw.
    host = doc["host"]
    for s in doc["samples"]:
        by_workload.setdefault(s["workload"], []).append(s)

benches = {}
for workload, samples in sorted(by_workload.items()):
    events = samples[-1]["events"]
    entry = {"events": events}
    for mode in ("full", "hybrid", "optimistic", "dynamic"):
        ref = statistics.median(s[f"{mode}_ref_s"] for s in samples)
        fast = statistics.median(s[f"{mode}_fast_s"] for s in samples)
        entry[f"{mode}_ref_s"] = round(ref, 6)
        entry[f"{mode}_fast_s"] = round(fast, 6)
        entry[f"{mode}_speedup"] = round(ref / fast, 3) if fast else None
        if mode != "dynamic":
            entry[f"{mode}_ref_events_per_s"] = round(events / ref) if ref else None
            entry[f"{mode}_fast_events_per_s"] = round(events / fast) if fast else None
    benches[workload] = entry

smoke = os.environ.get("OHA_SMOKE") == "1"
report = {
    "harness": "scripts/bench_dynamic.sh",
    "workload_scale": ("OHA_SMOKE=1 (WorkloadParams::small)" if smoke
                       else "WorkloadParams::benchmark"),
    "samples_per_point": runs,
    "reps_per_sample": int(os.environ.get("OHA_DYN_REPS", "5")),
    "aggregate": "median across invocations of min over interleaved reps",
    "host": host,
    "comparison": ("fast = compiled per-instruction instrumentation plans "
                   "+ dense addr-indexed shadow memory + zero-clone "
                   "FastTrack epoch path; reference = plan-off dispatch "
                   "with spill-map-only shadow state; byte-identical "
                   "canonical OptFT results asserted in-process per sample. "
                   "events = hook events observed by the speculative "
                   "machine per pass over the testing corpus; times are "
                   "per-mode sums over that corpus"),
    "benches": benches,
}
with open(out, "w") as f:
    json.dump(report, f, indent=2, sort_keys=True)
    f.write("\n")
print(json.dumps(
    {k: v["optimistic_speedup"] for k, v in benches.items()}, indent=2))
EOF

echo "wrote $OUT" >&2
