#!/usr/bin/env bash
# Measures cluster serving: warm-store OptFT throughput through the
# oha-router front socket at fleet size 1 vs 3 (`bench_cluster`, which
# byte-checks every response against an in-process oracle), and writes
# per-sample medians plus host metadata to BENCH_cluster.json at the
# repo root.
#
# Usage: ./scripts/bench_cluster.sh [runs]   (default runs=3)
# OHA_SMOKE=1 shrinks the request volume to unit-test scale (CI
# validation); the committed BENCH_cluster.json is generated at full
# benchmark scale. Read the artifact's "caveat" together with its
# "host" block: a fleet multiplies processes, not cores.
set -euo pipefail
cd "$(dirname "$0")/.."

RUNS="${1:-3}"
OUT="BENCH_cluster.json"

# bench_cluster resolves its workers from its own directory, so the
# oha-serve worker binary must be built alongside it.
cargo build --locked --release -q -p oha-bench -p oha-serve

TMPDIR_SAMPLES="$(mktemp -d)"
trap 'rm -rf "$TMPDIR_SAMPLES"' EXIT
for i in $(seq 1 "$RUNS"); do
    echo "==> bench_cluster (run $i/$RUNS)" >&2
    ./target/release/bench_cluster --json "$TMPDIR_SAMPLES/run$i.json" \
        > /dev/null
done

python3 - "$OUT" "$RUNS" "$TMPDIR_SAMPLES" <<'EOF'
import json, os, statistics, sys

out, runs, tmpdir = sys.argv[1], int(sys.argv[2]), sys.argv[3]
metas = []
for i in range(1, runs + 1):
    with open(os.path.join(tmpdir, f"run{i}.json")) as f:
        metas.append(json.load(f)["meta"])

# Host metadata comes from the binary itself (oha_bench records host.*
# meta in every --json report), so it reflects what the timed process
# actually saw.
host = {k.split(".", 1)[1]: v for k, v in metas[-1].items()
        if k.startswith("host.")}
host["available_parallelism"] = int(host["available_parallelism"])

one = statistics.median(float(m["cluster.one_worker_rps"]) for m in metas)
three = statistics.median(float(m["cluster.three_worker_rps"]) for m in metas)
last = metas[-1]

smoke = os.environ.get("OHA_SMOKE") == "1"
report = {
    "harness": "scripts/bench_cluster.sh",
    "workload_scale": ("OHA_SMOKE=1 (WorkloadParams::small)" if smoke
                       else "WorkloadParams::benchmark"),
    "samples_per_point": runs,
    "aggregate": "median",
    "host": host,
    "clients": int(last["clients"]),
    "requests_per_client": int(last["requests_per_client"]),
    "variants": int(last["variants"]),
    "comparison": last["comparison"],
    "caveat": last["caveat"],
    "benches": {
        "cluster.warm_throughput": {
            "one_worker_rps": round(one, 1),
            "three_worker_rps": round(three, 1),
            "speedup": round(three / one, 3) if one else None,
        },
    },
}
with open(out, "w") as f:
    json.dump(report, f, indent=2, sort_keys=True)
    f.write("\n")
print(json.dumps(report["benches"], indent=2))
EOF

echo "wrote $OUT" >&2
