#!/usr/bin/env bash
# Measures the static points-to phase: the word-parallel
# difference-propagation solver vs. the naive per-bit reference engine
# (`probe_solver --reference`), per workload, per configuration
# (sound CI / predicated CS) and per pool width (1/2/4/8 threads — the
# sharded bulk-synchronous solver above the adaptive serial cutoff, the
# serial path below it). Writes per-run paired minima plus host metadata to
# BENCH_static.json at the repo root.
#
# Usage: ./scripts/bench_static.sh [runs]   (default runs=3)
# OHA_SMOKE=1 shrinks the workloads to unit-test scale (CI validation);
# the committed BENCH_static.json is generated at full benchmark scale.
set -euo pipefail
cd "$(dirname "$0")/.."

RUNS="${1:-3}"
OUT="BENCH_static.json"

cargo build --locked --release -q -p oha-bench

TMPDIR_SAMPLES="$(mktemp -d)"
trap 'rm -rf "$TMPDIR_SAMPLES"' EXIT
for i in $(seq 1 "$RUNS"); do
    echo "==> probe_solver --reference (run $i/$RUNS)" >&2
    ./target/release/probe_solver --reference > "$TMPDIR_SAMPLES/run$i.json"
done

python3 - "$OUT" "$RUNS" "$TMPDIR_SAMPLES" <<'EOF'
import json, os, statistics, sys

out, runs, tmpdir = sys.argv[1], int(sys.argv[2]), sys.argv[3]
by_key = {}
host = None
for i in range(1, runs + 1):
    with open(os.path.join(tmpdir, f"run{i}.json")) as f:
        doc = json.load(f)
    # Host metadata comes from the binary itself (oha_bench::host_json),
    # so it reflects what the timed process actually saw.
    host = doc["host"]
    for s in doc["samples"]:
        by_key.setdefault((s["workload"], s["config"], s["threads"]), []).append(s)

# Regroup: one bench entry per (workload, config), with the 1-thread row
# carrying the reference comparison and a by_threads sub-table carrying
# the width sweep.
groups = {}
for (workload, config, threads), samples in sorted(by_key.items()):
    groups.setdefault((workload, config), {})[threads] = samples

benches = {}
for (workload, config), per_t in sorted(groups.items()):
    t1 = per_t[1]
    # Each run reports a *paired* minimum (interleaved reps, see
    # probe_solver::timed_pair), so within a run the two engines sample
    # the same host noise and their ratio is trustworthy; across runs the
    # noise floor moves. Hence: times = min across runs (least-perturbed
    # observation), speedup = median of the per-run paired ratios (a
    # ratio of cross-run minima would mix noise windows).
    optimized = min(s["optimized_s"] for s in t1)
    reference = min(s["reference_s"] for s in t1)
    speedup = statistics.median(
        s["reference_s"] / s["optimized_s"] for s in t1 if s["optimized_s"]
    )
    last = t1[-1]
    by_threads = {
        str(t): round(min(s["optimized_s"] for s in samples), 6)
        for t, samples in sorted(per_t.items())
    }
    best = min(by_threads.values())
    widest = per_t[max(per_t)][-1]
    benches[f"{workload}.{config}"] = {
        "optimized_s": round(optimized, 6),
        "reference_s": round(reference, 6),
        "speedup": round(speedup, 3) if optimized else None,
        "by_threads": by_threads,
        # Best width vs the 1-thread row of the same engine: what the
        # sharded solver buys (1.0 when the serial cutoff routes every
        # width through the serial path, or on a 1-core host).
        "parallel_speedup": round(optimized / best, 3) if best else None,
        # Which path the widest row took: the adaptive cutoff's verdict.
        "solver_path": "sharded" if widest["sharded_solves"] else "serial",
        "shard_rounds": widest["shard_rounds"],
        "solver_iterations": last["iterations"],
        "cycle_collapses": last["cycle_collapses"],
        "scc_collapses": last["scc_collapses"],
        "words_unioned": last["words_unioned"],
        "worklist_pops": last["worklist_pops"],
    }

smoke = os.environ.get("OHA_SMOKE") == "1"
report = {
    "harness": "scripts/bench_static.sh",
    "workload_scale": ("OHA_SMOKE=1 (WorkloadParams::small)" if smoke
                       else "WorkloadParams::benchmark"),
    "samples_per_point": runs,
    "aggregate": "times: min of per-run paired minima; speedup: median of per-run paired ratios",
    "thread_sweep": sorted({t for (_, _, t) in by_key}),
    "host": host,
    "comparison": ("optimized = word-parallel difference propagation with "
                   "online cycle collapse (sharded bulk-synchronous solve "
                   "above the adaptive serial cutoff); reference = naive "
                   "per-bit iterate-to-fixpoint engine (analyze_reference), "
                   "both computing bit-identical PointsTo results; "
                   "by_threads = min optimized seconds per pool width"),
    "benches": benches,
}
with open(out, "w") as f:
    json.dump(report, f, indent=2, sort_keys=True)
    f.write("\n")
print(json.dumps({k: {"speedup": v["speedup"],
                      "parallel_speedup": v["parallel_speedup"],
                      "path": v["solver_path"]}
                  for k, v in benches.items()}, indent=2))
EOF

echo "wrote $OUT" >&2
