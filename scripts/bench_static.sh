#!/usr/bin/env bash
# Measures the static points-to phase: the word-parallel
# difference-propagation solver vs. the naive per-bit reference engine
# (`probe_solver --reference`), per workload and per configuration
# (sound CI / predicated CS), and writes per-sample medians plus host
# metadata to BENCH_static.json at the repo root.
#
# Usage: ./scripts/bench_static.sh [runs]   (default runs=3)
# OHA_SMOKE=1 shrinks the workloads to unit-test scale (CI validation);
# the committed BENCH_static.json is generated at full benchmark scale.
set -euo pipefail
cd "$(dirname "$0")/.."

RUNS="${1:-3}"
OUT="BENCH_static.json"

cargo build --locked --release -q -p oha-bench

TMPDIR_SAMPLES="$(mktemp -d)"
trap 'rm -rf "$TMPDIR_SAMPLES"' EXIT
for i in $(seq 1 "$RUNS"); do
    echo "==> probe_solver --reference (run $i/$RUNS)" >&2
    ./target/release/probe_solver --reference > "$TMPDIR_SAMPLES/run$i.json"
done

python3 - "$OUT" "$RUNS" "$TMPDIR_SAMPLES" <<'EOF'
import json, os, statistics, sys

out, runs, tmpdir = sys.argv[1], int(sys.argv[2]), sys.argv[3]
by_key = {}
host = None
for i in range(1, runs + 1):
    with open(os.path.join(tmpdir, f"run{i}.json")) as f:
        doc = json.load(f)
    # Host metadata comes from the binary itself (oha_bench::host_json),
    # so it reflects what the timed process actually saw.
    host = doc["host"]
    for s in doc["samples"]:
        by_key.setdefault((s["workload"], s["config"]), []).append(s)

benches = {}
for (workload, config), samples in sorted(by_key.items()):
    optimized = statistics.median(s["optimized_s"] for s in samples)
    reference = statistics.median(s["reference_s"] for s in samples)
    last = samples[-1]
    benches[f"{workload}.{config}"] = {
        "optimized_s": round(optimized, 6),
        "reference_s": round(reference, 6),
        "speedup": round(reference / optimized, 3) if optimized else None,
        "solver_iterations": last["iterations"],
        "cycle_collapses": last["cycle_collapses"],
        "scc_collapses": last["scc_collapses"],
        "words_unioned": last["words_unioned"],
        "worklist_pops": last["worklist_pops"],
    }

smoke = os.environ.get("OHA_SMOKE") == "1"
report = {
    "harness": "scripts/bench_static.sh",
    "workload_scale": ("OHA_SMOKE=1 (WorkloadParams::small)" if smoke
                       else "WorkloadParams::benchmark"),
    "samples_per_point": runs,
    "aggregate": "median",
    "host": host,
    "comparison": ("optimized = word-parallel difference propagation with "
                   "online cycle collapse; reference = naive per-bit "
                   "iterate-to-fixpoint engine (analyze_reference), both "
                   "computing bit-identical PointsTo results"),
    "benches": benches,
}
with open(out, "w") as f:
    json.dump(report, f, indent=2, sort_keys=True)
    f.write("\n")
print(json.dumps({k: v["speedup"] for k, v in benches.items()}, indent=2))
EOF

echo "wrote $OUT" >&2
