#!/usr/bin/env bash
# Measures the fault-injection substrate's overhead on the warm store
# path: a disabled plan (the production default, one Option branch per
# site), an armed plan at rate 0 (every site rolls, nothing fires), and
# a 1% store-fault plan where every injected failure is detected and
# recovered by recompute. Writes BENCH_faults.json at the repo root.
#
# Usage: ./scripts/bench_faults.sh
# OHA_SMOKE=1 shrinks the workload and iteration count (CI validation);
# the committed BENCH_faults.json is generated at full benchmark scale.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="BENCH_faults.json"

cargo build --locked --release -q -p oha-bench
./target/release/bench_faults --json "$OUT"
echo "==> wrote $OUT" >&2
