//! # Optimistic Hybrid Analysis (OHA)
//!
//! A reproduction of *"Optimistic Hybrid Analysis: Accelerating Dynamic
//! Analysis through Predicated Static Analysis"* (ASPLOS 2018).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`ir`] — the program IR (stand-in for LLVM bitcode / Java bytecode),
//! * [`interp`] — a deterministic multithreaded interpreter with tracer hooks,
//! * [`dataflow`] — graphs, bit sets, CFG utilities and the worklist solver,
//! * [`pointsto`] — Andersen-style points-to analysis (CI and CS),
//! * [`races`] — the static lockset/MHP race detector,
//! * [`slicing`] — the static backward slicer,
//! * [`invariants`] — likely-invariant profiling, merging and checking,
//! * [`obs`] — metrics registry, timing spans and machine-readable run
//!   reports shared by the pipeline and the benchmark harness,
//! * [`par`] — a std-only scoped thread pool with an order-preserving
//!   `par_map`, sized by `OHA_THREADS` / the hardware,
//! * [`fasttrack`] — the FastTrack dynamic race detector and its hybrid and
//!   optimistic variants,
//! * [`giri`] — the dynamic backward slicer and its variants,
//! * [`core`] — the three-phase optimistic hybrid analysis pipeline
//!   (profile → predicated static analysis → speculative dynamic analysis
//!   with rollback),
//! * [`workloads`] — synthetic benchmark programs mirroring the paper's
//!   Java and C suites,
//! * [`store`] — the content-addressed on-disk cache for static-phase
//!   artifacts (fingerprint keys, versioned binary codec, corruption-as-
//!   a-miss recovery),
//! * [`serve`] — the concurrent analysis daemon over a Unix-domain
//!   socket, dispatching cached pipelines onto a persistent worker pool.
//!
//! # Quickstart
//!
//! ```
//! use oha::core::{OptFt, Pipeline};
//! use oha::workloads::{java_suite, WorkloadParams};
//!
//! // Build one of the paper's benchmark stand-ins and its input corpora.
//! let workload = java_suite::lusearch(&WorkloadParams::small());
//!
//! // Run the full three-phase optimistic hybrid analysis.
//! let pipeline = Pipeline::new(workload.program.clone());
//! let outcome = pipeline.run_optft(&workload.profiling_inputs, &workload.testing_inputs);
//!
//! // Soundness: the optimistic run reports exactly the races FastTrack finds.
//! assert_eq!(outcome.optimistic_races, outcome.baseline_races);
//! ```

pub use oha_core as core;
pub use oha_dataflow as dataflow;
pub use oha_fasttrack as fasttrack;
pub use oha_giri as giri;
pub use oha_interp as interp;
pub use oha_invariants as invariants;
pub use oha_ir as ir;
pub use oha_obs as obs;
pub use oha_par as par;
pub use oha_pointsto as pointsto;
pub use oha_races as races;
pub use oha_serve as serve;
pub use oha_slicing as slicing;
pub use oha_store as store;
pub use oha_workloads as workloads;
