#!/usr/bin/env bash
# Repository CI gate: formatting, lints, build, the full test suite, and a
# bench smoke run that checks the --json reports parse.
#
# Usage:
#   ./ci.sh           full gate (fmt, clippy, release build+tests, bench smoke)
#   ./ci.sh --quick   pre-push loop: fmt, clippy, debug tests only
#   ./ci.sh --chaos   fault-injection gate only (release build + chaos smoke)
#   ./ci.sh --cluster cluster gate only (release build + cluster smoke)
#
# Each stage prints "==> name" when it starts and "<== name (Ns)" when it
# finishes, so CI logs show where the time goes.
set -euo pipefail
cd "$(dirname "$0")"

QUICK=0
CHAOS=0
CLUSTER=0
for arg in "$@"; do
    case "$arg" in
    --quick) QUICK=1 ;;
    --chaos) CHAOS=1 ;;
    --cluster) CLUSTER=1 ;;
    *)
        echo "unknown argument: $arg" >&2
        echo "usage: ./ci.sh [--quick|--chaos|--cluster]" >&2
        exit 2
        ;;
    esac
done

stage() {
    local name="$1"
    shift
    echo "==> $name"
    local start=$SECONDS
    "$@"
    echo "<== $name ($((SECONDS - start))s)"
}

# Starts ./target/release/oha-serve, leaving the daemon's pid in $DAEMON
# (a global: command substitution would fork a subshell and make the
# daemon unwaitable). No bind-wait loop: clients retry the connect until
# their deadline, so a late-binding daemon is the client's problem to
# absorb, not the harness's to poll for. Arguments: socket path, log
# file, then extra daemon flags.
DAEMON=""
start_daemon() {
    local sock="$1" log="$2"
    shift 2
    rm -f "$sock"
    ./target/release/oha-serve --socket "$sock" "$@" >>"$log" 2>&1 &
    DAEMON=$!
}

# A tiny fig5 + table1 run on the small workload scale (OHA_SMOKE=1), each
# required to emit a parsable, non-empty JSON run report.
bench_smoke() {
    local out
    out="$(mktemp -d)"
    # The trap must uninstall itself: RETURN traps persist past the
    # function that set them, and a second firing (at the caller's return)
    # would hit an unbound $out under `set -u`.
    trap 'rm -rf "$out"; trap - RETURN' RETURN
    local bin
    for bin in fig5_optft_runtimes table1_optft_endtoend; do
        echo "    smoke: $bin --json $out/$bin.json"
        OHA_SMOKE=1 "./target/release/$bin" --json "$out/$bin.json" >/dev/null
        if [ ! -s "$out/$bin.json" ]; then
            echo "bench-smoke: $bin produced no JSON at $out/$bin.json" >&2
            return 1
        fi
        python3 -c '
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
for key in ("name", "counters", "children"):
    if key not in report:
        sys.exit(f"{sys.argv[1]}: missing {key!r} in run report")
if not report["children"]:
    sys.exit(f"{sys.argv[1]}: run report has no per-workload children")
' "$out/$bin.json" || {
            echo "bench-smoke: $bin emitted unparsable or incomplete JSON" >&2
            return 1
        }
    done
}

# A one-shot probe_solver run (small workload scale) through
# scripts/bench_static.sh, which must leave a parsable BENCH_static.json
# with optimized-vs-reference solver timings and a per-thread-count
# width sweep for every workload/config.
bench_static() {
    # Quick mode: without cargo-bench's --bench flag the vendored criterion
    # runs every bench body exactly once, so a broken bench fails the gate
    # in ~1s instead of a full measurement pass.
    OHA_SMOKE=1 cargo test --locked --release -q -p oha-bench --bench static_phase
    OHA_SMOKE=1 ./scripts/bench_static.sh 1 >/dev/null
    python3 -c '
import json, sys
with open("BENCH_static.json") as f:
    report = json.load(f)
for key in ("harness", "host", "benches"):
    if key not in report:
        sys.exit(f"BENCH_static.json: missing {key!r}")
if not report["benches"]:
    sys.exit("BENCH_static.json: no benches recorded")
for name, b in report["benches"].items():
    for field in ("optimized_s", "reference_s", "speedup", "solver_iterations",
                  "by_threads", "parallel_speedup", "solver_path",
                  "words_unioned"):
        if field not in b:
            sys.exit(f"BENCH_static.json: {name} missing {field!r}")
    if not b["by_threads"]:
        sys.exit(f"BENCH_static.json: {name} has an empty thread sweep")
    if b["solver_path"] not in ("serial", "sharded"):
        sys.exit(f"BENCH_static.json: {name} has a bogus solver_path")
    # Regression guard: every engine accounts its word-parallel union
    # work, so a zero here means a solver stopped reporting.
    if b["words_unioned"] <= 0:
        sys.exit(f"BENCH_static.json: {name} reports words_unioned == 0")
' || {
        echo "bench-static: BENCH_static.json unparsable or incomplete" >&2
        return 1
    }
    # The smoke run just validated the harness; restore the committed
    # benchmark-scale measurements.
    git checkout -- BENCH_static.json 2>/dev/null || true
}

# Thread-sweep byte-equality gate for the parallel static phase: the
# sharded Andersen solver, the sound/pred analysis DAG and the
# per-function constraint fan-out must be unobservable in canonical
# output. tests/static_parallel.rs sweeps explicit widths 1/2/4/8
# in-process; running it under each OHA_THREADS value also covers the
# env-resolved (threads = 0) pool path.
static_parallel_smoke() {
    for t in 1 2 4 8; do
        OHA_THREADS=$t cargo test --locked --release -q --test static_parallel || {
            echo "static-parallel: sweep failed at OHA_THREADS=$t" >&2
            return 1
        }
    done
}

# Dynamic-phase fast-path smoke: the criterion suite must run, and
# scripts/bench_dynamic.sh must leave a parsable BENCH_dynamic.json with
# fast-vs-reference timings per workload. bench_dynamic itself aborts
# unless both configurations produce byte-identical canonical results,
# so this stage is also an equivalence gate.
bench_dynamic() {
    # Quick mode: the vendored criterion runs every bench body once.
    OHA_SMOKE=1 cargo test --locked --release -q -p oha-bench --bench dynamic_phase
    OHA_SMOKE=1 OHA_DYN_REPS=1 ./scripts/bench_dynamic.sh 1 >/dev/null
    python3 -c '
import json, sys
with open("BENCH_dynamic.json") as f:
    report = json.load(f)
for key in ("harness", "host", "benches"):
    if key not in report:
        sys.exit(f"BENCH_dynamic.json: missing {key!r}")
if not report["benches"]:
    sys.exit("BENCH_dynamic.json: no benches recorded")
for name, b in report["benches"].items():
    for field in ("events", "optimistic_ref_s", "optimistic_fast_s",
                  "optimistic_speedup", "optimistic_fast_events_per_s",
                  "full_speedup", "hybrid_speedup", "dynamic_speedup"):
        if field not in b:
            sys.exit(f"BENCH_dynamic.json: {name} missing {field!r}")
' || {
        echo "bench-dynamic: BENCH_dynamic.json unparsable or incomplete" >&2
        return 1
    }
    # The smoke run just validated the harness; restore the committed
    # benchmark-scale measurements.
    git checkout -- BENCH_dynamic.json 2>/dev/null || true
}

# Store/daemon smoke: 16 concurrent clients against a cold daemon must
# all get byte-identical canonical JSON; a fresh daemon warm-started on
# the same artifact store must answer with the same bytes again; both
# daemons must drain gracefully on `shutdown`.
store_smoke() {
    local out
    out="$(mktemp -d)"
    trap 'rm -rf "$out"; trap - RETURN' RETURN
    local sock="$out/daemon.sock" store="$out/store" prog="$out/zlib.ir"
    ./target/release/print_workload zlib >"$prog"

    local daemon i pid
    ./target/release/oha-serve --socket "$sock" --store "$store" 2>"$out/serve1.log" &
    daemon=$!

    local pids=()
    for i in $(seq 1 16); do
        ./target/release/oha-client --socket "$sock" optft --program "$prog" \
            >"$out/cold.$i.json" 2>>"$out/client.log" &
        pids+=("$!")
    done
    for pid in "${pids[@]}"; do
        if ! wait "$pid"; then
            echo "store-smoke: a concurrent client failed" >&2
            cat "$out/client.log" >&2
            return 1
        fi
    done
    if [ ! -s "$out/cold.1.json" ]; then
        echo "store-smoke: empty analyze response" >&2
        return 1
    fi
    for i in $(seq 2 16); do
        if ! cmp -s "$out/cold.1.json" "$out/cold.$i.json"; then
            echo "store-smoke: client $i's bytes diverged from client 1's" >&2
            return 1
        fi
    done
    # --raw: stats pretty-prints for humans by default; CI wants the JSON.
    ./target/release/oha-client --socket "$sock" stats --raw >"$out/stats.json"
    python3 -c 'import json, sys; json.load(open(sys.argv[1]))' "$out/stats.json" || {
        echo "store-smoke: stats response is not JSON" >&2
        return 1
    }
    ./target/release/oha-client --socket "$sock" shutdown >/dev/null
    if ! wait "$daemon"; then
        echo "store-smoke: daemon did not drain cleanly" >&2
        return 1
    fi

    # Warm restart on the populated store: identical bytes, no recompute
    # of the static phases.
    ./target/release/oha-serve --socket "$sock" --store "$store" 2>"$out/serve2.log" &
    daemon=$!
    ./target/release/oha-client --socket "$sock" optft --program "$prog" >"$out/warm.json"
    if ! cmp -s "$out/cold.1.json" "$out/warm.json"; then
        echo "store-smoke: warm restart diverged from the cold result" >&2
        return 1
    fi
    ./target/release/oha-client --socket "$sock" shutdown >/dev/null
    if ! wait "$daemon"; then
        echo "store-smoke: warm daemon did not drain cleanly" >&2
        return 1
    fi
}

# Tracing smoke: a smoke-scale fig5 run with --trace-out must leave a
# Perfetto-loadable Chrome trace (balanced B/E spans on every track), and
# a traced daemon must serve Prometheus + JSON metrics whose request-
# latency histogram count matches its request counter, then write its own
# trace on drain. Artifacts land in target/ci-trace/ so CI can upload
# them.
trace_smoke() {
    local out="target/ci-trace"
    rm -rf "$out"
    mkdir -p "$out"

    echo "    smoke: fig5_optft_runtimes --trace-out $out/fig5.trace.json"
    OHA_SMOKE=1 ./target/release/fig5_optft_runtimes \
        --trace-out "$out/fig5.trace.json" >/dev/null
    python3 -c '
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc.get("traceEvents")
if not events:
    sys.exit(f"{sys.argv[1]}: no traceEvents")
depth = {}
for e in events:
    if e["ph"] not in ("B", "E", "i"):
        sys.exit(f"{sys.argv[1]}: unexpected phase {e['ph']!r}")
    if "ts" not in e or "tid" not in e:
        sys.exit(f"{sys.argv[1]}: event missing ts/tid: {e}")
    if e["ph"] == "B":
        depth[e["tid"]] = depth.get(e["tid"], 0) + 1
    elif e["ph"] == "E":
        depth[e["tid"]] = depth.get(e["tid"], 0) - 1
        if depth[e["tid"]] < 0:
            sys.exit(f"{sys.argv[1]}: track {e['tid']} ends before it begins")
open_tracks = {t: d for t, d in depth.items() if d != 0}
if open_tracks:
    sys.exit(f"{sys.argv[1]}: unbalanced spans on tracks {open_tracks}")
print(f"    trace OK: {len(events)} events on {len(depth)} tracks")
' "$out/fig5.trace.json" || {
        echo "trace-smoke: bench trace unparsable or malformed" >&2
        return 1
    }

    local sock="$out/daemon.sock" prog="$out/zlib.ir" daemon i
    ./target/release/print_workload zlib >"$prog"
    OHA_TRACE=1 ./target/release/oha-serve --socket "$sock" \
        --trace-out "$out/serve.trace.json" 2>"$out/serve.log" &
    daemon=$!
    for i in 1 2; do
        ./target/release/oha-client --socket "$sock" optft --program "$prog" >/dev/null
    done
    ./target/release/oha-client --socket "$sock" metrics >"$out/metrics.prom"
    grep -q '^oha_requests_total ' "$out/metrics.prom" || {
        echo "trace-smoke: Prometheus exposition lacks oha_requests_total" >&2
        cat "$out/metrics.prom" >&2
        return 1
    }
    ./target/release/oha-client --socket "$sock" metrics --json --raw >"$out/metrics.json"
    python3 -c '
import json, sys
with open(sys.argv[1]) as f:
    m = json.load(f)
requests = m["requests"]
latency = m["request_latency_ns"]["count"]
if requests < 2:
    sys.exit(f"{sys.argv[1]}: expected >=2 requests, saw {requests}")
if latency != requests:
    sys.exit(f"{sys.argv[1]}: latency histogram count {latency} != requests {requests}")
if not m["trace"]["enabled"]:
    sys.exit(f"{sys.argv[1]}: OHA_TRACE=1 daemon reports tracing disabled")
' "$out/metrics.json" || {
        echo "trace-smoke: metrics snapshot unparsable or inconsistent" >&2
        return 1
    }
    ./target/release/oha-client --socket "$sock" shutdown >/dev/null
    if ! wait "$daemon"; then
        echo "trace-smoke: daemon did not drain cleanly" >&2
        return 1
    fi
    python3 -c '
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
names = {e["name"] for e in doc["traceEvents"]}
if "serve/request" not in names:
    sys.exit(f"{sys.argv[1]}: drained daemon trace has no serve/request span")
' "$out/serve.trace.json" || {
        echo "trace-smoke: daemon trace missing or incomplete" >&2
        return 1
    }
}

# A smoke-scale bench_store run: cold/warm and daemon timings must land
# in a parsable JSON report (the committed BENCH_store.json is generated
# at benchmark scale by scripts/bench_store.sh).
bench_store_smoke() {
    local out
    out="$(mktemp -d)"
    trap 'rm -rf "$out"; trap - RETURN' RETURN
    OHA_SMOKE=1 ./target/release/bench_store --json "$out/bench_store.json" >/dev/null
    python3 -c '
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
meta = report.get("meta", {})
for key in ("daemon.speedup", "workloads_at_or_above_5x"):
    if key not in meta:
        sys.exit(f"{sys.argv[1]}: missing meta key {key!r}")
if not any(k.endswith(".speedup") and "." in k[:-8] for k in meta):
    sys.exit(f"{sys.argv[1]}: no per-workload speedups recorded")
' "$out/bench_store.json" || {
        echo "bench-store-smoke: BENCH_store report unparsable or incomplete" >&2
        return 1
    }
}

# Chaos smoke: the fault-injection gate, in two acts.
#
# Act 1 — multi-site fault plan. A clean daemon's canonical bytes are the
# oracle; a daemon armed with OHA_FAULTS (short store writes, read
# corruption, rename delays, torn response frames, compute delays, read
# stalls) serves 16 concurrent retrying clients, each of which must end
# with the oracle's exact bytes or a typed error — never silently wrong
# output. The daemon's per-site fault counters must show the plan fired,
# and the report lands in target/ci-chaos/ for CI to upload.
#
# Act 2 — crash consistency. A daemon with an injected crash between
# temp-write and rename dies mid-save (SIGABRT, the kill-9 analogue, at
# a deterministic point inside the write window). The interrupted store
# must recover on restart: the orphaned temp file swept, the artifact
# recomputed, the bytes identical to the oracle. Three rounds, fresh
# store each, prove it is repeatable.
chaos_smoke() {
    local out="target/ci-chaos"
    rm -rf "$out"
    mkdir -p "$out"
    local sock="$out/daemon.sock" prog="$out/zlib.ir"
    local i
    ./target/release/print_workload zlib >"$prog"

    # Act 1 oracle: one clean round.
    start_daemon "$sock" "$out/serve-clean.log" --store "$out/store-clean"
    ./target/release/oha-client --socket "$sock" optft --program "$prog" >"$out/expected.json"
    ./target/release/oha-client --socket "$sock" shutdown >/dev/null
    wait "$DAEMON"
    if [ ! -s "$out/expected.json" ]; then
        echo "chaos-smoke: clean oracle run produced no output" >&2
        return 1
    fi

    # Act 1 chaos round: every store and serve fault site armed at once.
    OHA_FAULTS="seed=7; delay_ms=5; store.write.short=%2; store.read.corrupt=%3; \
store.rename.delay=%2; serve.write.disconnect=%7; serve.compute.delay=%5; \
serve.read.stall=%6" start_daemon "$sock" "$out/serve-chaos.log" --store "$out/store-chaos"
    local pids=() ok=0 wrong=0 failed=0
    for i in $(seq 1 16); do
        ./target/release/oha-client --socket "$sock" --retries 8 --timeout-ms 60000 \
            optft --program "$prog" >"$out/chaos.$i.json" 2>>"$out/chaos-client.log" &
        pids+=("$!")
    done
    for i in $(seq 1 16); do
        if wait "${pids[$((i - 1))]}"; then
            if cmp -s "$out/expected.json" "$out/chaos.$i.json"; then
                ok=$((ok + 1))
            else
                wrong=$((wrong + 1))
                echo "chaos-smoke: client $i SUCCEEDED WITH WRONG BYTES" >&2
            fi
        else
            # A typed error after exhausted retries is within contract.
            failed=$((failed + 1))
        fi
    done
    echo "    chaos clients: $ok correct, $failed typed-error, $wrong wrong-bytes"
    if [ "$wrong" -ne 0 ]; then
        echo "chaos-smoke: a fault was converted into wrong output" >&2
        return 1
    fi
    if [ "$ok" -lt 12 ]; then
        echo "chaos-smoke: only $ok/16 clients succeeded under the plan" >&2
        cat "$out/chaos-client.log" >&2
        return 1
    fi
    # The control plane is exempt from response tearing, so the fault
    # report is always fetchable — and the plan must actually have fired.
    ./target/release/oha-client --socket "$sock" stats --raw >"$out/faults.json"
    python3 -c '
import json, sys
with open(sys.argv[1]) as f:
    stats = json.load(f)
faults = stats.get("faults")
if not faults or faults.get("injected_total", 0) <= 0:
    sys.exit(f"{sys.argv[1]}: armed daemon reports no injected faults: {faults}")
print(f"    fault counters: {faults}")
' "$out/faults.json" || {
        echo "chaos-smoke: fault-counter report missing or empty" >&2
        return 1
    }
    ./target/release/oha-client --socket "$sock" shutdown >/dev/null
    if ! wait "$DAEMON"; then
        echo "chaos-smoke: chaos daemon did not drain cleanly" >&2
        return 1
    fi

    # Act 2: crash between temp-write and rename, restart, recover.
    local round store
    for round in 1 2 3; do
        store="$out/store-crash-$round"
        start_daemon "$sock" "$out/serve-crash-$round.log" \
            --store "$store" --faults "store.crash.before_rename=@1"
        # The first save aborts the daemon mid-write; this client's
        # request dies with it (no retries: the daemon is gone).
        ./target/release/oha-client --socket "$sock" --retries 0 \
            optft --program "$prog" >/dev/null 2>>"$out/crash-client.log" || true
        if wait "$DAEMON"; then
            echo "chaos-smoke: round $round daemon survived its injected crash" >&2
            return 1
        fi
        if ! ls "$store"/tmp/*.tmp >/dev/null 2>&1; then
            echo "chaos-smoke: round $round crash left no orphan temp (died outside the window?)" >&2
            return 1
        fi
        # Restart clean on the same directory: sweep, recompute, serve.
        start_daemon "$sock" "$out/serve-recover-$round.log" --store "$store"
        ./target/release/oha-client --socket "$sock" optft --program "$prog" \
            >"$out/recovered.$round.json"
        if ! cmp -s "$out/expected.json" "$out/recovered.$round.json"; then
            echo "chaos-smoke: round $round recovery diverged from the oracle" >&2
            return 1
        fi
        if ls "$store"/tmp/*.tmp >/dev/null 2>&1; then
            echo "chaos-smoke: round $round orphan temp not swept on restart" >&2
            return 1
        fi
        ./target/release/oha-client --socket "$sock" shutdown >/dev/null
        if ! wait "$DAEMON"; then
            echo "chaos-smoke: round $round recovered daemon did not drain" >&2
            return 1
        fi
        echo "    crash round $round: orphan swept, artifact recomputed, bytes identical"
    done
}

# Cluster smoke: the sharded serving gate. A 3-worker oha-router fleet
# must serve 16 concurrent clients bytes identical to a single-daemon
# oracle; SIGKILLing the busiest worker must fail requests over (correct
# bytes, failovers counted) and the supervisor must restart it; the
# aggregated Prometheus exposition must parse and carry the cluster
# families; shutdown must drain the fleet and remove the front socket.
# Artifacts (router + worker logs, stats snapshots) land in
# target/ci-cluster/ so CI can upload them.
cluster_smoke() {
    local out="target/ci-cluster"
    rm -rf "$out"
    mkdir -p "$out"
    local prog="$out/zlib.ir"
    ./target/release/print_workload zlib >"$prog"

    # The oracle: one clean single-daemon round.
    start_daemon "$out/oracle.sock" "$out/oracle-serve.log" --store "$out/store-oracle"
    ./target/release/oha-client --socket "$out/oracle.sock" optft --program "$prog" \
        >"$out/expected.json"
    ./target/release/oha-client --socket "$out/oracle.sock" shutdown >/dev/null
    wait "$DAEMON"
    if [ ! -s "$out/expected.json" ]; then
        echo "cluster-smoke: oracle run produced no output" >&2
        return 1
    fi

    # The fleet: 3 workers behind one front socket. A 1s restart backoff
    # keeps the killed worker down long enough that the failover path
    # (not the supervisor's respawn) has to serve the post-kill requests.
    local rsock="$out/router.sock"
    ./target/release/oha-router --socket "$rsock" --workers 3 --dir "$out/fleet" \
        --store "$out/store-cluster" --backoff-ms 1000 --health-ms 200 \
        2>"$out/router.log" &
    local router=$!

    local pids=() i
    for i in $(seq 1 16); do
        ./target/release/oha-client --socket "$rsock" optft --program "$prog" \
            >"$out/cluster.$i.json" 2>>"$out/cluster-client.log" &
        pids+=("$!")
    done
    for i in $(seq 1 16); do
        if ! wait "${pids[$((i - 1))]}"; then
            echo "cluster-smoke: concurrent client $i failed" >&2
            cat "$out/cluster-client.log" "$out/router.log" >&2
            return 1
        fi
        if ! cmp -s "$out/expected.json" "$out/cluster.$i.json"; then
            echo "cluster-smoke: client $i's bytes diverged from the oracle" >&2
            return 1
        fi
    done

    # Aim at the key's home worker: the shard that served the requests.
    ./target/release/oha-client --socket "$rsock" stats --raw >"$out/stats-before.json"
    local victim
    victim=$(python3 -c '
import json, sys
with open(sys.argv[1]) as f:
    cluster = json.load(f)["cluster"]
shards = cluster["shard_requests"]
home = shards.index(max(shards))
pid = cluster["pids"][home]
if max(shards) <= 0 or pid <= 0:
    sys.exit(f"no busy shard to kill: {cluster}")
print(pid)
' "$out/stats-before.json") || {
        echo "cluster-smoke: could not pick a kill target" >&2
        cat "$out/stats-before.json" >&2
        return 1
    }
    kill -9 "$victim"

    # The same request must still return oracle bytes: the router fails
    # over along the key's rendezvous ranking while the home is down.
    ./target/release/oha-client --socket "$rsock" optft --program "$prog" \
        >"$out/failover.json" 2>>"$out/cluster-client.log"
    if ! cmp -s "$out/expected.json" "$out/failover.json"; then
        echo "cluster-smoke: post-kill request diverged from the oracle" >&2
        cat "$out/router.log" >&2
        return 1
    fi

    # The supervisor must notice the death, restart the worker, and the
    # router must have counted the failover.
    local recovered=0
    for i in $(seq 1 150); do
        ./target/release/oha-client --socket "$rsock" stats --raw >"$out/stats-after.json"
        if python3 -c '
import json, sys
with open(sys.argv[1]) as f:
    cluster = json.load(f)["cluster"]
ok = (cluster["live_workers"] == cluster["workers"]
      and cluster["restarts"] >= 1 and cluster["failovers"] >= 1)
sys.exit(0 if ok else 1)
' "$out/stats-after.json"; then
            recovered=1
            break
        fi
        sleep 0.2
    done
    if [ "$recovered" -ne 1 ]; then
        echo "cluster-smoke: fleet never recovered from the kill" >&2
        cat "$out/stats-after.json" "$out/router.log" >&2
        return 1
    fi
    echo "    cluster: 16/16 oracle-identical, worker $victim killed," \
        "failover served, supervisor restarted it"

    # The aggregated exposition parses as Prometheus text format and
    # carries both the per-worker families and the cluster's own.
    ./target/release/oha-client --socket "$rsock" metrics >"$out/metrics.prom"
    python3 -c '
import sys
families = set()
with open(sys.argv[1]) as f:
    for line in f:
        line = line.rstrip("\n")
        if not line or line.startswith("#"):
            continue
        name_part = line.split(" ", 1)
        if len(name_part) != 2:
            sys.exit(f"unparsable sample line: {line!r}")
        float(name_part[1])  # value must be numeric
        families.add(name_part[0].split("{", 1)[0])
for needed in ("oha_requests_total", "oha_request_latency_seconds_bucket",
               "oha_cluster_workers", "oha_cluster_live_workers",
               "oha_cluster_worker_restarts_total", "oha_cluster_forwarded_total",
               "oha_cluster_failovers_total", "oha_cluster_shard_requests_total"):
    if needed not in families:
        sys.exit(f"exposition missing family {needed}")
print(f"    metrics: {len(families)} families parsed")
' "$out/metrics.prom" || {
        echo "cluster-smoke: aggregated exposition unparsable or incomplete" >&2
        cat "$out/metrics.prom" >&2
        return 1
    }

    ./target/release/oha-client --socket "$rsock" shutdown >/dev/null
    if ! wait "$router"; then
        echo "cluster-smoke: router did not drain cleanly" >&2
        cat "$out/router.log" >&2
        return 1
    fi
    if [ -S "$rsock" ]; then
        echo "cluster-smoke: drained router left its socket behind" >&2
        return 1
    fi
}

if [ "$CHAOS" = 1 ]; then
    stage "cargo build --release (workspace)" cargo build --locked --release --workspace
    stage "chaos-smoke (fault plan + crash recovery)" chaos_smoke
    echo "CI green (chaos)."
    exit 0
fi

if [ "$CLUSTER" = 1 ]; then
    stage "cargo build --release (workspace)" cargo build --locked --release --workspace
    stage "cluster-smoke (3-worker router, kill + failover + recovery)" cluster_smoke
    echo "CI green (cluster)."
    exit 0
fi

# cargo-fmt does not understand --locked; every dependency-resolving
# cargo invocation below carries it so CI fails loudly if Cargo.lock is
# stale instead of silently re-resolving.
stage "cargo fmt --check" cargo fmt --check
stage "cargo clippy (workspace, all targets, warnings are errors)" \
    cargo clippy --locked --workspace --all-targets -- -D warnings

if [ "$QUICK" = 1 ]; then
    stage "cargo test (debug)" cargo test --locked -q
    echo "CI green (quick)."
    exit 0
fi

stage "cargo build --release (workspace)" cargo build --locked --release --workspace
stage "cargo test (release)" cargo test --locked --release --workspace -q
stage "bench-smoke (fig5 + table1, --json)" bench_smoke
stage "static-parallel (thread-sweep byte-equality gate)" static_parallel_smoke
stage "bench-static (probe_solver vs reference, BENCH_static.json)" bench_static
stage "bench-dynamic-smoke (fast path vs reference, BENCH_dynamic.json)" bench_dynamic
stage "store-smoke (16-client daemon round-trip + warm restart)" store_smoke
stage "trace-smoke (Chrome trace export + live daemon metrics)" trace_smoke
stage "bench-store-smoke (cold/warm + daemon, --json)" bench_store_smoke
stage "chaos-smoke (fault plan + crash recovery)" chaos_smoke
stage "cluster-smoke (3-worker router, kill + failover + recovery)" cluster_smoke

echo "CI green."
