#!/usr/bin/env bash
# Repository CI gate: formatting, lints, build, and the full test suite.
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (workspace, all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test (release)"
cargo test --release -q

echo "CI green."
