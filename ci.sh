#!/usr/bin/env bash
# Repository CI gate: formatting, lints, build, the full test suite, and a
# bench smoke run that checks the --json reports parse.
#
# Usage:
#   ./ci.sh           full gate (fmt, clippy, release build+tests, bench smoke)
#   ./ci.sh --quick   pre-push loop: fmt, clippy, debug tests only
#
# Each stage prints "==> name" when it starts and "<== name (Ns)" when it
# finishes, so CI logs show where the time goes.
set -euo pipefail
cd "$(dirname "$0")"

QUICK=0
for arg in "$@"; do
    case "$arg" in
    --quick) QUICK=1 ;;
    *)
        echo "unknown argument: $arg" >&2
        echo "usage: ./ci.sh [--quick]" >&2
        exit 2
        ;;
    esac
done

stage() {
    local name="$1"
    shift
    echo "==> $name"
    local start=$SECONDS
    "$@"
    echo "<== $name ($((SECONDS - start))s)"
}

# A tiny fig5 + table1 run on the small workload scale (OHA_SMOKE=1), each
# required to emit a parsable, non-empty JSON run report.
bench_smoke() {
    local out
    out="$(mktemp -d)"
    trap 'rm -rf "$out"' RETURN
    local bin
    for bin in fig5_optft_runtimes table1_optft_endtoend; do
        echo "    smoke: $bin --json $out/$bin.json"
        OHA_SMOKE=1 "./target/release/$bin" --json "$out/$bin.json" >/dev/null
        if [ ! -s "$out/$bin.json" ]; then
            echo "bench-smoke: $bin produced no JSON at $out/$bin.json" >&2
            return 1
        fi
        python3 -c '
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
for key in ("name", "counters", "children"):
    if key not in report:
        sys.exit(f"{sys.argv[1]}: missing {key!r} in run report")
if not report["children"]:
    sys.exit(f"{sys.argv[1]}: run report has no per-workload children")
' "$out/$bin.json" || {
            echo "bench-smoke: $bin emitted unparsable or incomplete JSON" >&2
            return 1
        }
    done
}

stage "cargo fmt --check" cargo fmt --check
stage "cargo clippy (workspace, all targets, warnings are errors)" \
    cargo clippy --workspace --all-targets -- -D warnings

if [ "$QUICK" = 1 ]; then
    stage "cargo test (debug)" cargo test -q
    echo "CI green (quick)."
    exit 0
fi

stage "cargo build --release" cargo build --release
stage "cargo test (release)" cargo test --release -q
stage "bench-smoke (fig5 + table1, --json)" bench_smoke

echo "CI green."
