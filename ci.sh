#!/usr/bin/env bash
# Repository CI gate: formatting, lints, build, the full test suite, and a
# bench smoke run that checks the --json reports parse.
#
# Usage:
#   ./ci.sh           full gate (fmt, clippy, release build+tests, bench smoke)
#   ./ci.sh --quick   pre-push loop: fmt, clippy, debug tests only
#
# Each stage prints "==> name" when it starts and "<== name (Ns)" when it
# finishes, so CI logs show where the time goes.
set -euo pipefail
cd "$(dirname "$0")"

QUICK=0
for arg in "$@"; do
    case "$arg" in
    --quick) QUICK=1 ;;
    *)
        echo "unknown argument: $arg" >&2
        echo "usage: ./ci.sh [--quick]" >&2
        exit 2
        ;;
    esac
done

stage() {
    local name="$1"
    shift
    echo "==> $name"
    local start=$SECONDS
    "$@"
    echo "<== $name ($((SECONDS - start))s)"
}

# A tiny fig5 + table1 run on the small workload scale (OHA_SMOKE=1), each
# required to emit a parsable, non-empty JSON run report.
bench_smoke() {
    local out
    out="$(mktemp -d)"
    # The trap must uninstall itself: RETURN traps persist past the
    # function that set them, and a second firing (at the caller's return)
    # would hit an unbound $out under `set -u`.
    trap 'rm -rf "$out"; trap - RETURN' RETURN
    local bin
    for bin in fig5_optft_runtimes table1_optft_endtoend; do
        echo "    smoke: $bin --json $out/$bin.json"
        OHA_SMOKE=1 "./target/release/$bin" --json "$out/$bin.json" >/dev/null
        if [ ! -s "$out/$bin.json" ]; then
            echo "bench-smoke: $bin produced no JSON at $out/$bin.json" >&2
            return 1
        fi
        python3 -c '
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
for key in ("name", "counters", "children"):
    if key not in report:
        sys.exit(f"{sys.argv[1]}: missing {key!r} in run report")
if not report["children"]:
    sys.exit(f"{sys.argv[1]}: run report has no per-workload children")
' "$out/$bin.json" || {
            echo "bench-smoke: $bin emitted unparsable or incomplete JSON" >&2
            return 1
        }
    done
}

# A one-shot probe_solver run (small workload scale) through
# scripts/bench_static.sh, which must leave a parsable BENCH_static.json
# with optimized-vs-reference solver timings for every workload/config.
bench_static() {
    # Quick mode: without cargo-bench's --bench flag the vendored criterion
    # runs every bench body exactly once, so a broken bench fails the gate
    # in ~1s instead of a full measurement pass.
    OHA_SMOKE=1 cargo test --release -q -p oha-bench --bench static_phase
    OHA_SMOKE=1 ./scripts/bench_static.sh 1 >/dev/null
    python3 -c '
import json, sys
with open("BENCH_static.json") as f:
    report = json.load(f)
for key in ("harness", "host", "benches"):
    if key not in report:
        sys.exit(f"BENCH_static.json: missing {key!r}")
if not report["benches"]:
    sys.exit("BENCH_static.json: no benches recorded")
for name, b in report["benches"].items():
    for field in ("optimized_s", "reference_s", "speedup", "solver_iterations"):
        if field not in b:
            sys.exit(f"BENCH_static.json: {name} missing {field!r}")
' || {
        echo "bench-static: BENCH_static.json unparsable or incomplete" >&2
        return 1
    }
    # The smoke run just validated the harness; restore the committed
    # benchmark-scale measurements.
    git checkout -- BENCH_static.json 2>/dev/null || true
}

# Store/daemon smoke: 16 concurrent clients against a cold daemon must
# all get byte-identical canonical JSON; a fresh daemon warm-started on
# the same artifact store must answer with the same bytes again; both
# daemons must drain gracefully on `shutdown`.
store_smoke() {
    local out
    out="$(mktemp -d)"
    trap 'rm -rf "$out"; trap - RETURN' RETURN
    local sock="$out/daemon.sock" store="$out/store" prog="$out/zlib.ir"
    ./target/release/print_workload zlib >"$prog"

    local daemon i pid
    ./target/release/oha-serve --socket "$sock" --store "$store" 2>"$out/serve1.log" &
    daemon=$!
    for i in $(seq 1 100); do [ -S "$sock" ] && break; sleep 0.05; done
    if [ ! -S "$sock" ]; then
        echo "store-smoke: daemon did not bind $sock" >&2
        cat "$out/serve1.log" >&2
        return 1
    fi

    local pids=()
    for i in $(seq 1 16); do
        ./target/release/oha-client --socket "$sock" optft --program "$prog" \
            >"$out/cold.$i.json" 2>>"$out/client.log" &
        pids+=("$!")
    done
    for pid in "${pids[@]}"; do
        if ! wait "$pid"; then
            echo "store-smoke: a concurrent client failed" >&2
            cat "$out/client.log" >&2
            return 1
        fi
    done
    if [ ! -s "$out/cold.1.json" ]; then
        echo "store-smoke: empty analyze response" >&2
        return 1
    fi
    for i in $(seq 2 16); do
        if ! cmp -s "$out/cold.1.json" "$out/cold.$i.json"; then
            echo "store-smoke: client $i's bytes diverged from client 1's" >&2
            return 1
        fi
    done
    # --raw: stats pretty-prints for humans by default; CI wants the JSON.
    ./target/release/oha-client --socket "$sock" stats --raw >"$out/stats.json"
    python3 -c 'import json, sys; json.load(open(sys.argv[1]))' "$out/stats.json" || {
        echo "store-smoke: stats response is not JSON" >&2
        return 1
    }
    ./target/release/oha-client --socket "$sock" shutdown >/dev/null
    if ! wait "$daemon"; then
        echo "store-smoke: daemon did not drain cleanly" >&2
        return 1
    fi

    # Warm restart on the populated store: identical bytes, no recompute
    # of the static phases.
    ./target/release/oha-serve --socket "$sock" --store "$store" 2>"$out/serve2.log" &
    daemon=$!
    for i in $(seq 1 100); do [ -S "$sock" ] && break; sleep 0.05; done
    ./target/release/oha-client --socket "$sock" optft --program "$prog" >"$out/warm.json"
    if ! cmp -s "$out/cold.1.json" "$out/warm.json"; then
        echo "store-smoke: warm restart diverged from the cold result" >&2
        return 1
    fi
    ./target/release/oha-client --socket "$sock" shutdown >/dev/null
    if ! wait "$daemon"; then
        echo "store-smoke: warm daemon did not drain cleanly" >&2
        return 1
    fi
}

# Tracing smoke: a smoke-scale fig5 run with --trace-out must leave a
# Perfetto-loadable Chrome trace (balanced B/E spans on every track), and
# a traced daemon must serve Prometheus + JSON metrics whose request-
# latency histogram count matches its request counter, then write its own
# trace on drain. Artifacts land in target/ci-trace/ so CI can upload
# them.
trace_smoke() {
    local out="target/ci-trace"
    rm -rf "$out"
    mkdir -p "$out"

    echo "    smoke: fig5_optft_runtimes --trace-out $out/fig5.trace.json"
    OHA_SMOKE=1 ./target/release/fig5_optft_runtimes \
        --trace-out "$out/fig5.trace.json" >/dev/null
    python3 -c '
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc.get("traceEvents")
if not events:
    sys.exit(f"{sys.argv[1]}: no traceEvents")
depth = {}
for e in events:
    if e["ph"] not in ("B", "E", "i"):
        sys.exit(f"{sys.argv[1]}: unexpected phase {e['ph']!r}")
    if "ts" not in e or "tid" not in e:
        sys.exit(f"{sys.argv[1]}: event missing ts/tid: {e}")
    if e["ph"] == "B":
        depth[e["tid"]] = depth.get(e["tid"], 0) + 1
    elif e["ph"] == "E":
        depth[e["tid"]] = depth.get(e["tid"], 0) - 1
        if depth[e["tid"]] < 0:
            sys.exit(f"{sys.argv[1]}: track {e['tid']} ends before it begins")
open_tracks = {t: d for t, d in depth.items() if d != 0}
if open_tracks:
    sys.exit(f"{sys.argv[1]}: unbalanced spans on tracks {open_tracks}")
print(f"    trace OK: {len(events)} events on {len(depth)} tracks")
' "$out/fig5.trace.json" || {
        echo "trace-smoke: bench trace unparsable or malformed" >&2
        return 1
    }

    local sock="$out/daemon.sock" prog="$out/zlib.ir" daemon i
    ./target/release/print_workload zlib >"$prog"
    OHA_TRACE=1 ./target/release/oha-serve --socket "$sock" \
        --trace-out "$out/serve.trace.json" 2>"$out/serve.log" &
    daemon=$!
    for i in $(seq 1 100); do [ -S "$sock" ] && break; sleep 0.05; done
    if [ ! -S "$sock" ]; then
        echo "trace-smoke: daemon did not bind $sock" >&2
        cat "$out/serve.log" >&2
        return 1
    fi
    for i in 1 2; do
        ./target/release/oha-client --socket "$sock" optft --program "$prog" >/dev/null
    done
    ./target/release/oha-client --socket "$sock" metrics >"$out/metrics.prom"
    grep -q '^oha_requests_total ' "$out/metrics.prom" || {
        echo "trace-smoke: Prometheus exposition lacks oha_requests_total" >&2
        cat "$out/metrics.prom" >&2
        return 1
    }
    ./target/release/oha-client --socket "$sock" metrics --json --raw >"$out/metrics.json"
    python3 -c '
import json, sys
with open(sys.argv[1]) as f:
    m = json.load(f)
requests = m["requests"]
latency = m["request_latency_ns"]["count"]
if requests < 2:
    sys.exit(f"{sys.argv[1]}: expected >=2 requests, saw {requests}")
if latency != requests:
    sys.exit(f"{sys.argv[1]}: latency histogram count {latency} != requests {requests}")
if not m["trace"]["enabled"]:
    sys.exit(f"{sys.argv[1]}: OHA_TRACE=1 daemon reports tracing disabled")
' "$out/metrics.json" || {
        echo "trace-smoke: metrics snapshot unparsable or inconsistent" >&2
        return 1
    }
    ./target/release/oha-client --socket "$sock" shutdown >/dev/null
    if ! wait "$daemon"; then
        echo "trace-smoke: daemon did not drain cleanly" >&2
        return 1
    fi
    python3 -c '
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
names = {e["name"] for e in doc["traceEvents"]}
if "serve/request" not in names:
    sys.exit(f"{sys.argv[1]}: drained daemon trace has no serve/request span")
' "$out/serve.trace.json" || {
        echo "trace-smoke: daemon trace missing or incomplete" >&2
        return 1
    }
}

# A smoke-scale bench_store run: cold/warm and daemon timings must land
# in a parsable JSON report (the committed BENCH_store.json is generated
# at benchmark scale by scripts/bench_store.sh).
bench_store_smoke() {
    local out
    out="$(mktemp -d)"
    trap 'rm -rf "$out"; trap - RETURN' RETURN
    OHA_SMOKE=1 ./target/release/bench_store --json "$out/bench_store.json" >/dev/null
    python3 -c '
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
meta = report.get("meta", {})
for key in ("daemon.speedup", "workloads_at_or_above_5x"):
    if key not in meta:
        sys.exit(f"{sys.argv[1]}: missing meta key {key!r}")
if not any(k.endswith(".speedup") and "." in k[:-8] for k in meta):
    sys.exit(f"{sys.argv[1]}: no per-workload speedups recorded")
' "$out/bench_store.json" || {
        echo "bench-store-smoke: BENCH_store report unparsable or incomplete" >&2
        return 1
    }
}

stage "cargo fmt --check" cargo fmt --check
stage "cargo clippy (workspace, all targets, warnings are errors)" \
    cargo clippy --workspace --all-targets -- -D warnings

if [ "$QUICK" = 1 ]; then
    stage "cargo test (debug)" cargo test -q
    echo "CI green (quick)."
    exit 0
fi

stage "cargo build --release (workspace)" cargo build --release --workspace
stage "cargo test (release)" cargo test --release --workspace -q
stage "bench-smoke (fig5 + table1, --json)" bench_smoke
stage "bench-static (probe_solver vs reference, BENCH_static.json)" bench_static
stage "store-smoke (16-client daemon round-trip + warm restart)" store_smoke
stage "trace-smoke (Chrome trace export + live daemon metrics)" trace_smoke
stage "bench-store-smoke (cold/warm + daemon, --json)" bench_store_smoke

echo "CI green."
