//! Property tests over random programs: the IR text format round-trips,
//! execution is deterministic, and tracers never perturb execution.

mod common;

use common::{build_program, inputs, prog_spec};
use oha::interp::{Machine, MachineConfig, NoopTracer, Termination};
use oha::invariants::ProfileTracer;
use oha::ir::{parse_program, print_program};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// print → parse reproduces the program exactly (ids included).
    #[test]
    fn text_format_round_trips(spec in prog_spec()) {
        let p = build_program(&spec);
        let text = print_program(&p);
        let q = parse_program(&text).expect("printed programs parse");
        prop_assert_eq!(print_program(&q), text);
        prop_assert_eq!(p.num_insts(), q.num_insts());
        for id in p.inst_ids() {
            prop_assert_eq!(p.inst(id), q.inst(id));
        }
    }

    /// Same program, input and seed ⇒ bit-identical runs (the record/replay
    /// property that rollback relies on).
    #[test]
    fn execution_is_deterministic(spec in prog_spec(), input in inputs(), seed in 0u64..1000) {
        let p = build_program(&spec);
        let cfg = MachineConfig { seed, quantum: 3, max_steps: 2_000_000 };
        let a = Machine::new(&p, cfg).run(&input, &mut NoopTracer);
        let b = Machine::new(&p, cfg).run(&input, &mut NoopTracer);
        prop_assert_eq!(a.steps, b.steps);
        prop_assert_eq!(a.outputs, b.outputs);
        prop_assert_eq!(a.status, b.status);
        prop_assert_eq!(a.status, Termination::Exited, "generated programs terminate");
    }

    /// Attaching a tracer never changes what the program does.
    #[test]
    fn tracers_do_not_perturb_execution(spec in prog_spec(), input in inputs(), seed in 0u64..1000) {
        let p = build_program(&spec);
        let cfg = MachineConfig { seed, quantum: 5, max_steps: 2_000_000 };
        let plain = Machine::new(&p, cfg).run(&input, &mut NoopTracer);
        let mut profiler = ProfileTracer::new(&p);
        let traced = Machine::new(&p, cfg).run(&input, &mut profiler);
        prop_assert_eq!(plain.steps, traced.steps);
        prop_assert_eq!(plain.outputs, traced.outputs);
    }

    /// Different scheduler seeds may reorder threads but never break the
    /// machine: every run still terminates cleanly.
    #[test]
    fn all_schedules_terminate(spec in prog_spec(), input in inputs()) {
        let p = build_program(&spec);
        for seed in [0u64, 1, 7, 991] {
            let cfg = MachineConfig { seed, quantum: 2, max_steps: 2_000_000 };
            let r = Machine::new(&p, cfg).run(&input, &mut NoopTracer);
            prop_assert_eq!(r.status, Termination::Exited, "seed {}", seed);
        }
    }
}
