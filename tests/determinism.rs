//! Serial vs parallel determinism: the profiling phase fans out over the
//! `oha-par` pool, and the contract is that thread count is unobservable
//! in every result — same seeds in, byte-identical `InvariantSet`s and
//! counter-identical reports out, whether `OHA_THREADS=1` or N. Only
//! wall-clock span timings may differ.

use oha::core::{Pipeline, PipelineConfig};
use oha::workloads::{c_suite, java_suite, Workload, WorkloadParams};

fn with_threads(threads: usize) -> PipelineConfig {
    PipelineConfig {
        threads,
        ..PipelineConfig::default()
    }
}

/// Both suites at unit-test scale.
fn all_workloads() -> Vec<Workload> {
    let params = WorkloadParams::small();
    java_suite::all(&params)
        .into_iter()
        .chain(c_suite::all(&params))
        .collect()
}

#[test]
fn profile_is_thread_count_invariant() {
    for w in all_workloads() {
        let (base, _) = Pipeline::new(w.program.clone())
            .with_config(with_threads(1))
            .profile(&w.profiling_inputs);
        // 0 = auto (OHA_THREADS env override, then the hardware), so the
        // default path is covered under whatever the harness sets.
        for threads in [2, 4, 0] {
            let (set, _) = Pipeline::new(w.program.clone())
                .with_config(with_threads(threads))
                .profile(&w.profiling_inputs);
            assert_eq!(
                set, base,
                "{}: {threads} threads changed the invariant set",
                w.name
            );
            assert_eq!(
                format!("{set:?}"),
                format!("{base:?}"),
                "{}: {threads} threads changed the set's rendering",
                w.name
            );
        }
    }
}

#[test]
fn profile_until_stable_is_thread_count_invariant() {
    for w in all_workloads() {
        let serial = Pipeline::new(w.program.clone()).with_config(with_threads(1));
        let (base_set, _, base_used) = serial.profile_until_stable(&w.profiling_inputs, 3);
        for threads in [2, 4] {
            let parallel = Pipeline::new(w.program.clone()).with_config(with_threads(threads));
            let (set, _, used) = parallel.profile_until_stable(&w.profiling_inputs, 3);
            assert_eq!(
                set, base_set,
                "{}: {threads} threads changed the stabilized set",
                w.name
            );
            assert_eq!(
                used, base_used,
                "{}: {threads} threads changed the consumed-run count",
                w.name
            );
            // The convergence curve and every absorbed worker counter
            // (profile.hook.*) must match the serial run exactly.
            assert_eq!(
                parallel.metrics().series_values("profile.fact_count"),
                serial.metrics().series_values("profile.fact_count"),
                "{}: {threads} threads changed the fact-count curve",
                w.name
            );
            assert_eq!(
                parallel.metrics().counters(),
                serial.metrics().counters(),
                "{}: {threads} threads changed the counters",
                w.name
            );
        }
    }
}

/// The value-based `profile.run.events` histogram (one sample per
/// profiling input: that run's total event count) is recorded on worker
/// shards and merged in deterministic task order — its buckets, count,
/// sum and extremes must be bit-identical at any thread width. (Timing
/// histograms like `store.load.*_ns` are real wall-clock measurements
/// and are deliberately outside this contract.)
#[test]
fn profile_event_histogram_is_thread_count_invariant() {
    for w in all_workloads() {
        let serial = Pipeline::new(w.program.clone()).with_config(with_threads(1));
        serial.profile(&w.profiling_inputs);
        let base = serial
            .metrics()
            .hist("profile.run.events")
            .expect("profiling records the per-run event histogram");
        assert_eq!(
            base.count(),
            w.profiling_inputs.len() as u64,
            "{}: one sample per profiling input",
            w.name
        );
        for threads in [2, 4] {
            let parallel = Pipeline::new(w.program.clone()).with_config(with_threads(threads));
            parallel.profile(&w.profiling_inputs);
            let hist = parallel.metrics().hist("profile.run.events").unwrap();
            assert_eq!(
                hist, base,
                "{}: {threads} threads changed the event histogram",
                w.name
            );
        }
    }
}

#[test]
fn optft_reports_are_thread_count_invariant() {
    let params = WorkloadParams::small();
    let mut picks = Vec::new();
    picks.push(java_suite::all(&params).swap_remove(0));
    picks.push(c_suite::all(&params).swap_remove(0));
    for w in picks {
        let run = |threads: usize| {
            Pipeline::new(w.program.clone())
                .with_config(with_threads(threads))
                .run_optft(&w.profiling_inputs, &w.testing_inputs)
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial.invariants, parallel.invariants, "{}", w.name);
        assert_eq!(
            serial.profiling_runs_used, parallel.profiling_runs_used,
            "{}",
            w.name
        );
        assert_eq!(serial.baseline_races, parallel.baseline_races, "{}", w.name);
        assert_eq!(
            serial.optimistic_races, parallel.optimistic_races,
            "{}",
            w.name
        );
        // Non-timing report content: counters, series and metadata are
        // deterministic; spans and the timing-derived gauges are not.
        assert_eq!(
            serial.report.counters, parallel.report.counters,
            "{}: report counters differ across thread counts",
            w.name
        );
        assert_eq!(serial.report.series, parallel.report.series, "{}", w.name);
        assert_eq!(serial.report.meta, parallel.report.meta, "{}", w.name);
    }
}

#[test]
fn optslice_reports_are_thread_count_invariant() {
    let params = WorkloadParams::small();
    let w = c_suite::all(&params).swap_remove(1);
    let run = |threads: usize| {
        Pipeline::new(w.program.clone())
            .with_config(with_threads(threads))
            .run_optslice(&w.profiling_inputs, &w.testing_inputs, &w.endpoints)
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(
        serial.report.counters, parallel.report.counters,
        "{}: report counters differ across thread counts",
        w.name
    );
    assert_eq!(serial.report.series, parallel.report.series, "{}", w.name);
}

/// The cross-mode contract of the store/serve subsystem: the canonical
/// (timing-free) result JSON is byte-identical whether a run is computed
/// cold, served warm from the artifact store, or answered by the daemon
/// to any of N concurrent clients.
#[test]
fn daemon_and_warm_store_match_the_serial_pipeline_byte_for_byte() {
    use oha::core::{optft_canonical_json, optslice_canonical_json, StoreConfig};
    use oha::ir::print_program;
    use oha::serve::{Client, Server, ServerConfig, Tool};

    const CLIENTS: usize = 8;

    let params = WorkloadParams::small();
    let w = c_suite::all(&params).swap_remove(0);
    let text = print_program(&w.program);

    // Cold, storeless serial runs are the oracle.
    let cold = Pipeline::new(w.program.clone());
    let expected_ft = optft_canonical_json(&cold.run_optft(&w.profiling_inputs, &w.testing_inputs));
    let expected_slice = optslice_canonical_json(&Pipeline::new(w.program.clone()).run_optslice(
        &w.profiling_inputs,
        &w.testing_inputs,
        &w.endpoints,
    ));

    let root = std::env::temp_dir().join(format!("oha-determinism-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();

    // Cold-then-warm through the store: both byte-identical to storeless.
    let store_config = PipelineConfig {
        store: Some(StoreConfig::new(root.join("store-serial"))),
        ..PipelineConfig::default()
    };
    for pass in ["cold", "warm"] {
        let outcome = Pipeline::new(w.program.clone())
            .with_config(store_config.clone())
            .run_optft(&w.profiling_inputs, &w.testing_inputs);
        assert_eq!(
            optft_canonical_json(&outcome),
            expected_ft,
            "{}: {pass} stored run diverged",
            w.name
        );
    }

    // The daemon (with its own store) under concurrent clients.
    let server = Server::bind(ServerConfig {
        socket: root.join("daemon.sock"),
        store_dir: Some(root.join("store-daemon")),
        ..ServerConfig::default()
    })
    .unwrap();
    let socket = server.socket().to_path_buf();
    let server_thread = std::thread::spawn(move || server.run().unwrap());
    let endpoints: Vec<u32> = w.endpoints.iter().map(|e| e.raw()).collect();

    std::thread::scope(|scope| {
        for n in 0..CLIENTS {
            let (socket, text, w, endpoints) = (&socket, &text, &w, &endpoints);
            let (expected_ft, expected_slice) = (&expected_ft, &expected_slice);
            scope.spawn(move || {
                let mut client = Client::connect(socket).unwrap();
                // Every client runs both tools; half start with OptSlice
                // so the two artifact families are raced from the start.
                let mut plan = [(Tool::OptFt, expected_ft), (Tool::OptSlice, expected_slice)];
                if n % 2 == 1 {
                    plan.reverse();
                }
                for (tool, expected) in plan {
                    let endpoints: &[u32] = if tool == Tool::OptSlice {
                        endpoints
                    } else {
                        &[]
                    };
                    let response = client
                        .analyze(
                            tool,
                            text,
                            &w.profiling_inputs,
                            &w.testing_inputs,
                            endpoints,
                        )
                        .unwrap();
                    assert!(response.ok, "client {n}: {}", response.body);
                    assert_eq!(
                        &response.body,
                        expected,
                        "{}: client {n} ({}) diverged from the serial pipeline",
                        w.name,
                        tool.name()
                    );
                }
            });
        }
    });

    let mut client = Client::connect(&socket).unwrap();
    client.shutdown().unwrap();
    let drained = server_thread.join().unwrap();
    assert!(drained.requests > 2 * CLIENTS as u64);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn pool_sizing_honors_config_then_env() {
    let params = WorkloadParams::small();
    let program = java_suite::all(&params).swap_remove(0).program;
    let prev = std::env::var("OHA_THREADS").ok();

    std::env::set_var("OHA_THREADS", "3");
    let auto = Pipeline::new(program.clone()).with_config(with_threads(0));
    assert_eq!(
        auto.pool().threads(),
        3,
        "threads=0 resolves via OHA_THREADS"
    );
    let explicit = Pipeline::new(program).with_config(with_threads(2));
    assert_eq!(
        explicit.pool().threads(),
        2,
        "explicit config wins over env"
    );

    match prev {
        Some(v) => std::env::set_var("OHA_THREADS", v),
        None => std::env::remove_var("OHA_THREADS"),
    }
}
