//! Serial vs parallel determinism: the profiling phase fans out over the
//! `oha-par` pool, and the contract is that thread count is unobservable
//! in every result — same seeds in, byte-identical `InvariantSet`s and
//! counter-identical reports out, whether `OHA_THREADS=1` or N. Only
//! wall-clock span timings may differ.

use oha::core::{Pipeline, PipelineConfig};
use oha::workloads::{c_suite, java_suite, Workload, WorkloadParams};

fn with_threads(threads: usize) -> PipelineConfig {
    PipelineConfig {
        threads,
        ..PipelineConfig::default()
    }
}

/// Both suites at unit-test scale.
fn all_workloads() -> Vec<Workload> {
    let params = WorkloadParams::small();
    java_suite::all(&params)
        .into_iter()
        .chain(c_suite::all(&params))
        .collect()
}

#[test]
fn profile_is_thread_count_invariant() {
    for w in all_workloads() {
        let (base, _) = Pipeline::new(w.program.clone())
            .with_config(with_threads(1))
            .profile(&w.profiling_inputs);
        // 0 = auto (OHA_THREADS env override, then the hardware), so the
        // default path is covered under whatever the harness sets.
        for threads in [2, 4, 0] {
            let (set, _) = Pipeline::new(w.program.clone())
                .with_config(with_threads(threads))
                .profile(&w.profiling_inputs);
            assert_eq!(
                set, base,
                "{}: {threads} threads changed the invariant set",
                w.name
            );
            assert_eq!(
                format!("{set:?}"),
                format!("{base:?}"),
                "{}: {threads} threads changed the set's rendering",
                w.name
            );
        }
    }
}

#[test]
fn profile_until_stable_is_thread_count_invariant() {
    for w in all_workloads() {
        let serial = Pipeline::new(w.program.clone()).with_config(with_threads(1));
        let (base_set, _, base_used) = serial.profile_until_stable(&w.profiling_inputs, 3);
        for threads in [2, 4] {
            let parallel = Pipeline::new(w.program.clone()).with_config(with_threads(threads));
            let (set, _, used) = parallel.profile_until_stable(&w.profiling_inputs, 3);
            assert_eq!(
                set, base_set,
                "{}: {threads} threads changed the stabilized set",
                w.name
            );
            assert_eq!(
                used, base_used,
                "{}: {threads} threads changed the consumed-run count",
                w.name
            );
            // The convergence curve and every absorbed worker counter
            // (profile.hook.*) must match the serial run exactly.
            assert_eq!(
                parallel.metrics().series_values("profile.fact_count"),
                serial.metrics().series_values("profile.fact_count"),
                "{}: {threads} threads changed the fact-count curve",
                w.name
            );
            assert_eq!(
                parallel.metrics().counters(),
                serial.metrics().counters(),
                "{}: {threads} threads changed the counters",
                w.name
            );
        }
    }
}

#[test]
fn optft_reports_are_thread_count_invariant() {
    let params = WorkloadParams::small();
    let mut picks = Vec::new();
    picks.push(java_suite::all(&params).swap_remove(0));
    picks.push(c_suite::all(&params).swap_remove(0));
    for w in picks {
        let run = |threads: usize| {
            Pipeline::new(w.program.clone())
                .with_config(with_threads(threads))
                .run_optft(&w.profiling_inputs, &w.testing_inputs)
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial.invariants, parallel.invariants, "{}", w.name);
        assert_eq!(
            serial.profiling_runs_used, parallel.profiling_runs_used,
            "{}",
            w.name
        );
        assert_eq!(serial.baseline_races, parallel.baseline_races, "{}", w.name);
        assert_eq!(
            serial.optimistic_races, parallel.optimistic_races,
            "{}",
            w.name
        );
        // Non-timing report content: counters, series and metadata are
        // deterministic; spans and the timing-derived gauges are not.
        assert_eq!(
            serial.report.counters, parallel.report.counters,
            "{}: report counters differ across thread counts",
            w.name
        );
        assert_eq!(serial.report.series, parallel.report.series, "{}", w.name);
        assert_eq!(serial.report.meta, parallel.report.meta, "{}", w.name);
    }
}

#[test]
fn optslice_reports_are_thread_count_invariant() {
    let params = WorkloadParams::small();
    let w = c_suite::all(&params).swap_remove(1);
    let run = |threads: usize| {
        Pipeline::new(w.program.clone())
            .with_config(with_threads(threads))
            .run_optslice(&w.profiling_inputs, &w.testing_inputs, &w.endpoints)
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(
        serial.report.counters, parallel.report.counters,
        "{}: report counters differ across thread counts",
        w.name
    );
    assert_eq!(serial.report.series, parallel.report.series, "{}", w.name);
}

#[test]
fn pool_sizing_honors_config_then_env() {
    let params = WorkloadParams::small();
    let program = java_suite::all(&params).swap_remove(0).program;
    let prev = std::env::var("OHA_THREADS").ok();

    std::env::set_var("OHA_THREADS", "3");
    let auto = Pipeline::new(program.clone()).with_config(with_threads(0));
    assert_eq!(
        auto.pool().threads(),
        3,
        "threads=0 resolves via OHA_THREADS"
    );
    let explicit = Pipeline::new(program).with_config(with_threads(2));
    assert_eq!(
        explicit.pool().threads(),
        2,
        "explicit config wins over env"
    );

    match prev {
        Some(v) => std::env::set_var("OHA_THREADS", v),
        None => std::env::remove_var("OHA_THREADS"),
    }
}
