//! Event tracing end-to-end: a full OptFT run with a `TraceLog` attached
//! must emit a well-formed span tree — properly nested begin/end pairs
//! with parent links — whose paths and entry counts are exactly the
//! `RunReport`'s span stats, and the Chrome trace-event export must be
//! valid JSON carrying the same events. Tracing must also be inert:
//! attaching a log cannot change the canonical analysis result.

use std::collections::BTreeMap;

use oha::core::{optft_canonical_json, Pipeline};
use oha::obs::{Json, TraceEventKind, TraceLog};
use oha::workloads::{c_suite, WorkloadParams};

#[test]
fn optft_trace_matches_the_reports_span_tree() {
    let params = WorkloadParams::small();
    let w = c_suite::all(&params).swap_remove(0);

    let trace = TraceLog::enabled(1 << 16);
    let pipeline = Pipeline::new(w.program.clone()).with_trace(trace.clone());
    let trace_id = pipeline.metrics().begin_trace();
    assert_ne!(trace_id, 0, "an enabled log mints real trace IDs");
    let outcome = pipeline.run_optft(&w.profiling_inputs, &w.testing_inputs);

    let events = trace.events();
    assert!(!events.is_empty(), "a full run records span events");
    assert_eq!(trace.dropped(), 0, "the ring was sized for the whole run");

    // Replay per-track span stacks: every end must close the innermost
    // open span (matching ID and name), every begin's parent must be the
    // enclosing span, and nothing may stay open.
    let mut stacks: BTreeMap<u64, Vec<(u64, String)>> = BTreeMap::new();
    let mut begin_counts: BTreeMap<String, u64> = BTreeMap::new();
    for e in &events {
        assert_eq!(e.trace_id, trace_id, "{}: rides the begun trace", e.name);
        let stack = stacks.entry(e.tid).or_default();
        match e.kind {
            TraceEventKind::Begin => {
                let enclosing = stack.last().map_or(0, |(id, _)| *id);
                assert_eq!(
                    e.parent, enclosing,
                    "{}: parent must be the enclosing span",
                    e.name
                );
                stack.push((e.span_id, e.name.clone()));
                *begin_counts.entry(e.name.clone()).or_insert(0) += 1;
            }
            TraceEventKind::End => {
                let (id, name) = stack.pop().expect("end without a begin");
                assert_eq!(e.span_id, id, "{}: end closes the innermost span", e.name);
                assert_eq!(e.name, name, "end names its begin");
            }
            TraceEventKind::Instant => {}
        }
    }
    for (tid, stack) in &stacks {
        assert!(stack.is_empty(), "track {tid} left spans open: {stack:?}");
    }

    // The trace's span tree is exactly the report's span stats: same
    // `/`-joined paths, same entry counts. (Storeless on purpose —
    // store-warmed runs replay `cached/*` span stats that have no live
    // trace events.)
    let report_counts: BTreeMap<String, u64> = outcome
        .report
        .spans
        .iter()
        .map(|(path, s)| (path.clone(), s.count))
        .collect();
    assert_eq!(
        begin_counts, report_counts,
        "trace span tree diverged from the report's span stats"
    );

    // The on-disk Chrome export is valid JSON with one record per event
    // and microsecond timestamps.
    let path = std::env::temp_dir().join(format!("oha-trace-test-{}.json", std::process::id()));
    trace.write_chrome_json(&path).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    let doc = Json::parse(&text).expect("Chrome trace export is valid JSON");
    let exported = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert_eq!(exported.len(), events.len());
    for record in exported {
        let ph = record.get("ph").and_then(Json::as_str).unwrap();
        assert!(matches!(ph, "B" | "E" | "i"), "unexpected phase {ph}");
        assert!(record.get("ts").and_then(Json::as_f64).is_some());
        if ph == "i" {
            assert_eq!(
                record.get("s").and_then(Json::as_str),
                Some("t"),
                "Perfetto needs a scope on instants"
            );
        }
    }
    let _ = std::fs::remove_file(&path);

    // Tracing is inert: the canonical (timing-free) result is
    // byte-identical to an untraced run.
    let untraced =
        Pipeline::new(w.program.clone()).run_optft(&w.profiling_inputs, &w.testing_inputs);
    assert_eq!(
        optft_canonical_json(&outcome),
        optft_canonical_json(&untraced),
        "attaching a trace log changed the analysis result"
    );
}
