//! Fast-path equivalence: the dynamic-phase fast path (compiled
//! instrumentation plans + dense shadow memory) must be observationally
//! invisible. Reference (spill-map-only, plan-off) and fast configurations
//! are run side by side over the full workload suites and must produce
//! byte-identical canonical JSON, identical race sets and slices, and
//! identical `RunReport` counters — at 1 and 4 profiling threads, and with
//! the artifact store cold and warm.

use std::sync::{Mutex, OnceLock};

use oha::core::{
    optft_canonical_json, optslice_canonical_json, Pipeline, PipelineConfig, StoreConfig,
};
use oha::interp::fastpath;
use oha::workloads::{c_suite, java_suite, Workload, WorkloadParams};

/// The fast-path toggle is process-global state; every section that forces
/// it must be serialized against the other tests in this binary.
fn toggle_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Clears the override even if the measured closure panics.
struct ResetOnDrop;
impl Drop for ResetOnDrop {
    fn drop(&mut self) {
        fastpath::force(None);
    }
}

/// Runs `f` with the fast path forced on or off, holding the toggle lock.
fn with_mode<T>(fast: bool, f: impl FnOnce() -> T) -> T {
    let _serial = toggle_lock().lock().unwrap_or_else(|e| e.into_inner());
    let _reset = ResetOnDrop;
    fastpath::force(Some(fast));
    f()
}

fn all_workloads() -> Vec<Workload> {
    let params = WorkloadParams::small();
    java_suite::all(&params)
        .into_iter()
        .chain(c_suite::all(&params))
        .collect()
}

fn with_threads(threads: usize) -> PipelineConfig {
    PipelineConfig {
        threads,
        ..PipelineConfig::default()
    }
}

/// One OptFT run in the given mode; returns everything the equivalence
/// contract covers.
fn optft_observables(
    w: &Workload,
    config: &PipelineConfig,
    fast: bool,
) -> (String, Vec<String>, std::collections::BTreeMap<String, u64>) {
    with_mode(fast, || {
        let outcome = Pipeline::new(w.program.clone())
            .with_config(config.clone())
            .run_optft(&w.profiling_inputs, &w.testing_inputs);
        let races: Vec<String> = outcome
            .runs
            .iter()
            .map(|r| {
                format!(
                    "{:?}|{:?}|{:?}|{}",
                    r.races_full, r.races_hybrid, r.races_opt, r.violations
                )
            })
            .collect();
        (
            optft_canonical_json(&outcome),
            races,
            outcome.report.counters.clone(),
        )
    })
}

fn optslice_observables(
    w: &Workload,
    config: &PipelineConfig,
    fast: bool,
) -> (String, Vec<String>, std::collections::BTreeMap<String, u64>) {
    with_mode(fast, || {
        let outcome = Pipeline::new(w.program.clone())
            .with_config(config.clone())
            .run_optslice(&w.profiling_inputs, &w.testing_inputs, &w.endpoints);
        let slices: Vec<String> = outcome
            .runs
            .iter()
            .map(|r| {
                format!(
                    "{}|{}|{}|{}",
                    r.hybrid_slice_len, r.opt_slice_len, r.slices_equal, r.rolled_back
                )
            })
            .collect();
        (
            optslice_canonical_json(&outcome),
            slices,
            outcome.report.counters.clone(),
        )
    })
}

#[test]
fn optft_fast_path_matches_reference_on_all_workloads() {
    for w in all_workloads() {
        for threads in [1, 4] {
            let config = with_threads(threads);
            let (json_ref, races_ref, counters_ref) = optft_observables(&w, &config, false);
            let (json_fast, races_fast, counters_fast) = optft_observables(&w, &config, true);
            assert_eq!(
                json_ref, json_fast,
                "{} (threads={threads}): canonical OptFT JSON diverged",
                w.name
            );
            assert_eq!(
                races_ref, races_fast,
                "{} (threads={threads}): race sets diverged",
                w.name
            );
            assert_eq!(
                counters_ref, counters_fast,
                "{} (threads={threads}): report counters diverged",
                w.name
            );
        }
    }
}

#[test]
fn optslice_fast_path_matches_reference_on_all_workloads() {
    for w in all_workloads() {
        for threads in [1, 4] {
            let config = with_threads(threads);
            let (json_ref, slices_ref, counters_ref) = optslice_observables(&w, &config, false);
            let (json_fast, slices_fast, counters_fast) = optslice_observables(&w, &config, true);
            assert_eq!(
                json_ref, json_fast,
                "{} (threads={threads}): canonical OptSlice JSON diverged",
                w.name
            );
            assert_eq!(
                slices_ref, slices_fast,
                "{} (threads={threads}): dynamic slices diverged",
                w.name
            );
            assert_eq!(
                counters_ref, counters_fast,
                "{} (threads={threads}): report counters diverged",
                w.name
            );
        }
    }
}

/// Cold and warm artifact-store passes agree across modes: each mode gets
/// its own store directory (so hit/miss counters line up pass-for-pass),
/// and the reference and fast results must match on both passes.
#[test]
fn fast_path_matches_reference_with_store_cold_and_warm() {
    let params = WorkloadParams::small();
    let workloads = [
        java_suite::all(&params).swap_remove(0),
        c_suite::all(&params).swap_remove(0),
    ];
    let root = std::env::temp_dir().join(format!("oha-dyn-equiv-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();

    for (i, w) in workloads.iter().enumerate() {
        let config_for = |mode: &str| PipelineConfig {
            store: Some(StoreConfig::new(root.join(format!("store-{i}-{mode}")))),
            ..PipelineConfig::default()
        };
        for pass in ["cold", "warm"] {
            let (json_ref, races_ref, counters_ref) =
                optft_observables(w, &config_for("ref"), false);
            let (json_fast, races_fast, counters_fast) =
                optft_observables(w, &config_for("fast"), true);
            assert_eq!(
                json_ref, json_fast,
                "{} ({pass} store): canonical OptFT JSON diverged",
                w.name
            );
            assert_eq!(
                races_ref, races_fast,
                "{} ({pass} store): race sets diverged",
                w.name
            );
            assert_eq!(
                counters_ref, counters_fast,
                "{} ({pass} store): report counters diverged",
                w.name
            );

            let (sjson_ref, slices_ref, scounters_ref) =
                optslice_observables(w, &config_for("ref"), false);
            let (sjson_fast, slices_fast, scounters_fast) =
                optslice_observables(w, &config_for("fast"), true);
            assert_eq!(
                sjson_ref, sjson_fast,
                "{} ({pass} store): canonical OptSlice JSON diverged",
                w.name
            );
            assert_eq!(
                slices_ref, slices_fast,
                "{} ({pass} store): dynamic slices diverged",
                w.name
            );
            assert_eq!(
                scounters_ref, scounters_fast,
                "{} ({pass} store): report counters diverged",
                w.name
            );
        }
    }

    let _ = std::fs::remove_dir_all(&root);
}
