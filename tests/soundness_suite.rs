//! The headline soundness contracts over every benchmark workload:
//! optimistic analyses report exactly what their unoptimized baselines
//! report, on every testing input, with rollback covering the rest.

use oha::core::Pipeline;
use oha::pointsto::Sensitivity;
use oha::workloads::{c_suite, java_suite, WorkloadParams};

#[test]
fn optft_is_race_equivalent_on_every_java_benchmark() {
    let params = WorkloadParams::small();
    for w in java_suite::all(&params) {
        let pipeline = Pipeline::new(w.program.clone());
        let outcome = pipeline.run_optft(&w.profiling_inputs, &w.testing_inputs);
        assert_eq!(
            outcome.optimistic_races, outcome.baseline_races,
            "{}: OptFT diverged from FastTrack",
            w.name
        );
        for (i, run) in outcome.runs.iter().enumerate() {
            assert_eq!(
                run.races_hybrid, run.races_full,
                "{} input {i}: hybrid diverged from full",
                w.name
            );
        }
    }
}

#[test]
fn the_five_kernels_are_statically_race_free() {
    let params = WorkloadParams::small();
    let mut verdicts = Vec::new();
    for w in java_suite::all(&params) {
        let pipeline = Pipeline::new(w.program.clone());
        let outcome = pipeline.run_optft(&w.profiling_inputs[..2], &w.testing_inputs[..1]);
        verdicts.push((w.name, outcome.statically_race_free));
    }
    for (name, expected) in [
        ("sor", true),
        ("sparse", true),
        ("series", true),
        ("crypt", true),
        ("lufact", true),
        ("lusearch", false),
        ("sunflow", false),
        ("montecarlo", false),
    ] {
        let got = verdicts.iter().find(|(n, _)| *n == name).unwrap().1;
        assert_eq!(got, expected, "{name} race-free verdict");
    }
}

#[test]
fn optslice_matches_hybrid_on_every_c_benchmark() {
    let params = WorkloadParams::small();
    for w in c_suite::all(&params) {
        let pipeline = Pipeline::new(w.program.clone());
        let outcome = pipeline.run_optslice(&w.profiling_inputs, &w.testing_inputs, &w.endpoints);
        assert!(
            outcome.all_slices_equal(),
            "{}: OptSlice diverged from the hybrid slicer",
            w.name
        );
        assert!(
            outcome.pred.slice_size <= outcome.sound.slice_size,
            "{}: predicated static slice must not grow",
            w.name
        );
        assert!(
            outcome.pred.alias_rate <= outcome.sound.alias_rate + 1e-9,
            "{}: predicated alias rate must not grow",
            w.name
        );
    }
}

#[test]
fn context_sensitivity_unlocking_matches_table2() {
    // At the harness budget, sound CS analyses of the big dispatch-heavy
    // benchmarks exhaust resources while the predicated ones complete —
    // except go, whose realized context space stays wide.
    let params = WorkloadParams {
        scale: 60,
        num_profiling: 16,
        num_testing: 2,
        ..WorkloadParams::small()
    };
    let config = oha::core::PipelineConfig {
        ctx_budget: 256,
        ..Default::default()
    };
    for w in c_suite::all(&params) {
        let pipeline = Pipeline::new(w.program.clone()).with_config(config.clone());
        let outcome = pipeline.run_optslice(&w.profiling_inputs, &w.testing_inputs, &w.endpoints);
        let expected_sound_cs = matches!(w.name, "sphinx" | "zlib");
        assert_eq!(
            outcome.sound.points_to_at == Sensitivity::ContextSensitive,
            expected_sound_cs,
            "{}: sound points-to sensitivity",
            w.name
        );
        // Predication must make CS at least as attainable as the sound
        // analysis (go's realized context space is scale-dependent, so its
        // exact verdict is only asserted at the harness scale — see the
        // fig/table binaries).
        if expected_sound_cs {
            assert_eq!(
                outcome.pred.points_to_at,
                Sensitivity::ContextSensitive,
                "{}: predication lost context sensitivity",
                w.name
            );
        }
        if matches!(w.name, "nginx" | "redis" | "perl" | "vim") {
            assert_eq!(
                outcome.pred.points_to_at,
                Sensitivity::ContextSensitive,
                "{}: the context invariant should unlock CS",
                w.name
            );
        }
    }
}
