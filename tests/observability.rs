//! End-to-end checks for the observability layer: hook-dispatch counters,
//! elision accounting, span hierarchies and the machine-readable run report
//! emitted by the three-phase pipeline.

use oha::core::Pipeline;
use oha::interp::{Machine, MachineConfig, NoopTracer};
use oha::obs::{MetricsRegistry, RunReport};
use oha::workloads::{c_suite, java_suite, WorkloadParams};

/// The exact elision identity for OptFT: every speculative memory access the
/// interpreter dispatched was either elided or handed to FastTrack.
fn assert_optft_elision_identity(registry: &MetricsRegistry, name: &str) {
    let loads = registry.counter_value("optft.spec.hook.load");
    let stores = registry.counter_value("optft.spec.hook.store");
    let elided = registry.counter_value("optft.ft.elided.accesses");
    let reads = registry.counter_value("optft.ft.executed.reads");
    let writes = registry.counter_value("optft.ft.executed.writes");
    assert!(loads + stores > 0, "{name}: no hook dispatches recorded");
    assert_eq!(
        loads + stores,
        elided + reads + writes,
        "{name}: elided + executed must equal total accesses dispatched"
    );
}

#[test]
fn optft_counters_consistent_on_java_workload() {
    let w = java_suite::lusearch(&WorkloadParams::small());
    let pipeline = Pipeline::new(w.program.clone());
    let outcome = pipeline.run_optft(&w.profiling_inputs, &w.testing_inputs);
    let registry = pipeline.metrics();

    assert_optft_elision_identity(registry, w.name);

    // Span hierarchy covers all three phases plus the per-run dynamic spans.
    for path in [
        "optft",
        "optft/profile",
        "optft/static_sound",
        "optft/static_pred",
        "optft/dynamic",
        "optft/dynamic/optimistic",
    ] {
        let stat = registry
            .span_stat(path)
            .unwrap_or_else(|| panic!("missing span {path}"));
        assert!(stat.count > 0, "span {path} never completed");
    }

    // The profiling fact-count curve has one point per profiling run used.
    let curve = registry.series_values("profile.fact_count");
    assert_eq!(curve.len(), outcome.profiling_runs_used);
    assert!(curve.iter().all(|&c| c > 0.0));

    // The outcome carries a populated report that round-trips through JSON.
    assert_eq!(outcome.report.name, "optft");
    assert_eq!(
        outcome
            .report
            .meta
            .get("profiling_runs_used")
            .map(String::as_str),
        Some(outcome.profiling_runs_used.to_string().as_str())
    );
    assert!(outcome.report.counters.contains_key("optft.spec.hook.load"));
    assert!(outcome.report.spans.contains_key("optft/dynamic"));
    let json = outcome.report.to_json_string();
    let back = RunReport::from_json_str(&json).expect("report JSON parses");
    assert_eq!(back, outcome.report);
}

#[test]
fn optft_and_optslice_counters_consistent_on_c_workload() {
    let params = WorkloadParams::small();
    let suite = c_suite::all(&params);
    let w = &suite[0];

    // OptFT elision identity also holds on the C suite.
    let pipeline = Pipeline::new(w.program.clone());
    pipeline.run_optft(&w.profiling_inputs, &w.testing_inputs);
    assert_optft_elision_identity(pipeline.metrics(), w.name);

    // OptSlice: every event Giri saw was either traced or elided, and the
    // tracer can only have been offered events the interpreter dispatched.
    let pipeline = Pipeline::new(w.program.clone());
    let outcome = pipeline.run_optslice(&w.profiling_inputs, &w.testing_inputs, &w.endpoints);
    let registry = pipeline.metrics();

    let traced = registry.counter_value("optslice.giri.traced_events");
    let elided = registry.counter_value("optslice.giri.elided_events");
    assert!(
        traced + elided > 0,
        "{name}: Giri saw no events",
        name = w.name
    );
    let dispatched = registry.counter_value("optslice.spec.hook.load")
        + registry.counter_value("optslice.spec.hook.store")
        + registry.counter_value("optslice.spec.hook.compute")
        + registry.counter_value("optslice.spec.hook.call")
        + registry.counter_value("optslice.spec.hook.return")
        + registry.counter_value("optslice.spec.hook.output");
    assert!(
        traced <= dispatched,
        "{}: traced ({traced}) exceeds dispatched hooks ({dispatched})",
        w.name
    );

    for path in [
        "optslice",
        "optslice/static_sound/pointsto",
        "optslice/static_pred/pointsto",
        "optslice/static_pred/slice",
        "optslice/dynamic/optimistic",
    ] {
        assert!(registry.span_stat(path).is_some(), "missing span {path}");
    }

    assert_eq!(outcome.report.name, "optslice");
    assert!(outcome
        .report
        .counters
        .contains_key("optslice.giri.traced_events"));
    let back = RunReport::from_json_str(&outcome.report.to_json_string()).unwrap();
    assert_eq!(back, outcome.report);
}

#[test]
fn unobserved_machine_matches_metered_machine() {
    let w = java_suite::lusearch(&WorkloadParams::small());
    let input = &w.testing_inputs[0];

    let plain = Machine::new(&w.program, MachineConfig::default());
    let plain_result = plain.run(input, &mut NoopTracer);
    // A machine without a registry keeps detached (always-zero) counters.
    assert_eq!(plain.metrics().load.get(), 0);
    assert_eq!(plain.metrics().store.get(), 0);

    let registry = MetricsRegistry::new();
    let metered = Machine::new(&w.program, MachineConfig::default()).with_metrics(&registry, "m");
    let metered_result = metered.run(input, &mut NoopTracer);

    // Instrumentation must not perturb execution.
    assert_eq!(plain_result.status, metered_result.status);
    assert_eq!(plain_result.steps, metered_result.steps);
    assert_eq!(plain_result.outputs, metered_result.outputs);
    assert_eq!(plain_result.num_threads, metered_result.num_threads);
    assert_eq!(plain_result.num_objects, metered_result.num_objects);

    // ...while the registry observes the dispatches.
    assert!(registry.counter_value("m.hook.load") > 0);
    assert!(registry.counter_value("m.hook.store") > 0);
}
