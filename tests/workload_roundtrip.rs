//! The textual IR format round-trips every benchmark program, and the
//! reparsed programs behave identically under the interpreter.

use oha::interp::{Machine, MachineConfig, NoopTracer};
use oha::ir::{parse_program, print_program};
use oha::workloads::{c_suite, java_suite, WorkloadParams};

#[test]
fn every_workload_round_trips_through_text() {
    let params = WorkloadParams::small();
    let all = java_suite::all(&params)
        .into_iter()
        .chain(c_suite::all(&params));
    for w in all {
        let text = print_program(&w.program);
        let reparsed = parse_program(&text)
            .unwrap_or_else(|e| panic!("{}: printed program fails to parse: {e}", w.name));
        assert_eq!(
            print_program(&reparsed),
            text,
            "{}: reprint differs",
            w.name
        );
        assert_eq!(reparsed.num_insts(), w.program.num_insts(), "{}", w.name);

        // The reparsed program runs identically.
        let cfg = MachineConfig::default();
        let input = &w.testing_inputs[0];
        let a = Machine::new(&w.program, cfg).run(input, &mut NoopTracer);
        let b = Machine::new(&reparsed, cfg).run(input, &mut NoopTracer);
        assert_eq!(a.outputs, b.outputs, "{}: behaviour differs", w.name);
        assert_eq!(a.steps, b.steps, "{}", w.name);
    }
}
