//! The solver's work counters must survive all the way into the
//! machine-readable [`RunReport`]: `solver_iterations` and
//! `cycle_collapses` as counters, and the new word-parallel gauges
//! (`scc_collapses`, `words_unioned`, `worklist_pops`) as gauges, under
//! both the sound and the predicated static-analysis prefixes.

use oha::ir::{Operand, ProgramBuilder};
use oha::workloads::{c_suite, WorkloadParams};

/// A program whose pointer copies form a two-node cycle (`r1 ⇄ r2`), so
/// the solver's on-the-fly cycle collapse provably fires. `padding`
/// pointer-free instructions are appended: zero keeps the program under
/// the dense-engine cutoff (the micro path), while a padding above
/// [`oha::pointsto::DENSE_CUTOFF_DEFAULT`] forces the worklist engine,
/// whose cycle-collapse counters this file asserts on.
fn cyclic_program(padding: usize) -> oha::ir::Program {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main", 0);
    let r1 = f.alloc(1);
    let r2 = f.copy(Operand::Reg(r1));
    f.copy_to(r1, Operand::Reg(r2));
    f.store(Operand::Reg(r1), 0, Operand::Const(7));
    let v = f.load(Operand::Reg(r2), 0);
    f.output(Operand::Reg(v));
    for _ in 0..padding {
        f.copy(Operand::Const(0));
    }
    f.ret(None);
    let main = pb.finish_function(f);
    pb.finish(main).unwrap()
}

#[test]
fn optft_report_carries_solver_counters_and_gauges() {
    // Padded above the dense-engine cutoff: cycle collapse is a worklist-
    // engine feature, so the program must route there to exercise it.
    let program = cyclic_program(oha::pointsto::DENSE_CUTOFF_DEFAULT);
    let outcome = oha::core::Pipeline::new(program).run_optft(&[vec![]], &[vec![]]);
    let report = &outcome.report;

    for prefix in ["optft.pointsto.sound", "optft.pointsto.pred"] {
        assert!(
            report.counter(&format!("{prefix}.solver_iterations")) > 0,
            "{prefix}.solver_iterations missing or zero"
        );
        assert!(
            report
                .counters
                .contains_key(&format!("{prefix}.cycle_collapses")),
            "{prefix}.cycle_collapses missing from report"
        );
        for gauge in ["scc_collapses", "words_unioned", "worklist_pops"] {
            assert!(
                report.gauges.contains_key(&format!("{prefix}.{gauge}")),
                "{prefix}.{gauge} gauge missing from report"
            );
        }
        assert!(
            report.gauges[&format!("{prefix}.worklist_pops")] > 0.0,
            "{prefix}.worklist_pops should count real work"
        );
    }
    // The crafted r1 ⇄ r2 copy cycle must be collapsed by the sound pass.
    assert!(
        report.counter("optft.pointsto.sound.cycle_collapses") >= 1,
        "two-node copy cycle was not collapsed"
    );
}

#[test]
fn workload_reports_show_solver_progress() {
    // A real workload, end to end: iteration and pop counters stay
    // populated (nonzero) after the report round-trips through JSON.
    let params = WorkloadParams::small();
    let w = c_suite::all(&params).swap_remove(0);
    let outcome = oha::core::Pipeline::new(w.program.clone())
        .run_optft(&w.profiling_inputs, &w.testing_inputs);
    let json = outcome.report.to_json();
    let report = oha::obs::RunReport::from_json(&json).expect("report survives JSON round-trip");
    assert!(report.counter("optft.pointsto.sound.solver_iterations") > 0);
    assert!(report.counter("optft.pointsto.pred.solver_iterations") > 0);
    assert!(report.gauges["optft.pointsto.sound.words_unioned"] > 0.0);
}

#[test]
fn micro_runs_take_the_serial_solver_path() {
    // The cyclic program is far below the adaptive cutoff, so every solve
    // must route through the serial path — and the report must say so.
    let outcome = oha::core::Pipeline::new(cyclic_program(0)).run_optft(&[vec![]], &[vec![]]);
    let report = &outcome.report;
    assert!(
        report.counter("pt.solver.path.serial") > 0,
        "micro workload should register serial solves"
    );
    assert_eq!(
        report.counter("pt.solver.path.sharded"),
        0,
        "micro workload must not pay the sharded machinery"
    );
    assert_eq!(
        report.counter("pt.shard.rounds"),
        0,
        "serial solves run no bulk-synchronous rounds"
    );
    // Merge time is wall clock: it must never surface as a counter, or the
    // determinism contract (bit-identical counters across `OHA_THREADS`)
    // would break. It rides a histogram instead.
    assert!(
        !report.counters.contains_key("pt.shard.merge_ns"),
        "pt.shard.merge_ns must not be a counter"
    );
}

#[test]
fn forced_sharded_solves_report_rounds() {
    // Zeroing the cutoff forces the bulk-synchronous sharded loop even on a
    // small program; its round counter must land in `PtStats`.
    let params = WorkloadParams::small();
    let w = c_suite::all(&params).swap_remove(0);
    let config = oha::pointsto::PointsToConfig {
        pool: oha::par::Pool::new(2),
        serial_cutoff: 0,
        ..Default::default()
    };
    let pt = oha::pointsto::analyze(&w.program, &config).expect("CI analysis always completes");
    let stats = pt.stats();
    assert!(stats.sharded_solves >= 1, "cutoff 0 must route sharded");
    assert_eq!(stats.serial_solves, 0, "cutoff 0 must never route serial");
    assert!(stats.shard_rounds >= 1, "sharded solve runs >= 1 round");

    // Same program through the serial path: identical points-to relation.
    let serial_cfg = oha::pointsto::PointsToConfig {
        pool: oha::par::Pool::new(1),
        serial_cutoff: usize::MAX,
        ..Default::default()
    };
    let serial =
        oha::pointsto::analyze(&w.program, &serial_cfg).expect("CI analysis always completes");
    assert!(serial.stats().serial_solves >= 1);
    for (inst, cells) in pt.load_entries() {
        assert_eq!(
            cells,
            serial.load_cells(inst),
            "load pts diverge at {inst:?}"
        );
    }
    for (inst, cells) in pt.store_entries() {
        assert_eq!(
            cells,
            serial.store_cells(inst),
            "store pts diverge at {inst:?}"
        );
    }
}
