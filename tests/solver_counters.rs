//! The solver's work counters must survive all the way into the
//! machine-readable [`RunReport`]: `solver_iterations` and
//! `cycle_collapses` as counters, and the new word-parallel gauges
//! (`scc_collapses`, `words_unioned`, `worklist_pops`) as gauges, under
//! both the sound and the predicated static-analysis prefixes.

use oha::ir::{Operand, ProgramBuilder};
use oha::workloads::{c_suite, WorkloadParams};

/// A program whose pointer copies form a two-node cycle (`r1 ⇄ r2`), so
/// the solver's on-the-fly cycle collapse provably fires.
fn cyclic_program() -> oha::ir::Program {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main", 0);
    let r1 = f.alloc(1);
    let r2 = f.copy(Operand::Reg(r1));
    f.copy_to(r1, Operand::Reg(r2));
    f.store(Operand::Reg(r1), 0, Operand::Const(7));
    let v = f.load(Operand::Reg(r2), 0);
    f.output(Operand::Reg(v));
    f.ret(None);
    let main = pb.finish_function(f);
    pb.finish(main).unwrap()
}

#[test]
fn optft_report_carries_solver_counters_and_gauges() {
    let outcome = oha::core::Pipeline::new(cyclic_program()).run_optft(&[vec![]], &[vec![]]);
    let report = &outcome.report;

    for prefix in ["optft.pointsto.sound", "optft.pointsto.pred"] {
        assert!(
            report.counter(&format!("{prefix}.solver_iterations")) > 0,
            "{prefix}.solver_iterations missing or zero"
        );
        assert!(
            report
                .counters
                .contains_key(&format!("{prefix}.cycle_collapses")),
            "{prefix}.cycle_collapses missing from report"
        );
        for gauge in ["scc_collapses", "words_unioned", "worklist_pops"] {
            assert!(
                report.gauges.contains_key(&format!("{prefix}.{gauge}")),
                "{prefix}.{gauge} gauge missing from report"
            );
        }
        assert!(
            report.gauges[&format!("{prefix}.worklist_pops")] > 0.0,
            "{prefix}.worklist_pops should count real work"
        );
    }
    // The crafted r1 ⇄ r2 copy cycle must be collapsed by the sound pass.
    assert!(
        report.counter("optft.pointsto.sound.cycle_collapses") >= 1,
        "two-node copy cycle was not collapsed"
    );
}

#[test]
fn workload_reports_show_solver_progress() {
    // A real workload, end to end: iteration and pop counters stay
    // populated (nonzero) after the report round-trips through JSON.
    let params = WorkloadParams::small();
    let w = c_suite::all(&params).swap_remove(0);
    let outcome = oha::core::Pipeline::new(w.program.clone())
        .run_optft(&w.profiling_inputs, &w.testing_inputs);
    let json = outcome.report.to_json();
    let report = oha::obs::RunReport::from_json(&json).expect("report survives JSON round-trip");
    assert!(report.counter("optft.pointsto.sound.solver_iterations") > 0);
    assert!(report.counter("optft.pointsto.pred.solver_iterations") > 0);
    assert!(report.gauges["optft.pointsto.sound.words_unioned"] > 0.0);
}
