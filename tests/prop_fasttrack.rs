//! Differential property tests for the race detector: FastTrack versus a
//! naive full-vector-clock reference detector, and the hybrid-elision
//! equivalence.

mod common;

use std::collections::{BTreeSet, HashMap};

use common::{build_program, inputs, prog_spec};
use oha::fasttrack::{FastTrackTool, VectorClock};
use oha::interp::{Addr, EventCtx, Machine, MachineConfig, ThreadId, Tracer};
use oha::ir::InstId;
use oha::pointsto::{analyze, PointsToConfig};
use oha::races::detect;
use proptest::prelude::*;

/// The textbook happens-before detector: full vector clocks per variable,
/// no epoch optimization. Reports every unordered conflicting pair it sees.
#[derive(Default)]
struct NaiveDetector {
    threads: HashMap<ThreadId, VectorClock>,
    locks: HashMap<Addr, VectorClock>,
    writes: HashMap<Addr, HashMap<ThreadId, (u32, InstId)>>,
    reads: HashMap<Addr, HashMap<ThreadId, (u32, InstId)>>,
    races: BTreeSet<(InstId, InstId)>,
}

impl NaiveDetector {
    fn new() -> Self {
        let mut d = Self::default();
        d.clock(ThreadId::MAIN).tick(ThreadId::MAIN);
        d
    }

    fn clock(&mut self, t: ThreadId) -> &mut VectorClock {
        self.threads.entry(t).or_default()
    }

    fn report(&mut self, a: InstId, b: InstId) {
        self.races.insert((a.min(b), a.max(b)));
    }

    fn access(&mut self, t: ThreadId, x: Addr, site: InstId, is_write: bool) {
        let ct = self.clock(t).clone();
        // A write conflicts with unordered reads and writes; a read only
        // with unordered writes.
        let writes = self.writes.entry(x).or_default().clone();
        for (&u, &(c, s)) in &writes {
            if u != t && c > ct.get(u) {
                self.report(s, site);
            }
        }
        if is_write {
            let reads = self.reads.entry(x).or_default().clone();
            for (&u, &(c, s)) in &reads {
                if u != t && c > ct.get(u) {
                    self.report(s, site);
                }
            }
            self.writes
                .entry(x)
                .or_default()
                .insert(t, (ct.get(t), site));
        } else {
            self.reads
                .entry(x)
                .or_default()
                .insert(t, (ct.get(t), site));
        }
    }
}

impl Tracer for NaiveDetector {
    fn on_load(&mut self, ctx: EventCtx, addr: Addr, _v: oha::interp::Value) {
        self.access(ctx.thread, addr, ctx.inst, false);
    }
    fn on_store(&mut self, ctx: EventCtx, addr: Addr, _v: oha::interp::Value) {
        self.access(ctx.thread, addr, ctx.inst, true);
    }
    fn on_lock(&mut self, ctx: EventCtx, addr: Addr) {
        if let Some(l) = self.locks.get(&addr).cloned() {
            self.clock(ctx.thread).join(&l);
        }
    }
    fn on_unlock(&mut self, ctx: EventCtx, addr: Addr) {
        let c = self.clock(ctx.thread).clone();
        self.locks.insert(addr, c);
        let t = ctx.thread;
        self.clock(t).tick(t);
    }
    fn on_spawn(&mut self, ctx: EventCtx, child: ThreadId, _e: oha::ir::FuncId) {
        let parent = self.clock(ctx.thread).clone();
        let cc = self.clock(child);
        cc.join(&parent);
        cc.tick(child);
        let t = ctx.thread;
        self.clock(t).tick(t);
    }
    fn on_join(&mut self, ctx: EventCtx, child: ThreadId) {
        let cc = self.clock(child).clone();
        self.clock(ctx.thread).join(&cc);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// FastTrack never reports a race the naive detector does not (no
    /// false positives), and sees a race whenever one exists (first-race
    /// equivalence, the FastTrack paper's guarantee).
    #[test]
    fn fasttrack_agrees_with_naive_vector_clocks(
        spec in prog_spec(),
        input in inputs(),
        seed in 0u64..500,
    ) {
        let p = build_program(&spec);
        let cfg = MachineConfig { seed, quantum: 2, max_steps: 2_000_000 };
        let machine = Machine::new(&p, cfg);

        let mut ft = FastTrackTool::full();
        machine.run(&input, &mut ft);
        let mut naive = NaiveDetector::new();
        machine.run(&input, &mut naive);

        let ft_races = ft.race_pairs();
        prop_assert!(
            ft_races.is_subset(&naive.races),
            "FastTrack false positives: {:?} not in {:?}",
            ft_races.difference(&naive.races).collect::<Vec<_>>(),
            naive.races
        );
        prop_assert_eq!(
            ft_races.is_empty(),
            naive.races.is_empty(),
            "FastTrack missed every race the reference saw: {:?}",
            &naive.races
        );
    }

    /// Eliding statically race-free sites never changes the verdict: the
    /// hybrid detector reports exactly full FastTrack's races.
    #[test]
    fn hybrid_elision_is_race_equivalent(
        spec in prog_spec(),
        input in inputs(),
        seed in 0u64..500,
    ) {
        let p = build_program(&spec);
        let pt = analyze(&p, &PointsToConfig::default()).expect("CI completes");
        let races = detect(&p, &pt, None);
        let cfg = MachineConfig { seed, quantum: 2, max_steps: 2_000_000 };
        let machine = Machine::new(&p, cfg);

        let mut full = FastTrackTool::full();
        machine.run(&input, &mut full);
        let mut hybrid = FastTrackTool::hybrid(races.racy_sites());
        machine.run(&input, &mut hybrid);
        prop_assert_eq!(full.race_pairs(), hybrid.race_pairs());
    }
}
