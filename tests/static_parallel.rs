//! The parallel static phase must be unobservable in results: with the
//! sharded Andersen solver, the concurrent sound/pred analysis DAG, the
//! per-function constraint fan-out and the parallel reaching-defs all
//! active, the canonical OptFT and OptSlice JSON is *byte-identical*
//! whether the pipeline runs on 1, 2, 4 or 8 threads. A companion test
//! asserts the pool-sharing contract: one `oha_par::Pool` is built per
//! pipeline and every phase borrows that same pool.

use oha::core::{optft_canonical_json, optslice_canonical_json, Pipeline, PipelineConfig};
use oha::workloads::{c_suite, java_suite, Workload, WorkloadParams};

fn with_threads(threads: usize) -> PipelineConfig {
    PipelineConfig {
        threads,
        ..PipelineConfig::default()
    }
}

/// One Java and one C workload at unit-test scale — enough to cover both
/// front ends without turning the width sweep into a benchmark.
fn picks() -> Vec<Workload> {
    let params = WorkloadParams::small();
    vec![
        java_suite::all(&params).swap_remove(0),
        c_suite::all(&params).swap_remove(0),
    ]
}

#[test]
fn optft_canonical_json_is_byte_identical_across_thread_widths() {
    for w in picks() {
        let base = optft_canonical_json(
            &Pipeline::new(w.program.clone())
                .with_config(with_threads(1))
                .run_optft(&w.profiling_inputs, &w.testing_inputs),
        );
        for threads in [2, 4, 8] {
            let json = optft_canonical_json(
                &Pipeline::new(w.program.clone())
                    .with_config(with_threads(threads))
                    .run_optft(&w.profiling_inputs, &w.testing_inputs),
            );
            assert_eq!(
                json, base,
                "{}: {threads} threads changed the OptFT canonical output",
                w.name
            );
        }
    }
}

#[test]
fn optslice_canonical_json_is_byte_identical_across_thread_widths() {
    for w in picks() {
        let base = optslice_canonical_json(
            &Pipeline::new(w.program.clone())
                .with_config(with_threads(1))
                .run_optslice(&w.profiling_inputs, &w.testing_inputs, &w.endpoints),
        );
        for threads in [2, 4, 8] {
            let json = optslice_canonical_json(
                &Pipeline::new(w.program.clone())
                    .with_config(with_threads(threads))
                    .run_optslice(&w.profiling_inputs, &w.testing_inputs, &w.endpoints),
            );
            assert_eq!(
                json, base,
                "{}: {threads} threads changed the OptSlice canonical output",
                w.name
            );
        }
    }
}

/// The profiling phase and both static phases must share the pipeline's
/// one pool: `pipeline.pool.built` never moves after construction, while
/// `pipeline.pool.reuse` counts every phase that borrowed it.
#[test]
fn profiling_and_static_phases_share_one_pool() {
    let params = WorkloadParams::small();
    let w = c_suite::all(&params).swap_remove(0);

    let pipeline = Pipeline::new(w.program.clone());
    let built_before = pipeline.metrics().counter_value("pipeline.pool.built");
    assert_eq!(built_before, 1, "construction builds exactly one pool");

    pipeline.run_optft(&w.profiling_inputs, &w.testing_inputs);

    assert_eq!(
        pipeline.metrics().counter_value("pipeline.pool.built"),
        built_before,
        "a phase constructed its own pool instead of borrowing the pipeline's"
    );
    assert!(
        pipeline.metrics().counter_value("pipeline.pool.reuse") >= 2,
        "profiling and the static phase should each borrow the shared pool"
    );

    // Re-sizing via `with_config` is the only other legal construction
    // site; it replaces the pool exactly once.
    let resized = Pipeline::new(w.program).with_config(with_threads(2));
    assert_eq!(
        resized.metrics().counter_value("pipeline.pool.built"),
        2,
        "with_config re-sizes the shared pool exactly once"
    );
}
