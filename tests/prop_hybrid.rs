//! Metamorphic properties of the hybrid/optimistic machinery over random
//! programs: predicated static results shrink sound ones, dynamic-slice
//! elision is exact, invariant merging is monotone, and the end-to-end
//! pipelines keep their soundness contracts.

mod common;

use common::{build_program, inputs, prog_spec};
use oha::core::Pipeline;
use oha::giri::GiriTool;
use oha::interp::{Machine, MachineConfig};
use oha::invariants::{InvariantSet, ProfileTracer};
use oha::ir::InstKind;
use oha::pointsto::{analyze, PointsToConfig};
use oha::races::detect;
use oha::slicing::{slice, SliceConfig};
use proptest::prelude::*;

fn profile(p: &oha::ir::Program, corpora: &[Vec<i64>]) -> InvariantSet {
    let profiles: Vec<_> = corpora
        .iter()
        .map(|input| {
            let mut t = ProfileTracer::new(p);
            Machine::new(p, MachineConfig::default()).run(input, &mut t);
            t.into_profile()
        })
        .collect();
    InvariantSet::from_profiles(&profiles)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Predication only removes: the predicated racy-site set and static
    /// slice are subsets of their sound counterparts.
    #[test]
    fn predicated_results_shrink_sound_ones(
        spec in prog_spec(),
        input in inputs(),
    ) {
        let p = build_program(&spec);
        let inv = profile(&p, &[input]);

        let pt_sound = analyze(&p, &PointsToConfig::default()).expect("CI completes");
        let pt_pred = analyze(&p, &PointsToConfig {
            invariants: Some(&inv),
            ..PointsToConfig::default()
        }).expect("CI completes");

        let races_sound = detect(&p, &pt_sound, None);
        let races_pred = detect(&p, &pt_pred, Some(&inv));
        prop_assert!(
            races_pred.racy_sites().is_subset(races_sound.racy_sites()),
            "predicated racy sites must shrink"
        );

        let endpoints: Vec<_> = p
            .inst_ids()
            .filter(|&i| matches!(p.inst(i).kind, InstKind::Output { .. }))
            .collect();
        let sound = slice(&p, &pt_sound, &endpoints, &SliceConfig::default()).expect("CI slice");
        let pred = slice(&p, &pt_pred, &endpoints, &SliceConfig {
            invariants: Some(&inv),
            ..SliceConfig::default()
        }).expect("CI slice");
        prop_assert!(
            pred.sites().is_subset(sound.sites()),
            "predicated slice must shrink: pred {:?} sound {:?}",
            pred.sites(),
            sound.sites()
        );
    }

    /// Tracing only the sound static slice produces exactly the
    /// full-trace dynamic slice.
    #[test]
    fn giri_hybrid_equals_full(spec in prog_spec(), input in inputs(), seed in 0u64..200) {
        let p = build_program(&spec);
        let endpoints: Vec<_> = p
            .inst_ids()
            .filter(|&i| matches!(p.inst(i).kind, InstKind::Output { .. }))
            .collect();
        let pt = analyze(&p, &PointsToConfig::default()).expect("CI completes");
        let static_slice = slice(&p, &pt, &endpoints, &SliceConfig::default()).expect("CI slice");

        let cfg = MachineConfig { seed, quantum: 3, max_steps: 2_000_000 };
        let machine = Machine::new(&p, cfg);
        let mut full = GiriTool::full(&p);
        machine.run(&input, &mut full);
        let mut hybrid = GiriTool::hybrid(&p, static_slice.sites());
        machine.run(&input, &mut hybrid);
        for &e in &endpoints {
            prop_assert_eq!(full.slice_of(e), hybrid.slice_of(e), "endpoint {}", e);
        }
    }

    /// Merging more profiles only grows the assumed-reachable sets (so
    /// mis-speculation can only become rarer).
    #[test]
    fn invariant_merge_is_monotone(
        spec in prog_spec(),
        a in inputs(),
        b in inputs(),
    ) {
        let p = build_program(&spec);
        let small = profile(&p, std::slice::from_ref(&a));
        let big = profile(&p, &[a, b]);
        prop_assert!(small.visited_blocks.is_subset(&big.visited_blocks));
        prop_assert!(small.contexts.is_subset(&big.contexts));
        for (site, callees) in &small.callee_sets {
            prop_assert!(callees.is_subset(&big.callee_sets[site]));
        }
        // Complement view: assumed-unreachable only shrinks.
        prop_assert!(big.assumed_unreachable(&p).len() <= small.assumed_unreachable(&p).len());
    }

    /// The full OptFT pipeline is race-equivalent to FastTrack on random
    /// multithreaded programs — even when testing inputs exercise paths
    /// profiling never saw (the rollback keeps it sound).
    #[test]
    fn optft_pipeline_race_equivalence(
        spec in prog_spec(),
        prof_input in inputs(),
        test_a in inputs(),
        test_b in inputs(),
    ) {
        let p = build_program(&spec);
        let pipeline = Pipeline::new(p);
        let outcome = pipeline.run_optft(&[prof_input], &[test_a, test_b]);
        prop_assert_eq!(&outcome.optimistic_races, &outcome.baseline_races);
        for run in &outcome.runs {
            prop_assert_eq!(&run.races_hybrid, &run.races_full, "hybrid equals full");
        }
    }

    /// The full OptSlice pipeline agrees with the hybrid slicer under the
    /// same conditions.
    #[test]
    fn optslice_pipeline_slice_equivalence(
        spec in prog_spec(),
        prof_input in inputs(),
        test_input in inputs(),
    ) {
        let p = build_program(&spec);
        let endpoints: Vec<_> = p
            .inst_ids()
            .filter(|&i| matches!(p.inst(i).kind, InstKind::Output { .. }))
            .collect();
        let pipeline = Pipeline::new(p);
        let outcome = pipeline.run_optslice(&[prof_input], &[test_input], &endpoints);
        prop_assert!(outcome.all_slices_equal());
    }
}
