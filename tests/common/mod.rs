//! Shared test support: a proptest generator for random, runtime-valid IR
//! programs (optionally multithreaded), used by the differential and
//! metamorphic property tests.

use oha::ir::Operand::{Const, Reg as R};
use oha::ir::{BinOp, FuncId, FunctionBuilder, Program, ProgramBuilder, Reg};
use proptest::prelude::*;

/// Arithmetic selector (kept small so shrinking stays readable).
#[derive(Clone, Copy, Debug)]
pub enum Arith {
    Add,
    Mul,
    Xor,
    Sub,
}

impl Arith {
    fn op(self) -> BinOp {
        match self {
            Arith::Add => BinOp::Add,
            Arith::Mul => BinOp::Mul,
            Arith::Xor => BinOp::Xor,
            Arith::Sub => BinOp::Sub,
        }
    }
}

/// A leaf action, valid in any function body.
#[derive(Clone, Debug)]
pub enum Leaf {
    /// `acc = acc <op> k`.
    Compute(Arith, i64),
    /// `acc = acc <op> input()`.
    Input(Arith),
    /// `output acc`.
    Output,
    /// Allocate a local object, store the accumulator into it, read it
    /// back.
    LocalMem {
        /// object size 1..=4
        fields: u8,
        /// field written then read (mod fields)
        field: u8,
    },
    /// Access a shared global: `g` selects the global, optionally under the
    /// global lock, optionally writing the accumulator.
    Global {
        /// which global (mod NUM_GLOBALS)
        g: u8,
        /// which field (mod 2)
        field: u8,
        /// write the accumulator (otherwise read into it)
        write: bool,
        /// wrap in lock/unlock of the dedicated lock global
        locked: bool,
    },
}

/// A segment of a function body.
#[derive(Clone, Debug)]
pub enum Seg {
    /// A leaf action.
    Leaf(Leaf),
    /// `if (input != 0) { then } else { els }` over leaf actions.
    Branch {
        /// Taken when the next input value is nonzero.
        then: Vec<Leaf>,
        /// Taken otherwise.
        els: Vec<Leaf>,
    },
    /// Call a helper function, folding its result into the accumulator.
    CallHelper(u8),
    /// Spawn a worker with the accumulator as argument; `join` joins it
    /// immediately (otherwise the handle is dropped and the thread runs
    /// free).
    Spawn {
        /// worker index (mod number of workers)
        worker: u8,
        /// join right away
        join: bool,
    },
}

/// A whole random program: main segments plus worker/helper bodies.
#[derive(Clone, Debug)]
pub struct ProgSpec {
    /// Segments of `main`.
    pub main: Vec<Seg>,
    /// Worker thread bodies (leaf-only).
    pub workers: Vec<Vec<Leaf>>,
    /// Helper function bodies (leaf-only).
    pub helpers: Vec<Vec<Leaf>>,
}

pub const NUM_GLOBALS: u8 = 3;

fn leaf_strategy() -> impl Strategy<Value = Leaf> {
    let arith = prop_oneof![
        Just(Arith::Add),
        Just(Arith::Mul),
        Just(Arith::Xor),
        Just(Arith::Sub)
    ];
    prop_oneof![
        (arith.clone(), -20i64..20).prop_map(|(a, k)| Leaf::Compute(a, k)),
        arith.prop_map(Leaf::Input),
        Just(Leaf::Output),
        (1u8..4, 0u8..4).prop_map(|(fields, field)| Leaf::LocalMem { fields, field }),
        (0u8..NUM_GLOBALS, 0u8..2, any::<bool>(), any::<bool>()).prop_map(
            |(g, field, write, locked)| Leaf::Global {
                g,
                field,
                write,
                locked
            }
        ),
    ]
}

fn seg_strategy() -> impl Strategy<Value = Seg> {
    prop_oneof![
        4 => leaf_strategy().prop_map(Seg::Leaf),
        1 => (
            prop::collection::vec(leaf_strategy(), 0..4),
            prop::collection::vec(leaf_strategy(), 0..4)
        )
            .prop_map(|(then, els)| Seg::Branch { then, els }),
        1 => (0u8..4).prop_map(Seg::CallHelper),
        1 => (0u8..4, any::<bool>()).prop_map(|(worker, join)| Seg::Spawn { worker, join }),
    ]
}

/// Strategy over whole program specs.
pub fn prog_spec() -> impl Strategy<Value = ProgSpec> {
    (
        prop::collection::vec(seg_strategy(), 1..12),
        prop::collection::vec(prop::collection::vec(leaf_strategy(), 1..6), 1..3),
        prop::collection::vec(prop::collection::vec(leaf_strategy(), 1..5), 1..3),
    )
        .prop_map(|(main, workers, helpers)| ProgSpec {
            main,
            workers,
            helpers,
        })
}

/// Strategy over input vectors for the generated programs.
pub fn inputs() -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(-5i64..30, 0..16)
}

fn emit_leaf(
    f: &mut FunctionBuilder,
    acc: Reg,
    globals: &[(oha::ir::GlobalId, oha::ir::GlobalId)],
    leaf: &Leaf,
) {
    match leaf {
        Leaf::Compute(a, k) => {
            f.bin_to(acc, a.op(), R(acc), Const(*k));
        }
        Leaf::Input(a) => {
            let v = f.input();
            f.bin_to(acc, a.op(), R(acc), R(v));
        }
        Leaf::Output => f.output(R(acc)),
        Leaf::LocalMem { fields, field } => {
            let fields = (*fields).clamp(1, 4) as u32;
            let fld = u32::from(*field) % fields;
            let o = f.alloc(fields);
            f.store(R(o), fld, R(acc));
            let v = f.load(R(o), fld);
            f.bin_to(acc, BinOp::Add, R(acc), R(v));
        }
        Leaf::Global {
            g,
            field,
            write,
            locked,
        } => {
            let (data, lock) = globals[usize::from(*g) % globals.len()];
            let ga = f.addr_global(data);
            let la = f.addr_global(lock);
            if *locked {
                f.lock(R(la));
            }
            if *write {
                f.store(R(ga), u32::from(*field % 2), R(acc));
            } else {
                let v = f.load(R(ga), u32::from(*field % 2));
                f.bin_to(acc, BinOp::Xor, R(acc), R(v));
            }
            if *locked {
                f.unlock(R(la));
            }
        }
    }
}

/// Materializes a spec into a validated program.
pub fn build_program(spec: &ProgSpec) -> Program {
    let mut pb = ProgramBuilder::new();
    let globals: Vec<(oha::ir::GlobalId, oha::ir::GlobalId)> = (0..NUM_GLOBALS)
        .map(|i| {
            (
                pb.global(&format!("g{i}"), 2),
                pb.global(&format!("lk{i}"), 1),
            )
        })
        .collect();
    let workers: Vec<FuncId> = (0..spec.workers.len())
        .map(|i| pb.declare(&format!("worker{i}"), 1))
        .collect();
    let helpers: Vec<FuncId> = (0..spec.helpers.len())
        .map(|i| pb.declare(&format!("helper{i}"), 1))
        .collect();

    let mut m = pb.function("main", 0);
    let acc = m.copy(Const(1));
    for seg in &spec.main {
        match seg {
            Seg::Leaf(leaf) => emit_leaf(&mut m, acc, &globals, leaf),
            Seg::Branch { then, els } => {
                let tb = m.block();
                let eb = m.block();
                let done = m.block();
                let c = m.input();
                m.branch(R(c), tb, eb);
                m.select(tb);
                for l in then {
                    emit_leaf(&mut m, acc, &globals, l);
                }
                m.jump(done);
                m.select(eb);
                for l in els {
                    emit_leaf(&mut m, acc, &globals, l);
                }
                m.jump(done);
                m.select(done);
            }
            Seg::CallHelper(h) => {
                let callee = helpers[usize::from(*h) % helpers.len()];
                let r = m.call(callee, vec![R(acc)]);
                m.bin_to(acc, BinOp::Add, R(acc), R(r));
            }
            Seg::Spawn { worker, join } => {
                let callee = workers[usize::from(*worker) % workers.len()];
                let t = m.spawn(callee, R(acc));
                if *join {
                    m.join(R(t));
                }
            }
        }
    }
    m.output(R(acc));
    m.ret(None);
    let main = pb.finish_function(m);

    for (i, body) in spec.workers.iter().enumerate() {
        let mut w = pb.function(&format!("worker{i}"), 1);
        let acc = w.copy(R(w.param(0)));
        for leaf in body {
            emit_leaf(&mut w, acc, &globals, leaf);
        }
        w.ret(None);
        pb.finish_function(w);
    }
    for (i, body) in spec.helpers.iter().enumerate() {
        let mut h = pb.function(&format!("helper{i}"), 1);
        let acc = h.copy(R(h.param(0)));
        for leaf in body {
            emit_leaf(&mut h, acc, &globals, leaf);
        }
        h.ret(Some(R(acc)));
        pb.finish_function(h);
    }
    pb.finish(main).expect("generated programs validate")
}
