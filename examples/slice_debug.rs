//! Slicing as a debugging tool (the paper's §1 motivation): compare the
//! dynamic backward slices of a passing and a "failing" execution of the
//! redis stand-in to localize which code could explain the difference —
//! with OptSlice doing far less tracing than the traditional hybrid slicer.
//!
//! Run with: `cargo run --release --example slice_debug`

use oha::core::Pipeline;
use oha::giri::GiriTool;
use oha::interp::{Machine, MachineConfig};
use oha::workloads::{c_suite, WorkloadParams};

fn main() {
    let params = WorkloadParams::small();
    let w = c_suite::redis(&params);

    // A "good" input (sets then gets) and a "bad" one (gets against keys
    // that were never set — the replies stay zero).
    let good: Vec<i64> = vec![4, /*set*/ 0, 7, /*get*/ 1, 7, 0, 12, 1, 12];
    let bad: Vec<i64> = vec![4, 1, 7, 1, 7, 1, 12, 1, 12];

    let pipeline = Pipeline::new(w.program.clone());
    let outcome = pipeline.run_optslice(
        &w.profiling_inputs,
        &[good.clone(), bad.clone()],
        &w.endpoints,
    );
    assert!(
        outcome.all_slices_equal(),
        "OptSlice must match the hybrid slicer"
    );

    println!(
        "static slices: sound {} insts → predicated {} insts",
        outcome.sound.slice_size, outcome.pred.slice_size
    );
    println!(
        "dynamic tracing: hybrid {:?} vs OptSlice {:?} per run (speedup {:.1}x)\n",
        outcome.runs[0].hybrid,
        outcome.runs[0].optimistic,
        outcome.speedup_vs_hybrid()
    );

    // Slice both executions with the optimistic slicer and diff them.
    let machine = Machine::new(&w.program, MachineConfig::default());
    let all_sites: oha::dataflow::BitSet = (0..w.program.num_insts()).collect();
    let slice_of = |input: &[i64]| {
        let mut tool = GiriTool::hybrid(&w.program, &all_sites);
        machine.run(input, &mut tool);
        tool.slice_of(w.endpoints[0])
    };
    let slice_good = slice_of(&good);
    let slice_bad = slice_of(&bad);

    println!("slice(good run): {} instructions", slice_good.len());
    println!("slice(bad run):  {} instructions", slice_bad.len());
    let only_good: Vec<String> = w
        .program
        .inst_ids()
        .filter(|&i| slice_good.contains(i) && !slice_bad.contains(i))
        .map(|i| {
            let f = w.program.function(w.program.func_of_inst(i));
            format!("{i} in @{}", f.name)
        })
        .collect();
    println!("\ninstructions only in the PASSING slice (the missing behaviour):");
    for line in &only_good {
        println!("  {line}");
    }
    assert!(
        only_good.iter().any(|l| l.contains("cmd_set")),
        "the diff should point at the SET path that never ran"
    );
    println!("\n→ the failing run never executed the cmd_set store path: the root cause.");
}
