//! Race hunting on the benchmark suite: run OptFT over every Java-suite
//! stand-in and report, per benchmark, what the static phases proved, how
//! much instrumentation was elided, and the dynamic race verdict.
//!
//! Run with: `cargo run --release --example race_hunt`

use oha::core::Pipeline;
use oha::workloads::{java_suite, WorkloadParams};

fn main() {
    let params = WorkloadParams::small();
    println!(
        "{:<12} {:>6} {:>10} {:>9} {:>7} {:>8}  verdict",
        "bench", "insts", "racy-sound", "racy-opt", "elided", "speedup"
    );
    for w in java_suite::all(&params) {
        let pipeline = Pipeline::new(w.program.clone());
        let outcome = pipeline.run_optft(&w.profiling_inputs, &w.testing_inputs);
        assert_eq!(
            outcome.baseline_races, outcome.optimistic_races,
            "{}: OptFT must agree with FastTrack",
            w.name
        );
        let verdict = if outcome.statically_race_free {
            "race-free (proven statically)".to_string()
        } else if outcome.baseline_races.is_empty() {
            "no races observed".to_string()
        } else {
            format!("{} racing site pairs", outcome.baseline_races.len())
        };
        println!(
            "{:<12} {:>6} {:>10} {:>9} {:>7} {:>7.1}x  {}",
            w.name,
            w.program.num_insts(),
            outcome.racy_sites_sound,
            outcome.racy_sites_pred,
            outcome.elidable_lock_sites,
            outcome.speedup_vs_hybrid(),
            verdict,
        );
    }
    println!("\nEvery OptFT verdict matched full FastTrack (soundness check passed).");
}
