//! Parallel profiling in three layers: the raw `oha-par` pool, the
//! pipeline's `threads` knob, and the `OHA_THREADS` environment override —
//! ending with the determinism check that makes the thread count safe to
//! crank: same seeds, same invariants, at any worker count.
//!
//! Run with:
//!
//! ```bash
//! cargo run --release --example parallel_profiling
//! OHA_THREADS=4 cargo run --release --example parallel_profiling
//! ```

use oha::core::{Pipeline, PipelineConfig};
use oha::par::{thread_count, Pool};
use oha::workloads::{java_suite, WorkloadParams};

fn main() {
    let params = WorkloadParams::small();
    let workload = java_suite::all(&params).swap_remove(0);
    println!(
        "workload: {} ({} profiling inputs)",
        workload.name,
        workload.profiling_inputs.len()
    );
    println!(
        "resolved worker threads: {} (OHA_THREADS overrides, default = available_parallelism)\n",
        thread_count()
    );

    // Layer 1: the pool itself. `par_map` preserves input order, so the
    // squares come back aligned with their inputs no matter how the
    // chunks were scheduled.
    let squares = Pool::from_env().par_map(&[1i64, 2, 3, 4, 5], |n| n * n);
    println!("pool.par_map squares: {squares:?}");

    // Layer 2: the pipeline. `threads: 0` resolves via OHA_THREADS, any
    // other value pins the pool width for this pipeline only.
    let auto = Pipeline::new(workload.program.clone());
    let (invariants, elapsed) = auto.profile(&workload.profiling_inputs);
    println!(
        "auto-threaded profile:   {} facts in {:.1}ms",
        invariants.fact_count(),
        elapsed.as_secs_f64() * 1e3
    );

    // Layer 3: the contract. A serial pipeline over the same seeds lands
    // on the byte-identical invariant set.
    let serial = Pipeline::new(workload.program.clone()).with_config(PipelineConfig {
        threads: 1,
        ..PipelineConfig::default()
    });
    let (serial_invariants, elapsed) = serial.profile(&workload.profiling_inputs);
    println!(
        "single-threaded profile: {} facts in {:.1}ms",
        serial_invariants.fact_count(),
        elapsed.as_secs_f64() * 1e3
    );
    assert_eq!(
        invariants, serial_invariants,
        "thread count must never change the profiled invariants"
    );
    println!("\ninvariant sets identical across thread counts ✓");
}
