//! Observability: drive the OptFT pipeline on one workload and inspect the
//! metrics it records — counters, gauges, series, spans — then render the
//! same data as a text report and as stable JSON.
//!
//! Run with: `cargo run --release --example observability`

use oha::core::Pipeline;
use oha::obs::RunReport;
use oha::workloads::{java_suite, WorkloadParams};

fn main() {
    let w = java_suite::lusearch(&WorkloadParams::small());
    let pipeline = Pipeline::new(w.program.clone());
    let outcome = pipeline.run_optft(&w.profiling_inputs, &w.testing_inputs);
    let registry = pipeline.metrics();

    // Counters: how much work the speculative runs dispatched vs. elided.
    let loads = registry.counter_value("optft.spec.hook.load");
    let stores = registry.counter_value("optft.spec.hook.store");
    let elided = registry.counter_value("optft.ft.elided.accesses");
    println!("speculative accesses dispatched: {}", loads + stores);
    println!(
        "  elided by the predicated static race set: {} ({:.1}%)",
        elided,
        100.0 * elided as f64 / (loads + stores).max(1) as f64
    );
    println!(
        "  handed to FastTrack: {} reads + {} writes",
        registry.counter_value("optft.ft.executed.reads"),
        registry.counter_value("optft.ft.executed.writes")
    );

    // Series: the profiling convergence curve (Figure 8's x-axis).
    let curve = registry.series_values("profile.fact_count");
    println!("\ninvariant facts per profiling run: {curve:?}");

    // Spans: wall time per pipeline phase, hierarchical.
    println!("\nphase timings:");
    for path in [
        "optft/profile",
        "optft/static_sound",
        "optft/static_pred",
        "optft/elide",
        "optft/dynamic",
    ] {
        if let Some(stat) = registry.span_stat(path) {
            println!("  {path:<20} {:>12?}  (x{})", stat.total, stat.count);
        }
    }

    // The outcome carries all of the above as a report; it round-trips
    // through the same JSON the bench binaries write with `--json`.
    let json = outcome.report.to_json_string();
    let back = RunReport::from_json_str(&json).expect("stable JSON");
    assert_eq!(back, outcome.report);
    println!(
        "\nreport: {} counters, {} gauges, {} spans, {} bytes of JSON",
        outcome.report.counters.len(),
        outcome.report.gauges.len(),
        outcome.report.spans.len(),
        json.len()
    );
}
