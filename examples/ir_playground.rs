//! The textual IR end to end: parse a program from text, run it, race-check
//! it, slice it — the workflow a downstream user gets without touching the
//! builder API.
//!
//! Run with: `cargo run --release --example ir_playground`

use oha::fasttrack::FastTrackTool;
use oha::interp::{Machine, MachineConfig, NoopTracer};
use oha::ir::{parse_program, print_program, InstKind};
use oha::pointsto::{analyze, PointsToConfig};
use oha::slicing::{slice, SliceConfig};

/// A producer/consumer pair with a lock-guarded mailbox, written directly
/// in the textual IR format.
const SOURCE: &str = r#"
entry @main
global @mailbox fields=2   ; field 0: value, field 1: ready flag
global @mutex fields=1

func @main(0) regs=8 {
b0:
  r0 = input
  r1 = spawn @producer(r0)
  join r1
  r2 = addrg @mailbox
  r3 = addrg @mutex
  lock r3
  r4 = load r2 + 0
  r5 = load r2 + 1
  unlock r3
  r6 = mul r4, r5
  output r6
  ret
}

func @producer(1) regs=6 {
b0:
  r1 = addrg @mailbox
  r2 = addrg @mutex
  r3 = mul r0, 3
  lock r2
  store r1 + 0, r3
  store r1 + 1, 1
  unlock r2
  ret
}
"#;

fn main() {
    let program = parse_program(SOURCE).expect("the source parses");
    println!(
        "parsed: {} functions, {} blocks, {} instructions",
        program.num_functions(),
        program.num_blocks(),
        program.num_insts()
    );

    // The format round-trips exactly.
    let reparsed = parse_program(&print_program(&program)).expect("round trip");
    assert_eq!(print_program(&reparsed), print_program(&program));

    // Run it.
    let machine = Machine::new(&program, MachineConfig::default());
    let result = machine.run(&[14], &mut NoopTracer);
    println!(
        "run: status {:?}, output {:?}",
        result.status,
        result.output_values()
    );
    assert_eq!(result.output_values(), vec![42]);

    // Race-check it dynamically across schedules.
    let mut races = std::collections::BTreeSet::new();
    for seed in 0..12 {
        let cfg = MachineConfig {
            seed,
            quantum: 2,
            ..MachineConfig::default()
        };
        let mut ft = FastTrackTool::full();
        Machine::new(&program, cfg).run(&[14], &mut ft);
        races.extend(ft.race_pairs());
    }
    println!("dynamic races across 12 schedules: {races:?}");
    assert!(races.is_empty(), "the mailbox is consistently locked");

    // Statically slice the output.
    let pt = analyze(&program, &PointsToConfig::default()).expect("points-to");
    let endpoint = program
        .inst_ids()
        .find(|&i| matches!(program.inst(i).kind, InstKind::Output { .. }))
        .expect("an output exists");
    let s = slice(&program, &pt, &[endpoint], &SliceConfig::default()).expect("slice");
    println!(
        "static slice of the output: {} of {} instructions:",
        s.len(),
        program.num_insts()
    );
    for i in program.inst_ids().filter(|&i| s.contains(i)) {
        let f = program.function(program.func_of_inst(i));
        println!("  {i} in @{}", f.name);
    }
}
