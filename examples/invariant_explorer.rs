//! Explore likely invariants: profile a workload, print the invariant text
//! file (the paper's storage format), then force a mis-speculation by
//! running an input that violates the assumptions and watch the checker
//! catch it.
//!
//! Run with: `cargo run --release --example invariant_explorer`

use oha::interp::{Machine, MachineConfig};
use oha::invariants::{ChecksEnabled, InvariantChecker, InvariantSet, ProfileTracer};
use oha::workloads::{c_suite, WorkloadParams};

fn main() {
    let params = WorkloadParams::small();
    let w = c_suite::nginx(&params);
    let machine = Machine::new(&w.program, MachineConfig::default());

    // Phase 1: profile a few ordinary request streams.
    let profiles: Vec<_> = w
        .profiling_inputs
        .iter()
        .take(4)
        .map(|input| {
            let mut t = ProfileTracer::new(&w.program);
            machine.run(input, &mut t);
            t.into_profile()
        })
        .collect();
    let set = InvariantSet::from_profiles(&profiles);

    // The text-file format of §4.2 round-trips.
    let text = set.to_text();
    println!(
        "--- invariant file ({} facts, {} lines) ---",
        set.fact_count(),
        text.lines().count()
    );
    for line in text.lines().take(14) {
        println!("{line}");
    }
    println!(
        "... ({} more lines)\n",
        text.lines().count().saturating_sub(14)
    );
    let reparsed = InvariantSet::from_text(&text).expect("the format round-trips");
    assert_eq!(reparsed, set);

    // A well-behaved request stream passes every check.
    let mut checker = InvariantChecker::new(&w.program, &set, ChecksEnabled::for_optslice());
    machine.run(&w.testing_inputs[0], &mut checker);
    println!(
        "ordinary input: {} checks, {} Bloom fast-path hits, violations: {}",
        checker.stats().checks,
        checker.stats().bloom_fast_path,
        checker.violations().count()
    );
    assert!(!checker.is_violated());

    // An adversarial stream hits the error handler (command id 2), which
    // profiling never saw: likely-unreachable code + an unexpected callee.
    let adversarial: Vec<i64> = vec![0, 2, /*cmd*/ 2, 9, /*cmd*/ 0, 1];
    let mut checker = InvariantChecker::new(&w.program, &set, ChecksEnabled::for_optslice());
    machine.run(&adversarial, &mut checker);
    println!("\nadversarial input violations:");
    for v in checker.violations() {
        println!("  {v:?}");
    }
    assert!(checker.is_violated(), "the cold path must be flagged");
    println!(
        "\n→ a speculative analysis would roll back and re-run under the sound hybrid analysis."
    );
}
