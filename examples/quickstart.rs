//! Quickstart: build a small multithreaded program, run the full
//! optimistic-hybrid-analysis pipeline on it, and inspect the result.
//!
//! Run with: `cargo run --release --example quickstart`

use oha::core::Pipeline;
use oha::ir::Operand::{Const, Reg as R};
use oha::ir::{BinOp, CmpOp, Program, ProgramBuilder};

/// Two worker threads increment a shared counter under a lock; main reads
/// the total after joining both. Race-free — but only a *dynamic* detector
/// (or a must-alias-armed static one) can be sure.
fn build_program() -> Program {
    let mut pb = ProgramBuilder::new();
    let shared = pb.global("shared", 1);
    let lock = pb.global("lock", 1);
    let worker = pb.declare("worker", 1);

    let mut m = pb.function("main", 0);
    let n = m.input();
    let t1 = m.spawn(worker, R(n));
    let t2 = m.spawn(worker, R(n));
    m.join(R(t1));
    m.join(R(t2));
    let sh = m.addr_global(shared);
    let total = m.load(R(sh), 0);
    m.output(R(total));
    m.ret(None);
    let main = pb.finish_function(m);

    let mut w = pb.function("worker", 1);
    let iters = w.param(0);
    let sh = w.addr_global(shared);
    let lk = w.addr_global(lock);
    let head = w.block();
    let body = w.block();
    let exit = w.block();
    let i = w.copy(Const(0));
    w.jump(head);
    w.select(head);
    let c = w.cmp(CmpOp::Lt, R(i), R(iters));
    w.branch(R(c), body, exit);
    w.select(body);
    w.lock(R(lk));
    let v = w.load(R(sh), 0);
    let v1 = w.bin(BinOp::Add, R(v), Const(1));
    w.store(R(sh), 0, R(v1));
    w.unlock(R(lk));
    let i1 = w.bin(BinOp::Add, R(i), Const(1));
    w.copy_to(i, R(i1));
    w.jump(head);
    w.select(exit);
    w.ret(None);
    pb.finish_function(w);

    pb.finish(main).expect("valid program")
}

fn main() {
    let program = build_program();
    println!(
        "program: {} functions, {} instructions\n",
        program.num_functions(),
        program.num_insts()
    );

    // Profiling corpus and testing corpus: different iteration counts.
    let profiling: Vec<Vec<i64>> = (1..6).map(|k| vec![k * 40]).collect();
    let testing: Vec<Vec<i64>> = (1..5).map(|k| vec![k * 55]).collect();

    let pipeline = Pipeline::new(program);
    let outcome = pipeline.run_optft(&profiling, &testing);

    println!("phase 1 — profiling:");
    println!(
        "  runs used: {} ({:?})",
        outcome.profiling_runs_used, outcome.profile_time
    );
    println!(
        "  invariant facts learned: {}",
        outcome.invariants.fact_count()
    );
    println!(
        "  lock sites assumed self-aliasing: {}",
        outcome.invariants.self_alias_locks.len()
    );

    println!("\nphase 2 — predicated static race detection:");
    println!(
        "  sound analysis leaves {} racy sites",
        outcome.racy_sites_sound
    );
    println!(
        "  predicated analysis leaves {} racy sites",
        outcome.racy_sites_pred
    );
    println!(
        "  lock/unlock sites elided (no-custom-sync): {}",
        outcome.elidable_lock_sites
    );

    println!("\nphase 3 — speculative dynamic analysis:");
    for (i, run) in outcome.runs.iter().enumerate() {
        println!(
            "  input {i}: FastTrack {:?}, hybrid {:?}, OptFT {:?} (rolled back: {})",
            run.full, run.hybrid, run.optimistic, run.rolled_back
        );
    }
    println!("\nraces (FastTrack): {:?}", outcome.baseline_races);
    println!("races (OptFT):     {:?}", outcome.optimistic_races);
    assert_eq!(outcome.baseline_races, outcome.optimistic_races);
    println!(
        "\nOptFT is race-equivalent to FastTrack, {:.1}x faster than hybrid FastTrack.",
        outcome.speedup_vs_hybrid()
    );
}
