//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest this workspace uses: the [`proptest!`],
//! [`prop_oneof!`], [`prop_assert!`] and [`prop_assert_eq!`] macros, a
//! sampling [`Strategy`] trait with `prop_map`, [`Just`], [`any`], tuple and
//! integer-range strategies, `prop::collection::vec`, and a regex-lite
//! string strategy. Sampling is deterministic per test (seeded from the
//! fully-qualified test name), cases are independent, and there is no
//! shrinking: on failure the offending case's inputs are printed verbatim.

use std::ops::Range;
use std::rc::Rc;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic test RNG (SplitMix64 seeded from the test name).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds a generator from an explicit seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Builds a generator seeded from a test's fully-qualified name, so each
    /// test gets a stable, independent stream.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform sample from `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

// ---------------------------------------------------------------------------
// Config
// ---------------------------------------------------------------------------

/// Run configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.sample(rng))
    }
}

/// Strategy that always yields a clone of its value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice between heterogeneous strategies with a common value
/// type; built by [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<(u32, Rc<dyn Strategy<Value = T>>)>,
    total: u32,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, Rc<dyn Strategy<Value = T>>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs at least one weighted arm");
        Union { arms, total }
    }

    /// Type-erases one arm (helper for [`prop_oneof!`]).
    pub fn arm<S: Strategy<Value = T> + 'static>(s: S) -> Rc<dyn Strategy<Value = T>> {
        Rc::new(s)
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(u64::from(self.total)) as u32;
        for (w, arm) in &self.arms {
            if pick < *w {
                return arm.sample(rng);
            }
            pick -= w;
        }
        unreachable!("weights exhausted")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let lo = self.start as i128;
                let span = (self.end as i128 - lo) as u128;
                let off = (u128::from(rng.next_u64()) % span) as i128;
                (lo + off) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy for this type.
    type Strategy: Strategy<Value = Self>;
    /// Returns the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Returns the canonical strategy for `T` (`any::<bool>()` et al.).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Canonical strategy for `bool`.
#[derive(Clone, Copy, Debug)]
pub struct BoolStrategy;

impl Strategy for BoolStrategy {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = BoolStrategy;
    fn arbitrary() -> BoolStrategy {
        BoolStrategy
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = FullIntStrategy<$t>;
            fn arbitrary() -> Self::Strategy {
                FullIntStrategy(std::marker::PhantomData)
            }
        }
        impl Strategy for FullIntStrategy<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

/// Whole-domain strategy for integer types.
#[derive(Clone, Copy, Debug)]
pub struct FullIntStrategy<T>(std::marker::PhantomData<T>);

impl_arbitrary_int!(u8, u16, u32, u64, i8, i16, i32, i64, usize, isize);

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing vectors whose length is drawn from `size`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end.saturating_sub(self.size.start).max(1);
            let len = self.size.start + rng.below(span as u64) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Vectors of `element` with length in `size` (half-open).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

// ---------------------------------------------------------------------------
// Regex-lite string strategy
// ---------------------------------------------------------------------------

/// Samples a string for the regex-lite subset this workspace uses:
/// `\PC{m,n}` (printable characters) and `[class]{m,n}` character classes
/// with literal characters and `a-z` style ranges.
pub fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let (pool, rest) = if let Some(rest) = pattern.strip_prefix("\\PC") {
        (printable_pool(), rest)
    } else if let Some(body) = pattern.strip_prefix('[') {
        let end = body
            .find(']')
            .unwrap_or_else(|| panic!("unterminated class in pattern {pattern:?}"));
        (expand_class(&body[..end]), &body[end + 1..])
    } else {
        panic!("unsupported string pattern {pattern:?} (vendored proptest)");
    };
    let (min, max) = parse_repeat(rest, pattern);
    let len = min + rng.below((max - min + 1) as u64) as usize;
    (0..len)
        .map(|_| pool[rng.below(pool.len() as u64) as usize])
        .collect()
}

fn printable_pool() -> Vec<char> {
    // ASCII printable plus a few multi-byte characters so `\PC` exercises
    // non-ASCII input too.
    let mut pool: Vec<char> = (' '..='~').collect();
    pool.extend(['é', 'Ω', '→', '中', '🦀']);
    pool
}

fn expand_class(class: &str) -> Vec<char> {
    let chars: Vec<char> = class.chars().collect();
    let mut pool = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (lo, hi) = (chars[i], chars[i + 2]);
            assert!(lo <= hi, "invalid class range {lo}-{hi}");
            pool.extend(lo..=hi);
            i += 3;
        } else {
            pool.push(chars[i]);
            i += 1;
        }
    }
    assert!(!pool.is_empty(), "empty character class");
    pool
}

fn parse_repeat(rest: &str, pattern: &str) -> (usize, usize) {
    if rest.is_empty() {
        return (1, 1);
    }
    let inner = rest
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or_else(|| panic!("unsupported repetition in pattern {pattern:?}"));
    let (a, b) = inner
        .split_once(',')
        .unwrap_or_else(|| panic!("unsupported repetition in pattern {pattern:?}"));
    let min: usize = a.trim().parse().expect("repeat lower bound");
    let max: usize = b.trim().parse().expect("repeat upper bound");
    assert!(min <= max, "invalid repetition {{{min},{max}}}");
    (min, max)
}

impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        sample_pattern(self, rng)
    }
}

// ---------------------------------------------------------------------------
// Failure reporting
// ---------------------------------------------------------------------------

/// Prints the failing case's inputs when a test body panics (no shrinking).
pub struct CaseGuard {
    case: u32,
    info: String,
}

impl CaseGuard {
    /// Arms a guard describing the current case.
    pub fn new(case: u32, info: String) -> Self {
        CaseGuard { case, info }
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!("proptest: failure in case {}:\n{}", self.case, self.info);
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr;) => {};
    (config = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                let __guard = $crate::CaseGuard::new(__case, {
                    let mut __s = String::new();
                    $(__s.push_str(&format!(
                        concat!("  ", stringify!($arg), " = {:?}\n"),
                        &$arg
                    ));)+
                    __s
                });
                { $body }
                drop(__guard);
            }
        }
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
}

/// Weighted (`w => strategy`) or uniform choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Union::arm($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Union::arm($strat))),+
        ])
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

pub mod prelude {
    //! The usual imports: `use proptest::prelude::*;`.

    /// Lets `prop::collection::vec(...)` resolve as in real proptest.
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..500 {
            let x = Strategy::sample(&(3u32..9), &mut rng);
            assert!((3..9).contains(&x));
            let y = Strategy::sample(&(-20i64..20), &mut rng);
            assert!((-20..20).contains(&y));
        }
    }

    #[test]
    fn union_respects_weights_loosely() {
        let mut rng = TestRng::from_seed(2);
        let s = prop_oneof![9 => Just(true), 1 => Just(false)];
        let hits = (0..1000).filter(|_| s.sample(&mut rng)).count();
        assert!(hits > 700, "weighted arm should dominate, got {hits}");
    }

    #[test]
    fn class_patterns_sample_members_only() {
        let mut rng = TestRng::from_seed(3);
        for _ in 0..200 {
            let s = Strategy::sample(&"[a-z0-9 =@,+()]{0,24}", &mut rng);
            assert!(s.len() <= 24);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || " =@,+()".contains(c)));
        }
    }

    #[test]
    fn printable_pattern_obeys_bounds() {
        let mut rng = TestRng::from_seed(4);
        for _ in 0..200 {
            let s = Strategy::sample(&"\\PC{0,200}", &mut rng);
            assert!(s.chars().count() <= 200);
            assert!(s.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn vec_strategy_obeys_length_range() {
        let mut rng = TestRng::from_seed(5);
        let s = prop::collection::vec(0u32..50, 2..6);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 50));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: samples land in range and tuples destructure.
        #[test]
        fn macro_smoke(x in 0u64..10, pair in (0u8..4, any::<bool>())) {
            prop_assert!(x < 10);
            let (a, _b) = pair;
            prop_assert!(a < 4);
        }
    }
}
