//! Offline stand-in for the `criterion` crate.
//!
//! Supports the surface used by `crates/bench/benches/micro.rs`:
//! [`Criterion`] with the `sample_size` / `measurement_time` /
//! `warm_up_time` builders, [`Criterion::benchmark_group`],
//! `bench_function`, [`Bencher::iter`] / [`Bencher::iter_batched`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Behaviour mirrors real criterion's two modes: invoked by `cargo bench`
//! (cargo passes `--bench`) each benchmark is timed and a ns/iter line is
//! printed; invoked by `cargo test` each benchmark body runs exactly once as
//! a smoke test so the test suite stays fast.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver and configuration.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(200),
            test_mode: true,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Reads the process arguments to decide between measurement mode
    /// (`cargo bench` passes `--bench`) and one-shot test mode.
    pub fn configure_from_args(mut self) -> Self {
        self.test_mode = !std::env::args().any(|a| a == "--bench");
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(self, id, f);
        self
    }
}

/// A named group of benchmarks sharing the parent's configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(self.criterion, &label, f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(c: &mut Criterion, label: &str, mut f: F) {
    let mut b = Bencher {
        test_mode: c.test_mode,
        measurement_time: c.measurement_time,
        warm_up_time: c.warm_up_time,
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    if c.test_mode {
        return;
    }
    if b.iters == 0 {
        println!("{label:<50} (no iterations recorded)");
        return;
    }
    let ns = b.elapsed.as_nanos() as f64 / b.iters as f64;
    println!("{label:<50} {ns:>12.1} ns/iter ({} iters)", b.iters);
}

/// Controls how per-iteration inputs are batched in
/// [`Bencher::iter_batched`]; the stand-in times every call individually, so
/// the variants only document intent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: batch many per allocation.
    SmallInput,
    /// Large inputs: fewer per batch.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    test_mode: bool,
    measurement_time: Duration,
    warm_up_time: Duration,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine` repeatedly (once in test mode).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        let warm = Instant::now();
        while warm.elapsed() < self.warm_up_time {
            black_box(routine());
        }
        let start = Instant::now();
        let mut n = 0u64;
        while start.elapsed() < self.measurement_time {
            black_box(routine());
            n += 1;
        }
        self.elapsed += start.elapsed();
        self.iters += n;
    }

    /// Times `routine` over fresh inputs from `setup`, excluding setup time
    /// from the measurement (runs once in test mode).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.test_mode {
            black_box(routine(setup()));
            return;
        }
        let warm = Instant::now();
        while warm.elapsed() < self.warm_up_time {
            black_box(routine(setup()));
        }
        let mut timed = Duration::ZERO;
        let mut n = 0u64;
        while timed < self.measurement_time {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            timed += start.elapsed();
            n += 1;
        }
        self.elapsed += timed;
        self.iters += n;
    }
}

/// Declares a benchmark group function from a list of target functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::configure_from_args($cfg);
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares `main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_each_routine_once() {
        let mut c = Criterion::default(); // test_mode = true
        let mut calls = 0u32;
        c.bench_function("noop", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
        let mut batched = 0u32;
        let mut g = c.benchmark_group("g");
        g.bench_function("batched", |b| {
            b.iter_batched(|| 3u32, |x| batched += x, BatchSize::SmallInput)
        });
        g.finish();
        assert_eq!(batched, 3);
    }

    #[test]
    fn measurement_mode_records_iterations() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        c.test_mode = false;
        let mut b = Bencher {
            test_mode: false,
            measurement_time: c.measurement_time,
            warm_up_time: c.warm_up_time,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        b.iter(|| 1 + 1);
        assert!(b.iters > 0);
        assert!(b.elapsed >= c.measurement_time);
    }
}
