//! Offline stand-in for the `rand` crate.
//!
//! Implements exactly the surface this workspace uses: `rngs::StdRng`,
//! [`SeedableRng::seed_from_u64`] and [`Rng::gen_range`] over integer
//! ranges. The generator is SplitMix64 — deterministic, uniform enough for
//! workload-corpus generation, and dependency-free.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (integer ranges only).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<T: RngCore> Rng for T {}

/// A range that knows how to sample one of its members.
pub trait SampleRange<T> {
    /// Samples a single value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Integer types uniformly samplable within bounds. The single blanket
/// `SampleRange` impl below is what lets unsuffixed range literals infer
/// their type from the call site, exactly as with the real crate.
pub trait SampleUniform: Copy {
    /// Uniform sample from `[lo, hi)`.
    fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_in_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_in_inclusive(lo, hi, rng)
    }
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let base = lo as i128;
                let span = (hi as i128 - base) as u128;
                let off = (u128::from(rng.next_u64()) % span) as i128;
                (base + off) as $t
            }
            fn sample_in_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let base = lo as i128;
                let span = (hi as i128 - base) as u128 + 1;
                let off = (u128::from(rng.next_u64()) % span) as i128;
                (base + off) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    //! Concrete generators.

    /// The standard generator: SplitMix64 over a 64-bit state.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000i64), b.gen_range(0..1_000_000i64));
        }
    }

    #[test]
    fn in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17u8);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-20..20i64);
            assert!((-20..20).contains(&y));
            let z = rng.gen_range(0..=5usize);
            assert!(z <= 5);
        }
    }
}
