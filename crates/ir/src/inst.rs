//! Instructions, operands and terminators.

use std::fmt;

use crate::ids::{BlockId, FuncId, GlobalId, InstId, Reg};

/// An operand of an instruction: either a virtual register or an integer
/// constant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Operand {
    /// The current value of a virtual register.
    Reg(Reg),
    /// An integer constant.
    Const(i64),
}

impl Operand {
    /// Returns the register read by this operand, if any.
    pub fn as_reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Const(_) => None,
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(c: i64) -> Self {
        Operand::Const(c)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Const(c) => write!(f, "{c}"),
        }
    }
}

/// Binary arithmetic / logical operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Division; division by zero yields zero.
    Div,
    /// Remainder; remainder by zero yields zero.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Integer comparison producing `0` or `1`.
    Cmp(CmpOp),
}

/// Comparison predicates for [`BinOp::Cmp`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Cmp(CmpOp::Eq) => "eq",
            BinOp::Cmp(CmpOp::Ne) => "ne",
            BinOp::Cmp(CmpOp::Lt) => "lt",
            BinOp::Cmp(CmpOp::Le) => "le",
            BinOp::Cmp(CmpOp::Gt) => "gt",
            BinOp::Cmp(CmpOp::Ge) => "ge",
        };
        f.write_str(s)
    }
}

impl BinOp {
    /// Parses the textual name used by the IR printer.
    pub fn from_name(name: &str) -> Option<BinOp> {
        Some(match name {
            "add" => BinOp::Add,
            "sub" => BinOp::Sub,
            "mul" => BinOp::Mul,
            "div" => BinOp::Div,
            "rem" => BinOp::Rem,
            "and" => BinOp::And,
            "or" => BinOp::Or,
            "xor" => BinOp::Xor,
            "eq" => BinOp::Cmp(CmpOp::Eq),
            "ne" => BinOp::Cmp(CmpOp::Ne),
            "lt" => BinOp::Cmp(CmpOp::Lt),
            "le" => BinOp::Cmp(CmpOp::Le),
            "gt" => BinOp::Cmp(CmpOp::Gt),
            "ge" => BinOp::Cmp(CmpOp::Ge),
            _ => return None,
        })
    }

    /// Evaluates the operation on two integers with the IR's semantics
    /// (wrapping arithmetic, total division).
    pub fn eval(self, lhs: i64, rhs: i64) -> i64 {
        match self {
            BinOp::Add => lhs.wrapping_add(rhs),
            BinOp::Sub => lhs.wrapping_sub(rhs),
            BinOp::Mul => lhs.wrapping_mul(rhs),
            BinOp::Div => {
                if rhs == 0 {
                    0
                } else {
                    lhs.wrapping_div(rhs)
                }
            }
            BinOp::Rem => {
                if rhs == 0 {
                    0
                } else {
                    lhs.wrapping_rem(rhs)
                }
            }
            BinOp::And => lhs & rhs,
            BinOp::Or => lhs | rhs,
            BinOp::Xor => lhs ^ rhs,
            BinOp::Cmp(op) => {
                let b = match op {
                    CmpOp::Eq => lhs == rhs,
                    CmpOp::Ne => lhs != rhs,
                    CmpOp::Lt => lhs < rhs,
                    CmpOp::Le => lhs <= rhs,
                    CmpOp::Gt => lhs > rhs,
                    CmpOp::Ge => lhs >= rhs,
                };
                i64::from(b)
            }
        }
    }
}

/// The target of a call or spawn: a known function or a function pointer in
/// a register.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Callee {
    /// A direct call to a statically known function.
    Direct(FuncId),
    /// An indirect call through a function-pointer value.
    Indirect(Operand),
}

/// A single IR instruction with its program-wide id.
#[derive(Clone, Debug, PartialEq)]
pub struct Inst {
    /// Program-wide dense instruction id (the instrumentation site).
    pub id: InstId,
    /// The operation performed.
    pub kind: InstKind,
}

/// The operation performed by an [`Inst`].
#[derive(Clone, Debug, PartialEq)]
pub enum InstKind {
    /// `dst = src`.
    Copy {
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
    },
    /// `dst = op(lhs, rhs)`.
    BinOp {
        /// Destination register.
        dst: Reg,
        /// Operation.
        op: BinOp,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// Allocates a fresh heap object with `fields` fields; `dst` receives a
    /// pointer to field 0. This instruction is the allocation *site* for the
    /// points-to analysis.
    Alloc {
        /// Destination register.
        dst: Reg,
        /// Number of fields in the allocated object.
        fields: u32,
    },
    /// `dst = &global` (pointer to field 0 of a global object).
    AddrGlobal {
        /// Destination register.
        dst: Reg,
        /// The global whose address is taken.
        global: GlobalId,
    },
    /// `dst = &func` (a function-pointer constant).
    AddrFunc {
        /// Destination register.
        dst: Reg,
        /// The function whose address is taken.
        func: FuncId,
    },
    /// `dst = base + field` — pointer arithmetic selecting a field.
    Gep {
        /// Destination register.
        dst: Reg,
        /// Base pointer.
        base: Operand,
        /// Field offset added to the base pointer.
        field: u32,
    },
    /// `dst = *(addr + field)`.
    Load {
        /// Destination register.
        dst: Reg,
        /// Address operand (a pointer value).
        addr: Operand,
        /// Constant field offset added to `addr`.
        field: u32,
    },
    /// `*(addr + field) = value`.
    Store {
        /// Address operand (a pointer value).
        addr: Operand,
        /// Constant field offset added to `addr`.
        field: u32,
        /// The value stored.
        value: Operand,
    },
    /// Calls `callee(args…)`; the return value, if any, is written to `dst`.
    Call {
        /// Register receiving the return value, if used.
        dst: Option<Reg>,
        /// Call target.
        callee: Callee,
        /// Actual arguments.
        args: Vec<Operand>,
    },
    /// Acquires the mutex identified by the address value of `addr`.
    Lock {
        /// Lock object address.
        addr: Operand,
    },
    /// Releases the mutex identified by the address value of `addr`.
    Unlock {
        /// Lock object address.
        addr: Operand,
    },
    /// Spawns a new thread running `func(arg)`; `dst` receives the thread
    /// handle. This instruction is a thread-creation *site* for the
    /// singleton-thread invariant and the MHP analysis.
    Spawn {
        /// Register receiving the thread handle.
        dst: Reg,
        /// Thread entry function.
        func: Callee,
        /// Single argument passed to the entry function.
        arg: Operand,
    },
    /// Blocks until the thread with the given handle has finished.
    Join {
        /// Thread-handle value.
        thread: Operand,
    },
    /// Reads the next value from the program input; yields 0 when exhausted.
    Input {
        /// Destination register.
        dst: Reg,
    },
    /// Appends a value to the program output. Typical slice endpoint.
    Output {
        /// Value written.
        value: Operand,
    },
}

impl InstKind {
    /// The register defined by this instruction, if any.
    pub fn def(&self) -> Option<Reg> {
        match *self {
            InstKind::Copy { dst, .. }
            | InstKind::BinOp { dst, .. }
            | InstKind::Alloc { dst, .. }
            | InstKind::AddrGlobal { dst, .. }
            | InstKind::AddrFunc { dst, .. }
            | InstKind::Gep { dst, .. }
            | InstKind::Load { dst, .. }
            | InstKind::Input { dst } => Some(dst),
            InstKind::Call { dst, .. } => dst,
            InstKind::Spawn { dst, .. } => Some(dst),
            InstKind::Store { .. }
            | InstKind::Lock { .. }
            | InstKind::Unlock { .. }
            | InstKind::Join { .. }
            | InstKind::Output { .. } => None,
        }
    }

    /// Collects the registers read by this instruction.
    pub fn uses(&self) -> Vec<Reg> {
        let mut out = Vec::new();
        let mut push = |op: Operand| {
            if let Operand::Reg(r) = op {
                out.push(r);
            }
        };
        match self {
            InstKind::Copy { src, .. } => push(*src),
            InstKind::BinOp { lhs, rhs, .. } => {
                push(*lhs);
                push(*rhs);
            }
            InstKind::Alloc { .. }
            | InstKind::AddrGlobal { .. }
            | InstKind::AddrFunc { .. }
            | InstKind::Input { .. } => {}
            InstKind::Gep { base, .. } => push(*base),
            InstKind::Load { addr, .. } => push(*addr),
            InstKind::Store { addr, value, .. } => {
                push(*addr);
                push(*value);
            }
            InstKind::Call { callee, args, .. } => {
                if let Callee::Indirect(op) = callee {
                    push(*op);
                }
                for a in args {
                    push(*a);
                }
            }
            InstKind::Lock { addr } | InstKind::Unlock { addr } => push(*addr),
            InstKind::Spawn { func, arg, .. } => {
                if let Callee::Indirect(op) = func {
                    push(*op);
                }
                push(*arg);
            }
            InstKind::Join { thread } => push(*thread),
            InstKind::Output { value } => push(*value),
        }
        out
    }

    /// Returns `true` for loads and stores (the memory-access
    /// instrumentation sites of the race detector).
    pub fn is_memory_access(&self) -> bool {
        matches!(self, InstKind::Load { .. } | InstKind::Store { .. })
    }

    /// Returns `true` for direct or indirect calls.
    pub fn is_call(&self) -> bool {
        matches!(self, InstKind::Call { .. })
    }
}

/// The terminator of a basic block.
#[derive(Clone, Debug, PartialEq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way branch: nonzero condition takes `then_bb`.
    Branch {
        /// Condition operand; nonzero means taken.
        cond: Operand,
        /// Successor when the condition is nonzero.
        then_bb: BlockId,
        /// Successor when the condition is zero.
        else_bb: BlockId,
    },
    /// Returns from the current function.
    Return(Option<Operand>),
}

impl Terminator {
    /// Successor blocks of this terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        match *self {
            Terminator::Jump(b) => vec![b],
            Terminator::Branch {
                then_bb, else_bb, ..
            } => vec![then_bb, else_bb],
            Terminator::Return(_) => Vec::new(),
        }
    }

    /// Registers read by this terminator.
    pub fn uses(&self) -> Vec<Reg> {
        match self {
            Terminator::Branch { cond, .. } => cond.as_reg().into_iter().collect(),
            Terminator::Return(Some(op)) => op.as_reg().into_iter().collect(),
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_eval_matches_semantics() {
        assert_eq!(BinOp::Add.eval(2, 3), 5);
        assert_eq!(BinOp::Sub.eval(2, 3), -1);
        assert_eq!(BinOp::Mul.eval(4, 3), 12);
        assert_eq!(BinOp::Div.eval(7, 2), 3);
        assert_eq!(BinOp::Div.eval(7, 0), 0, "division by zero is total");
        assert_eq!(BinOp::Rem.eval(7, 0), 0);
        assert_eq!(BinOp::Cmp(CmpOp::Lt).eval(1, 2), 1);
        assert_eq!(BinOp::Cmp(CmpOp::Ge).eval(1, 2), 0);
        assert_eq!(BinOp::Add.eval(i64::MAX, 1), i64::MIN, "wrapping add");
    }

    #[test]
    fn binop_names_round_trip() {
        for op in [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Div,
            BinOp::Rem,
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
            BinOp::Cmp(CmpOp::Eq),
            BinOp::Cmp(CmpOp::Ne),
            BinOp::Cmp(CmpOp::Lt),
            BinOp::Cmp(CmpOp::Le),
            BinOp::Cmp(CmpOp::Gt),
            BinOp::Cmp(CmpOp::Ge),
        ] {
            assert_eq!(BinOp::from_name(&op.to_string()), Some(op));
        }
        assert_eq!(BinOp::from_name("frobnicate"), None);
    }

    #[test]
    fn def_and_uses_are_consistent() {
        let k = InstKind::BinOp {
            dst: Reg::new(3),
            op: BinOp::Add,
            lhs: Operand::Reg(Reg::new(1)),
            rhs: Operand::Const(5),
        };
        assert_eq!(k.def(), Some(Reg::new(3)));
        assert_eq!(k.uses(), vec![Reg::new(1)]);

        let s = InstKind::Store {
            addr: Operand::Reg(Reg::new(0)),
            field: 2,
            value: Operand::Reg(Reg::new(1)),
        };
        assert_eq!(s.def(), None);
        assert_eq!(s.uses(), vec![Reg::new(0), Reg::new(1)]);
        assert!(s.is_memory_access());

        let c = InstKind::Call {
            dst: None,
            callee: Callee::Indirect(Operand::Reg(Reg::new(7))),
            args: vec![Operand::Reg(Reg::new(8)), Operand::Const(1)],
        };
        assert_eq!(c.uses(), vec![Reg::new(7), Reg::new(8)]);
        assert!(c.is_call());
    }

    #[test]
    fn terminator_successors() {
        assert_eq!(
            Terminator::Jump(BlockId::new(4)).successors(),
            vec![BlockId::new(4)]
        );
        let br = Terminator::Branch {
            cond: Operand::Reg(Reg::new(0)),
            then_bb: BlockId::new(1),
            else_bb: BlockId::new(2),
        };
        assert_eq!(br.successors(), vec![BlockId::new(1), BlockId::new(2)]);
        assert_eq!(br.uses(), vec![Reg::new(0)]);
        assert!(Terminator::Return(None).successors().is_empty());
    }

    #[test]
    fn operand_conversions() {
        assert_eq!(Operand::from(Reg::new(2)), Operand::Reg(Reg::new(2)));
        assert_eq!(Operand::from(9i64), Operand::Const(9));
        assert_eq!(Operand::Reg(Reg::new(2)).as_reg(), Some(Reg::new(2)));
        assert_eq!(Operand::Const(1).as_reg(), None);
    }
}
