//! Stable 128-bit content fingerprints.
//!
//! The persistent artifact cache (`oha-store`) keys analysis results on
//! `(Program::fingerprint(), InvariantSet::fingerprint())`. Both are
//! [`Fingerprint`]s: 128-bit FNV-1a hashes over a *canonical byte form*
//! (the textual printer output for programs, the sorted invariant text for
//! invariant sets), so they are stable across process runs, thread counts,
//! and platforms — unlike [`std::hash::Hash`], whose `DefaultHasher` is
//! explicitly allowed to change between releases.
//!
//! FNV-1a is not collision-resistant against adversaries; it is used here
//! as a *content address* for trusted local artifacts, where 128 bits make
//! accidental collisions vanishingly unlikely.

use std::fmt;

/// The 128-bit FNV-1a offset basis.
const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// The 128-bit FNV prime, 2^88 + 2^8 + 0x3b.
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// A stable 128-bit content hash.
///
/// # Examples
///
/// ```
/// use oha_ir::Fingerprint;
///
/// let fp = Fingerprint::of_bytes(b"hello");
/// assert_eq!(Fingerprint::of_bytes(b"hello"), fp);
/// assert_ne!(Fingerprint::of_bytes(b"hellp"), fp);
/// let hex = fp.to_hex();
/// assert_eq!(Fingerprint::from_hex(&hex), Some(fp));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fingerprint(pub u128);

impl Fingerprint {
    /// Hashes a byte slice in one call.
    pub fn of_bytes(bytes: &[u8]) -> Self {
        let mut h = FingerprintHasher::new();
        h.write(bytes);
        h.finish()
    }

    /// The hash as 32 lowercase hex digits (the on-disk file-name form).
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses the 32-hex-digit form produced by [`Fingerprint::to_hex`].
    pub fn from_hex(hex: &str) -> Option<Self> {
        if hex.len() != 32 {
            return None;
        }
        u128::from_str_radix(hex, 16).ok().map(Fingerprint)
    }

    /// The raw little-endian bytes (the wire/codec form).
    pub fn to_le_bytes(self) -> [u8; 16] {
        self.0.to_le_bytes()
    }

    /// Reconstructs a fingerprint from [`Fingerprint::to_le_bytes`].
    pub fn from_le_bytes(bytes: [u8; 16]) -> Self {
        Fingerprint(u128::from_le_bytes(bytes))
    }

    /// Combines two fingerprints into one (order-sensitive) — used to
    /// derive a single key from a `(program, invariants)` pair.
    pub fn combine(self, other: Fingerprint) -> Fingerprint {
        let mut h = FingerprintHasher::new();
        h.write(&self.to_le_bytes());
        h.write(&other.to_le_bytes());
        h.finish()
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl fmt::Debug for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fingerprint({:032x})", self.0)
    }
}

/// A streaming 128-bit FNV-1a hasher.
///
/// # Examples
///
/// ```
/// use oha_ir::{Fingerprint, FingerprintHasher};
///
/// let mut h = FingerprintHasher::new();
/// h.write(b"he");
/// h.write(b"llo");
/// assert_eq!(h.finish(), Fingerprint::of_bytes(b"hello"));
/// ```
#[derive(Clone, Debug)]
pub struct FingerprintHasher {
    state: u128,
}

impl FingerprintHasher {
    /// A hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Self {
            state: FNV128_OFFSET,
        }
    }

    /// Feeds bytes into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(FNV128_PRIME);
        }
    }

    /// Feeds a little-endian `u64` (length-prefix friendly helper for
    /// structured hashing).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The accumulated fingerprint.
    pub fn finish(&self) -> Fingerprint {
        Fingerprint(self.state)
    }
}

impl Default for FingerprintHasher {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Golden vectors for the raw FNV-1a-128 primitive. If these move, the
    /// hash function changed and every on-disk artifact key is silently
    /// orphaned — treat any diff here as a format break requiring a store
    /// version bump.
    #[test]
    fn fnv128_golden_vectors() {
        assert_eq!(
            Fingerprint::of_bytes(b"").to_hex(),
            "6c62272e07bb014262b821756295c58d",
            "empty input must be the FNV-1a offset basis"
        );
        assert_eq!(
            Fingerprint::of_bytes(b"a").to_hex(),
            "d228cb696f1a8caf78912b704e4a8964"
        );
        assert_eq!(
            Fingerprint::of_bytes(b"foobar").to_hex(),
            "343e1662793c64bf6f0d3597ba446f18"
        );
    }

    #[test]
    fn streaming_matches_oneshot() {
        let mut h = FingerprintHasher::new();
        for chunk in [b"ab".as_slice(), b"", b"cdef"] {
            h.write(chunk);
        }
        assert_eq!(h.finish(), Fingerprint::of_bytes(b"abcdef"));
    }

    #[test]
    fn hex_round_trip_and_rejects_garbage() {
        let fp = Fingerprint::of_bytes(b"roundtrip");
        assert_eq!(Fingerprint::from_hex(&fp.to_hex()), Some(fp));
        assert_eq!(Fingerprint::from_hex("xyz"), None);
        assert_eq!(Fingerprint::from_hex(""), None);
        // Wrong length, even if valid hex.
        assert_eq!(Fingerprint::from_hex("abc123"), None);
    }

    #[test]
    fn combine_is_order_sensitive() {
        let a = Fingerprint::of_bytes(b"a");
        let b = Fingerprint::of_bytes(b"b");
        assert_ne!(a.combine(b), b.combine(a));
        assert_eq!(a.combine(b), a.combine(b));
    }
}
