//! A small program intermediate representation (IR) for the Optimistic
//! Hybrid Analysis reproduction.
//!
//! The IR stands in for LLVM bitcode / Java bytecode from the paper. It keeps
//! exactly the constructs the paper's analyses are defined over:
//!
//! * functions made of basic blocks with explicit terminators,
//! * loads and stores against object+field addresses,
//! * heap allocation sites and [`Gep`](InstKind::Gep)-style field addressing,
//! * direct and **indirect** calls (through function pointers),
//! * `lock`/`unlock`, `spawn`/`join` synchronization operations,
//! * `input`/`output` for externally observable behaviour.
//!
//! Programs are built with [`ProgramBuilder`], which assigns densely numbered
//! [`InstId`]s and [`BlockId`]s on [`ProgramBuilder::finish`] so analyses can
//! use plain bit sets keyed by those ids. A textual format is provided by
//! [`print_program`] and [`parse_program`], which round-trip.
//!
//! # Examples
//!
//! ```
//! use oha_ir::{ProgramBuilder, Operand};
//!
//! let mut pb = ProgramBuilder::new();
//! let mut f = pb.function("main", 0);
//! let v = f.alloc(1);
//! f.store(Operand::Reg(v), 0, Operand::Const(42));
//! let r = f.load(Operand::Reg(v), 0);
//! f.output(Operand::Reg(r));
//! f.ret(None);
//! let main = pb.finish_function(f);
//! let program = pb.finish(main).expect("valid program");
//! assert_eq!(program.num_functions(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod error;
mod fingerprint;
mod function;
mod ids;
mod inst;
mod parser;
mod printer;
mod program;
mod validate;

pub use builder::{FunctionBuilder, ProgramBuilder};
pub use error::{IrError, ParseProgramError};
pub use fingerprint::{Fingerprint, FingerprintHasher};
pub use function::{BasicBlock, Function, Global};
pub use ids::{BlockId, FuncId, GlobalId, InstId, Reg};
pub use inst::{BinOp, Callee, CmpOp, Inst, InstKind, Operand, Terminator};
pub use parser::parse_program;
pub use printer::print_program;
pub use program::{InstLoc, Program};
pub use validate::validate;
