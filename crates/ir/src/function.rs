//! Functions, basic blocks and globals.

use crate::ids::{BlockId, FuncId, Reg};
use crate::inst::{Inst, Terminator};

/// A basic block: a straight-line sequence of instructions ending in a
/// terminator.
#[derive(Clone, Debug, PartialEq)]
pub struct BasicBlock {
    /// The function this block belongs to.
    pub func: FuncId,
    /// Straight-line instructions of the block.
    pub insts: Vec<Inst>,
    /// The block terminator.
    pub terminator: Terminator,
}

impl BasicBlock {
    /// Successor blocks (within the same function).
    pub fn successors(&self) -> Vec<BlockId> {
        self.terminator.successors()
    }
}

/// A function: an entry block plus the set of blocks it owns.
#[derive(Clone, Debug, PartialEq)]
pub struct Function {
    /// Human-readable unique name, e.g. `"main"`.
    pub name: String,
    /// Parameter registers, in order. Parameters occupy the first registers.
    pub params: Vec<Reg>,
    /// Total number of virtual registers used by the function.
    pub num_regs: u32,
    /// The entry block.
    pub entry: BlockId,
    /// All blocks of this function, in creation order (entry first).
    pub blocks: Vec<BlockId>,
}

impl Function {
    /// Number of declared parameters.
    pub fn arity(&self) -> usize {
        self.params.len()
    }
}

/// A global object with a fixed number of fields.
///
/// Globals are storage roots: their address can be taken with
/// [`InstKind::AddrGlobal`](crate::InstKind::AddrGlobal) and they exist for
/// the whole execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Global {
    /// Unique name, e.g. `"g_init"`.
    pub name: String,
    /// Number of fields.
    pub fields: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Operand, Terminator};

    #[test]
    fn block_successors_follow_terminator() {
        let b = BasicBlock {
            func: FuncId::new(0),
            insts: Vec::new(),
            terminator: Terminator::Branch {
                cond: Operand::Const(1),
                then_bb: BlockId::new(1),
                else_bb: BlockId::new(2),
            },
        };
        assert_eq!(b.successors(), vec![BlockId::new(1), BlockId::new(2)]);
    }

    #[test]
    fn function_arity_counts_params() {
        let f = Function {
            name: "f".to_string(),
            params: vec![Reg::new(0), Reg::new(1)],
            num_regs: 4,
            entry: BlockId::new(0),
            blocks: vec![BlockId::new(0)],
        };
        assert_eq!(f.arity(), 2);
    }
}
