//! The whole-program container and its index structures.

use std::collections::HashMap;

use crate::function::{BasicBlock, Function, Global};
use crate::ids::{BlockId, FuncId, GlobalId, InstId};
use crate::inst::Inst;

/// Location of an instruction: which block it lives in and at what position.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct InstLoc {
    /// The containing block.
    pub block: BlockId,
    /// The instruction's index within the block.
    pub index: usize,
}

/// A complete, validated program.
///
/// Programs are immutable once built (see
/// [`ProgramBuilder`](crate::ProgramBuilder)); all ids are dense, and the
/// program maintains an index from [`InstId`] to its location.
#[derive(Clone, Debug)]
pub struct Program {
    functions: Vec<Function>,
    blocks: Vec<BasicBlock>,
    globals: Vec<Global>,
    entry: FuncId,
    inst_index: Vec<InstLoc>,
    func_by_name: HashMap<String, FuncId>,
}

impl Program {
    pub(crate) fn from_parts(
        functions: Vec<Function>,
        blocks: Vec<BasicBlock>,
        globals: Vec<Global>,
        entry: FuncId,
    ) -> Self {
        let mut inst_index = Vec::new();
        for (bi, block) in blocks.iter().enumerate() {
            for (ii, inst) in block.insts.iter().enumerate() {
                let id = inst.id.index();
                if inst_index.len() <= id {
                    inst_index.resize(
                        id + 1,
                        InstLoc {
                            block: BlockId::new(0),
                            index: 0,
                        },
                    );
                }
                inst_index[id] = InstLoc {
                    block: BlockId::new(bi as u32),
                    index: ii,
                };
            }
        }
        let func_by_name = functions
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.clone(), FuncId::new(i as u32)))
            .collect();
        Self {
            functions,
            blocks,
            globals,
            entry,
            inst_index,
            func_by_name,
        }
    }

    /// The program entry function (the `main` thread's body).
    pub fn entry(&self) -> FuncId {
        self.entry
    }

    /// Number of functions.
    pub fn num_functions(&self) -> usize {
        self.functions.len()
    }

    /// Number of basic blocks in the whole program.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Number of instructions in the whole program (dense [`InstId`] space).
    pub fn num_insts(&self) -> usize {
        self.inst_index.len()
    }

    /// Number of global objects.
    pub fn num_globals(&self) -> usize {
        self.globals.len()
    }

    /// Looks up a function by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this program.
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.index()]
    }

    /// Looks up a function id by name.
    pub fn function_by_name(&self, name: &str) -> Option<FuncId> {
        self.func_by_name.get(name).copied()
    }

    /// Looks up a block by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this program.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    /// Looks up a global by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this program.
    pub fn global(&self, id: GlobalId) -> &Global {
        &self.globals[id.index()]
    }

    /// The location (block, index) of an instruction.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this program.
    pub fn loc(&self, id: InstId) -> InstLoc {
        self.inst_index[id.index()]
    }

    /// The instruction with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this program.
    pub fn inst(&self, id: InstId) -> &Inst {
        let loc = self.loc(id);
        &self.block(loc.block).insts[loc.index]
    }

    /// The function containing an instruction.
    pub fn func_of_inst(&self, id: InstId) -> FuncId {
        self.block(self.loc(id).block).func
    }

    /// Iterates over all function ids.
    pub fn func_ids(&self) -> impl Iterator<Item = FuncId> + '_ {
        (0..self.functions.len() as u32).map(FuncId::new)
    }

    /// Iterates over all block ids.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        (0..self.blocks.len() as u32).map(BlockId::new)
    }

    /// Iterates over all global ids.
    pub fn global_ids(&self) -> impl Iterator<Item = GlobalId> + '_ {
        (0..self.globals.len() as u32).map(GlobalId::new)
    }

    /// Iterates over all instruction ids.
    pub fn inst_ids(&self) -> impl Iterator<Item = InstId> + '_ {
        (0..self.inst_index.len() as u32).map(InstId::new)
    }

    /// Iterates over the instructions of the whole program in block order.
    pub fn insts(&self) -> impl Iterator<Item = &Inst> + '_ {
        self.blocks.iter().flat_map(|b| b.insts.iter())
    }

    /// All functions, indexable by [`FuncId::index`].
    pub fn functions(&self) -> &[Function] {
        &self.functions
    }

    /// All blocks, indexable by [`BlockId::index`].
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// All globals, indexable by [`GlobalId::index`].
    pub fn globals(&self) -> &[Global] {
        &self.globals
    }

    /// A stable 128-bit content fingerprint of this program.
    ///
    /// Hashes the canonical printer form ([`print_program`]), so two
    /// programs fingerprint equal iff they print identically — the same
    /// canonical form the textual round-trip is defined over. Stable
    /// across process runs, `OHA_THREADS` settings and platforms; used as
    /// the program half of the `oha-store` artifact key.
    ///
    /// [`print_program`]: crate::print_program
    pub fn fingerprint(&self) -> crate::Fingerprint {
        crate::Fingerprint::of_bytes(crate::print_program(self).as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::ProgramBuilder;
    use crate::inst::{InstKind, Operand};

    #[test]
    fn index_locates_instructions() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0);
        let a = f.alloc(2);
        f.store(Operand::Reg(a), 0, Operand::Const(1));
        let l = f.load(Operand::Reg(a), 0);
        f.output(Operand::Reg(l));
        f.ret(None);
        let main = pb.finish_function(f);
        let p = pb.finish(main).unwrap();

        assert_eq!(p.num_insts(), 4);
        for id in p.inst_ids() {
            assert_eq!(p.inst(id).id, id);
        }
        // The load is the third instruction of the entry block.
        let load_id = p
            .inst_ids()
            .find(|&i| matches!(p.inst(i).kind, InstKind::Load { .. }))
            .unwrap();
        assert_eq!(p.loc(load_id).index, 2);
        assert_eq!(p.func_of_inst(load_id), main);
    }

    #[test]
    fn function_lookup_by_name() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0);
        f.ret(None);
        let main = pb.finish_function(f);
        let p = pb.finish(main).unwrap();
        assert_eq!(p.function_by_name("main"), Some(main));
        assert_eq!(p.function_by_name("nope"), None);
        assert_eq!(p.function(main).name, "main");
    }
}
