//! Textual printing of programs.
//!
//! The format round-trips through [`parse_program`](crate::parse_program).
//! Block labels are printed function-locally (`b0` is always the entry of
//! the function being printed).

use std::fmt::Write as _;

use crate::ids::BlockId;
use crate::inst::{Callee, InstKind, Operand, Terminator};
use crate::program::Program;

/// Renders a program in the textual IR format.
///
/// # Examples
///
/// ```
/// use oha_ir::{ProgramBuilder, print_program, parse_program};
///
/// let mut pb = ProgramBuilder::new();
/// let mut f = pb.function("main", 0);
/// f.output(oha_ir::Operand::Const(1));
/// f.ret(None);
/// let main = pb.finish_function(f);
/// let p = pb.finish(main).unwrap();
/// let text = print_program(&p);
/// let reparsed = parse_program(&text).unwrap();
/// assert_eq!(print_program(&reparsed), text);
/// ```
pub fn print_program(program: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "entry @{}", program.function(program.entry()).name);
    for gid in program.global_ids() {
        let g = program.global(gid);
        let _ = writeln!(out, "global @{} fields={}", g.name, g.fields);
    }
    for fid in program.func_ids() {
        let f = program.function(fid);
        let base = f.entry.raw();
        let local = |b: BlockId| b.raw() - base;
        let _ = writeln!(
            out,
            "\nfunc @{}({}) regs={} {{",
            f.name,
            f.arity(),
            f.num_regs
        );
        for &bid in &f.blocks {
            let _ = writeln!(out, "b{}:", local(bid));
            let block = program.block(bid);
            for inst in &block.insts {
                let _ = writeln!(out, "  {}", render_inst(program, &inst.kind));
            }
            let term = match &block.terminator {
                Terminator::Jump(b) => format!("jmp b{}", local(*b)),
                Terminator::Branch {
                    cond,
                    then_bb,
                    else_bb,
                } => format!("br {}, b{}, b{}", cond, local(*then_bb), local(*else_bb)),
                Terminator::Return(Some(v)) => format!("ret {v}"),
                Terminator::Return(None) => "ret".to_string(),
            };
            let _ = writeln!(out, "  {term}");
        }
        let _ = writeln!(out, "}}");
    }
    out
}

fn render_callee(program: &Program, callee: &Callee) -> (String, bool) {
    match callee {
        Callee::Direct(f) => (format!("@{}", program.function(*f).name), true),
        Callee::Indirect(op) => (op.to_string(), false),
    }
}

fn render_args(args: &[Operand]) -> String {
    args.iter()
        .map(|a| a.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

fn render_inst(program: &Program, kind: &InstKind) -> String {
    match kind {
        InstKind::Copy { dst, src } => format!("{dst} = copy {src}"),
        InstKind::BinOp { dst, op, lhs, rhs } => format!("{dst} = {op} {lhs}, {rhs}"),
        InstKind::Alloc { dst, fields } => format!("{dst} = alloc {fields}"),
        InstKind::AddrGlobal { dst, global } => {
            format!("{dst} = addrg @{}", program.global(*global).name)
        }
        InstKind::AddrFunc { dst, func } => {
            format!("{dst} = addrf @{}", program.function(*func).name)
        }
        InstKind::Gep { dst, base, field } => format!("{dst} = gep {base} + {field}"),
        InstKind::Load { dst, addr, field } => format!("{dst} = load {addr} + {field}"),
        InstKind::Store { addr, field, value } => format!("store {addr} + {field}, {value}"),
        InstKind::Call { dst, callee, args } => {
            let (target, direct) = render_callee(program, callee);
            let kw = if direct { "call" } else { "icall" };
            match dst {
                Some(d) => format!("{d} = {kw} {target}({})", render_args(args)),
                None => format!("{kw} {target}({})", render_args(args)),
            }
        }
        InstKind::Lock { addr } => format!("lock {addr}"),
        InstKind::Unlock { addr } => format!("unlock {addr}"),
        InstKind::Spawn { dst, func, arg } => {
            let (target, direct) = render_callee(program, func);
            let kw = if direct { "spawn" } else { "ispawn" };
            format!("{dst} = {kw} {target}({arg})")
        }
        InstKind::Join { thread } => format!("join {thread}"),
        InstKind::Input { dst } => format!("{dst} = input"),
        InstKind::Output { value } => format!("output {value}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::inst::Operand::{Const, Reg as R};
    use crate::inst::{BinOp, CmpOp};

    #[test]
    fn prints_all_instruction_forms() {
        let mut pb = ProgramBuilder::new();
        let g = pb.global("flag", 1);
        let worker = pb.declare("worker", 1);

        let mut m = pb.function("main", 0);
        let a = m.alloc(2);
        let ga = m.addr_global(g);
        let fp = m.addr_func(worker);
        let gep = m.gep(R(a), 1);
        let l = m.load(R(gep), 0);
        m.store(R(a), 1, R(l));
        let s = m.bin(BinOp::Cmp(CmpOp::Lt), R(l), Const(3));
        let c = m.call(worker, vec![R(s)]);
        m.call_void(worker, vec![R(c)]);
        let ic = m.call_indirect(R(fp), vec![Const(1)]);
        m.lock(R(ga));
        m.unlock(R(ga));
        let t = m.spawn(worker, R(ic));
        let t2 = m.spawn_indirect(R(fp), Const(0));
        m.join(R(t));
        m.join(R(t2));
        let i = m.input();
        m.output(R(i));
        let cp = m.copy(R(i));
        let b1 = m.block();
        let b2 = m.block();
        m.branch(R(cp), b1, b2);
        m.select(b1);
        m.jump(b2);
        m.select(b2);
        m.ret(Some(R(cp)));
        let main = pb.finish_function(m);

        let mut w = pb.function("worker", 1);
        w.ret(Some(Const(0)));
        pb.finish_function(w);

        let p = pb.finish(main).unwrap();
        let text = print_program(&p);
        for needle in [
            "entry @main",
            "global @flag fields=1",
            "alloc 2",
            "addrg @flag",
            "addrf @worker",
            "gep r",
            "load r",
            "store r",
            "lt r",
            "call @worker(",
            "icall r",
            "lock r",
            "unlock r",
            "spawn @worker(",
            "ispawn r",
            "join r",
            "= input",
            "output r",
            "copy r",
            "br r",
            "jmp b",
            "ret r",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }
}
