//! Error types for program construction, validation and parsing.

use std::error::Error;
use std::fmt;

use crate::ids::{BlockId, FuncId, GlobalId, InstId, Reg};

/// Errors produced while finishing or validating a program.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum IrError {
    /// A declared function never received a body.
    MissingBody {
        /// Name of the body-less function.
        function: String,
    },
    /// A block was left without a terminator.
    MissingTerminator {
        /// Function containing the block.
        function: FuncId,
        /// The unterminated block.
        block: BlockId,
    },
    /// An instruction or terminator references a register `>= num_regs`.
    BadRegister {
        /// The instruction at fault (or the block's terminator when the
        /// instruction id is the block's last instruction id + 1).
        inst: InstId,
        /// The out-of-range register.
        reg: Reg,
    },
    /// A terminator targets a block outside its function.
    BadBlockTarget {
        /// The function whose terminator is at fault.
        function: FuncId,
        /// The bad target.
        target: BlockId,
    },
    /// A direct call or spawn references an unknown function.
    BadCallee {
        /// The call instruction.
        inst: InstId,
        /// The unknown callee.
        callee: FuncId,
    },
    /// A direct call passes the wrong number of arguments.
    ArityMismatch {
        /// The call instruction.
        inst: InstId,
        /// The called function.
        callee: FuncId,
        /// Number of arguments the function expects.
        expected: usize,
        /// Number of arguments supplied.
        found: usize,
    },
    /// An instruction references an unknown global.
    BadGlobal {
        /// The instruction at fault.
        inst: InstId,
        /// The unknown global.
        global: GlobalId,
    },
    /// The designated entry function does not exist or takes parameters.
    BadEntry {
        /// The offending entry id.
        entry: FuncId,
        /// Why it is unusable.
        reason: String,
    },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::MissingBody { function } => {
                write!(f, "function {function} was declared but has no body")
            }
            IrError::MissingTerminator { function, block } => {
                write!(f, "block {block} of function {function} has no terminator")
            }
            IrError::BadRegister { inst, reg } => {
                write!(
                    f,
                    "instruction {inst} references out-of-range register {reg}"
                )
            }
            IrError::BadBlockTarget { function, target } => {
                write!(
                    f,
                    "terminator in function {function} targets foreign block {target}"
                )
            }
            IrError::BadCallee { inst, callee } => {
                write!(f, "instruction {inst} calls unknown function {callee}")
            }
            IrError::ArityMismatch {
                inst,
                callee,
                expected,
                found,
            } => write!(
                f,
                "instruction {inst} calls {callee} with {found} arguments, expected {expected}"
            ),
            IrError::BadGlobal { inst, global } => {
                write!(f, "instruction {inst} references unknown global {global}")
            }
            IrError::BadEntry { entry, reason } => {
                write!(f, "entry function {entry} is unusable: {reason}")
            }
        }
    }
}

impl Error for IrError {}

/// Errors produced while parsing the textual IR format.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseProgramError {
    pub(crate) line: usize,
    pub(crate) message: String,
}

impl ParseProgramError {
    /// The 1-based source line where parsing failed.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl Error for ParseProgramError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_meaningfully() {
        let e = IrError::ArityMismatch {
            inst: InstId::new(3),
            callee: FuncId::new(1),
            expected: 2,
            found: 0,
        };
        let s = e.to_string();
        assert!(s.contains("i3") && s.contains("@f1") && s.contains("expected 2"));

        let p = ParseProgramError {
            line: 12,
            message: "bad token".to_string(),
        };
        assert_eq!(p.line(), 12);
        assert!(p.to_string().contains("line 12"));
    }
}
