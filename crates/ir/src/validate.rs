//! Whole-program structural validation.

use crate::error::IrError;
use crate::ids::{FuncId, InstId, Reg};
use crate::inst::{Callee, InstKind, Operand, Terminator};
use crate::program::Program;

/// Validates the structural invariants of a program.
///
/// Checked invariants:
///
/// * every register referenced by an instruction or terminator is within its
///   function's register count;
/// * every terminator targets blocks belonging to the same function;
/// * every direct call/spawn target exists and direct calls pass the declared
///   number of arguments (spawned entry functions must take exactly one);
/// * every referenced global exists;
/// * the entry function exists and takes no parameters.
///
/// # Errors
///
/// Returns the first violated invariant as an [`IrError`].
pub fn validate(program: &Program) -> Result<(), IrError> {
    let entry = program.entry();
    if entry.index() >= program.num_functions() {
        return Err(IrError::BadEntry {
            entry,
            reason: "function does not exist".to_string(),
        });
    }
    if program.function(entry).arity() != 0 {
        return Err(IrError::BadEntry {
            entry,
            reason: "entry must take no parameters".to_string(),
        });
    }

    for fid in program.func_ids() {
        let func = program.function(fid);
        let check_reg = |inst: InstId, reg: Reg| {
            if reg.raw() >= func.num_regs {
                Err(IrError::BadRegister { inst, reg })
            } else {
                Ok(())
            }
        };

        for &bid in &func.blocks {
            let block = program.block(bid);
            for inst in &block.insts {
                if let Some(d) = inst.kind.def() {
                    check_reg(inst.id, d)?;
                }
                for u in inst.kind.uses() {
                    check_reg(inst.id, u)?;
                }
                validate_inst(program, fid, inst.id, &inst.kind)?;
            }
            for target in block.terminator.successors() {
                if program.block(target).func != fid || !func.blocks.contains(&target) {
                    return Err(IrError::BadBlockTarget {
                        function: fid,
                        target,
                    });
                }
            }
            if let Terminator::Branch {
                cond: Operand::Reg(r),
                ..
            } = &block.terminator
            {
                let last = block
                    .insts
                    .last()
                    .map(|i| InstId::new(i.id.raw() + 1))
                    .unwrap_or(InstId::new(0));
                check_reg(last, *r)?;
            }
            if let Terminator::Return(Some(Operand::Reg(r))) = &block.terminator {
                let last = block
                    .insts
                    .last()
                    .map(|i| InstId::new(i.id.raw() + 1))
                    .unwrap_or(InstId::new(0));
                check_reg(last, *r)?;
            }
        }
    }
    Ok(())
}

fn validate_inst(
    program: &Program,
    _func: FuncId,
    inst: InstId,
    kind: &InstKind,
) -> Result<(), IrError> {
    let check_callee = |callee: FuncId| {
        if callee.index() >= program.num_functions() {
            Err(IrError::BadCallee { inst, callee })
        } else {
            Ok(())
        }
    };
    match kind {
        InstKind::Call {
            callee: Callee::Direct(fid),
            args,
            ..
        } => {
            check_callee(*fid)?;
            let expected = program.function(*fid).arity();
            if args.len() != expected {
                return Err(IrError::ArityMismatch {
                    inst,
                    callee: *fid,
                    expected,
                    found: args.len(),
                });
            }
        }
        InstKind::Spawn {
            func: Callee::Direct(fid),
            ..
        } => {
            check_callee(*fid)?;
            let expected = program.function(*fid).arity();
            if expected != 1 {
                return Err(IrError::ArityMismatch {
                    inst,
                    callee: *fid,
                    expected,
                    found: 1,
                });
            }
        }
        InstKind::AddrFunc { func, .. } => check_callee(*func)?,
        InstKind::AddrGlobal { global, .. } if global.index() >= program.num_globals() => {
            return Err(IrError::BadGlobal {
                inst,
                global: *global,
            });
        }
        _ => {}
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::builder::ProgramBuilder;
    use crate::error::IrError;
    use crate::inst::Operand::Const;

    #[test]
    fn entry_with_params_rejected() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 1);
        f.ret(None);
        let main = pb.finish_function(f);
        let err = pb.finish(main).unwrap_err();
        assert!(matches!(err, IrError::BadEntry { .. }));
    }

    #[test]
    fn call_arity_checked() {
        let mut pb = ProgramBuilder::new();
        let two = pb.declare("two", 2);
        let mut f = pb.function("main", 0);
        f.call_void(two, vec![Const(1)]); // wrong arity
        f.ret(None);
        let main = pb.finish_function(f);
        let mut t = pb.function("two", 2);
        t.ret(None);
        pb.finish_function(t);
        let err = pb.finish(main).unwrap_err();
        assert!(matches!(err, IrError::ArityMismatch { .. }));
    }

    #[test]
    fn spawn_entry_must_take_one_arg() {
        let mut pb = ProgramBuilder::new();
        let zero = pb.declare("zero", 0);
        let mut f = pb.function("main", 0);
        f.spawn(zero, Const(0));
        f.ret(None);
        let main = pb.finish_function(f);
        let mut z = pb.function("zero", 0);
        z.ret(None);
        pb.finish_function(z);
        let err = pb.finish(main).unwrap_err();
        assert!(matches!(err, IrError::ArityMismatch { .. }));
    }

    #[test]
    fn valid_program_passes() {
        let mut pb = ProgramBuilder::new();
        let worker = pb.declare("worker", 1);
        let mut f = pb.function("main", 0);
        let t = f.spawn(worker, Const(7));
        f.join(crate::Operand::Reg(t));
        f.ret(None);
        let main = pb.finish_function(f);
        let mut w = pb.function("worker", 1);
        w.output(crate::Operand::Reg(w.param(0)));
        w.ret(None);
        pb.finish_function(w);
        assert!(pb.finish(main).is_ok());
    }
}
