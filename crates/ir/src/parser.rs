//! Parsing of the textual IR format produced by
//! [`print_program`](crate::print_program).

use std::collections::HashMap;

use crate::error::ParseProgramError;
use crate::function::{BasicBlock, Function, Global};
use crate::ids::{BlockId, FuncId, GlobalId, InstId, Reg};
use crate::inst::{BinOp, Callee, Inst, InstKind, Operand, Terminator};
use crate::program::Program;
use crate::validate::validate;

type PResult<T> = Result<T, ParseProgramError>;

fn err<T>(line: usize, message: impl Into<String>) -> PResult<T> {
    Err(ParseProgramError {
        line,
        message: message.into(),
    })
}

/// Parses a program from the textual IR format.
///
/// The format is the one produced by [`print_program`](crate::print_program);
/// `parse_program(&print_program(&p))` reproduces `p` exactly (ids included).
///
/// # Errors
///
/// Returns a [`ParseProgramError`] carrying the offending line on any
/// syntactic or semantic (validation) failure.
///
/// # Examples
///
/// ```
/// let text = "\
/// entry @main
///
/// func @main(0) regs=1 {
/// b0:
///   r0 = input
///   output r0
///   ret
/// }
/// ";
/// let p = oha_ir::parse_program(text)?;
/// assert_eq!(p.num_functions(), 1);
/// # Ok::<(), oha_ir::ParseProgramError>(())
/// ```
pub fn parse_program(text: &str) -> PResult<Program> {
    let lines: Vec<(usize, &str)> = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, strip_comment(l).trim()))
        .filter(|(_, l)| !l.is_empty())
        .collect();

    // Pass 1: collect names.
    let mut func_names: HashMap<String, FuncId> = HashMap::new();
    let mut func_order: Vec<(String, usize)> = Vec::new(); // (name, arity)
    let mut globals: Vec<Global> = Vec::new();
    let mut global_names: HashMap<String, GlobalId> = HashMap::new();
    let mut entry_name: Option<String> = None;

    for &(ln, line) in &lines {
        if let Some(rest) = line.strip_prefix("entry ") {
            let name = parse_at_name(ln, rest.trim())?;
            entry_name = Some(name);
        } else if let Some(rest) = line.strip_prefix("global ") {
            let (name, fields) = parse_global_decl(ln, rest)?;
            let id = GlobalId::new(globals.len() as u32);
            if global_names.insert(name.clone(), id).is_some() {
                return err(ln, format!("duplicate global @{name}"));
            }
            globals.push(Global { name, fields });
        } else if let Some(rest) = line.strip_prefix("func ") {
            let (name, arity, _regs) = parse_func_header(ln, rest)?;
            let id = FuncId::new(func_order.len() as u32);
            if func_names.insert(name.clone(), id).is_some() {
                return err(ln, format!("duplicate function @{name}"));
            }
            func_order.push((name, arity));
        }
    }
    let entry_name = match entry_name {
        Some(n) => n,
        None => return err(1, "missing `entry @name` header"),
    };
    let entry = match func_names.get(&entry_name) {
        Some(&id) => id,
        None => return err(1, format!("entry function @{entry_name} not defined")),
    };

    // Pass 2: parse bodies.
    let mut functions: Vec<Function> = Vec::new();
    let mut blocks: Vec<BasicBlock> = Vec::new();
    let mut next_inst = 0u32;
    let mut i = 0;
    while i < lines.len() {
        let (ln, line) = lines[i];
        i += 1;
        if line.starts_with("entry ") || line.starts_with("global ") {
            continue;
        }
        let rest = match line.strip_prefix("func ") {
            Some(r) => r,
            None => return err(ln, format!("unexpected top-level line: {line}")),
        };
        let (name, arity, num_regs) = parse_func_header(ln, rest)?;
        let fid = func_names[&name];
        let base = blocks.len() as u32;

        // Collect this function's body lines up to the closing brace,
        // splitting into blocks on `bN:` labels.
        let mut local_blocks: Vec<(Vec<Inst>, Option<Terminator>)> = Vec::new();
        let mut closed = false;
        while i < lines.len() {
            let (ln2, line2) = lines[i];
            i += 1;
            if line2 == "}" {
                closed = true;
                break;
            }
            if let Some(label) = line2.strip_suffix(':') {
                let idx = parse_block_label(ln2, label)?;
                if idx as usize != local_blocks.len() {
                    return err(ln2, format!("block labels must be sequential, got b{idx}"));
                }
                local_blocks.push((Vec::new(), None));
                continue;
            }
            let cur = match local_blocks.last_mut() {
                Some(c) => c,
                None => return err(ln2, "instruction before first block label"),
            };
            if cur.1.is_some() {
                return err(ln2, "instruction after block terminator");
            }
            if let Some(t) = parse_terminator(ln2, line2, base)? {
                cur.1 = Some(t);
            } else {
                let kind = parse_inst(ln2, line2, &func_names, &global_names)?;
                let id = InstId::new(next_inst);
                next_inst += 1;
                cur.0.push(Inst { id, kind });
            }
        }
        if !closed {
            return err(ln, format!("function @{name} missing closing brace"));
        }
        if local_blocks.is_empty() {
            return err(ln, format!("function @{name} has no blocks"));
        }
        let mut block_ids = Vec::with_capacity(local_blocks.len());
        for (bi, (insts, term)) in local_blocks.into_iter().enumerate() {
            let terminator = match term {
                Some(t) => t,
                None => return err(ln, format!("block b{bi} of @{name} has no terminator")),
            };
            block_ids.push(BlockId::new(base + bi as u32));
            blocks.push(BasicBlock {
                func: fid,
                insts,
                terminator,
            });
        }
        functions.push(Function {
            name,
            params: (0..arity as u32).map(Reg::new).collect(),
            num_regs,
            entry: BlockId::new(base),
            blocks: block_ids,
        });
    }

    if functions.len() != func_order.len() {
        return err(1, "internal error: function count mismatch");
    }
    let program = Program::from_parts(functions, blocks, globals, entry);
    validate(&program).map_err(|e| ParseProgramError {
        line: 0,
        message: format!("validation failed: {e}"),
    })?;
    Ok(program)
}

fn strip_comment(line: &str) -> &str {
    match line.find(';') {
        Some(pos) => &line[..pos],
        None => line,
    }
}

fn parse_at_name(line: usize, token: &str) -> PResult<String> {
    match token.strip_prefix('@') {
        Some(n) if !n.is_empty() => Ok(n.to_string()),
        _ => err(line, format!("expected @name, got {token:?}")),
    }
}

fn parse_global_decl(line: usize, rest: &str) -> PResult<(String, u32)> {
    // "@name fields=N"
    let mut parts = rest.split_whitespace();
    let name = parse_at_name(line, parts.next().unwrap_or(""))?;
    let fields = match parts.next().and_then(|t| t.strip_prefix("fields=")) {
        Some(n) => n.parse::<u32>().map_err(|_| ParseProgramError {
            line,
            message: format!("bad field count in global @{name}"),
        })?,
        None => return err(line, "expected fields=N"),
    };
    Ok((name, fields))
}

fn parse_func_header(line: usize, rest: &str) -> PResult<(String, usize, u32)> {
    // "@name(arity) regs=N {"
    let rest = rest.trim_end_matches('{').trim();
    let open = rest.find('(').ok_or_else(|| ParseProgramError {
        line,
        message: "expected ( in func header".to_string(),
    })?;
    let close = rest.find(')').ok_or_else(|| ParseProgramError {
        line,
        message: "expected ) in func header".to_string(),
    })?;
    let name = parse_at_name(line, &rest[..open])?;
    let arity: usize = rest[open + 1..close]
        .trim()
        .parse()
        .map_err(|_| ParseProgramError {
            line,
            message: "bad arity".to_string(),
        })?;
    let regs = rest[close + 1..]
        .trim()
        .strip_prefix("regs=")
        .and_then(|t| t.parse::<u32>().ok())
        .ok_or_else(|| ParseProgramError {
            line,
            message: "expected regs=N".to_string(),
        })?;
    Ok((name, arity, regs))
}

fn parse_block_label(line: usize, label: &str) -> PResult<u32> {
    label
        .strip_prefix('b')
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| ParseProgramError {
            line,
            message: format!("bad block label {label:?}"),
        })
}

fn parse_operand(line: usize, token: &str) -> PResult<Operand> {
    let token = token.trim();
    if let Some(r) = token.strip_prefix('r') {
        if let Ok(n) = r.parse::<u32>() {
            return Ok(Operand::Reg(Reg::new(n)));
        }
    }
    token
        .parse::<i64>()
        .map(Operand::Const)
        .map_err(|_| ParseProgramError {
            line,
            message: format!("bad operand {token:?}"),
        })
}

fn parse_reg(line: usize, token: &str) -> PResult<Reg> {
    match parse_operand(line, token)? {
        Operand::Reg(r) => Ok(r),
        Operand::Const(_) => err(line, format!("expected register, got {token:?}")),
    }
}

fn parse_terminator(line: usize, text: &str, base: u32) -> PResult<Option<Terminator>> {
    let blk = |line: usize, t: &str| -> PResult<BlockId> {
        parse_block_label(line, t.trim()).map(|n| BlockId::new(base + n))
    };
    if let Some(rest) = text.strip_prefix("jmp ") {
        return Ok(Some(Terminator::Jump(blk(line, rest)?)));
    }
    if let Some(rest) = text.strip_prefix("br ") {
        let parts: Vec<&str> = rest.split(',').collect();
        if parts.len() != 3 {
            return err(line, "br expects cond, then, else");
        }
        return Ok(Some(Terminator::Branch {
            cond: parse_operand(line, parts[0])?,
            then_bb: blk(line, parts[1])?,
            else_bb: blk(line, parts[2])?,
        }));
    }
    if text == "ret" {
        return Ok(Some(Terminator::Return(None)));
    }
    if let Some(rest) = text.strip_prefix("ret ") {
        return Ok(Some(Terminator::Return(Some(parse_operand(line, rest)?))));
    }
    Ok(None)
}

/// Parses `target(arg1, arg2)` into a callee and args.
fn parse_call_tail<'a>(
    line: usize,
    text: &'a str,
    funcs: &HashMap<String, FuncId>,
) -> PResult<(Callee, Vec<Operand>)> {
    let open = text.find('(').ok_or_else(|| ParseProgramError {
        line,
        message: "expected ( in call".to_string(),
    })?;
    let close = text.rfind(')').ok_or_else(|| ParseProgramError {
        line,
        message: "expected ) in call".to_string(),
    })?;
    let target: &'a str = text[..open].trim();
    let callee = if let Some(name) = target.strip_prefix('@') {
        match funcs.get(name) {
            Some(&f) => Callee::Direct(f),
            None => return err(line, format!("unknown function @{name}")),
        }
    } else {
        Callee::Indirect(parse_operand(line, target)?)
    };
    let inner = text[open + 1..close].trim();
    let args = if inner.is_empty() {
        Vec::new()
    } else {
        inner
            .split(',')
            .map(|a| parse_operand(line, a))
            .collect::<PResult<Vec<_>>>()?
    };
    Ok((callee, args))
}

fn parse_addr_field(line: usize, text: &str) -> PResult<(Operand, u32)> {
    // "addr + field"
    let mut parts = text.splitn(2, '+');
    let addr = parse_operand(line, parts.next().unwrap_or(""))?;
    let field = parts
        .next()
        .map(|t| {
            t.trim().parse::<u32>().map_err(|_| ParseProgramError {
                line,
                message: format!("bad field offset in {text:?}"),
            })
        })
        .transpose()?
        .unwrap_or(0);
    Ok((addr, field))
}

fn parse_inst(
    line: usize,
    text: &str,
    funcs: &HashMap<String, FuncId>,
    globals: &HashMap<String, GlobalId>,
) -> PResult<InstKind> {
    // Forms without a destination.
    if let Some(rest) = text.strip_prefix("store ") {
        let parts: Vec<&str> = rest.rsplitn(2, ',').collect();
        if parts.len() != 2 {
            return err(line, "store expects addr + field, value");
        }
        let (addr, field) = parse_addr_field(line, parts[1])?;
        let value = parse_operand(line, parts[0])?;
        return Ok(InstKind::Store { addr, field, value });
    }
    if let Some(rest) = text.strip_prefix("lock ") {
        return Ok(InstKind::Lock {
            addr: parse_operand(line, rest)?,
        });
    }
    if let Some(rest) = text.strip_prefix("unlock ") {
        return Ok(InstKind::Unlock {
            addr: parse_operand(line, rest)?,
        });
    }
    if let Some(rest) = text.strip_prefix("join ") {
        return Ok(InstKind::Join {
            thread: parse_operand(line, rest)?,
        });
    }
    if let Some(rest) = text.strip_prefix("output ") {
        return Ok(InstKind::Output {
            value: parse_operand(line, rest)?,
        });
    }
    if let Some(rest) = text
        .strip_prefix("call ")
        .or_else(|| text.strip_prefix("icall "))
    {
        let (callee, args) = parse_call_tail(line, rest, funcs)?;
        return Ok(InstKind::Call {
            dst: None,
            callee,
            args,
        });
    }

    // Forms with a destination: "rN = op …".
    let (dst_text, rhs) = match text.split_once('=') {
        Some((d, r)) => (d.trim(), r.trim()),
        None => return err(line, format!("unrecognized instruction: {text}")),
    };
    let dst = parse_reg(line, dst_text)?;

    if let Some(rest) = rhs.strip_prefix("copy ") {
        return Ok(InstKind::Copy {
            dst,
            src: parse_operand(line, rest)?,
        });
    }
    if let Some(rest) = rhs.strip_prefix("alloc ") {
        let fields = rest.trim().parse().map_err(|_| ParseProgramError {
            line,
            message: "bad alloc size".to_string(),
        })?;
        return Ok(InstKind::Alloc { dst, fields });
    }
    if let Some(rest) = rhs.strip_prefix("addrg ") {
        let name = parse_at_name(line, rest.trim())?;
        let global = *globals.get(&name).ok_or_else(|| ParseProgramError {
            line,
            message: format!("unknown global @{name}"),
        })?;
        return Ok(InstKind::AddrGlobal { dst, global });
    }
    if let Some(rest) = rhs.strip_prefix("addrf ") {
        let name = parse_at_name(line, rest.trim())?;
        let func = *funcs.get(&name).ok_or_else(|| ParseProgramError {
            line,
            message: format!("unknown function @{name}"),
        })?;
        return Ok(InstKind::AddrFunc { dst, func });
    }
    if let Some(rest) = rhs.strip_prefix("gep ") {
        let (base, field) = parse_addr_field(line, rest)?;
        return Ok(InstKind::Gep { dst, base, field });
    }
    if let Some(rest) = rhs.strip_prefix("load ") {
        let (addr, field) = parse_addr_field(line, rest)?;
        return Ok(InstKind::Load { dst, addr, field });
    }
    if rhs == "input" {
        return Ok(InstKind::Input { dst });
    }
    if let Some(rest) = rhs
        .strip_prefix("call ")
        .or_else(|| rhs.strip_prefix("icall "))
    {
        let (callee, args) = parse_call_tail(line, rest, funcs)?;
        return Ok(InstKind::Call {
            dst: Some(dst),
            callee,
            args,
        });
    }
    if let Some(rest) = rhs
        .strip_prefix("spawn ")
        .or_else(|| rhs.strip_prefix("ispawn "))
    {
        let (func, mut args) = parse_call_tail(line, rest, funcs)?;
        if args.len() != 1 {
            return err(line, "spawn expects exactly one argument");
        }
        return Ok(InstKind::Spawn {
            dst,
            func,
            arg: args.pop().expect("checked length"),
        });
    }
    // Binary operation: "op lhs, rhs".
    if let Some((op_name, operands)) = rhs.split_once(' ') {
        if let Some(op) = BinOp::from_name(op_name) {
            let parts: Vec<&str> = operands.split(',').collect();
            if parts.len() != 2 {
                return err(line, format!("{op_name} expects two operands"));
            }
            return Ok(InstKind::BinOp {
                dst,
                op,
                lhs: parse_operand(line, parts[0])?,
                rhs: parse_operand(line, parts[1])?,
            });
        }
    }
    err(line, format!("unrecognized instruction: {text}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::inst::Operand::{Const, Reg as R};
    use crate::inst::{BinOp, CmpOp};
    use crate::printer::print_program;

    fn rich_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let g = pb.global("state", 3);
        let worker = pb.declare("worker", 1);

        let mut m = pb.function("main", 0);
        let a = m.alloc(2);
        let ga = m.addr_global(g);
        let fp = m.addr_func(worker);
        let gp = m.gep(R(a), 1);
        let l = m.load(R(gp), 0);
        m.store(R(a), 1, R(l));
        let s = m.bin(BinOp::Cmp(CmpOp::Lt), R(l), Const(3));
        let c = m.call(worker, vec![R(s)]);
        m.call_void(worker, vec![R(c)]);
        let ic = m.call_indirect(R(fp), vec![Const(1)]);
        m.lock(R(ga));
        m.unlock(R(ga));
        let t = m.spawn(worker, R(ic));
        m.join(R(t));
        let i = m.input();
        m.output(R(i));
        let cp = m.copy(R(i));
        let b1 = m.block();
        let b2 = m.block();
        m.branch(R(cp), b1, b2);
        m.select(b1);
        m.jump(b2);
        m.select(b2);
        m.ret(Some(R(cp)));
        let main = pb.finish_function(m);

        let mut w = pb.function("worker", 1);
        let neg = w.bin(BinOp::Sub, Const(0), R(w.param(0)));
        w.ret(Some(R(neg)));
        pb.finish_function(w);
        pb.finish(main).unwrap()
    }

    #[test]
    fn round_trips_rich_program() {
        let p = rich_program();
        let text = print_program(&p);
        let q = parse_program(&text).expect("parse printed program");
        assert_eq!(print_program(&q), text);
        assert_eq!(p.num_insts(), q.num_insts());
        assert_eq!(p.num_blocks(), q.num_blocks());
        for id in p.inst_ids() {
            assert_eq!(p.inst(id), q.inst(id), "instruction {id} differs");
        }
    }

    #[test]
    fn reports_line_numbers() {
        let text = "entry @main\n\nfunc @main(0) regs=1 {\nb0:\n  r0 = frob 1, 2\n  ret\n}\n";
        let e = parse_program(text).unwrap_err();
        assert_eq!(e.line(), 5);
    }

    #[test]
    fn rejects_unknown_callee() {
        let text = "entry @main\nfunc @main(0) regs=1 {\nb0:\n  call @ghost()\n  ret\n}\n";
        let e = parse_program(text).unwrap_err();
        assert!(e.to_string().contains("ghost"));
    }

    #[test]
    fn rejects_missing_entry() {
        let text = "func @main(0) regs=0 {\nb0:\n  ret\n}\n";
        assert!(parse_program(text).is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "entry @main ; the entry\n\n; standalone comment\nfunc @main(0) regs=1 {\nb0:\n  r0 = input ; read\n  ret\n}\n";
        let p = parse_program(text).unwrap();
        assert_eq!(p.num_insts(), 1);
    }
}
