//! Dense, typed identifiers for IR entities.
//!
//! All ids are assigned densely (starting from zero) when a program is
//! finished by the builder, so analyses can index plain vectors and bit sets
//! by them. The newtypes keep the different id spaces from being confused
//! ([C-NEWTYPE]).

use std::fmt;

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(u32);

        impl $name {
            /// Creates an id from a raw index.
            pub const fn new(index: u32) -> Self {
                Self(index)
            }

            /// Returns the raw dense index of this id.
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Returns the raw `u32` value of this id.
            pub const fn raw(self) -> u32 {
                self.0
            }
        }

        impl From<u32> for $name {
            fn from(value: u32) -> Self {
                Self(value)
            }
        }

        impl From<$name> for u32 {
            fn from(value: $name) -> u32 {
                value.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// Identifier of a function within a [`Program`](crate::Program).
    FuncId,
    "@f"
);
define_id!(
    /// Program-wide identifier of a basic block.
    ///
    /// Block ids are dense across the whole program (not per function) so
    /// block-keyed facts such as the likely-unreachable-code invariant can be
    /// stored in a single bit set.
    BlockId,
    "b"
);
define_id!(
    /// Program-wide identifier of an instruction.
    ///
    /// Instruction ids are dense across the whole program; they identify
    /// *instrumentation sites* for the dynamic analyses.
    InstId,
    "i"
);
define_id!(
    /// Identifier of a global object.
    GlobalId,
    "g"
);
define_id!(
    /// A virtual register, local to one function.
    ///
    /// Registers are mutable (the IR is not SSA); definition-use information
    /// is recovered by the reaching-definitions analysis in `oha-dataflow`.
    Reg,
    "r"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_raw_values() {
        let f = FuncId::new(7);
        assert_eq!(f.index(), 7);
        assert_eq!(f.raw(), 7);
        assert_eq!(FuncId::from(7u32), f);
        assert_eq!(u32::from(f), 7);
    }

    #[test]
    fn ids_format_with_prefixes() {
        assert_eq!(FuncId::new(1).to_string(), "@f1");
        assert_eq!(BlockId::new(2).to_string(), "b2");
        assert_eq!(InstId::new(3).to_string(), "i3");
        assert_eq!(GlobalId::new(4).to_string(), "g4");
        assert_eq!(Reg::new(5).to_string(), "r5");
        assert_eq!(format!("{:?}", Reg::new(5)), "r5");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(InstId::new(1) < InstId::new(2));
        assert_eq!(BlockId::default(), BlockId::new(0));
    }
}
