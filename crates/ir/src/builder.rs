//! Builders for constructing programs.
//!
//! [`ProgramBuilder`] owns the program-level namespaces (functions, globals);
//! [`FunctionBuilder`] builds one function's blocks and instructions. Block
//! and instruction ids are local while building and are renumbered into the
//! program-wide dense id spaces by [`ProgramBuilder::finish`].

use std::collections::HashMap;

use crate::error::IrError;
use crate::function::{BasicBlock, Function, Global};
use crate::ids::{BlockId, FuncId, GlobalId, InstId, Reg};
use crate::inst::{BinOp, Callee, CmpOp, Inst, InstKind, Operand, Terminator};
use crate::program::Program;
use crate::validate::validate;

#[derive(Debug)]
struct LocalBlock {
    insts: Vec<InstKind>,
    terminator: Option<Terminator>,
}

#[derive(Debug)]
struct PendingFunction {
    name: String,
    arity: usize,
    body: Option<BuiltBody>,
}

#[derive(Debug)]
struct BuiltBody {
    num_regs: u32,
    blocks: Vec<LocalBlock>,
}

/// Builds a [`Program`].
///
/// Functions may be declared before their bodies exist (enabling forward and
/// mutually recursive references); every declared function must have a body
/// by the time [`ProgramBuilder::finish`] is called.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    functions: Vec<PendingFunction>,
    by_name: HashMap<String, FuncId>,
    globals: Vec<Global>,
    globals_by_name: HashMap<String, GlobalId>,
}

impl ProgramBuilder {
    /// Creates an empty program builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a function without providing its body yet.
    ///
    /// Returns the existing id if `name` was already declared.
    ///
    /// # Panics
    ///
    /// Panics if the function was declared before with a different arity.
    pub fn declare(&mut self, name: &str, arity: usize) -> FuncId {
        if let Some(&id) = self.by_name.get(name) {
            assert_eq!(
                self.functions[id.index()].arity,
                arity,
                "function {name} redeclared with different arity"
            );
            return id;
        }
        let id = FuncId::new(self.functions.len() as u32);
        self.functions.push(PendingFunction {
            name: name.to_string(),
            arity,
            body: None,
        });
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Starts building the body of a function with `arity` parameters.
    ///
    /// The parameters occupy registers `r0..r{arity}`. The entry block is
    /// created and selected automatically.
    pub fn function(&mut self, name: &str, arity: usize) -> FunctionBuilder {
        let id = self.declare(name, arity);
        FunctionBuilder::new(id, arity)
    }

    /// Installs a finished function body and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if a body was already installed for this function.
    pub fn finish_function(&mut self, fb: FunctionBuilder) -> FuncId {
        let id = fb.id;
        let slot = &mut self.functions[id.index()];
        assert!(
            slot.body.is_none(),
            "function {} already has a body",
            slot.name
        );
        slot.body = Some(BuiltBody {
            num_regs: fb.num_regs,
            blocks: fb.blocks,
        });
        id
    }

    /// Declares a global object with the given number of fields.
    ///
    /// Returns the existing id if `name` was already declared.
    ///
    /// # Panics
    ///
    /// Panics if the global was declared before with a different field count.
    pub fn global(&mut self, name: &str, fields: u32) -> GlobalId {
        if let Some(&id) = self.globals_by_name.get(name) {
            assert_eq!(
                self.globals[id.index()].fields,
                fields,
                "global {name} redeclared with different size"
            );
            return id;
        }
        let id = GlobalId::new(self.globals.len() as u32);
        self.globals.push(Global {
            name: name.to_string(),
            fields,
        });
        self.globals_by_name.insert(name.to_string(), id);
        id
    }

    /// Finalizes the program: renumbers blocks and instructions into the
    /// dense program-wide id spaces and validates the result.
    ///
    /// # Errors
    ///
    /// Returns an [`IrError`] if any declared function has no body, a block
    /// lacks a terminator, or validation fails (bad register, block or
    /// callee references, arity mismatches, …).
    pub fn finish(self, entry: FuncId) -> Result<Program, IrError> {
        let mut functions = Vec::with_capacity(self.functions.len());
        let mut blocks: Vec<BasicBlock> = Vec::new();
        let mut next_inst = 0u32;

        for (fi, pf) in self.functions.into_iter().enumerate() {
            let fid = FuncId::new(fi as u32);
            let body = pf.body.ok_or_else(|| IrError::MissingBody {
                function: pf.name.clone(),
            })?;
            let offset = blocks.len() as u32;
            let mut block_ids = Vec::with_capacity(body.blocks.len());
            for (bi, lb) in body.blocks.into_iter().enumerate() {
                let terminator = lb.terminator.ok_or(IrError::MissingTerminator {
                    function: fid,
                    block: BlockId::new(offset + bi as u32),
                })?;
                let terminator = remap_terminator(terminator, offset);
                let insts = lb
                    .insts
                    .into_iter()
                    .map(|kind| {
                        let id = InstId::new(next_inst);
                        next_inst += 1;
                        Inst { id, kind }
                    })
                    .collect();
                block_ids.push(BlockId::new(offset + bi as u32));
                blocks.push(BasicBlock {
                    func: fid,
                    insts,
                    terminator,
                });
            }
            functions.push(Function {
                name: pf.name,
                params: (0..pf.arity as u32).map(Reg::new).collect(),
                num_regs: body.num_regs,
                entry: BlockId::new(offset),
                blocks: block_ids,
            });
        }

        let program = Program::from_parts(functions, blocks, self.globals, entry);
        validate(&program)?;
        Ok(program)
    }
}

fn remap_terminator(t: Terminator, offset: u32) -> Terminator {
    let remap = |b: BlockId| BlockId::new(b.raw() + offset);
    match t {
        Terminator::Jump(b) => Terminator::Jump(remap(b)),
        Terminator::Branch {
            cond,
            then_bb,
            else_bb,
        } => Terminator::Branch {
            cond,
            then_bb: remap(then_bb),
            else_bb: remap(else_bb),
        },
        Terminator::Return(op) => Terminator::Return(op),
    }
}

/// Builds one function's body.
///
/// Instructions are appended to the *current* block; [`FunctionBuilder::block`]
/// creates additional blocks and [`FunctionBuilder::select`] switches between
/// them. Block ids returned here are local to the function until the program
/// is finished.
#[derive(Debug)]
pub struct FunctionBuilder {
    id: FuncId,
    arity: u32,
    num_regs: u32,
    blocks: Vec<LocalBlock>,
    current: usize,
}

impl FunctionBuilder {
    fn new(id: FuncId, arity: usize) -> Self {
        Self {
            id,
            arity: arity as u32,
            num_regs: arity as u32,
            blocks: vec![LocalBlock {
                insts: Vec::new(),
                terminator: None,
            }],
            current: 0,
        }
    }

    /// The id of the function being built.
    pub fn id(&self) -> FuncId {
        self.id
    }

    /// The parameter registers of this function (always the first registers).
    pub fn params(&self) -> Vec<Reg> {
        (0..self.arity).map(Reg::new).collect()
    }

    /// The `i`-th parameter register.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not less than the function's arity.
    pub fn param(&self, i: usize) -> Reg {
        assert!((i as u32) < self.arity, "parameter index out of range");
        Reg::new(i as u32)
    }

    /// Allocates a fresh virtual register.
    pub fn reg(&mut self) -> Reg {
        let r = Reg::new(self.num_regs);
        self.num_regs += 1;
        r
    }

    /// The entry block of this function (always the first block).
    pub fn entry_block(&self) -> BlockId {
        BlockId::new(0)
    }

    /// Creates a new (empty, unterminated) block and returns its local id.
    pub fn block(&mut self) -> BlockId {
        let id = BlockId::new(self.blocks.len() as u32);
        self.blocks.push(LocalBlock {
            insts: Vec::new(),
            terminator: None,
        });
        id
    }

    /// Selects the block that subsequent instructions are appended to.
    ///
    /// # Panics
    ///
    /// Panics if `b` is not a block of this function.
    pub fn select(&mut self, b: BlockId) {
        assert!(
            b.index() < self.blocks.len(),
            "block {b} does not belong to this function"
        );
        self.current = b.index();
    }

    /// The currently selected block.
    pub fn current_block(&self) -> BlockId {
        BlockId::new(self.current as u32)
    }

    fn push(&mut self, kind: InstKind) {
        let cur = self.current;
        assert!(
            self.blocks[cur].terminator.is_none(),
            "cannot append to terminated block b{cur}"
        );
        self.blocks[cur].insts.push(kind);
    }

    fn terminate(&mut self, t: Terminator) {
        let cur = self.current;
        assert!(
            self.blocks[cur].terminator.is_none(),
            "block b{cur} already terminated"
        );
        self.blocks[cur].terminator = Some(t);
    }

    /// Emits `dst = src` into a fresh register.
    pub fn copy(&mut self, src: Operand) -> Reg {
        let dst = self.reg();
        self.push(InstKind::Copy { dst, src });
        dst
    }

    /// Emits `dst = src` into an existing register (register mutation).
    pub fn copy_to(&mut self, dst: Reg, src: Operand) {
        self.push(InstKind::Copy { dst, src });
    }

    /// Emits a binary operation into a fresh register.
    pub fn bin(&mut self, op: BinOp, lhs: Operand, rhs: Operand) -> Reg {
        let dst = self.reg();
        self.push(InstKind::BinOp { dst, op, lhs, rhs });
        dst
    }

    /// Emits a binary operation into an existing register.
    pub fn bin_to(&mut self, dst: Reg, op: BinOp, lhs: Operand, rhs: Operand) {
        self.push(InstKind::BinOp { dst, op, lhs, rhs });
    }

    /// Emits a comparison producing 0/1 into a fresh register.
    pub fn cmp(&mut self, op: CmpOp, lhs: Operand, rhs: Operand) -> Reg {
        self.bin(BinOp::Cmp(op), lhs, rhs)
    }

    /// Emits a heap allocation of an object with `fields` fields.
    pub fn alloc(&mut self, fields: u32) -> Reg {
        let dst = self.reg();
        self.push(InstKind::Alloc { dst, fields });
        dst
    }

    /// Emits `dst = &global`.
    pub fn addr_global(&mut self, global: GlobalId) -> Reg {
        let dst = self.reg();
        self.push(InstKind::AddrGlobal { dst, global });
        dst
    }

    /// Emits `dst = &func` (function pointer).
    pub fn addr_func(&mut self, func: FuncId) -> Reg {
        let dst = self.reg();
        self.push(InstKind::AddrFunc { dst, func });
        dst
    }

    /// Emits `dst = base + field` (field address computation).
    pub fn gep(&mut self, base: Operand, field: u32) -> Reg {
        let dst = self.reg();
        self.push(InstKind::Gep { dst, base, field });
        dst
    }

    /// Emits `dst = *(addr + field)`.
    pub fn load(&mut self, addr: Operand, field: u32) -> Reg {
        let dst = self.reg();
        self.push(InstKind::Load { dst, addr, field });
        dst
    }

    /// Emits `dst = *(addr + field)` into an existing register.
    pub fn load_to(&mut self, dst: Reg, addr: Operand, field: u32) {
        self.push(InstKind::Load { dst, addr, field });
    }

    /// Emits `*(addr + field) = value`.
    pub fn store(&mut self, addr: Operand, field: u32, value: Operand) {
        self.push(InstKind::Store { addr, field, value });
    }

    /// Emits a direct call whose result is captured in a fresh register.
    pub fn call(&mut self, func: FuncId, args: Vec<Operand>) -> Reg {
        let dst = self.reg();
        self.push(InstKind::Call {
            dst: Some(dst),
            callee: Callee::Direct(func),
            args,
        });
        dst
    }

    /// Emits a direct call whose result is discarded.
    pub fn call_void(&mut self, func: FuncId, args: Vec<Operand>) {
        self.push(InstKind::Call {
            dst: None,
            callee: Callee::Direct(func),
            args,
        });
    }

    /// Emits an indirect call through a function-pointer operand.
    pub fn call_indirect(&mut self, target: Operand, args: Vec<Operand>) -> Reg {
        let dst = self.reg();
        self.push(InstKind::Call {
            dst: Some(dst),
            callee: Callee::Indirect(target),
            args,
        });
        dst
    }

    /// Emits an indirect call whose result is discarded.
    pub fn call_indirect_void(&mut self, target: Operand, args: Vec<Operand>) {
        self.push(InstKind::Call {
            dst: None,
            callee: Callee::Indirect(target),
            args,
        });
    }

    /// Emits a lock acquisition on the object `addr` points to.
    pub fn lock(&mut self, addr: Operand) {
        self.push(InstKind::Lock { addr });
    }

    /// Emits a lock release on the object `addr` points to.
    pub fn unlock(&mut self, addr: Operand) {
        self.push(InstKind::Unlock { addr });
    }

    /// Emits a thread spawn running `func(arg)`; returns the register
    /// receiving the thread handle.
    pub fn spawn(&mut self, func: FuncId, arg: Operand) -> Reg {
        let dst = self.reg();
        self.push(InstKind::Spawn {
            dst,
            func: Callee::Direct(func),
            arg,
        });
        dst
    }

    /// Emits a thread spawn through a function pointer.
    pub fn spawn_indirect(&mut self, target: Operand, arg: Operand) -> Reg {
        let dst = self.reg();
        self.push(InstKind::Spawn {
            dst,
            func: Callee::Indirect(target),
            arg,
        });
        dst
    }

    /// Emits a join on a thread handle.
    pub fn join(&mut self, thread: Operand) {
        self.push(InstKind::Join { thread });
    }

    /// Emits an input read.
    pub fn input(&mut self) -> Reg {
        let dst = self.reg();
        self.push(InstKind::Input { dst });
        dst
    }

    /// Emits an output write.
    pub fn output(&mut self, value: Operand) {
        self.push(InstKind::Output { value });
    }

    /// Terminates the current block with an unconditional jump.
    ///
    /// # Panics
    ///
    /// Panics if the current block is already terminated.
    pub fn jump(&mut self, target: BlockId) {
        self.terminate(Terminator::Jump(target));
    }

    /// Terminates the current block with a conditional branch.
    ///
    /// # Panics
    ///
    /// Panics if the current block is already terminated.
    pub fn branch(&mut self, cond: Operand, then_bb: BlockId, else_bb: BlockId) {
        self.terminate(Terminator::Branch {
            cond,
            then_bb,
            else_bb,
        });
    }

    /// Terminates the current block with a return.
    ///
    /// # Panics
    ///
    /// Panics if the current block is already terminated.
    pub fn ret(&mut self, value: Option<Operand>) {
        self.terminate(Terminator::Return(value));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Operand::{Const, Reg as R};

    #[test]
    fn builds_two_function_program() {
        let mut pb = ProgramBuilder::new();
        let helper = pb.declare("helper", 1);

        let mut m = pb.function("main", 0);
        let x = m.call(helper, vec![Const(5)]);
        m.output(R(x));
        m.ret(None);
        let main = pb.finish_function(m);

        let mut h = pb.function("helper", 1);
        let p0 = Reg::new(0);
        let doubled = h.bin(BinOp::Add, R(p0), R(p0));
        h.ret(Some(R(doubled)));
        pb.finish_function(h);

        let p = pb.finish(main).unwrap();
        assert_eq!(p.num_functions(), 2);
        assert_eq!(p.entry(), main);
        assert_eq!(p.function(helper).arity(), 1);
    }

    #[test]
    fn block_ids_are_remapped_globally() {
        let mut pb = ProgramBuilder::new();
        let mut a = pb.function("a", 0);
        let b1 = a.block();
        a.jump(b1);
        a.select(b1);
        a.ret(None);
        let fa = pb.finish_function(a);

        let mut b = pb.function("b", 0);
        let b1 = b.block();
        b.jump(b1);
        b.select(b1);
        b.ret(None);
        pb.finish_function(b);

        let p = pb.finish(fa).unwrap();
        assert_eq!(p.num_blocks(), 4);
        // Function b's entry jump must target the global id of its own
        // second block (index 3), not block 1.
        let fb = p.function_by_name("b").unwrap();
        let entry = p.function(fb).entry;
        assert_eq!(p.block(entry).successors(), vec![BlockId::new(3)]);
    }

    #[test]
    fn missing_body_is_an_error() {
        let mut pb = ProgramBuilder::new();
        let _ = pb.declare("ghost", 0);
        let mut m = pb.function("main", 0);
        m.ret(None);
        let main = pb.finish_function(m);
        let err = pb.finish(main).unwrap_err();
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn missing_terminator_is_an_error() {
        let mut pb = ProgramBuilder::new();
        let mut m = pb.function("main", 0);
        let dangling = m.block();
        m.jump(dangling);
        // `dangling` never terminated.
        let main = pb.finish_function(m);
        let err = pb.finish(main).unwrap_err();
        assert!(matches!(err, IrError::MissingTerminator { .. }));
    }

    #[test]
    #[should_panic(expected = "already terminated")]
    fn double_terminate_panics() {
        let mut pb = ProgramBuilder::new();
        let mut m = pb.function("main", 0);
        m.ret(None);
        m.ret(None);
    }

    #[test]
    #[should_panic(expected = "cannot append to terminated block")]
    fn append_after_terminator_panics() {
        let mut pb = ProgramBuilder::new();
        let mut m = pb.function("main", 0);
        m.ret(None);
        m.output(Const(1));
    }
}
