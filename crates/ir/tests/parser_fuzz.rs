//! Robustness property tests for the textual IR parser: arbitrary input
//! never panics, and structured mutations of valid programs either parse
//! to something that re-prints stably or fail with a line-accurate error.

use oha_ir::{parse_program, print_program, Operand, ProgramBuilder};
use proptest::prelude::*;

fn valid_text() -> String {
    let mut pb = ProgramBuilder::new();
    let g = pb.global("state", 2);
    let helper = pb.declare("helper", 1);
    let mut m = pb.function("main", 0);
    let x = m.input();
    let ga = m.addr_global(g);
    m.store(Operand::Reg(ga), 0, Operand::Reg(x));
    let r = m.call(helper, vec![Operand::Reg(x)]);
    m.output(Operand::Reg(r));
    m.ret(None);
    let main = pb.finish_function(m);
    let mut h = pb.function("helper", 1);
    let v = h.load(Operand::Reg(h.param(0)), 0);
    h.ret(Some(Operand::Reg(v)));
    pb.finish_function(h);
    let p = pb.finish(main).unwrap();
    print_program(&p)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte soup never panics the parser.
    #[test]
    fn arbitrary_text_never_panics(text in "\\PC{0,200}") {
        let _ = parse_program(&text);
    }

    /// Line-noise injected into a valid program either still parses (and
    /// then re-prints deterministically) or produces an error that points
    /// at a real line.
    #[test]
    fn mutated_programs_fail_gracefully(
        line_to_replace in 0usize..20,
        junk in "[a-z0-9 =@,+()]{0,24}",
    ) {
        let base = valid_text();
        let mut lines: Vec<&str> = base.lines().collect();
        let idx = line_to_replace % lines.len();
        lines[idx] = &junk;
        let mutated = lines.join("\n");
        match parse_program(&mutated) {
            Ok(p) => {
                let text = print_program(&p);
                let q = parse_program(&text).expect("printer output parses");
                prop_assert_eq!(print_program(&q), text);
            }
            Err(e) => {
                prop_assert!(e.line() <= lines.len(), "error line {} beyond input", e.line());
            }
        }
    }

    /// Whitespace and comment injection never changes the parse.
    #[test]
    fn comments_and_whitespace_are_inert(extra_newlines in 0usize..5, comment in "[a-z ]{0,20}") {
        let base = valid_text();
        let mut noisy = String::new();
        for line in base.lines() {
            noisy.push_str(line);
            noisy.push_str(" ; ");
            noisy.push_str(&comment);
            noisy.push('\n');
            for _ in 0..extra_newlines {
                noisy.push('\n');
            }
        }
        let a = parse_program(&base).expect("base parses");
        let b = parse_program(&noisy).expect("noisy parses");
        prop_assert_eq!(print_program(&a), print_program(&b));
    }
}
