//! Golden-value tests for [`Program::fingerprint`].
//!
//! The pinned hex digests tie the fingerprint to the *canonical printer
//! form*: any change to `print_program`'s output (or to the FNV-1a-128
//! primitive) moves these values, orphaning every artifact in an existing
//! `oha-store` directory. That is sometimes the right thing to do — but it
//! must be a reviewed decision (bump `oha-store`'s `FORMAT_VERSION`
//! alongside), never an accident. If a test here fails and you did not
//! intend to change the canonical form, you broke the printer.

use oha_ir::{parse_program, print_program, Operand, Program, ProgramBuilder};
use Operand::{Const, Reg as R};

/// A fixed two-function program exercising globals, heap, calls, locks and
/// spawns — enough surface that most printer changes would perturb it.
fn golden_program() -> Program {
    let mut pb = ProgramBuilder::new();
    let g = pb.global("shared", 2);
    let w = pb.declare("worker", 1);
    let mut m = pb.function("main", 0);
    let n = m.input();
    let t = m.spawn(w, R(n));
    let ga = m.addr_global(g);
    m.lock(R(ga));
    let v = m.load(R(ga), 1);
    let v2 = m.bin(oha_ir::BinOp::Add, R(v), Const(3));
    m.store(R(ga), 1, R(v2));
    m.unlock(R(ga));
    m.join(R(t));
    m.output(R(v2));
    m.ret(None);
    let main = pb.finish_function(m);
    let mut f = pb.function("worker", 1);
    let p0 = f.param(0);
    let h = f.alloc(1);
    f.store(R(h), 0, R(p0));
    let l = f.load(R(h), 0);
    f.output(R(l));
    f.ret(None);
    pb.finish_function(f);
    pb.finish(main).unwrap()
}

#[test]
fn golden_program_fingerprint_is_pinned() {
    assert_eq!(
        golden_program().fingerprint().to_hex(),
        "1d650bf44b9768d7803f816e96d49054",
        "canonical printer form (or the hash primitive) changed; \
         see this file's module docs before repinning"
    );
}

#[test]
fn fingerprint_is_the_hash_of_the_printer_form() {
    let p = golden_program();
    assert_eq!(
        p.fingerprint(),
        oha_ir::Fingerprint::of_bytes(print_program(&p).as_bytes())
    );
}

#[test]
fn fingerprint_survives_a_text_round_trip() {
    let p = golden_program();
    let reparsed = parse_program(&print_program(&p)).unwrap();
    assert_eq!(reparsed.fingerprint(), p.fingerprint());
}

#[test]
fn fingerprint_distinguishes_programs() {
    let p = golden_program();
    // Same shape, one constant changed.
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main", 0);
    f.output(Const(1));
    f.ret(None);
    let main = pb.finish_function(f);
    let tiny = pb.finish(main).unwrap();
    assert_ne!(p.fingerprint(), tiny.fingerprint());

    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main", 0);
    f.output(Const(2));
    f.ret(None);
    let main = pb.finish_function(f);
    let tiny2 = pb.finish(main).unwrap();
    assert_ne!(tiny.fingerprint(), tiny2.fingerprint());
}

#[test]
fn fingerprint_is_stable_across_clones_and_calls() {
    let p = golden_program();
    let fp = p.fingerprint();
    assert_eq!(p.clone().fingerprint(), fp);
    assert_eq!(p.fingerprint(), fp);
}
