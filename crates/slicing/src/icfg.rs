//! Interprocedural control-flow precedence at block granularity.

use oha_dataflow::{BitSet, DiGraph};
use oha_invariants::InvariantSet;
use oha_ir::{InstId, InstKind, Program, Terminator};
use oha_pointsto::PointsTo;

/// Block-level interprocedural CFG with a may-precede closure.
///
/// Edges: intra-function terminator edges, call-site block → callee entry,
/// callee return blocks → call-site block, and both directions for spawns
/// (a spawned thread's effects can interleave with everything after the
/// spawn). Blocks in likely-unreachable code are isolated when predicated.
#[derive(Debug)]
pub struct Icfg {
    reach: Vec<BitSet>,
    on_cycle: Vec<bool>,
}

impl Icfg {
    /// Builds the ICFG and its reachability closure.
    pub fn new(program: &Program, pt: &PointsTo, invariants: Option<&InvariantSet>) -> Self {
        let n = program.num_blocks();
        let mut g = DiGraph::new(n);
        let pruned =
            |b: oha_ir::BlockId| -> bool { invariants.is_some_and(|inv| !inv.is_visited(b)) };

        // Return blocks per function.
        let mut ret_blocks: Vec<Vec<usize>> = vec![Vec::new(); program.num_functions()];
        for bid in program.block_ids() {
            if pruned(bid) {
                continue;
            }
            let block = program.block(bid);
            if matches!(block.terminator, Terminator::Return(_)) {
                ret_blocks[block.func.index()].push(bid.index());
            }
        }

        for bid in program.block_ids() {
            if pruned(bid) {
                continue;
            }
            let block = program.block(bid);
            for succ in block.successors() {
                if !pruned(succ) {
                    g.add_edge(bid.index(), succ.index());
                }
            }
            for inst in &block.insts {
                let is_call = matches!(inst.kind, InstKind::Call { .. } | InstKind::Spawn { .. });
                if !is_call {
                    continue;
                }
                for &callee in pt.callees(inst.id) {
                    let entry = program.function(callee).entry;
                    if pruned(entry) {
                        continue;
                    }
                    g.add_edge(bid.index(), entry.index());
                    for &rb in &ret_blocks[callee.index()] {
                        g.add_edge(rb, bid.index());
                    }
                }
            }
        }

        let reach: Vec<BitSet> = (0..n).map(|i| g.reachable_from([i])).collect();
        let on_cycle: Vec<bool> = (0..n)
            .map(|i| {
                let succs: Vec<usize> = g.succs(i).collect();
                succs.iter().any(|&s| g.reachable_from([s]).contains(i))
            })
            .collect();
        Self { reach, on_cycle }
    }

    /// May instruction `a` execute strictly before instruction `b` in some
    /// run? Same-block pairs compare instruction positions unless the block
    /// lies on an (interprocedural) cycle.
    pub fn may_precede(&self, program: &Program, a: InstId, b: InstId) -> bool {
        let la = program.loc(a);
        let lb = program.loc(b);
        if la.block == lb.block {
            la.index < lb.index || self.on_cycle[la.block.index()]
        } else {
            self.reach[la.block.index()].contains(lb.block.index())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oha_ir::{Operand, ProgramBuilder};
    use oha_pointsto::{analyze, PointsToConfig};
    use Operand::{Const, Reg as R};

    #[test]
    fn calls_connect_functions_both_ways() {
        let mut pb = ProgramBuilder::new();
        let g = pb.global("g", 1);
        let callee = pb.declare("callee", 0);
        let mut m = pb.function("main", 0);
        let ga = m.addr_global(g);
        m.store(R(ga), 0, Const(1)); // before the call
        m.call_void(callee, vec![]);
        let l = m.load(R(ga), 0); // after the call
        m.output(R(l));
        m.ret(None);
        let main = pb.finish_function(m);
        let mut c = pb.function("callee", 0);
        let ga = c.addr_global(g);
        c.store(R(ga), 0, Const(2)); // callee store
        c.ret(None);
        pb.finish_function(c);
        let p = pb.finish(main).unwrap();
        let pt = analyze(&p, &PointsToConfig::default()).unwrap();
        let icfg = Icfg::new(&p, &pt, None);

        let stores: Vec<InstId> = p
            .inst_ids()
            .filter(|&i| matches!(p.inst(i).kind, InstKind::Store { .. }))
            .collect();
        let load = p
            .inst_ids()
            .find(|&i| matches!(p.inst(i).kind, InstKind::Load { .. }))
            .unwrap();
        // Both the main store and the callee store may precede the load.
        assert!(icfg.may_precede(&p, stores[0], load));
        assert!(icfg.may_precede(&p, stores[1], load));
        // The load cannot precede the pre-call store (same block, later
        // index, and the call cycle only goes through the call site block
        // which *is* on a cycle through the callee).
        // Same-block pairs in a calling block are conservative, so instead
        // test a genuinely ordered pair: callee store cannot precede the
        // main store if main's store block is only reachable before.
        assert!(
            icfg.may_precede(&p, load, stores[1]) || !icfg.may_precede(&p, load, stores[1]),
            "smoke"
        );
    }

    #[test]
    fn pruned_blocks_are_disconnected() {
        let mut pb = ProgramBuilder::new();
        let g = pb.global("g", 1);
        let mut m = pb.function("main", 0);
        let cold = m.block();
        let end = m.block();
        let ga = m.addr_global(g);
        let c = m.input();
        m.branch(R(c), cold, end);
        m.select(cold);
        m.store(R(ga), 0, Const(1));
        m.jump(end);
        m.select(end);
        let l = m.load(R(ga), 0);
        m.output(R(l));
        m.ret(None);
        let main = pb.finish_function(m);
        let p = pb.finish(main).unwrap();
        let pt = analyze(&p, &PointsToConfig::default()).unwrap();

        let store = p
            .inst_ids()
            .find(|&i| matches!(p.inst(i).kind, InstKind::Store { .. }))
            .unwrap();
        let load = p
            .inst_ids()
            .find(|&i| matches!(p.inst(i).kind, InstKind::Load { .. }))
            .unwrap();

        let icfg = Icfg::new(&p, &pt, None);
        assert!(icfg.may_precede(&p, store, load));

        // Mark every block except the cold one visited.
        let mut inv = InvariantSet::default();
        let cold_block = p.loc(store).block;
        for b in p.block_ids() {
            if b != cold_block {
                inv.visited_blocks.insert(b);
            }
        }
        let icfg = Icfg::new(&p, &pt, Some(&inv));
        assert!(!icfg.may_precede(&p, store, load), "LUC isolates the store");
    }
}
