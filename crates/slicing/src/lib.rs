//! Static backward data-flow slicing (paper §5.1.1).
//!
//! A backward slice of a target instruction is the set of instructions
//! whose computed values may flow into it. Following the paper, slices are
//! **data-flow** slices: control dependencies are deliberately excluded
//! ("control dependencies cause a slicer to output so much information the
//! slice is no longer useful").
//!
//! The slicer walks a definition-use graph backwards from the endpoints:
//!
//! * register uses follow the reaching-definition chains of the non-SSA IR;
//! * parameter values follow call (and spawn) argument wiring — matched per
//!   calling context in the context-sensitive variant;
//! * call results follow the callee's `return` operands;
//! * loads follow may-aliasing stores (cells from the points-to analysis),
//!   restricted by **flow sensitivity**: a store is considered only if its
//!   block may precede the load's block on the interprocedural CFG.
//!
//! Predication (likely invariants) removes nodes in likely-unreachable
//! blocks, devirtualizes indirect calls through likely callee sets (already
//! reflected in the predicated [`PointsTo`](oha_pointsto::PointsTo)) and bounds context cloning to
//! likely-used call contexts — which is what lets the context-sensitive
//! variant complete on programs where the sound variant exhausts its budget
//! (Figure 11).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod icfg;
mod slicer;

pub use icfg::Icfg;
pub use slicer::{slice, SliceConfig, SliceStats, StaticSlice};
