//! The backward slicing worklist.

use std::collections::{HashMap, HashSet};

use oha_dataflow::{BitSet, DefSite, ReachingDefs};
use oha_invariants::{InvariantSet, MAX_CONTEXT_DEPTH};
use oha_ir::{FuncId, InstId, InstKind, Program, Reg};
use oha_par::Pool;
use oha_pointsto::{ctx_hash, Exhausted, PointsTo, Sensitivity};

use crate::icfg::Icfg;

/// Configuration for [`slice()`].
#[derive(Clone, Copy, Debug)]
pub struct SliceConfig<'a> {
    /// Context sensitivity of the *slicer* (independent of the points-to
    /// analysis feeding it, as in Table 2).
    pub sensitivity: Sensitivity,
    /// Likely invariants to predicate on; `None` gives the sound slicer.
    pub invariants: Option<&'a InvariantSet>,
    /// Maximum contexts the CS variant may clone.
    pub ctx_budget: u32,
    /// Maximum worklist visits.
    pub visit_budget: u64,
    /// Pool for the per-function reaching-definitions fixpoints (the
    /// slicing worklist itself is serial; results are identical at every
    /// pool width).
    pub pool: Pool,
}

impl Default for SliceConfig<'static> {
    fn default() -> Self {
        Self {
            sensitivity: Sensitivity::ContextInsensitive,
            invariants: None,
            ctx_budget: 4096,
            visit_budget: 5_000_000,
            pool: Pool::from_env(),
        }
    }
}

/// Work counters of a slicing run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SliceStats {
    /// Worklist nodes visited.
    pub visited: u64,
    /// Distinct def-use-graph nodes discovered ((context, instruction) and
    /// (context, parameter) pairs) — the size of the DUG fragment the
    /// slicer actually explored.
    pub dug_nodes: u64,
    /// Contexts materialized (1 for CI).
    pub contexts: usize,
    /// The context budget the run was configured with.
    pub ctx_budget: u32,
    /// The visit budget the run was configured with.
    pub visit_budget: u64,
}

impl SliceStats {
    /// Publishes the stats under `<prefix>.` in `registry` (see DESIGN.md
    /// "Observability" for the metric names).
    pub fn record(&self, registry: &oha_obs::MetricsRegistry, prefix: &str) {
        registry.add(&format!("{prefix}.visited"), self.visited);
        registry.add(&format!("{prefix}.dug_nodes"), self.dug_nodes);
        registry.set_gauge(&format!("{prefix}.contexts"), self.contexts as f64);
        if self.ctx_budget > 0 {
            registry.set_gauge(
                &format!("{prefix}.context_budget_used"),
                self.contexts as f64 / f64::from(self.ctx_budget),
            );
        }
        if self.visit_budget > 0 {
            registry.set_gauge(
                &format!("{prefix}.visit_budget_used"),
                self.visited as f64 / self.visit_budget as f64,
            );
        }
    }
}

/// A static backward slice: the set of instructions whose values may reach
/// the endpoints.
#[derive(Clone, Debug)]
pub struct StaticSlice {
    insts: BitSet,
    stats: SliceStats,
}

impl StaticSlice {
    /// Reconstructs a slice from its serialized parts — the rehydration
    /// entry point for `oha-store`'s artifact cache. The parts must come
    /// from a [`slice`] run over the same program, points-to results and
    /// invariant predicate; nothing is revalidated here.
    pub fn from_parts(insts: BitSet, stats: SliceStats) -> Self {
        Self { insts, stats }
    }

    /// Whether an instruction is in the slice.
    pub fn contains(&self, inst: InstId) -> bool {
        self.insts.contains(inst.index())
    }

    /// Number of instructions in the slice (the paper's slice-size metric).
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The slice as a bit set over instruction ids.
    pub fn sites(&self) -> &BitSet {
        &self.insts
    }

    /// Work counters.
    pub fn stats(&self) -> SliceStats {
        self.stats
    }
}

#[derive(Clone, Debug)]
struct CtxInfo {
    parent: u32,
    func: FuncId,
    chain: Vec<InstId>,
    /// The shared context key (see [`oha_pointsto::ctx_hash`]).
    hash: u64,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Node {
    Inst(u32, InstId),
    Param(u32, u32, Reg),
}

/// Computes the backward data-flow slice of `endpoints`.
///
/// # Examples
///
/// ```
/// use oha_ir::{BinOp, Operand, ProgramBuilder};
/// use oha_pointsto::{analyze, PointsToConfig};
/// use oha_slicing::{slice, SliceConfig};
///
/// let mut pb = ProgramBuilder::new();
/// let mut f = pb.function("main", 0);
/// let x = f.input();                                   // in the slice
/// let y = f.bin(BinOp::Add, Operand::Reg(x), Operand::Const(1)); // in
/// let junk = f.copy(Operand::Const(9));                // not in
/// f.output(Operand::Reg(y));
/// f.ret(None);
/// let main = pb.finish_function(f);
/// let p = pb.finish(main).unwrap();
///
/// let pt = analyze(&p, &PointsToConfig::default())?;
/// let endpoint = p.inst_ids().last().unwrap();
/// let s = slice(&p, &pt, &[endpoint], &SliceConfig::default())?;
/// assert_eq!(s.len(), 3);
/// # let _ = junk;
/// # Ok::<(), oha_pointsto::Exhausted>(())
/// ```
///
/// # Errors
///
/// Returns [`Exhausted`] if the context or visit budget is exceeded.
pub fn slice(
    program: &Program,
    pt: &PointsTo,
    endpoints: &[InstId],
    config: &SliceConfig<'_>,
) -> Result<StaticSlice, Exhausted> {
    Slicer::new(program, pt, config)?.run(endpoints)
}

struct Slicer<'p, 'c> {
    program: &'p Program,
    pt: &'p PointsTo,
    config: &'c SliceConfig<'c>,
    icfg: Icfg,
    rds: Vec<ReachingDefs>,
    /// Store sites grouped by cell.
    stores_by_cell: HashMap<usize, Vec<InstId>>,
    ctxs: Vec<CtxInfo>,
    /// Contexts instantiating each function.
    instances: Vec<Vec<u32>>,
    /// (ctx, call site, callee) → callee context.
    child_of: HashMap<(u32, u32, u32), u32>,
    /// ctx → the (caller ctx, call/spawn site) pairs that enter it.
    creators: Vec<Vec<(u32, InstId)>>,
}

impl<'p, 'c> Slicer<'p, 'c> {
    fn new(
        program: &'p Program,
        pt: &'p PointsTo,
        config: &'c SliceConfig<'c>,
    ) -> Result<Self, Exhausted> {
        let icfg = Icfg::new(program, pt, config.invariants);
        let rds = ReachingDefs::compute_all(program, config.pool);
        let mut stores_by_cell: HashMap<usize, Vec<InstId>> = HashMap::new();
        for s in pt.store_sites() {
            for c in pt.store_cells(s).iter() {
                stores_by_cell.entry(c).or_default().push(s);
            }
        }
        let mut slicer = Self {
            program,
            pt,
            config,
            icfg,
            rds,
            stores_by_cell,
            ctxs: Vec::new(),
            instances: vec![Vec::new(); program.num_functions()],
            child_of: HashMap::new(),
            creators: Vec::new(),
        };
        slicer.build_contexts()?;
        Ok(slicer)
    }

    fn cs(&self) -> bool {
        self.config.sensitivity == Sensitivity::ContextSensitive
    }

    fn pruned(&self, b: oha_ir::BlockId) -> bool {
        self.config.invariants.is_some_and(|inv| !inv.is_visited(b))
    }

    fn new_ctx(&mut self, parent: u32, func: FuncId, chain: Vec<InstId>) -> Result<u32, Exhausted> {
        if self.ctxs.len() as u32 >= self.config.ctx_budget {
            return Err(Exhausted {
                reason: format!("slicer context budget {} exceeded", self.config.ctx_budget),
            });
        }
        let id = self.ctxs.len() as u32;
        let hash = ctx_hash(func, &chain);
        self.ctxs.push(CtxInfo {
            parent,
            func,
            chain,
            hash,
        });
        self.creators.push(Vec::new());
        self.instances[func.index()].push(id);
        Ok(id)
    }

    /// Builds the context tree: CI has one context covering every function;
    /// CS clones per call chain with recursion reuse and (when predicated)
    /// likely-used-context bounding.
    fn build_contexts(&mut self) -> Result<(), Exhausted> {
        let main = self.program.entry();
        if !self.cs() {
            let root = self.new_ctx(0, main, Vec::new())?;
            debug_assert_eq!(root, 0);
            // Every function shares context 0.
            for f in self.program.func_ids() {
                if f != main {
                    self.instances[f.index()].push(0);
                }
            }
            // Creators: every resolved call site enters context 0.
            for (site, _targets) in self.pt.call_sites() {
                self.creators[0].push((0, site));
            }
            return Ok(());
        }

        let root = self.new_ctx(0, main, Vec::new())?;
        self.ctxs[root as usize].parent = root;
        let mut queue = vec![root];
        let mut spawn_roots: HashMap<(InstId, u32), u32> = HashMap::new();
        // Copies of the `&'p` references: the borrows below must outlive
        // the `&mut self` context mutations inside the loop, which they can
        // only do when taken from the fields' own lifetime, not from
        // `&self`.
        let program = self.program;
        let pt = self.pt;
        while let Some(c) = queue.pop() {
            let func = self.ctxs[c as usize].func;
            let f = program.function(func);
            for &bid in &f.blocks {
                if self.pruned(bid) {
                    continue;
                }
                for inst in &program.block(bid).insts {
                    let (is_call, is_spawn) = match inst.kind {
                        InstKind::Call { .. } => (true, false),
                        InstKind::Spawn { .. } => (false, true),
                        _ => continue,
                    };
                    for &callee in pt.callees(inst.id) {
                        if is_spawn {
                            let key = (inst.id, callee.raw());
                            let cc = match spawn_roots.get(&key) {
                                Some(&cc) => cc,
                                None => {
                                    let cc = self.new_ctx(0, callee, Vec::new())?;
                                    self.ctxs[cc as usize].parent = cc;
                                    spawn_roots.insert(key, cc);
                                    queue.push(cc);
                                    cc
                                }
                            };
                            self.child_of.insert((c, inst.id.raw(), callee.raw()), cc);
                            self.creators[cc as usize].push((c, inst.id));
                            continue;
                        }
                        debug_assert!(is_call);
                        // Recursion: reuse the ancestor clone.
                        let mut cur = c;
                        let mut reused = None;
                        loop {
                            if self.ctxs[cur as usize].func == callee {
                                reused = Some(cur);
                                break;
                            }
                            let p = self.ctxs[cur as usize].parent;
                            if p == cur {
                                break;
                            }
                            cur = p;
                        }
                        let cc = match reused {
                            Some(cc) => cc,
                            None => {
                                let mut chain = self.ctxs[c as usize].chain.clone();
                                chain.push(inst.id);
                                if let Some(inv) = self.config.invariants {
                                    if chain.len() > MAX_CONTEXT_DEPTH
                                        || !inv.contexts.contains(&chain)
                                    {
                                        continue; // assumed-unused context
                                    }
                                }
                                let cc = self.new_ctx(c, callee, chain)?;
                                queue.push(cc);
                                cc
                            }
                        };
                        self.child_of.insert((c, inst.id.raw(), callee.raw()), cc);
                        self.creators[cc as usize].push((c, inst.id));
                    }
                }
            }
        }
        Ok(())
    }

    fn callee_ctx(&self, ctx: u32, site: InstId, callee: FuncId) -> Option<u32> {
        if !self.cs() {
            return Some(0);
        }
        self.child_of.get(&(ctx, site.raw(), callee.raw())).copied()
    }

    /// The contexts of a function (for CI, always `[0]`).
    fn ctxs_of(&self, func: FuncId) -> &[u32] {
        &self.instances[func.index()]
    }

    fn run(&mut self, endpoints: &[InstId]) -> Result<StaticSlice, Exhausted> {
        let mut insts = BitSet::with_capacity(self.program.num_insts());
        let mut seen: HashSet<Node> = HashSet::new();
        let mut work: Vec<Node> = Vec::new();
        let mut visited = 0u64;

        for &e in endpoints {
            let f = self.program.func_of_inst(e);
            for &c in self.ctxs_of(f) {
                let n = Node::Inst(c, e);
                if seen.insert(n) {
                    work.push(n);
                }
            }
        }

        let push = |n: Node, seen: &mut HashSet<Node>, work: &mut Vec<Node>| {
            if seen.insert(n) {
                work.push(n);
            }
        };

        while let Some(node) = work.pop() {
            visited += 1;
            if visited > self.config.visit_budget {
                return Err(Exhausted {
                    reason: format!("slicer visit budget {} exceeded", self.config.visit_budget),
                });
            }
            match node {
                Node::Inst(ctx, inst) => {
                    // Skip instructions in pruned blocks entirely.
                    if self.pruned(self.program.loc(inst).block) {
                        continue;
                    }
                    insts.insert(inst.index());
                    let func = self.program.func_of_inst(inst);
                    // Borrow from the `&'p Program` field so no per-visit
                    // `InstKind` clone (argument vectors included) is needed.
                    let kind = &self.program.inst(inst).kind;

                    // Register uses → reaching definitions.
                    for r in kind.uses() {
                        for &d in self.rds[func.index()].defs_for(inst, r) {
                            match d {
                                DefSite::Inst(di) => {
                                    push(Node::Inst(ctx, di), &mut seen, &mut work)
                                }
                                DefSite::Param(p) => {
                                    push(Node::Param(ctx, func.raw(), p), &mut seen, &mut work)
                                }
                            }
                        }
                    }

                    // Call results → callee returns.
                    if let InstKind::Call { dst: Some(_), .. } = kind {
                        for &callee in self.pt.callees(inst) {
                            let Some(cc) = self.callee_ctx(ctx, inst, callee) else {
                                continue;
                            };
                            for &rb in &self.program.function(callee).blocks {
                                if self.pruned(rb) {
                                    continue;
                                }
                                for &d in self.rds[callee.index()].defs_for_return(rb) {
                                    match d {
                                        DefSite::Inst(di) => {
                                            push(Node::Inst(cc, di), &mut seen, &mut work)
                                        }
                                        DefSite::Param(p) => push(
                                            Node::Param(cc, callee.raw(), p),
                                            &mut seen,
                                            &mut work,
                                        ),
                                    }
                                }
                            }
                        }
                    }

                    // Loads → flow-preceding aliasing stores, matched per
                    // context: a store is followed only into the contexts
                    // in which it can actually write the cells this load
                    // (in *its* context) may read. Context-insensitive
                    // points-to results have no per-context record, so
                    // everything falls back to the merged sets (sound).
                    if matches!(kind, InstKind::Load { .. }) {
                        let load_cells = self
                            .pt
                            .access_cells_in(inst, self.ctxs[ctx as usize].hash)
                            .unwrap_or_else(|| self.pt.load_cells(inst));
                        let mut candidates: Vec<InstId> = Vec::new();
                        for c in load_cells.iter() {
                            if let Some(list) = self.stores_by_cell.get(&c) {
                                candidates.extend_from_slice(list);
                            }
                        }
                        candidates.sort_unstable();
                        candidates.dedup();
                        for s in candidates {
                            if !self.icfg.may_precede(self.program, s, inst) {
                                continue;
                            }
                            let sf = self.program.func_of_inst(s);
                            for &sc in self.ctxs_of(sf) {
                                let store_cells = self
                                    .pt
                                    .access_cells_in(s, self.ctxs[sc as usize].hash)
                                    .unwrap_or_else(|| self.pt.store_cells(s));
                                if store_cells.intersects(load_cells) {
                                    push(Node::Inst(sc, s), &mut seen, &mut work);
                                }
                            }
                        }
                    }
                }
                Node::Param(ctx, func_raw, p) => {
                    // Parameter values flow from the arguments of every
                    // creator call/spawn site of this context (borrowed in
                    // place — the loop body only reads `self`).
                    for &(pc, site) in &self.creators[ctx as usize] {
                        let caller = self.program.func_of_inst(site);
                        // In CI mode `creators[0]` holds every call site;
                        // keep only those that call this function.
                        if !self.pt.callees(site).contains(&FuncId::new(func_raw)) {
                            continue;
                        }
                        let arg = match &self.program.inst(site).kind {
                            InstKind::Call { args, .. } => args.get(p.index()).copied(),
                            InstKind::Spawn { arg, .. } if p.index() == 0 => Some(*arg),
                            _ => None,
                        };
                        let Some(oha_ir::Operand::Reg(r)) = arg else {
                            continue;
                        };
                        for &d in self.rds[caller.index()].defs_for(site, r) {
                            match d {
                                DefSite::Inst(di) => push(Node::Inst(pc, di), &mut seen, &mut work),
                                DefSite::Param(pp) => {
                                    push(Node::Param(pc, caller.raw(), pp), &mut seen, &mut work)
                                }
                            }
                        }
                    }
                }
            }
        }

        Ok(StaticSlice {
            insts,
            stats: SliceStats {
                visited,
                dug_nodes: seen.len() as u64,
                contexts: self.ctxs.len(),
                ctx_budget: self.config.ctx_budget,
                visit_budget: self.config.visit_budget,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oha_ir::{BinOp, Operand, Program, ProgramBuilder};
    use oha_pointsto::{analyze, PointsToConfig};
    use Operand::{Const, Reg as R};

    fn ci_pt(p: &Program) -> PointsTo {
        analyze(p, &PointsToConfig::default()).unwrap()
    }

    fn output_of(p: &Program) -> InstId {
        p.inst_ids()
            .find(|&i| matches!(p.inst(i).kind, InstKind::Output { .. }))
            .unwrap()
    }

    #[test]
    fn slices_exclude_unrelated_computation() {
        let mut pb = ProgramBuilder::new();
        let mut m = pb.function("main", 0);
        let a = m.copy(Const(1)); // relevant
        let b = m.bin(BinOp::Add, R(a), Const(2)); // relevant
        let junk = m.copy(Const(99)); // irrelevant
        let junk2 = m.bin(BinOp::Mul, R(junk), Const(2)); // irrelevant
        m.output(R(b));
        m.ret(None);
        let main = pb.finish_function(m);
        let p = pb.finish(main).unwrap();
        let pt = ci_pt(&p);
        let s = slice(&p, &pt, &[output_of(&p)], &SliceConfig::default()).unwrap();

        let ids: Vec<InstId> = p.inst_ids().collect();
        assert!(s.contains(ids[0]), "def of a");
        assert!(s.contains(ids[1]), "def of b");
        assert!(!s.contains(ids[2]), "junk");
        assert!(!s.contains(ids[3]), "junk2");
        assert!(s.contains(ids[4]), "endpoint itself");
        let _ = junk2;
    }

    #[test]
    fn memory_flow_respects_aliasing_and_order() {
        let mut pb = ProgramBuilder::new();
        let mut m = pb.function("main", 0);
        let o1 = m.alloc(1);
        let o2 = m.alloc(1);
        m.store(R(o1), 0, Const(1)); // aliases the load, precedes it
        m.store(R(o2), 0, Const(2)); // different object
        let l = m.load(R(o1), 0);
        m.store(R(o1), 0, Const(3)); // aliases but comes after the load
        m.output(R(l));
        m.ret(None);
        let main = pb.finish_function(m);
        let p = pb.finish(main).unwrap();
        let pt = ci_pt(&p);
        let s = slice(&p, &pt, &[output_of(&p)], &SliceConfig::default()).unwrap();

        let stores: Vec<InstId> = p
            .inst_ids()
            .filter(|&i| matches!(p.inst(i).kind, InstKind::Store { .. }))
            .collect();
        assert!(s.contains(stores[0]), "aliasing preceding store");
        assert!(!s.contains(stores[1]), "non-aliasing store");
        assert!(!s.contains(stores[2]), "store after the load");
    }

    #[test]
    fn values_flow_through_calls() {
        let mut pb = ProgramBuilder::new();
        let double = pb.declare("double", 1);
        let mut m = pb.function("main", 0);
        let x = m.input();
        let y = m.call(double, vec![R(x)]);
        let junk = m.copy(Const(5));
        m.output(R(y));
        m.ret(None);
        let main = pb.finish_function(m);
        let mut d = pb.function("double", 1);
        let s = d.bin(BinOp::Add, R(d.param(0)), R(d.param(0)));
        d.ret(Some(R(s)));
        pb.finish_function(d);
        let p = pb.finish(main).unwrap();
        let pt = ci_pt(&p);
        let sl = slice(&p, &pt, &[output_of(&p)], &SliceConfig::default()).unwrap();

        let input = p
            .inst_ids()
            .find(|&i| matches!(p.inst(i).kind, InstKind::Input { .. }))
            .unwrap();
        let add = p
            .inst_ids()
            .find(|&i| matches!(p.inst(i).kind, InstKind::BinOp { .. }))
            .unwrap();
        assert!(sl.contains(input), "argument source");
        assert!(sl.contains(add), "callee body");
        let junk_inst = p
            .inst_ids()
            .find(|&i| matches!(p.inst(i).kind, InstKind::Copy { .. }))
            .unwrap();
        assert!(!sl.contains(junk_inst));
        let _ = junk;
    }

    /// Context sensitivity: two calls to an identity function; only one
    /// argument should be in the CS slice, both in the CI slice.
    #[test]
    fn context_sensitivity_splits_call_sites() {
        let mut pb = ProgramBuilder::new();
        let id = pb.declare("id", 1);
        let mut m = pb.function("main", 0);
        let a = m.copy(Const(10));
        let b = m.copy(Const(20));
        let ra = m.call(id, vec![R(a)]);
        let rb = m.call(id, vec![R(b)]);
        m.output(R(rb));
        m.ret(None);
        let main = pb.finish_function(m);
        let mut f = pb.function("id", 1);
        f.ret(Some(R(f.param(0))));
        pb.finish_function(f);
        let p = pb.finish(main).unwrap();
        let pt = ci_pt(&p);
        let ids: Vec<InstId> = p.inst_ids().collect();
        let (def_a, def_b) = (ids[0], ids[1]);

        let ci = slice(&p, &pt, &[output_of(&p)], &SliceConfig::default()).unwrap();
        assert!(ci.contains(def_b));
        assert!(ci.contains(def_a), "CI smears both call sites together");

        let cs = slice(
            &p,
            &pt,
            &[output_of(&p)],
            &SliceConfig {
                sensitivity: Sensitivity::ContextSensitive,
                ..SliceConfig::default()
            },
        )
        .unwrap();
        assert!(cs.contains(def_b));
        assert!(!cs.contains(def_a), "CS separates the two calls");
        assert!(cs.len() < ci.len());
        let _ = (ra, rb);
    }

    #[test]
    fn luc_predication_shrinks_slices() {
        let mut pb = ProgramBuilder::new();
        let g = pb.global("g", 1);
        let mut m = pb.function("main", 0);
        let cold = m.block();
        let end = m.block();
        let ga = m.addr_global(g);
        m.store(R(ga), 0, Const(1));
        let c = m.input();
        m.branch(R(c), cold, end);
        m.select(cold);
        m.store(R(ga), 0, Const(42)); // cold store
        m.jump(end);
        m.select(end);
        let l = m.load(R(ga), 0);
        m.output(R(l));
        m.ret(None);
        let main = pb.finish_function(m);
        let p = pb.finish(main).unwrap();
        let pt = ci_pt(&p);

        let sound = slice(&p, &pt, &[output_of(&p)], &SliceConfig::default()).unwrap();
        let stores: Vec<InstId> = p
            .inst_ids()
            .filter(|&i| matches!(p.inst(i).kind, InstKind::Store { .. }))
            .collect();
        assert!(sound.contains(stores[1]), "cold store in sound slice");

        let mut inv = InvariantSet::default();
        let cold_block = p.loc(stores[1]).block;
        for b in p.block_ids() {
            if b != cold_block {
                inv.visited_blocks.insert(b);
            }
        }
        let pred = slice(
            &p,
            &pt,
            &[output_of(&p)],
            &SliceConfig {
                invariants: Some(&inv),
                ..SliceConfig::default()
            },
        )
        .unwrap();
        assert!(!pred.contains(stores[1]), "LUC drops the cold store");
        assert!(pred.len() < sound.len());
    }

    #[test]
    fn context_budget_exhaustion_is_reported() {
        // A call chain deeper than the budget.
        let mut pb = ProgramBuilder::new();
        let depth = 20;
        for i in 0..depth {
            pb.declare(&format!("f{i}"), 1);
        }
        let mut m = pb.function("main", 0);
        let f0 = pb.declare("f0", 1);
        let x = m.copy(Const(1));
        let r = m.call(f0, vec![R(x)]);
        m.output(R(r));
        m.ret(None);
        let main = pb.finish_function(m);
        for i in 0..depth {
            let mut f = pb.function(&format!("f{i}"), 1);
            if i + 1 < depth {
                let next = pb.declare(&format!("f{}", i + 1), 1);
                let r = f.call(next, vec![R(f.param(0))]);
                f.ret(Some(R(r)));
            } else {
                f.ret(Some(R(f.param(0))));
            }
            pb.finish_function(f);
        }
        let p = pb.finish(main).unwrap();
        let pt = ci_pt(&p);
        let err = slice(
            &p,
            &pt,
            &[output_of(&p)],
            &SliceConfig {
                sensitivity: Sensitivity::ContextSensitive,
                ctx_budget: 5,
                ..SliceConfig::default()
            },
        )
        .unwrap_err();
        assert!(err.reason.contains("budget"));
    }
}
