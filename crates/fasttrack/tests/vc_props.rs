//! Algebraic property tests for vector clocks and epochs.

use oha_fasttrack::{Epoch, VectorClock};
use oha_interp::ThreadId;
use proptest::prelude::*;

fn vc() -> impl Strategy<Value = VectorClock> {
    prop::collection::vec(0u32..50, 0..6).prop_map(|v| {
        let mut c = VectorClock::new();
        for (i, x) in v.into_iter().enumerate() {
            c.set(ThreadId(i as u32), x);
        }
        c
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Join is the least upper bound: commutative, associative, idempotent,
    /// and an upper bound of both operands.
    #[test]
    fn join_is_a_least_upper_bound(a in vc(), b in vc(), c in vc()) {
        let mut ab = a.clone();
        ab.join(&b);
        let mut ba = b.clone();
        ba.join(&a);
        prop_assert!(ab.leq(&ba) && ba.leq(&ab), "commutative");

        let mut ab_c = ab.clone();
        ab_c.join(&c);
        let mut bc = b.clone();
        bc.join(&c);
        let mut a_bc = a.clone();
        a_bc.join(&bc);
        prop_assert!(ab_c.leq(&a_bc) && a_bc.leq(&ab_c), "associative");

        let mut aa = a.clone();
        aa.join(&a);
        prop_assert!(aa.leq(&a) && a.leq(&aa), "idempotent");

        prop_assert!(a.leq(&ab) && b.leq(&ab), "upper bound");
        // Least: any other upper bound dominates the join.
        let mut ub = a.clone();
        ub.join(&b);
        ub.join(&c); // c makes it at least as large
        prop_assert!(ab.leq(&ub));
    }

    /// `leq` is a partial order: reflexive, transitive, antisymmetric
    /// (modulo trailing zeros, which `leq` treats as absent).
    #[test]
    fn leq_is_a_partial_order(a in vc(), b in vc(), c in vc()) {
        prop_assert!(a.leq(&a));
        if a.leq(&b) && b.leq(&c) {
            prop_assert!(a.leq(&c));
        }
        if a.leq(&b) && b.leq(&a) {
            for t in 0..8u32 {
                prop_assert_eq!(a.get(ThreadId(t)), b.get(ThreadId(t)));
            }
        }
    }

    /// Epoch comparison agrees with the single-entry vector clock it
    /// abbreviates.
    #[test]
    fn epochs_abbreviate_single_entry_clocks(t in 0u32..6, clock in 0u32..50, other in vc()) {
        let e = Epoch { tid: ThreadId(t), clock };
        let mut as_vc = VectorClock::new();
        as_vc.set(ThreadId(t), clock);
        prop_assert_eq!(e.leq(&other), as_vc.leq(&other));
    }

    /// Ticking advances exactly one component.
    #[test]
    fn tick_is_local(a in vc(), t in 0u32..6) {
        let mut b = a.clone();
        b.tick(ThreadId(t));
        prop_assert_eq!(b.get(ThreadId(t)), a.get(ThreadId(t)) + 1);
        for u in 0..8u32 {
            if u != t {
                prop_assert_eq!(b.get(ThreadId(u)), a.get(ThreadId(u)));
            }
        }
        prop_assert!(a.leq(&b) && !b.leq(&a));
    }
}
