//! The FastTrack tracer and its hybrid/optimistic elision modes.

use std::collections::BTreeSet;

use oha_dataflow::BitSet;
use oha_interp::{fastpath, hooks, Addr, EventCtx, InstrPlan, PlanElisions, ThreadId, Tracer};
use oha_ir::{FuncId, InstId};
use oha_ir::{InstKind, Program};

use crate::detector::{Detector, RaceReport};

/// Which variant of the tool is running (informational; the behaviour is
/// fully determined by the elision sets).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ToolMode {
    /// Instrument every load, store, lock and unlock.
    Full,
    /// Skip loads/stores outside the static racy set (traditional hybrid).
    Hybrid,
    /// Additionally skip elidable lock/unlock sites (optimistic).
    Optimistic,
}

/// Elision counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FastTrackCounters {
    /// Loads/stores whose instrumentation was elided.
    pub elided_accesses: u64,
    /// Lock/unlock operations whose instrumentation was elided.
    pub elided_lock_ops: u64,
}

/// FastTrack as an interpreter [`Tracer`].
///
/// # Examples
///
/// ```
/// use oha_fasttrack::FastTrackTool;
/// let mut tool = FastTrackTool::full();
/// # let _ = &mut tool;
/// ```
#[derive(Debug)]
pub struct FastTrackTool<'a> {
    detector: Detector,
    mode: ToolMode,
    /// Sites to instrument; `None` = all.
    instrument: Option<&'a BitSet>,
    /// Lock/unlock sites to skip. The `BTreeSet` is the API boundary
    /// (deterministic iteration in reports); the per-event probe uses
    /// `elided_lock_bits`.
    elided_locks: Option<&'a BTreeSet<InstId>>,
    /// O(1) membership mirror of `elided_locks`, built at construction
    /// when the fast path is enabled. The reference configuration leaves
    /// it `None` and probes the `BTreeSet` per event, reproducing the
    /// pre-change cost profile.
    elided_lock_bits: Option<BitSet>,
    counters: FastTrackCounters,
}

impl<'a> FastTrackTool<'a> {
    /// The unoptimized detector: every access instrumented.
    pub fn full() -> Self {
        Self {
            detector: Detector::new(),
            mode: ToolMode::Full,
            instrument: None,
            elided_locks: None,
            elided_lock_bits: None,
            counters: FastTrackCounters::default(),
        }
    }

    /// The traditional hybrid detector: only `racy_sites` are instrumented.
    pub fn hybrid(racy_sites: &'a BitSet) -> Self {
        Self {
            detector: Detector::new(),
            mode: ToolMode::Hybrid,
            instrument: Some(racy_sites),
            elided_locks: None,
            elided_lock_bits: None,
            counters: FastTrackCounters::default(),
        }
    }

    /// The optimistic detector: `racy_sites` from the *predicated* static
    /// analysis, plus lock instrumentation elision for
    /// `elidable_locks` (the no-custom-synchronization invariant).
    pub fn optimistic(racy_sites: &'a BitSet, elidable_locks: &'a BTreeSet<InstId>) -> Self {
        Self {
            detector: Detector::new(),
            mode: ToolMode::Optimistic,
            instrument: Some(racy_sites),
            elided_locks: Some(elidable_locks),
            elided_lock_bits: fastpath::enabled()
                .then(|| elidable_locks.iter().map(|i| i.index()).collect()),
            counters: FastTrackCounters::default(),
        }
    }

    /// Compiles the elision sets into an instrumentation plan (see
    /// [`InstrPlan`]): load/store hooks at instrumented sites, lock
    /// hooks at non-elided lock sites, nothing else. Running under this
    /// plan is behaviourally identical to running without one — sites
    /// the plan masks out are exactly the sites the tool would have
    /// skipped itself, and the machine counts them on the tool's behalf
    /// (absorbed via [`FastTrackTool::absorb_plan_elisions`]).
    pub fn plan_for(
        program: &Program,
        instrument: Option<&BitSet>,
        elided_locks: Option<&BTreeSet<InstId>>,
    ) -> InstrPlan {
        let mut plan = InstrPlan::none(program.num_insts());
        for inst in program.insts() {
            match inst.kind {
                InstKind::Load { .. }
                    if instrument.is_none_or(|set| set.contains(inst.id.index())) =>
                {
                    plan.require(inst.id, hooks::LOAD);
                }
                InstKind::Store { .. }
                    if instrument.is_none_or(|set| set.contains(inst.id.index())) =>
                {
                    plan.require(inst.id, hooks::STORE);
                }
                InstKind::Lock { .. } if elided_locks.is_none_or(|set| !set.contains(&inst.id)) => {
                    plan.require(inst.id, hooks::LOCK);
                }
                InstKind::Unlock { .. }
                    if elided_locks.is_none_or(|set| !set.contains(&inst.id)) =>
                {
                    plan.require(inst.id, hooks::UNLOCK);
                }
                _ => {}
            }
        }
        plan
    }

    /// The plan matching this tool's own elision sets.
    pub fn plan(&self, program: &Program) -> InstrPlan {
        Self::plan_for(program, self.instrument, self.elided_locks)
    }

    /// Folds the machine-side elision tally of a plan-gated run into the
    /// tool's own counters, keeping the elision identity exact.
    pub fn absorb_plan_elisions(&mut self, e: &PlanElisions) {
        self.counters.elided_accesses += e.accesses();
        self.counters.elided_lock_ops += e.lock_ops();
    }

    /// The running mode.
    pub fn mode(&self) -> ToolMode {
        self.mode
    }

    /// The underlying detector.
    pub fn detector(&self) -> &Detector {
        &self.detector
    }

    /// Distinct racing site pairs seen so far.
    pub fn race_pairs(&self) -> BTreeSet<(InstId, InstId)> {
        self.detector.race_pairs()
    }

    /// All race reports.
    pub fn races(&self) -> &BTreeSet<RaceReport> {
        self.detector.races()
    }

    /// Elision counters.
    pub fn counters(&self) -> FastTrackCounters {
        self.counters
    }

    /// Publishes elided-vs-executed work under `<prefix>.` in `registry`:
    /// `<prefix>.elided.{accesses,lock_ops}` for skipped instrumentation,
    /// `<prefix>.executed.{reads,writes,sync_ops}` for detector work, and
    /// `<prefix>.races` for distinct racing site pairs.
    pub fn record_metrics(&self, registry: &oha_obs::MetricsRegistry, prefix: &str) {
        registry.add(
            &format!("{prefix}.elided.accesses"),
            self.counters.elided_accesses,
        );
        registry.add(
            &format!("{prefix}.elided.lock_ops"),
            self.counters.elided_lock_ops,
        );
        let d = self.detector.counters();
        registry.add(&format!("{prefix}.executed.reads"), d.reads);
        registry.add(&format!("{prefix}.executed.writes"), d.writes);
        registry.add(&format!("{prefix}.executed.sync_ops"), d.sync_ops);
        registry.add(&format!("{prefix}.races"), self.race_pairs().len() as u64);
    }

    fn skip_access(&mut self, site: InstId) -> bool {
        match self.instrument {
            Some(set) if !set.contains(site.index()) => {
                self.counters.elided_accesses += 1;
                true
            }
            _ => false,
        }
    }

    fn skip_lock(&mut self, site: InstId) -> bool {
        let elided = match (&self.elided_lock_bits, self.elided_locks) {
            (Some(bits), _) => bits.contains(site.index()),
            (None, Some(set)) => set.contains(&site),
            (None, None) => false,
        };
        if elided {
            self.counters.elided_lock_ops += 1;
        }
        elided
    }
}

impl Tracer for FastTrackTool<'_> {
    fn on_load(&mut self, ctx: EventCtx, addr: Addr, _value: oha_interp::Value) {
        if !self.skip_access(ctx.inst) {
            self.detector.read(ctx.thread, addr, ctx.inst);
        }
    }

    fn on_store(&mut self, ctx: EventCtx, addr: Addr, _value: oha_interp::Value) {
        if !self.skip_access(ctx.inst) {
            self.detector.write(ctx.thread, addr, ctx.inst);
        }
    }

    fn on_lock(&mut self, ctx: EventCtx, addr: Addr) {
        if !self.skip_lock(ctx.inst) {
            self.detector.acquire(ctx.thread, addr);
        }
    }

    fn on_unlock(&mut self, ctx: EventCtx, addr: Addr) {
        if !self.skip_lock(ctx.inst) {
            self.detector.release(ctx.thread, addr);
        }
    }

    fn on_spawn(&mut self, ctx: EventCtx, child: ThreadId, _entry: FuncId) {
        self.detector.fork(ctx.thread, child);
    }

    fn on_join(&mut self, ctx: EventCtx, child: ThreadId) {
        self.detector.join(ctx.thread, child);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oha_interp::{Machine, MachineConfig};
    use oha_ir::{InstKind, Operand, Program, ProgramBuilder};
    use oha_pointsto::{analyze, PointsToConfig};
    use oha_races::detect;
    use Operand::{Const, Reg as R};

    /// Two threads; one writes with a lock, the other without → real race.
    fn racy_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let g = pb.global("shared", 1);
        let w = pb.declare("writer", 1);
        let mut m = pb.function("main", 0);
        let t1 = m.spawn(w, Const(1));
        let t2 = m.spawn(w, Const(2));
        m.join(R(t1));
        m.join(R(t2));
        m.ret(None);
        let main = pb.finish_function(m);
        let mut wf = pb.function("writer", 1);
        let ga = wf.addr_global(g);
        wf.store(R(ga), 0, R(wf.param(0)));
        wf.ret(None);
        pb.finish_function(wf);
        pb.finish(main).unwrap()
    }

    fn run_tool(p: &Program, tool: &mut FastTrackTool<'_>, seed: u64) {
        let cfg = MachineConfig {
            seed,
            quantum: 2,
            ..MachineConfig::default()
        };
        Machine::new(p, cfg).run(&[], tool);
    }

    #[test]
    fn full_tool_finds_the_race() {
        let p = racy_program();
        let found = (0..20).any(|seed| {
            let mut tool = FastTrackTool::full();
            run_tool(&p, &mut tool, seed);
            !tool.race_pairs().is_empty()
        });
        assert!(found, "no schedule exposed the race");
    }

    #[test]
    fn hybrid_tool_reports_identical_races() {
        let p = racy_program();
        let pt = analyze(&p, &PointsToConfig::default()).unwrap();
        let races = detect(&p, &pt, None);
        for seed in 0..20 {
            let mut full = FastTrackTool::full();
            run_tool(&p, &mut full, seed);
            let mut hybrid = FastTrackTool::hybrid(races.racy_sites());
            run_tool(&p, &mut hybrid, seed);
            assert_eq!(
                full.race_pairs(),
                hybrid.race_pairs(),
                "hybrid must be race-equivalent (seed {seed})"
            );
        }
    }

    #[test]
    fn elision_counters_track_skipped_work() {
        let p = racy_program();
        // Instrument nothing: every access elided, no races visible.
        let empty = BitSet::new();
        let mut tool = FastTrackTool::hybrid(&empty);
        run_tool(&p, &mut tool, 1);
        assert!(tool.race_pairs().is_empty());
        assert!(tool.counters().elided_accesses > 0);
        assert_eq!(tool.mode(), ToolMode::Hybrid);
    }

    #[test]
    fn lock_elision_skips_sync_ops() {
        let mut pb = ProgramBuilder::new();
        let g = pb.global("g", 1);
        let mut m = pb.function("main", 0);
        let ga = m.addr_global(g);
        m.lock(R(ga));
        m.unlock(R(ga));
        m.ret(None);
        let main = pb.finish_function(m);
        let p = pb.finish(main).unwrap();
        let lock_sites: BTreeSet<InstId> = p
            .inst_ids()
            .filter(|&i| {
                matches!(
                    p.inst(i).kind,
                    InstKind::Lock { .. } | InstKind::Unlock { .. }
                )
            })
            .collect();
        let all: BitSet = p.inst_ids().map(|i| i.index()).collect();
        let mut tool = FastTrackTool::optimistic(&all, &lock_sites);
        run_tool(&p, &mut tool, 0);
        assert_eq!(tool.counters().elided_lock_ops, 2);
        assert_eq!(tool.detector().counters().sync_ops, 0);
    }
}
