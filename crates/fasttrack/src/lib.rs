//! FastTrack dynamic data-race detection (Flanagan & Freund, PLDI 2009),
//! with the hybrid and optimistic variants the paper builds on it (§4).
//!
//! * [`VectorClock`] / [`Epoch`] — the FastTrack metadata. The common case
//!   (same-epoch reads/writes, exclusive access) takes the O(1) epoch fast
//!   path; genuinely shared reads fall back to full vector clocks.
//! * [`Detector`] — the pure happens-before state machine, independent of
//!   the execution substrate (unit-testable event by event).
//! * [`FastTrackTool`] — a [`Tracer`](oha_interp::Tracer) wiring the
//!   detector into the interpreter, with optional *instrumentation
//!   elision*: a hybrid tool skips loads/stores the static race detector
//!   proved race-free, and the optimistic tool additionally skips
//!   lock/unlock instrumentation under the no-custom-synchronization
//!   invariant (§4.2.4).
//!
//! Eliding a load/store's instrumentation is sound here for the same reason
//! as in the paper: memory accesses never *create* happens-before edges, so
//! removing a provably race-free access's metadata updates can only remove
//! reports about that access — never mask a race between other accesses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod detector;
mod tool;
mod vc;

pub use detector::{Detector, RaceKind, RaceReport};
pub use tool::{FastTrackCounters, FastTrackTool, ToolMode};
pub use vc::{Epoch, VectorClock};
