//! The FastTrack happens-before state machine.

use std::collections::{BTreeSet, HashMap};

use oha_interp::{fastpath, Addr, ShadowMap, ThreadId};
use oha_ir::InstId;

use crate::vc::{Epoch, VectorClock};

/// What kind of conflict a race report describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum RaceKind {
    /// Write racing an earlier write.
    WriteWrite,
    /// Write racing an earlier read.
    ReadWrite,
    /// Read racing an earlier write.
    WriteRead,
}

/// A detected race between two static sites.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct RaceReport {
    /// The earlier access's site.
    pub prior: InstId,
    /// The current access's site.
    pub current: InstId,
    /// Conflict kind.
    pub kind: RaceKind,
}

impl std::fmt::Display for RaceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self.kind {
            RaceKind::WriteWrite => "write-write",
            RaceKind::ReadWrite => "read-write",
            RaceKind::WriteRead => "write-read",
        };
        write!(f, "{kind} race between {} and {}", self.prior, self.current)
    }
}

/// Per-variable FastTrack metadata.
#[derive(Clone, Debug)]
struct VarState {
    /// Last write epoch and its site.
    write: Epoch,
    write_site: InstId,
    /// Read state: an epoch in the exclusive case, a full clock when
    /// shared.
    read: ReadState,
}

#[derive(Clone, Debug)]
enum ReadState {
    Excl(Epoch, InstId),
    Shared(VectorClock, HashMap<ThreadId, InstId>),
}

impl Default for VarState {
    fn default() -> Self {
        Self {
            write: Epoch::BOTTOM,
            write_site: InstId::new(u32::MAX),
            read: ReadState::Excl(Epoch::BOTTOM, InstId::new(u32::MAX)),
        }
    }
}

/// Work counters for the analysis-cost model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DetectorCounters {
    /// Read checks executed.
    pub reads: u64,
    /// Reads answered by the same-epoch fast path.
    pub read_fast_path: u64,
    /// Write checks executed.
    pub writes: u64,
    /// Writes answered by the same-epoch fast path.
    pub write_fast_path: u64,
    /// Lock acquires/releases processed.
    pub sync_ops: u64,
}

/// The FastTrack detector: feed it an event stream, read out the races.
///
/// # Examples
///
/// ```
/// use oha_fasttrack::Detector;
/// use oha_interp::{Addr, ObjId, ThreadId};
/// use oha_ir::InstId;
///
/// let mut d = Detector::new();
/// let x = Addr::new(ObjId(0), 0);
/// d.write(ThreadId(0), x, InstId::new(1));
/// d.fork(ThreadId(0), ThreadId(1));
/// d.write(ThreadId(1), x, InstId::new(2)); // ordered by the fork
/// assert!(d.races().is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct Detector {
    threads: Vec<VectorClock>,
    /// Release clocks per lock; an absent lock is the empty clock.
    locks: ShadowMap<VectorClock>,
    /// Per-variable state in dense shadow memory; an untouched variable
    /// is the bottom state.
    vars: ShadowMap<VarState>,
    races: BTreeSet<RaceReport>,
    counters: DetectorCounters,
    /// Captured at construction from [`fastpath::enabled`]. When the
    /// fast path is toggled off, the sync paths reproduce the pre-plan
    /// clone-per-acquire / clone-per-release cost profile so reference
    /// benchmark runs measure the pre-change implementation. Detection
    /// results are identical either way.
    fast: bool,
}

impl Default for Detector {
    fn default() -> Self {
        Self {
            threads: Vec::new(),
            locks: ShadowMap::new(VectorClock::new()),
            vars: ShadowMap::new(VarState::default()),
            races: BTreeSet::new(),
            counters: DetectorCounters::default(),
            fast: fastpath::enabled(),
        }
    }
}

impl Detector {
    /// A detector with the main thread at clock 1.
    pub fn new() -> Self {
        let mut d = Self::default();
        d.thread_mut(ThreadId::MAIN).tick(ThreadId::MAIN);
        d
    }

    fn thread_mut(&mut self, t: ThreadId) -> &mut VectorClock {
        self.ensure_thread(t);
        &mut self.threads[t.index()]
    }

    /// Materializes the clock slot of `t` so the hot paths can take a
    /// shared borrow of it alongside mutable borrows of other fields.
    fn ensure_thread(&mut self, t: ThreadId) {
        if self.threads.len() <= t.index() {
            self.threads.resize(t.index() + 1, VectorClock::new());
        }
    }

    /// Clone of `t`'s clock — used only on rare fork/join edges; the
    /// per-event paths borrow in place instead.
    fn thread(&self, t: ThreadId) -> VectorClock {
        self.threads.get(t.index()).cloned().unwrap_or_default()
    }

    /// All distinct races seen so far, as (prior site, current site, kind).
    pub fn races(&self) -> &BTreeSet<RaceReport> {
        &self.races
    }

    /// The distinct racing site pairs (order-normalized), the measure used
    /// to compare detector variants.
    pub fn race_pairs(&self) -> BTreeSet<(InstId, InstId)> {
        self.races
            .iter()
            .map(|r| (r.prior.min(r.current), r.prior.max(r.current)))
            .collect()
    }

    /// Work counters.
    pub fn counters(&self) -> DetectorCounters {
        self.counters
    }

    /// Processes a read of `x` by `t` at `site`.
    pub fn read(&mut self, t: ThreadId, x: Addr, site: InstId) {
        self.counters.reads += 1;
        self.ensure_thread(t);
        let ct = &self.threads[t.index()];
        let epoch = ct.epoch(t);
        let var = self.vars.get_mut(x);

        // Same-epoch fast path.
        if let ReadState::Excl(e, _) = var.read {
            if e == epoch {
                self.counters.read_fast_path += 1;
                return;
            }
        }
        // Write-read race?
        if !var.write.leq(ct) {
            self.races.insert(RaceReport {
                prior: var.write_site,
                current: site,
                kind: RaceKind::WriteRead,
            });
        }
        match &mut var.read {
            ReadState::Excl(e, s) => {
                if e.leq(ct) {
                    // Still exclusive.
                    *e = epoch;
                    *s = site;
                } else {
                    // Becomes shared.
                    let mut vc = VectorClock::new();
                    vc.set(e.tid, e.clock);
                    vc.set(t, epoch.clock);
                    let mut sites = HashMap::new();
                    sites.insert(e.tid, *s);
                    sites.insert(t, site);
                    var.read = ReadState::Shared(vc, sites);
                }
            }
            ReadState::Shared(vc, sites) => {
                vc.set(t, epoch.clock);
                sites.insert(t, site);
            }
        }
    }

    /// Processes a write to `x` by `t` at `site`.
    pub fn write(&mut self, t: ThreadId, x: Addr, site: InstId) {
        self.counters.writes += 1;
        self.ensure_thread(t);
        let ct = &self.threads[t.index()];
        let epoch = ct.epoch(t);
        let var = self.vars.get_mut(x);

        if var.write == epoch {
            self.counters.write_fast_path += 1;
            return;
        }
        if !var.write.leq(ct) {
            self.races.insert(RaceReport {
                prior: var.write_site,
                current: site,
                kind: RaceKind::WriteWrite,
            });
        }
        match &var.read {
            ReadState::Excl(e, s) => {
                if !e.leq(ct) {
                    self.races.insert(RaceReport {
                        prior: *s,
                        current: site,
                        kind: RaceKind::ReadWrite,
                    });
                }
            }
            ReadState::Shared(vc, sites) => {
                if !vc.leq(ct) {
                    // Report each unordered reader.
                    for (u, c) in vc.nonzero() {
                        if c > ct.get(u) {
                            if let Some(&s) = sites.get(&u) {
                                self.races.insert(RaceReport {
                                    prior: s,
                                    current: site,
                                    kind: RaceKind::ReadWrite,
                                });
                            }
                        }
                    }
                }
            }
        }
        var.write = epoch;
        var.write_site = site;
        // Shared read information is obsolete after an ordered write.
        if matches!(var.read, ReadState::Shared(..)) {
            var.read = ReadState::Excl(Epoch::BOTTOM, InstId::new(u32::MAX));
        }
    }

    /// Lock acquire: `t` inherits the release clock of `m`. On the fast
    /// path the release clock is joined in place — no clone (joining the
    /// empty clock of a never-released lock is a no-op); the reference
    /// configuration clones it per acquire as the pre-plan detector did.
    pub fn acquire(&mut self, t: ThreadId, m: Addr) {
        self.counters.sync_ops += 1;
        self.ensure_thread(t);
        if self.fast {
            let lm = self.locks.get(m);
            self.threads[t.index()].join(lm);
        } else {
            let lm = self.locks.get(m).clone();
            self.threads[t.index()].join(&lm);
        }
    }

    /// Lock release: `m` remembers `t`'s clock; `t` advances. On the
    /// fast path the clock is copied into the lock's slot in place,
    /// reusing its allocation; the reference configuration allocates a
    /// fresh clone per release as the pre-plan detector did.
    pub fn release(&mut self, t: ThreadId, m: Addr) {
        self.counters.sync_ops += 1;
        self.ensure_thread(t);
        if self.fast {
            let ct = &self.threads[t.index()];
            self.locks.get_mut(m).copy_from(ct);
        } else {
            let ct = self.threads[t.index()].clone();
            *self.locks.get_mut(m) = ct;
        }
        self.threads[t.index()].tick(t);
    }

    /// Thread creation: the child inherits the parent's clock.
    pub fn fork(&mut self, parent: ThreadId, child: ThreadId) {
        let cp = self.thread(parent);
        let cc = self.thread_mut(child);
        cc.join(&cp);
        cc.tick(child);
        self.thread_mut(parent).tick(parent);
    }

    /// Join: the parent inherits the child's clock.
    pub fn join(&mut self, parent: ThreadId, child: ThreadId) {
        let cc = self.thread(child);
        self.thread_mut(parent).join(&cc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oha_interp::ObjId;

    fn addr(o: u32) -> Addr {
        Addr::new(ObjId(o), 0)
    }

    fn site(n: u32) -> InstId {
        InstId::new(n)
    }

    #[test]
    fn unordered_writes_race() {
        let mut d = Detector::new();
        d.fork(ThreadId(0), ThreadId(1));
        d.fork(ThreadId(0), ThreadId(2));
        d.write(ThreadId(1), addr(0), site(10));
        d.write(ThreadId(2), addr(0), site(20));
        let races = d.races();
        assert_eq!(races.len(), 1);
        let r = races.iter().next().unwrap();
        assert_eq!(
            (r.prior, r.current, r.kind),
            (site(10), site(20), RaceKind::WriteWrite)
        );
    }

    #[test]
    fn lock_ordering_suppresses_races() {
        let mut d = Detector::new();
        d.fork(ThreadId(0), ThreadId(1));
        let m = addr(9);
        // t0: lock; write; unlock. t1: lock; write; unlock (after t0).
        d.acquire(ThreadId(0), m);
        d.write(ThreadId(0), addr(0), site(1));
        d.release(ThreadId(0), m);
        d.acquire(ThreadId(1), m);
        d.write(ThreadId(1), addr(0), site(2));
        d.release(ThreadId(1), m);
        assert!(d.races().is_empty());
    }

    #[test]
    fn fork_join_ordering_suppresses_races() {
        let mut d = Detector::new();
        d.write(ThreadId(0), addr(0), site(1));
        d.fork(ThreadId(0), ThreadId(1));
        d.write(ThreadId(1), addr(0), site(2)); // after fork: ordered
        d.join(ThreadId(0), ThreadId(1));
        d.write(ThreadId(0), addr(0), site(3)); // after join: ordered
        assert!(d.races().is_empty());
    }

    #[test]
    fn read_write_races_detected_in_both_directions() {
        let mut d = Detector::new();
        d.fork(ThreadId(0), ThreadId(1));
        d.read(ThreadId(0), addr(0), site(1));
        d.write(ThreadId(1), addr(0), site(2));
        assert!(d
            .races()
            .iter()
            .any(|r| r.kind == RaceKind::ReadWrite && r.prior == site(1)));

        let mut d = Detector::new();
        d.fork(ThreadId(0), ThreadId(1));
        d.write(ThreadId(1), addr(0), site(2));
        d.read(ThreadId(0), addr(0), site(1));
        assert!(d
            .races()
            .iter()
            .any(|r| r.kind == RaceKind::WriteRead && r.current == site(1)));
    }

    #[test]
    fn shared_reads_promote_to_vector_clocks() {
        let mut d = Detector::new();
        d.fork(ThreadId(0), ThreadId(1));
        d.fork(ThreadId(0), ThreadId(2));
        // Both children read (no race among reads)…
        d.read(ThreadId(1), addr(0), site(1));
        d.read(ThreadId(2), addr(0), site(2));
        assert!(d.races().is_empty());
        // …then an unordered write races with *both* readers.
        d.write(ThreadId(0), addr(0), site(3));
        let racy_priors: Vec<InstId> = d.races().iter().map(|r| r.prior).collect();
        assert!(racy_priors.contains(&site(1)));
        assert!(racy_priors.contains(&site(2)));
    }

    #[test]
    fn same_epoch_fast_path_taken() {
        let mut d = Detector::new();
        d.write(ThreadId(0), addr(0), site(1));
        d.write(ThreadId(0), addr(0), site(1));
        d.read(ThreadId(0), addr(0), site(2));
        d.read(ThreadId(0), addr(0), site(2));
        let c = d.counters();
        assert_eq!(c.writes, 2);
        assert_eq!(c.write_fast_path, 1);
        assert!(c.read_fast_path >= 1);
        assert!(d.races().is_empty());
    }

    #[test]
    fn distinct_variables_do_not_interact() {
        let mut d = Detector::new();
        d.fork(ThreadId(0), ThreadId(1));
        d.write(ThreadId(0), addr(0), site(1));
        d.write(ThreadId(1), addr(1), site(2));
        assert!(d.races().is_empty());
    }
}
