//! Vector clocks and epochs.

use std::fmt;

use oha_interp::ThreadId;

/// A vector clock: one logical clock per thread, absent entries are zero.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VectorClock {
    clocks: Vec<u32>,
}

impl VectorClock {
    /// The zero clock.
    pub fn new() -> Self {
        Self::default()
    }

    /// The clock of `t`.
    pub fn get(&self, t: ThreadId) -> u32 {
        self.clocks.get(t.index()).copied().unwrap_or(0)
    }

    /// Sets the clock of `t`.
    pub fn set(&mut self, t: ThreadId, value: u32) {
        if self.clocks.len() <= t.index() {
            self.clocks.resize(t.index() + 1, 0);
        }
        self.clocks[t.index()] = value;
    }

    /// Increments the clock of `t`.
    pub fn tick(&mut self, t: ThreadId) {
        let v = self.get(t);
        self.set(t, v + 1);
    }

    /// Pointwise maximum with `other`.
    pub fn join(&mut self, other: &VectorClock) {
        if self.clocks.len() < other.clocks.len() {
            self.clocks.resize(other.clocks.len(), 0);
        }
        for (a, &b) in self.clocks.iter_mut().zip(other.clocks.iter()) {
            *a = (*a).max(b);
        }
    }

    /// `self ⊑ other`: every component is ≤.
    pub fn leq(&self, other: &VectorClock) -> bool {
        self.clocks
            .iter()
            .enumerate()
            .all(|(i, &v)| v <= other.clocks.get(i).copied().unwrap_or(0))
    }

    /// The epoch of thread `t` in this clock.
    pub fn epoch(&self, t: ThreadId) -> Epoch {
        Epoch {
            tid: t,
            clock: self.get(t),
        }
    }

    /// Makes `self` a copy of `other`, reusing `self`'s allocation. The
    /// allocation-free counterpart of `clone` for clock slots that are
    /// overwritten in place (lock release paths).
    pub fn copy_from(&mut self, other: &VectorClock) {
        self.clocks.clear();
        self.clocks.extend_from_slice(&other.clocks);
    }

    /// Threads with a nonzero clock.
    pub fn nonzero(&self) -> impl Iterator<Item = (ThreadId, u32)> + '_ {
        self.clocks
            .iter()
            .enumerate()
            .filter(|&(_, &v)| v != 0)
            .map(|(i, &v)| (ThreadId(i as u32), v))
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for (i, v) in self.clocks.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ">")
    }
}

/// An epoch `c@t`: thread `t` at clock `c`. FastTrack's O(1) stand-in for a
/// full vector clock when an access history is totally ordered.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Epoch {
    /// The thread.
    pub tid: ThreadId,
    /// Its clock value.
    pub clock: u32,
}

impl Epoch {
    /// The bottom epoch (`0@t0`), ⊑ every clock.
    pub const BOTTOM: Epoch = Epoch {
        tid: ThreadId(0),
        clock: 0,
    };

    /// `self ⊑ vc`: the epoch happened before (or at) the clock.
    pub fn leq(self, vc: &VectorClock) -> bool {
        self.clock <= vc.get(self.tid)
    }
}

impl fmt::Display for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.clock, self.tid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_and_leq() {
        let mut a = VectorClock::new();
        a.set(ThreadId(0), 3);
        a.set(ThreadId(2), 1);
        let mut b = VectorClock::new();
        b.set(ThreadId(0), 1);
        b.set(ThreadId(1), 5);
        a.join(&b);
        assert_eq!(a.get(ThreadId(0)), 3);
        assert_eq!(a.get(ThreadId(1)), 5);
        assert_eq!(a.get(ThreadId(2)), 1);
        assert!(b.leq(&a));
        assert!(!a.leq(&b));
        assert!(a.leq(&a), "reflexive");
    }

    #[test]
    fn epochs_compare_against_clocks() {
        let mut vc = VectorClock::new();
        vc.set(ThreadId(1), 4);
        assert!(Epoch {
            tid: ThreadId(1),
            clock: 4
        }
        .leq(&vc));
        assert!(!Epoch {
            tid: ThreadId(1),
            clock: 5
        }
        .leq(&vc));
        assert!(Epoch::BOTTOM.leq(&VectorClock::new()));
    }

    #[test]
    fn tick_advances_only_one_thread() {
        let mut vc = VectorClock::new();
        vc.tick(ThreadId(3));
        vc.tick(ThreadId(3));
        assert_eq!(vc.get(ThreadId(3)), 2);
        assert_eq!(vc.get(ThreadId(0)), 0);
        assert_eq!(vc.nonzero().collect::<Vec<_>>(), vec![(ThreadId(3), 2)]);
    }
}
