//! OptFT: optimistic FastTrack data-race detection (paper §4).

use std::collections::{BTreeSet, HashMap};
use std::time::{Duration, Instant};

use oha_dataflow::BitSet;
use oha_fasttrack::FastTrackTool;
use oha_interp::{fastpath, InstrPlan, Machine, MultiTracer, NoopTracer};
use oha_invariants::{ChecksEnabled, InvariantChecker, InvariantSet};
use oha_ir::{InstId, InstKind, Program};
use oha_obs::{MetricsRegistry, RunReport, SpanStat};
use oha_pointsto::{analyze, PointsTo, PointsToConfig, Sensitivity};
use oha_races::{detect, MustLocksets, StaticRaces};
use oha_store::{ArtifactKey, ArtifactKind, OptFtArtifact};

use crate::pipeline::Pipeline;

/// One testing-input execution of OptFT and its baselines.
#[derive(Clone, Debug)]
pub struct OptFtRun {
    /// Uninstrumented execution time (the normalization baseline).
    pub baseline: Duration,
    /// Full FastTrack.
    pub full: Duration,
    /// Traditional hybrid FastTrack (sound static racy set).
    pub hybrid: Duration,
    /// OptFT's speculative run (includes invariant checking, excludes any
    /// rollback).
    pub optimistic: Duration,
    /// A run with only the invariant checker attached — isolates the
    /// invariant-check component of the Figure 5 stack.
    pub checker_only: Duration,
    /// Whether the speculative run had to roll back.
    pub rolled_back: bool,
    /// Time spent in the rollback re-execution (zero when none).
    pub rollback: Duration,
    /// Races from full FastTrack.
    pub races_full: BTreeSet<(InstId, InstId)>,
    /// Races from hybrid FastTrack.
    pub races_hybrid: BTreeSet<(InstId, InstId)>,
    /// OptFT's final answer (speculative result, or the rollback's).
    pub races_opt: BTreeSet<(InstId, InstId)>,
    /// Invariant violations observed by the checker.
    pub violations: usize,
}

/// The result of the whole OptFT pipeline on one benchmark.
#[derive(Clone, Debug)]
pub struct OptFtOutcome {
    /// Merged likely invariants (with the elidable-lock set filled in).
    pub invariants: InvariantSet,
    /// Time to run the profiling corpus (including the lock-elision
    /// validation loop).
    pub profile_time: Duration,
    /// Sound static analysis (points-to + race detection) time.
    pub sound_static_time: Duration,
    /// Predicated static analysis time.
    pub pred_static_time: Duration,
    /// Loads/stores the sound detector left racy.
    pub racy_sites_sound: usize,
    /// Loads/stores the predicated detector left racy.
    pub racy_sites_pred: usize,
    /// Whether the program is statically provably race-free (sound): no
    /// dynamic analysis is needed at all (the right side of Figure 5).
    pub statically_race_free: bool,
    /// Lock/unlock sites elided under no-custom-synchronization.
    pub elidable_lock_sites: usize,
    /// Profiling runs consumed before the invariant set stabilized.
    pub profiling_runs_used: usize,
    /// Per-testing-input measurements.
    pub runs: Vec<OptFtRun>,
    /// Union of full-FastTrack races over the testing corpus.
    pub baseline_races: BTreeSet<(InstId, InstId)>,
    /// Union of OptFT final races over the testing corpus. Soundness means
    /// this equals [`OptFtOutcome::baseline_races`].
    pub optimistic_races: BTreeSet<(InstId, InstId)>,
    /// Machine-readable account of the whole run: phase spans
    /// (`optft/profile`, `optft/static_pred`, …), hook-dispatch and elision
    /// counters, and mis-speculation causes by invariant class
    /// (`optft.rollback.cause.<class>`).
    pub report: RunReport,
}

impl OptFtOutcome {
    /// Speedup of OptFT (incl. rollbacks) over full FastTrack, measured on
    /// total analysis overhead (time above baseline) across the corpus.
    pub fn speedup_vs_full(&self) -> f64 {
        ratio_of_sums(self.runs.iter().map(|r| {
            (
                sub(r.full, r.baseline),
                sub(r.optimistic + r.rollback, r.baseline),
            )
        }))
    }

    /// Speedup of OptFT over hybrid FastTrack.
    pub fn speedup_vs_hybrid(&self) -> f64 {
        ratio_of_sums(self.runs.iter().map(|r| {
            (
                sub(r.hybrid, r.baseline),
                sub(r.optimistic + r.rollback, r.baseline),
            )
        }))
    }

    /// Fraction of testing runs that rolled back.
    pub fn misspeculation_rate(&self) -> f64 {
        if self.runs.is_empty() {
            return 0.0;
        }
        self.runs.iter().filter(|r| r.rolled_back).count() as f64 / self.runs.len() as f64
    }
}

fn sub(a: Duration, b: Duration) -> Duration {
    a.checked_sub(b).unwrap_or(Duration::from_nanos(1))
}

/// Corpus-level overhead ratio: total numerator overhead over total
/// denominator overhead (robust against near-zero per-run denominators).
fn ratio_of_sums(pairs: impl Iterator<Item = (Duration, Duration)>) -> f64 {
    let mut num = 0.0;
    let mut den = 0.0;
    for (a, b) in pairs {
        num += a.as_secs_f64();
        den += b.as_secs_f64();
    }
    if den <= 0.0 {
        1.0
    } else {
        num / den
    }
}

/// The OptFT driver. Use [`Pipeline::run_optft`].
pub struct OptFt<'a> {
    pipeline: &'a Pipeline,
}

/// Instrumentation plans for the dynamic phase, compiled once per
/// pipeline run (they depend only on the program and the elision sets).
/// Present exactly when the [`fastpath`] is enabled; `None` reproduces
/// the reference dispatch-everything behaviour.
struct OptFtPlans {
    full: InstrPlan,
    hybrid: InstrPlan,
    checker: InstrPlan,
    /// Union of the optimistic tool's and the checker's plans (they run
    /// composed in one `MultiTracer`).
    optimistic: InstrPlan,
}

impl OptFtPlans {
    fn compile(
        program: &Program,
        races_sound: &StaticRaces,
        races_pred: &StaticRaces,
        invariants: &InvariantSet,
    ) -> Self {
        let checker = InvariantChecker::plan_for(program, invariants, ChecksEnabled::for_optft());
        let mut optimistic = FastTrackTool::plan_for(
            program,
            Some(races_pred.racy_sites()),
            Some(&invariants.elidable_locks),
        );
        optimistic.union_with(&checker);
        Self {
            full: FastTrackTool::plan_for(program, None, None),
            hybrid: FastTrackTool::plan_for(program, Some(races_sound.racy_sites()), None),
            checker,
            optimistic,
        }
    }
}

/// Everything OptFT's dynamic phase needs from the (cacheable) profiling
/// and static phases, plus the bookkeeping for save-on-clean /
/// invalidate-on-rollback.
struct FtStatics {
    invariants: InvariantSet,
    profile_time: Duration,
    profiling_used: usize,
    sound_static_time: Duration,
    pred_static_time: Duration,
    races_sound: StaticRaces,
    races_pred: StaticRaces,
    /// Whether the static phase was served from the artifact store.
    from_cache: bool,
    /// The store key (present exactly when a store is configured).
    key: Option<ArtifactKey>,
    /// A freshly computed artifact awaiting save — persisted only after
    /// the dynamic phase finishes without a rollback, so a mis-speculating
    /// predicate never enters the cache.
    pending: Option<OptFtArtifact>,
}

impl<'a> OptFt<'a> {
    pub(crate) fn new(pipeline: &'a Pipeline) -> Self {
        Self { pipeline }
    }

    /// Phases 1 and 2 (profiling, sound + predicated static analysis,
    /// lock-elision validation), served from the artifact store when warm.
    ///
    /// The cache key's predicate side folds together the invariant-set
    /// fingerprint, the profiling-corpus fingerprint (the elision
    /// validation loop re-executes the corpus) and the static budgets, so
    /// a hit guarantees the cached races and elidable-lock set are what
    /// this exact cold run would recompute.
    fn static_phase(
        &self,
        profiling: &[Vec<i64>],
        machine: &Machine<'_>,
        registry: &MetricsRegistry,
    ) -> FtStatics {
        let program = self.pipeline.program();

        // Phase 1: profile until the invariant set stabilizes (§6.1),
        // store-accelerated when a profile artifact is warm.
        let (mut invariants, mut profile_time, profiling_used) =
            self.pipeline.profile_phase(profiling, 6);

        let key = self.pipeline.store().map(|_| {
            let predicate = invariants
                .fingerprint()
                .combine(self.pipeline.corpus_fingerprint(profiling, 6))
                .combine(self.pipeline.budget_fingerprint(false));
            ArtifactKey::new(program.fingerprint(), predicate)
        });

        if let (Some(store), Some(key)) = (self.pipeline.store(), &key) {
            let start = Instant::now();
            let loaded = store.load_optft(key);
            let load_time = start.elapsed();
            if let Some(a) = loaded {
                registry.observe_duration("store.load.hit_ns", load_time);
                registry.trace_instant("store.optft.hit");
                let elapsed = load_time;
                // Registry parity with the cold path: the same points-to
                // gauges, plus the cold durations replayed under
                // `cached/*` spans (the live spans only see the load).
                a.pt_sound_stats.record(registry, "optft.pointsto.sound");
                a.pt_pred.stats().record(registry, "optft.pointsto.pred");
                for (path, ns) in [
                    ("cached/static_sound", a.sound_static_ns),
                    ("cached/static_pred", a.pred_static_ns),
                    ("cached/elide", a.elide_ns),
                ] {
                    registry.add_span_stat(
                        path,
                        SpanStat {
                            total: Duration::from_nanos(ns),
                            count: 1,
                        },
                    );
                }
                return FtStatics {
                    invariants: a.invariants,
                    profile_time,
                    profiling_used,
                    sound_static_time: elapsed,
                    pred_static_time: Duration::ZERO,
                    races_sound: a.races_sound,
                    races_pred: a.races_pred,
                    from_cache: true,
                    key: Some(*key),
                    pending: None,
                };
            }
            registry.observe_duration("store.load.miss_ns", load_time);
            registry.trace_instant("store.optft.miss");
        }

        // Phases 2a ∥ 2b: the sound and predicated static analyses are
        // independent of each other (and neither touches the registry), so
        // they run as a two-node task DAG on the pipeline's shared pool —
        // serially, in sound-then-pred order, on a one-thread pool. Each
        // branch times itself with a plain clock; the `static_sound` span
        // wraps the whole fused section (the registry's span stack is
        // single-threaded) and `static_pred` closes immediately after it,
        // which keeps the span-tree shape — and any attached trace —
        // identical at every pool width. Branch results and stats are
        // consumed in a fixed order after the join, so the registry
        // contents never depend on which branch finished first.
        let pool = self.pipeline.pool();
        let sound_cfg = self.pt_config(None);
        let pred_cfg = self.pt_config(Some(&invariants));
        let span = registry.span("static_sound");
        let (sound_branch, pred_branch) = pool.join(
            || {
                let start = Instant::now();
                let pt = analyze(program, &sound_cfg)
                    .expect("context-insensitive points-to always completes");
                let races = detect(program, &pt, None);
                (pt, races, start.elapsed())
            },
            || {
                let start = Instant::now();
                let pt = analyze(program, &pred_cfg)
                    .expect("context-insensitive points-to always completes");
                let races = detect(program, &pt, pred_cfg.invariants);
                (pt, races, start.elapsed())
            },
        );
        let _ = span.finish();
        let (pt_sound, races_sound, sound_static_time) = sound_branch;
        pt_sound.stats().record(registry, "optft.pointsto.sound");
        let span = registry.span("static_pred");
        let _ = span.finish();
        let (pt_pred, races_pred, pred_static_time) = pred_branch;
        pt_pred.stats().record(registry, "optft.pointsto.pred");

        // No-custom-synchronization: propose elidable lock/unlock sites and
        // validate them on the profiling corpus (§4.2.4): any race the
        // elided detector reports that the sound detector does not is a
        // false race caused by a custom synchronization through an elided
        // lock — put that lock's instrumentation back and retry.
        let span = registry.span("elide");
        let elidable = validate_elidable_locks(
            program,
            machine,
            &pt_pred,
            &races_pred,
            races_sound.racy_sites(),
            profiling,
        );
        invariants.elidable_locks = elidable;
        let elide_time = span.finish();
        profile_time += elide_time;

        let pending = key.as_ref().map(|_| OptFtArtifact {
            invariants: invariants.clone(),
            profiling_runs_used: profiling_used as u64,
            races_sound: races_sound.clone(),
            races_pred: races_pred.clone(),
            pt_sound_stats: pt_sound.stats(),
            pt_pred,
            profile_ns: profile_time.as_nanos() as u64,
            sound_static_ns: sound_static_time.as_nanos() as u64,
            pred_static_ns: pred_static_time.as_nanos() as u64,
            elide_ns: elide_time.as_nanos() as u64,
        });

        FtStatics {
            invariants,
            profile_time,
            profiling_used,
            sound_static_time,
            pred_static_time,
            races_sound,
            races_pred,
            from_cache: false,
            key,
            pending,
        }
    }

    pub(crate) fn run(self, profiling: &[Vec<i64>], testing: &[Vec<i64>]) -> OptFtOutcome {
        let program = self.pipeline.program();
        let registry = self.pipeline.metrics().clone();
        let machine = Machine::new(program, self.pipeline.config().machine);
        // The speculative runs use a metrics-attached machine, so every
        // tracer-hook dispatch the optimistic tool sees is counted under
        // `optft.spec.hook.*` — the elision identity
        // elided + executed == dispatched holds against those counters.
        let spec_machine = Machine::new(program, self.pipeline.config().machine)
            .with_metrics(&registry, "optft.spec");
        let pipeline_span = registry.span("optft");

        // Phases 1 + 2, warm or cold.
        let statics = self.static_phase(profiling, &machine, &registry);
        let FtStatics {
            invariants,
            profile_time,
            profiling_used,
            sound_static_time,
            pred_static_time,
            races_sound,
            races_pred,
            from_cache,
            key,
            pending,
        } = statics;

        registry.observe_duration("optft.phase.profile_ns", profile_time);
        registry.observe_duration(
            "optft.phase.static_ns",
            sound_static_time + pred_static_time,
        );

        // Compile the per-instruction instrumentation plans once — they
        // depend only on the program and the static phase's elision sets.
        let plans = fastpath::enabled()
            .then(|| OptFtPlans::compile(program, &races_sound, &races_pred, &invariants));

        // Phase 3: speculative dynamic analysis over the testing corpus.
        let dynamic_span = registry.span("dynamic");
        let mut runs = Vec::with_capacity(testing.len());
        let mut baseline_races = BTreeSet::new();
        let mut optimistic_races = BTreeSet::new();
        for input in testing {
            let run = self.dynamic_run(
                input,
                &machine,
                &spec_machine,
                &registry,
                &races_sound,
                &races_pred,
                &invariants,
                plans.as_ref(),
            );
            registry.observe_duration("optft.run.baseline_ns", run.baseline);
            registry.observe_duration("optft.run.optimistic_ns", run.optimistic + run.rollback);
            baseline_races.extend(run.races_full.iter().copied());
            optimistic_races.extend(run.races_opt.iter().copied());
            runs.push(run);
        }
        registry.observe_duration("optft.phase.dynamic_ns", dynamic_span.finish());
        pipeline_span.finish();

        // Store bookkeeping. A clean cold run persists its artifact; a
        // rollback means the predicate mis-speculated on this corpus, so a
        // cold result is not saved and a warm entry is invalidated (the
        // next run re-analyzes against fresher invariants).
        if let (Some(store), Some(key)) = (self.pipeline.store(), &key) {
            let any_rollback = runs.iter().any(|r| r.rolled_back);
            if any_rollback {
                if from_cache {
                    store.invalidate(ArtifactKind::OptFt, key);
                }
            } else if let Some(artifact) = &pending {
                if store.save_optft(key, artifact).is_err() {
                    registry.add("store.save_errors", 1);
                }
            }
            store.stats().record(&registry, "store");
        }

        let mut outcome = OptFtOutcome {
            profiling_runs_used: profiling_used,
            profile_time,
            sound_static_time,
            pred_static_time,
            racy_sites_sound: races_sound.stats().racy_accesses,
            racy_sites_pred: races_pred.stats().racy_accesses,
            statically_race_free: races_sound.stats().racy_accesses == 0,
            elidable_lock_sites: invariants.elidable_locks.len(),
            invariants,
            runs,
            baseline_races,
            optimistic_races,
            report: RunReport::default(),
        };
        registry.set_gauge("optft.racy_sites.sound", outcome.racy_sites_sound as f64);
        registry.set_gauge("optft.racy_sites.pred", outcome.racy_sites_pred as f64);
        registry.set_gauge("optft.speedup_vs_full", outcome.speedup_vs_full());
        registry.set_gauge("optft.speedup_vs_hybrid", outcome.speedup_vs_hybrid());
        registry.set_gauge("optft.misspeculation_rate", outcome.misspeculation_rate());
        let mut report = registry.report("optft");
        report.meta.insert("tool".into(), "optft".into());
        report
            .meta
            .insert("testing_runs".into(), outcome.runs.len().to_string());
        report
            .meta
            .insert("profiling_runs_used".into(), profiling_used.to_string());
        if self.pipeline.store().is_some() {
            report.meta.insert(
                "static_cache".into(),
                if from_cache { "hit" } else { "miss" }.into(),
            );
        }
        outcome.report = report;
        outcome
    }

    fn pt_config<'i>(&self, invariants: Option<&'i InvariantSet>) -> PointsToConfig<'i> {
        PointsToConfig {
            sensitivity: Sensitivity::ContextInsensitive,
            invariants,
            clone_budget: self.pipeline.config().ctx_budget,
            solver_budget: self.pipeline.config().solver_budget,
            pool: self.pipeline.pool(),
            serial_cutoff: oha_pointsto::serial_cutoff_from_env(),
            dense_cutoff: oha_pointsto::dense_cutoff_from_env(),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn dynamic_run(
        &self,
        input: &[i64],
        machine: &Machine<'_>,
        spec_machine: &Machine<'_>,
        registry: &MetricsRegistry,
        races_sound: &StaticRaces,
        races_pred: &StaticRaces,
        invariants: &InvariantSet,
        plans: Option<&OptFtPlans>,
    ) -> OptFtRun {
        let program = self.pipeline.program();

        // The baseline is uninstrumented: no plan either (a plan that
        // elides everything would swap free no-op dispatches for elision
        // bookkeeping).
        let span = registry.span("baseline");
        machine.run(input, &mut NoopTracer);
        let baseline = span.finish();

        let span = registry.span("full");
        let mut full = FastTrackTool::full();
        machine.run_with_plan(input, &mut full, plans.map(|p| &p.full));
        let full_time = span.finish();
        if let Some(p) = plans {
            full.absorb_plan_elisions(&p.full.take_elisions());
        }

        let span = registry.span("hybrid");
        let mut hybrid = FastTrackTool::hybrid(races_sound.racy_sites());
        machine.run_with_plan(input, &mut hybrid, plans.map(|p| &p.hybrid));
        let hybrid_time = span.finish();
        if let Some(p) = plans {
            hybrid.absorb_plan_elisions(&p.hybrid.take_elisions());
        }

        let span = registry.span("checker");
        let mut checker_only =
            InvariantChecker::new(program, invariants, ChecksEnabled::for_optft());
        machine.run_with_plan(input, &mut checker_only, plans.map(|p| &p.checker));
        let checker_only_time = span.finish();
        if let Some(p) = plans {
            // The checker counts only the checks it performs; its plan
            // skips exactly the hooks it ignores, so there is nothing to
            // absorb — just drain the tally.
            p.checker.take_elisions();
        }

        // The speculative run: optimistic FastTrack + invariant checks,
        // with the schedule recorded so a mis-speculation can replay the
        // identical interleaving (the paper's record/replay rollback).
        let span = registry.span("optimistic");
        let opt_tool =
            FastTrackTool::optimistic(races_pred.racy_sites(), &invariants.elidable_locks);
        let checker = InvariantChecker::new(program, invariants, ChecksEnabled::for_optft());
        let mut combined = MultiTracer::new(opt_tool, checker);
        let (_, schedule) = spec_machine.run_recording_with_plan(
            input,
            &mut combined,
            plans.map(|p| &p.optimistic),
        );
        let optimistic_time = span.finish();
        if let Some(p) = plans {
            // Keeps the elision identity balanced: machine-side skips are
            // exactly the accesses/lock ops the tool would have elided.
            combined
                .first
                .absorb_plan_elisions(&p.optimistic.take_elisions());
        }
        combined.first.record_metrics(registry, "optft.ft");
        combined.second.record_metrics(registry, "optft.check");

        let opt_races = combined.first.race_pairs();
        let violations = combined.second.violations().count();
        // Rollback policy: invariant violations always roll back; race
        // reports are potential mis-speculations only when lock
        // instrumentation was elided (§4.2.4).
        let rolled_back = combined.second.is_violated()
            || (!invariants.elidable_locks.is_empty() && !opt_races.is_empty());

        let (races_opt, rollback) = if rolled_back {
            registry.add("optft.rollback", 1);
            for v in combined.second.violations() {
                registry.add(&format!("optft.rollback.cause.{}", v.class()), 1);
            }
            if violations == 0 {
                // Race-triggered rollback with no invariant violation: a
                // potentially-false race through an elided lock.
                registry.add("optft.rollback.cause.race_report", 1);
            }
            // Roll back: replay the recorded schedule under the traditional
            // hybrid analysis, which observes the same execution the failed
            // speculation did.
            let span = registry.span("rollback");
            let mut redo = FastTrackTool::hybrid(races_sound.racy_sites());
            machine.run_replay_with_plan(input, &schedule, &mut redo, plans.map(|p| &p.hybrid));
            if let Some(p) = plans {
                redo.absorb_plan_elisions(&p.hybrid.take_elisions());
            }
            (redo.race_pairs(), span.finish())
        } else {
            (opt_races, Duration::ZERO)
        };

        OptFtRun {
            baseline,
            full: full_time,
            hybrid: hybrid_time,
            optimistic: optimistic_time,
            checker_only: checker_only_time,
            rolled_back,
            rollback,
            races_full: full.race_pairs(),
            races_hybrid: hybrid.race_pairs(),
            races_opt,
            violations,
        }
    }
}

/// Proposes and validates lock/unlock sites whose instrumentation can be
/// elided (no-custom-synchronization, §4.2.4).
fn validate_elidable_locks(
    program: &Program,
    machine: &Machine<'_>,
    pt_pred: &PointsTo,
    races_pred: &StaticRaces,
    sound_racy: &BitSet,
    profiling: &[Vec<i64>],
) -> BTreeSet<InstId> {
    // Group lock/unlock sites into alias classes (shared lock cells).
    let sites: Vec<InstId> = program
        .insts()
        .filter(|i| matches!(i.kind, InstKind::Lock { .. } | InstKind::Unlock { .. }))
        .map(|i| i.id)
        .collect();
    if sites.is_empty() {
        return BTreeSet::new();
    }
    let mut class_of: HashMap<InstId, usize> = HashMap::new();
    let mut classes: Vec<Vec<InstId>> = Vec::new();
    let mut class_cells: Vec<BitSet> = Vec::new();
    for &s in &sites {
        let cells = pt_pred.lock_cells(s);
        let found = class_cells.iter().position(|c| c.intersects(cells));
        match found {
            Some(k) => {
                classes[k].push(s);
                class_cells[k].union_with(cells);
                class_of.insert(s, k);
            }
            None => {
                class_of.insert(s, classes.len());
                classes.push(vec![s]);
                class_cells.push(cells.clone());
            }
        }
    }

    // A class is a candidate when no access it guards needs instrumentation.
    let locksets = MustLocksets::new(program, pt_pred);
    let mut candidate = vec![true; classes.len()];
    for inst in program.insts() {
        if !inst.kind.is_memory_access() {
            continue;
        }
        if races_pred.is_racy(inst.id) {
            for &l in locksets.held_at(inst.id) {
                if let Some(&k) = class_of.get(&l) {
                    candidate[k] = false;
                }
            }
        }
    }

    // Validation loop: run the elided detector on the profiling corpus and
    // compare against the sound hybrid detector; a false race de-elides the
    // involved lock classes.
    let fast = fastpath::enabled();
    let hybrid_plan = fast.then(|| FastTrackTool::plan_for(program, Some(sound_racy), None));
    loop {
        let elided: BTreeSet<InstId> = classes
            .iter()
            .enumerate()
            .filter(|&(k, _)| candidate[k])
            .flat_map(|(_, c)| c.iter().copied())
            .collect();
        if elided.is_empty() {
            return elided;
        }
        // The optimistic plan changes with the candidate elision set, so
        // it is (re)compiled per round, amortized over the corpus.
        let opt_plan = fast.then(|| {
            FastTrackTool::plan_for(program, Some(races_pred.racy_sites()), Some(&elided))
        });
        let mut false_race = false;
        for input in profiling {
            let mut sound = FastTrackTool::hybrid(sound_racy);
            machine.run_with_plan(input, &mut sound, hybrid_plan.as_ref());
            let mut opt = FastTrackTool::optimistic(races_pred.racy_sites(), &elided);
            machine.run_with_plan(input, &mut opt, opt_plan.as_ref());
            // These tools' counters are never published, but the reused
            // plans' tallies must still be drained between runs so the
            // machine's end-of-run counter flush stays per-run exact.
            if let Some(p) = &hybrid_plan {
                p.take_elisions();
            }
            if let Some(p) = &opt_plan {
                p.take_elisions();
            }
            if !opt.race_pairs().is_subset(&sound.race_pairs()) {
                false_race = true;
                break;
            }
        }
        if !false_race {
            return elided;
        }
        // Give up elision entirely on a false race: simple and sound. A
        // finer policy would de-elide only the offending class; the paper's
        // "return the lock/unlock instrumentation to the offending locks"
        // iterates similarly until the false races disappear.
        for c in candidate.iter_mut() {
            *c = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oha_ir::{Operand, ProgramBuilder};
    use Operand::{Const, Reg as R};

    /// Two workers increment a shared counter under a lock.
    fn locked_counter() -> Program {
        let mut pb = ProgramBuilder::new();
        let g = pb.global("shared", 1);
        let w = pb.declare("worker", 1);
        let mut m = pb.function("main", 0);
        let n1 = m.input();
        let t1 = m.spawn(w, R(n1));
        let t2 = m.spawn(w, R(n1));
        m.join(R(t1));
        m.join(R(t2));
        let ga = m.addr_global(g);
        let v = m.load(R(ga), 0);
        m.output(R(v));
        m.ret(None);
        let main = pb.finish_function(m);
        let mut wf = pb.function("worker", 1);
        let iters = wf.param(0);
        let head = wf.block();
        let body = wf.block();
        let exit = wf.block();
        let ga = wf.addr_global(g);
        let i = wf.copy(Const(0));
        wf.jump(head);
        wf.select(head);
        let c = wf.cmp(oha_ir::CmpOp::Lt, R(i), R(iters));
        wf.branch(R(c), body, exit);
        wf.select(body);
        wf.lock(R(ga));
        let v = wf.load(R(ga), 0);
        let v1 = wf.bin(oha_ir::BinOp::Add, R(v), Const(1));
        wf.store(R(ga), 0, R(v1));
        wf.unlock(R(ga));
        let i1 = wf.bin(oha_ir::BinOp::Add, R(i), Const(1));
        wf.copy_to(i, R(i1));
        wf.jump(head);
        wf.select(exit);
        wf.ret(None);
        pb.finish_function(wf);
        pb.finish(main).unwrap()
    }

    #[test]
    fn optft_is_race_equivalent_and_elides_work() {
        let pipeline = Pipeline::new(locked_counter());
        let profiling: Vec<Vec<i64>> = (1..5).map(|n| vec![n * 10]).collect();
        let testing: Vec<Vec<i64>> = (1..6).map(|n| vec![n * 7]).collect();
        let outcome = pipeline.run_optft(&profiling, &testing);

        assert_eq!(outcome.optimistic_races, outcome.baseline_races);
        assert!(
            outcome.baseline_races.is_empty(),
            "the counter is race-free"
        );
        assert!(
            outcome.racy_sites_pred < outcome.racy_sites_sound,
            "guarding locks prune candidates ({} !< {})",
            outcome.racy_sites_pred,
            outcome.racy_sites_sound
        );
        assert_eq!(outcome.racy_sites_pred, 0);
        assert!(outcome.elidable_lock_sites > 0, "locks elided");
        assert_eq!(outcome.misspeculation_rate(), 0.0);
    }

    /// An input-dependent cold path makes the LUC invariant fail on a
    /// testing input outside the profiled distribution — OptFT must roll
    /// back and still produce the sound answer.
    #[test]
    fn optft_rolls_back_on_invariant_violation() {
        let mut pb = ProgramBuilder::new();
        let g = pb.global("shared", 1);
        let w = pb.declare("worker", 1);
        let mut m = pb.function("main", 0);
        let sel = m.input();
        let cold = m.block();
        let spawn_b = m.block();
        m.branch(R(sel), cold, spawn_b);
        m.select(cold);
        // The cold path writes the shared global unlocked, racing with the
        // workers.
        let ga = m.addr_global(g);
        let t1 = m.spawn(w, Const(5));
        m.store(R(ga), 0, Const(-1));
        m.join(R(t1));
        m.ret(None);
        m.select(spawn_b);
        let t1 = m.spawn(w, Const(5));
        m.join(R(t1));
        m.ret(None);
        let main = pb.finish_function(m);
        let mut wf = pb.function("worker", 1);
        let ga = wf.addr_global(g);
        let v = wf.load(R(ga), 0);
        wf.store(R(ga), 0, R(v));
        wf.ret(None);
        pb.finish_function(wf);
        let p = pb.finish(main).unwrap();

        let pipeline = Pipeline::new(p);
        // Profile only the hot path (sel == 0).
        let profiling = vec![vec![0], vec![0]];
        // Test includes the cold path (sel == 1).
        let testing = vec![vec![0], vec![1]];
        let outcome = pipeline.run_optft(&profiling, &testing);

        assert!(outcome.runs[1].rolled_back, "cold path must mis-speculate");
        assert!(!outcome.runs[0].rolled_back);
        assert_eq!(
            outcome.optimistic_races, outcome.baseline_races,
            "rollback restores soundness"
        );
    }
}
