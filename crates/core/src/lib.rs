//! Optimistic hybrid analysis: the paper's three-phase pipeline (§2).
//!
//! 1. **Likely-invariant profiling** — run the target program on a
//!    profiling corpus under [`ProfileTracer`](oha_invariants::ProfileTracer)
//!    and merge the observations into an
//!    [`InvariantSet`](oha_invariants::InvariantSet).
//! 2. **Predicated static analysis** — run the static analyses (points-to,
//!    race detection, slicing) *assuming* the likely invariants, yielding
//!    far smaller instrumentation sets than the sound analyses can justify.
//! 3. **Speculative dynamic analysis** — run the optimized dynamic analysis
//!    together with an
//!    [`InvariantChecker`](oha_invariants::InvariantChecker); if any assumed
//!    invariant is violated, *roll back*: re-execute deterministically (same
//!    program, input and scheduler seed) under the traditional hybrid
//!    analysis, whose results are then authoritative.
//!
//! [`Pipeline`] wires the phases together for the two instantiated tools:
//!
//! * [`Pipeline::run_optft`] — OptFT, the optimistic FastTrack race
//!   detector (paper §4), including the no-custom-synchronization lock
//!   elision loop;
//! * [`Pipeline::run_optslice`] — OptSlice, the optimistic dynamic backward
//!   slicer (paper §5).
//!
//! Both report per-run wall-clock timings decomposed the way Figures 5 and
//! 6 stack them (framework / invariant checks / analysis checks /
//! rollbacks), plus the end-to-end break-even model of Tables 1 and 2
//! ([`break_even_seconds`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod breakeven;
mod canonical;
mod optft;
mod optslice;
mod pipeline;
mod statespace;

pub use breakeven::{break_even_seconds, CostModel};
pub use canonical::{optft_canonical_json, optslice_canonical_json};
pub use optft::{OptFt, OptFtOutcome, OptFtRun};
pub use optslice::{OptSlice, OptSliceOutcome, OptSliceRun, StaticSideReport};
pub use pipeline::{Pipeline, PipelineConfig, StoreConfig, STORE_DIR_ENV};
pub use statespace::{state_space, StateSpace};
