//! Quantifying the Figure 1 state-space picture.
//!
//! Figure 1 is conceptual: sound static analysis explores S ⊇ P (all real
//! program states), while predicated analysis explores O, which can be
//! smaller than P itself. We quantify the *analysis* state space as the
//! size of the data-flow machinery a points-to pass builds: constraint
//! nodes, copy edges and reachable instructions.

use oha_invariants::InvariantSet;
use oha_ir::Program;
use oha_pointsto::{analyze, PointsToConfig};

/// Analysis state-space measures for one configuration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StateSpace {
    /// Constraint-graph nodes.
    pub nodes: usize,
    /// Copy edges.
    pub edges: usize,
    /// Instructions contributing constraints (reachable, unpruned code).
    pub reachable_insts: usize,
    /// Solver iterations to fixpoint.
    pub iterations: u64,
}

/// Measures the analysis state space with and without predication.
pub fn state_space(program: &Program, invariants: Option<&InvariantSet>) -> StateSpace {
    let pt = analyze(
        program,
        &PointsToConfig {
            invariants,
            ..PointsToConfig::default()
        },
    )
    .expect("context-insensitive points-to always completes");
    let reachable_insts = match invariants {
        Some(inv) => program
            .inst_ids()
            .filter(|&i| inv.is_visited(program.loc(i).block))
            .count(),
        None => program.num_insts(),
    };
    let stats = pt.stats();
    StateSpace {
        nodes: stats.nodes,
        edges: stats.copy_edges,
        reachable_insts,
        iterations: stats.solver_iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Pipeline;
    use oha_ir::{Operand, ProgramBuilder};
    use Operand::{Const, Reg as R};

    #[test]
    fn predication_shrinks_the_state_space() {
        // A program with a large cold region.
        let mut pb = ProgramBuilder::new();
        let cold_fn = pb.declare("cold", 1);
        let mut m = pb.function("main", 0);
        let hot = m.block();
        let cold = m.block();
        let end = m.block();
        let c = m.input();
        m.branch(R(c), hot, cold);
        m.select(hot);
        m.output(Const(1));
        m.jump(end);
        m.select(cold);
        m.call_void(cold_fn, vec![Const(0)]);
        m.jump(end);
        m.select(end);
        m.ret(None);
        let main = pb.finish_function(m);
        let mut f = pb.function("cold", 1);
        for _ in 0..10 {
            let o = f.alloc(2);
            f.store(R(o), 0, Const(1));
            let l = f.load(R(o), 0);
            f.store(R(o), 1, R(l));
        }
        f.ret(None);
        pb.finish_function(f);
        let p = pb.finish(main).unwrap();

        let sound = state_space(&p, None);
        let pipeline = Pipeline::new(p);
        let (inv, _) = pipeline.profile(&[vec![1], vec![1]]);
        let pred = state_space(pipeline.program(), Some(&inv));

        assert!(pred.nodes < sound.nodes);
        assert!(pred.reachable_insts < sound.reachable_insts);
        assert!(pred.iterations <= sound.iterations);
    }
}
