//! The end-to-end cost model behind Tables 1 and 2.
//!
//! The paper defines break-even time as "the minimum amount of baseline
//! execution time where an optimistic analysis uses less total computational
//! resources (profiling + static + dynamic) than a traditional [hybrid]
//! analysis". Both sides are linear in the amount of baseline time analyzed:
//!
//! ```text
//! cost(T) = one_time + overhead_ratio · T
//! ```
//!
//! where `overhead_ratio` is the tool's runtime per second of baseline
//! execution, measured on the testing corpus.

use std::time::Duration;

/// One analysis's cost line: a fixed setup cost plus a per-baseline-second
/// runtime ratio.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// One-time setup cost (profiling and/or static analysis), seconds.
    pub one_time: f64,
    /// Tool runtime per second of baseline execution (≥ 0; 1.0 would mean
    /// "as fast as uninstrumented").
    pub overhead_ratio: f64,
}

impl CostModel {
    /// Builds a model from measured durations.
    pub fn new(one_time: Duration, tool_time: Duration, baseline_time: Duration) -> Self {
        let b = baseline_time.as_secs_f64().max(1e-9);
        Self {
            one_time: one_time.as_secs_f64(),
            overhead_ratio: tool_time.as_secs_f64() / b,
        }
    }

    /// Total cost of analyzing `t` seconds of baseline execution.
    pub fn cost(&self, t: f64) -> f64 {
        self.one_time + self.overhead_ratio * t
    }
}

/// The baseline-seconds at which `optimistic` becomes cheaper than
/// `traditional`, or `None` if it never does (the Table 1/2 "–" entries).
///
/// # Examples
///
/// ```
/// use oha_core::{break_even_seconds, CostModel};
///
/// let hybrid = CostModel { one_time: 10.0, overhead_ratio: 5.0 };
/// let optimistic = CostModel { one_time: 60.0, overhead_ratio: 2.0 };
/// // 60 + 2t < 10 + 5t  ⇔  t > 50/3.
/// let t = break_even_seconds(&optimistic, &hybrid).unwrap();
/// assert!((t - 50.0 / 3.0).abs() < 1e-9);
///
/// let slower = CostModel { one_time: 60.0, overhead_ratio: 9.0 };
/// assert!(break_even_seconds(&slower, &hybrid).is_none());
/// ```
pub fn break_even_seconds(optimistic: &CostModel, traditional: &CostModel) -> Option<f64> {
    let setup_gap = optimistic.one_time - traditional.one_time;
    let rate_gain = traditional.overhead_ratio - optimistic.overhead_ratio;
    if setup_gap <= 0.0 {
        // Cheaper setup and (at worst equal) never-worse slope: immediate.
        if rate_gain >= 0.0 {
            return Some(0.0);
        }
        // Cheaper setup but slower per-second: optimistic wins only below
        // a crossover, i.e. there is no break-even in the paper's sense.
        return None;
    }
    if rate_gain <= 0.0 {
        return None;
    }
    Some(setup_gap / rate_gain)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_from_durations() {
        let m = CostModel::new(
            Duration::from_secs(3),
            Duration::from_millis(1500),
            Duration::from_millis(500),
        );
        assert!((m.one_time - 3.0).abs() < 1e-9);
        assert!((m.overhead_ratio - 3.0).abs() < 1e-9);
        assert!((m.cost(10.0) - 33.0).abs() < 1e-9);
    }

    #[test]
    fn break_even_crossover() {
        let trad = CostModel {
            one_time: 75.0,
            overhead_ratio: 12.6,
        };
        let opt = CostModel {
            one_time: 179.0,
            overhead_ratio: 3.5,
        };
        let t = break_even_seconds(&opt, &trad).unwrap();
        assert!((t - (179.0 - 75.0) / (12.6 - 3.5)).abs() < 1e-9);
        // Sanity: just below, traditional is cheaper; just above, opt is.
        assert!(trad.cost(t - 1.0) < opt.cost(t - 1.0));
        assert!(trad.cost(t + 1.0) > opt.cost(t + 1.0));
    }

    #[test]
    fn no_break_even_when_not_faster() {
        let trad = CostModel {
            one_time: 10.0,
            overhead_ratio: 2.0,
        };
        let opt = CostModel {
            one_time: 50.0,
            overhead_ratio: 2.0,
        };
        assert_eq!(break_even_seconds(&opt, &trad), None);
    }

    #[test]
    fn immediate_break_even_when_strictly_better() {
        let trad = CostModel {
            one_time: 10.0,
            overhead_ratio: 5.0,
        };
        let opt = CostModel {
            one_time: 5.0,
            overhead_ratio: 2.0,
        };
        assert_eq!(break_even_seconds(&opt, &trad), Some(0.0));
    }
}
