//! OptSlice: optimistic dynamic backward slicing (paper §5).

use std::time::{Duration, Instant};

use oha_giri::{DynamicSlice, GiriTool};
use oha_interp::{fastpath, InstrPlan, Machine, MultiTracer, NoopTracer};
use oha_invariants::{ChecksEnabled, InvariantChecker, InvariantSet};
use oha_ir::{FingerprintHasher, InstId, Program};
use oha_obs::{RunReport, SpanStat};
use oha_pointsto::{analyze, PointsTo, PointsToConfig, Sensitivity};
use oha_slicing::{slice, SliceConfig, StaticSlice};
use oha_store::{ArtifactKey, ArtifactKind, OptSliceArtifact, StaticSideArtifact};

use crate::pipeline::Pipeline;

/// One static-analysis side (sound or predicated) of Table 2.
#[derive(Clone, Debug)]
pub struct StaticSideReport {
    /// The most accurate points-to analysis that completed.
    pub points_to_at: Sensitivity,
    /// Points-to analysis time.
    pub points_to_time: Duration,
    /// The most accurate slicer that completed.
    pub slice_at: Sensitivity,
    /// Slicing time.
    pub slice_time: Duration,
    /// Static slice size in instructions (Figure 10's metric).
    pub slice_size: usize,
    /// Load/store alias rate (Figure 9's metric). On the sound side this
    /// is restricted to the accesses the predicated analysis considers —
    /// the paper's fairness rule (§6.3).
    pub alias_rate: f64,
}

/// One testing-input execution of OptSlice and its baselines.
#[derive(Clone, Debug)]
pub struct OptSliceRun {
    /// Uninstrumented execution time.
    pub baseline: Duration,
    /// Traditional hybrid slicer (traces the sound static slice).
    pub hybrid: Duration,
    /// OptSlice's speculative run (includes invariant checking, excludes
    /// rollback).
    pub optimistic: Duration,
    /// Invariant-checker-only run (the Figure 6 invariant-check component).
    pub checker_only: Duration,
    /// Whether the speculative run rolled back.
    pub rolled_back: bool,
    /// Rollback re-execution time (zero when none).
    pub rollback: Duration,
    /// Dynamic slice from the hybrid slicer.
    pub hybrid_slice_len: usize,
    /// OptSlice's final dynamic slice (speculative or rollback result).
    pub opt_slice_len: usize,
    /// Soundness check: the final optimistic slice equals the hybrid one.
    pub slices_equal: bool,
}

/// The result of the whole OptSlice pipeline on one benchmark.
#[derive(Clone, Debug)]
pub struct OptSliceOutcome {
    /// Merged likely invariants.
    pub invariants: InvariantSet,
    /// Profiling corpus time.
    pub profile_time: Duration,
    /// Profiling runs consumed before the invariant set stabilized.
    pub profiling_runs_used: usize,
    /// The sound static side (feeds the traditional hybrid slicer).
    pub sound: StaticSideReport,
    /// The predicated static side (feeds OptSlice).
    pub pred: StaticSideReport,
    /// Per-testing-input measurements.
    pub runs: Vec<OptSliceRun>,
    /// Machine-readable account of the whole run: phase spans
    /// (`optslice/profile`, `optslice/static_pred/slice`, …), DUG and
    /// budget gauges, tracing counters, and mis-speculation causes by
    /// invariant class (`optslice.rollback.cause.<class>`).
    pub report: RunReport,
}

impl OptSliceOutcome {
    /// Dynamic speedup of OptSlice (incl. rollbacks) over the hybrid
    /// slicer: total analysis overhead above baseline across the corpus
    /// (robust against near-zero per-run denominators).
    pub fn speedup_vs_hybrid(&self) -> f64 {
        let mut num = 0.0;
        let mut den = 0.0;
        for r in &self.runs {
            den += (r.optimistic + r.rollback)
                .checked_sub(r.baseline)
                .unwrap_or(Duration::from_nanos(1))
                .as_secs_f64();
            num += r
                .hybrid
                .checked_sub(r.baseline)
                .unwrap_or(Duration::from_nanos(1))
                .as_secs_f64();
        }
        if den <= 0.0 {
            1.0
        } else {
            num / den
        }
    }

    /// Fraction of testing runs that rolled back.
    pub fn misspeculation_rate(&self) -> f64 {
        if self.runs.is_empty() {
            return 0.0;
        }
        self.runs.iter().filter(|r| r.rolled_back).count() as f64 / self.runs.len() as f64
    }

    /// Whether every final optimistic slice matched the hybrid slicer's.
    pub fn all_slices_equal(&self) -> bool {
        self.runs.iter().all(|r| r.slices_equal)
    }
}

/// The OptSlice driver. Use [`Pipeline::run_optslice`].
pub struct OptSlice<'a> {
    pipeline: &'a Pipeline,
    endpoints: Vec<InstId>,
}

struct StaticSide {
    report: StaticSideReport,
    slice: StaticSlice,
    pt: PointsTo,
}

/// Everything OptSlice's dynamic phase needs from the (cacheable)
/// profiling and static phases, plus save/invalidate bookkeeping.
struct SliceStatics {
    invariants: InvariantSet,
    profile_time: Duration,
    profiling_used: usize,
    sound_report: StaticSideReport,
    pred_report: StaticSideReport,
    sound_slice: StaticSlice,
    pred_slice: StaticSlice,
    from_cache: bool,
    key: Option<ArtifactKey>,
    /// Freshly computed artifact, persisted only after a rollback-free
    /// dynamic phase.
    pending: Option<OptSliceArtifact>,
}

/// Pre-compiled instrumentation plans for the dynamic phase, one per run
/// configuration. Compiled once per pipeline run and reused across every
/// testing input; each tool absorbs (or drains) the plan's elision tally
/// after its run so per-input counters stay exact.
struct OptSlicePlans {
    hybrid: InstrPlan,
    checker: InstrPlan,
    optimistic: InstrPlan,
}

impl OptSlicePlans {
    fn compile(
        program: &Program,
        sound_slice: &StaticSlice,
        pred_slice: &StaticSlice,
        invariants: &InvariantSet,
    ) -> Self {
        let checker =
            InvariantChecker::plan_for(program, invariants, ChecksEnabled::for_optslice());
        // The speculative run multiplexes the optimistic slicer and the
        // invariant checker over one execution: union of both plans. The
        // slicer's elision tally stays exact because the checker never
        // requires a traceable (load/store/compute/input/output) bit the
        // slicer elides.
        let mut optimistic = GiriTool::plan_for(program, Some(pred_slice.sites()));
        optimistic.union_with(&checker);
        Self {
            hybrid: GiriTool::plan_for(program, Some(sound_slice.sites())),
            checker,
            optimistic,
        }
    }
}

fn side_artifact(side: &StaticSide) -> StaticSideArtifact {
    StaticSideArtifact {
        points_to_at: side.report.points_to_at,
        points_to_ns: side.report.points_to_time.as_nanos() as u64,
        slice_at: side.report.slice_at,
        slice_ns: side.report.slice_time.as_nanos() as u64,
        slice: side.slice.clone(),
        alias_rate: side.report.alias_rate,
        pt_stats: side.pt.stats(),
    }
}

fn side_report(side: &StaticSideArtifact, live: Duration) -> StaticSideReport {
    StaticSideReport {
        points_to_at: side.points_to_at,
        points_to_time: live,
        slice_at: side.slice_at,
        slice_time: Duration::ZERO,
        slice_size: side.slice.len(),
        alias_rate: side.alias_rate,
    }
}

impl<'a> OptSlice<'a> {
    pub(crate) fn new(pipeline: &'a Pipeline, endpoints: Vec<InstId>) -> Self {
        Self {
            pipeline,
            endpoints,
        }
    }

    /// Replays one static side's span shape into the registry and records
    /// its stats. The spans carry the tree shape (`static_<label>` >
    /// `pointsto`/`slice`); the measured durations live in the side's
    /// report, because the side may have been computed concurrently with
    /// its sibling on another thread, where the registry's single span
    /// stack cannot time it.
    fn record_side(&self, side: &StaticSide, label: &str) {
        let registry = self.pipeline.metrics();
        let phase_span = registry.span(&format!("static_{label}"));
        let _ = registry.span("pointsto").finish();
        let _ = registry.span("slice").finish();
        let _ = phase_span.finish();
        side.pt
            .stats()
            .record(registry, &format!("optslice.pointsto.{label}"));
        side.slice
            .stats()
            .record(registry, &format!("optslice.slice.{label}"));
    }

    /// Stable fingerprint of the slice endpoints (part of the cache
    /// predicate: different endpoints yield different static slices).
    fn endpoints_fingerprint(&self) -> oha_ir::Fingerprint {
        let mut h = FingerprintHasher::new();
        h.write(b"oha-endpoints-v1");
        h.write_u64(self.endpoints.len() as u64);
        for &e in &self.endpoints {
            h.write_u64(u64::from(e.raw()));
        }
        h.finish()
    }

    /// Phases 1 and 2 (profiling, sound + predicated points-to and
    /// slicing), served from the artifact store when warm. The predicate
    /// side of the key folds together the invariant-set fingerprint, the
    /// endpoints and every static budget (including the slicer's visit
    /// budget, which decides the CS→CI fallback).
    fn static_phase(
        &self,
        profiling: &[Vec<i64>],
        registry: &oha_obs::MetricsRegistry,
    ) -> SliceStatics {
        let program = self.pipeline.program();
        let (invariants, profile_time, profiling_used) = self.pipeline.profile_phase(profiling, 6);

        let key = self.pipeline.store().map(|_| {
            let predicate = invariants
                .fingerprint()
                .combine(self.endpoints_fingerprint())
                .combine(self.pipeline.budget_fingerprint(true));
            ArtifactKey::new(program.fingerprint(), predicate)
        });

        if let (Some(store), Some(key)) = (self.pipeline.store(), &key) {
            let start = Instant::now();
            let loaded = store.load_optslice(key);
            let load_time = start.elapsed();
            if let Some(a) = loaded {
                registry.observe_duration("store.load.hit_ns", load_time);
                registry.trace_instant("store.optslice.hit");
                let elapsed = load_time;
                // Registry parity with the cold path, with the cold
                // durations replayed under `cached/*` spans.
                a.sound.pt_stats.record(registry, "optslice.pointsto.sound");
                a.pred.pt_stats.record(registry, "optslice.pointsto.pred");
                a.sound
                    .slice
                    .stats()
                    .record(registry, "optslice.slice.sound");
                a.pred.slice.stats().record(registry, "optslice.slice.pred");
                for (path, ns) in [
                    ("cached/static_sound/pointsto", a.sound.points_to_ns),
                    ("cached/static_sound/slice", a.sound.slice_ns),
                    ("cached/static_pred/pointsto", a.pred.points_to_ns),
                    ("cached/static_pred/slice", a.pred.slice_ns),
                ] {
                    registry.add_span_stat(
                        path,
                        SpanStat {
                            total: Duration::from_nanos(ns),
                            count: 1,
                        },
                    );
                }
                return SliceStatics {
                    invariants: a.invariants,
                    profile_time,
                    profiling_used,
                    sound_report: side_report(&a.sound, elapsed),
                    pred_report: side_report(&a.pred, Duration::ZERO),
                    sound_slice: a.sound.slice,
                    pred_slice: a.pred.slice,
                    from_cache: true,
                    key: Some(*key),
                    pending: None,
                };
            }
            registry.observe_duration("store.load.miss_ns", load_time);
            registry.trace_instant("store.optslice.miss");
        }

        // The sound and predicated static sides are independent until the
        // alias-rate fairness fixup below, so they run as a two-node task
        // DAG on the pipeline's shared pool (serially, sound first, on a
        // one-thread pool). The branches are registry-free — the
        // single-threaded metrics registry stays on this thread — and
        // their span shapes and stats are replayed in fixed sound-then-
        // pred order after the join, so the registry contents never
        // depend on thread count.
        let pool = self.pipeline.pool();
        let serial_cutoff = oha_pointsto::serial_cutoff_from_env();
        let dense_cutoff = oha_pointsto::dense_cutoff_from_env();
        let cfg = self.pipeline.config();
        let endpoints = &self.endpoints;
        let (mut sound, pred) = pool.join(
            || {
                compute_side(
                    program,
                    endpoints,
                    cfg,
                    pool,
                    serial_cutoff,
                    dense_cutoff,
                    None,
                )
            },
            || {
                compute_side(
                    program,
                    endpoints,
                    cfg,
                    pool,
                    serial_cutoff,
                    dense_cutoff,
                    Some(&invariants),
                )
            },
        );
        self.record_side(&sound, "sound");
        self.record_side(&pred, "pred");
        // Figure 9's fairness rule: report the sound alias rate over the
        // accesses the predicated analysis still considers.
        sound.report.alias_rate = sound.pt.alias_rate_over(&pred.pt);

        let pending = if key.is_some() {
            Some(OptSliceArtifact {
                invariants: invariants.clone(),
                profiling_runs_used: profiling_used as u64,
                profile_ns: profile_time.as_nanos() as u64,
                sound: side_artifact(&sound),
                pred: side_artifact(&pred),
                pt_pred: pred.pt.clone(),
            })
        } else {
            None
        };

        SliceStatics {
            invariants,
            profile_time,
            profiling_used,
            sound_report: sound.report,
            pred_report: pred.report,
            sound_slice: sound.slice,
            pred_slice: pred.slice,
            from_cache: false,
            key,
            pending,
        }
    }

    pub(crate) fn run(self, profiling: &[Vec<i64>], testing: &[Vec<i64>]) -> OptSliceOutcome {
        let program = self.pipeline.program();
        let registry = self.pipeline.metrics().clone();
        let machine = Machine::new(program, self.pipeline.config().machine);
        // The speculative runs dispatch through a metrics-attached machine:
        // `optslice.spec.hook.*` counts every event the optimistic slicer
        // could have seen, elided or traced.
        let spec_machine = Machine::new(program, self.pipeline.config().machine)
            .with_metrics(&registry, "optslice.spec");
        let pipeline_span = registry.span("optslice");

        let statics = self.static_phase(profiling, &registry);
        let SliceStatics {
            invariants,
            profile_time,
            profiling_used,
            sound_report,
            pred_report,
            sound_slice,
            pred_slice,
            from_cache,
            key,
            pending,
        } = statics;

        registry.observe_duration("optslice.phase.profile_ns", profile_time);
        registry.observe_duration(
            "optslice.phase.static_ns",
            sound_report.points_to_time
                + sound_report.slice_time
                + pred_report.points_to_time
                + pred_report.slice_time,
        );

        // Fast path: compile per-instruction instrumentation plans once and
        // reuse them for every testing input. The reference path passes no
        // plan and dispatches every event.
        let plans = fastpath::enabled()
            .then(|| OptSlicePlans::compile(program, &sound_slice, &pred_slice, &invariants));

        let dynamic_span = registry.span("dynamic");
        let mut runs = Vec::with_capacity(testing.len());
        for input in testing {
            let span = registry.span("baseline");
            // Uninstrumented: no plan either (a plan that elides everything
            // would swap free no-op dispatches for elision bookkeeping).
            machine.run(input, &mut NoopTracer);
            let baseline = span.finish();

            let span = registry.span("hybrid");
            let mut hybrid = GiriTool::hybrid(program, sound_slice.sites());
            machine.run_with_plan(input, &mut hybrid, plans.as_ref().map(|p| &p.hybrid));
            let hybrid_time = span.finish();
            if let Some(p) = &plans {
                hybrid.absorb_plan_elisions(&p.hybrid.take_elisions());
            }
            let hybrid_slice = self.slice_endpoints(&hybrid);

            let span = registry.span("checker");
            let mut checker_only =
                InvariantChecker::new(program, &invariants, ChecksEnabled::for_optslice());
            machine.run_with_plan(input, &mut checker_only, plans.as_ref().map(|p| &p.checker));
            let checker_only_time = span.finish();
            if let Some(p) = &plans {
                // Nothing to absorb: the checker's stats count only the
                // events its plan dispatches. Drain the tally for reuse.
                p.checker.take_elisions();
            }

            // Speculative run with the schedule recorded for rollback.
            let span = registry.span("optimistic");
            let opt_tool = GiriTool::hybrid(program, pred_slice.sites());
            let checker =
                InvariantChecker::new(program, &invariants, ChecksEnabled::for_optslice());
            let mut combined = MultiTracer::new(opt_tool, checker);
            let (_, schedule) = spec_machine.run_recording_with_plan(
                input,
                &mut combined,
                plans.as_ref().map(|p| &p.optimistic),
            );
            let optimistic_time = span.finish();
            if let Some(p) = &plans {
                combined
                    .first
                    .absorb_plan_elisions(&p.optimistic.take_elisions());
            }
            combined.first.record_metrics(&registry, "optslice.giri");
            combined.second.record_metrics(&registry, "optslice.check");

            let rolled_back = combined.second.is_violated();
            let (opt_slice, rollback) = if rolled_back {
                registry.add("optslice.rollback", 1);
                for v in combined.second.violations() {
                    registry.add(&format!("optslice.rollback.cause.{}", v.class()), 1);
                }
                // Replay the identical interleaving under the traditional
                // hybrid slicer.
                let span = registry.span("rollback");
                let mut redo = GiriTool::hybrid(program, sound_slice.sites());
                machine.run_replay_with_plan(
                    input,
                    &schedule,
                    &mut redo,
                    plans.as_ref().map(|p| &p.hybrid),
                );
                let rollback_time = span.finish();
                if let Some(p) = &plans {
                    redo.absorb_plan_elisions(&p.hybrid.take_elisions());
                }
                (self.slice_endpoints(&redo), rollback_time)
            } else {
                (self.slice_endpoints(&combined.first), Duration::ZERO)
            };

            registry.observe_duration("optslice.run.baseline_ns", baseline);
            registry.observe_duration("optslice.run.optimistic_ns", optimistic_time + rollback);
            runs.push(OptSliceRun {
                baseline,
                hybrid: hybrid_time,
                optimistic: optimistic_time,
                checker_only: checker_only_time,
                rolled_back,
                rollback,
                hybrid_slice_len: hybrid_slice.len(),
                opt_slice_len: opt_slice.len(),
                slices_equal: hybrid_slice == opt_slice,
            });
        }
        registry.observe_duration("optslice.phase.dynamic_ns", dynamic_span.finish());
        pipeline_span.finish();

        // Store bookkeeping: save a clean cold result; a rollback means
        // the predicate mis-speculated, so skip the save (cold) or
        // invalidate the entry (warm).
        if let (Some(store), Some(key)) = (self.pipeline.store(), &key) {
            let any_rollback = runs.iter().any(|r| r.rolled_back);
            if any_rollback {
                if from_cache {
                    store.invalidate(ArtifactKind::OptSlice, key);
                }
            } else if let Some(artifact) = &pending {
                if store.save_optslice(key, artifact).is_err() {
                    registry.add("store.save_errors", 1);
                }
            }
            store.stats().record(&registry, "store");
        }

        let mut outcome = OptSliceOutcome {
            invariants,
            profile_time,
            profiling_runs_used: profiling_used,
            sound: sound_report,
            pred: pred_report,
            runs,
            report: RunReport::default(),
        };
        registry.set_gauge("optslice.slice_size.sound", outcome.sound.slice_size as f64);
        registry.set_gauge("optslice.slice_size.pred", outcome.pred.slice_size as f64);
        registry.set_gauge("optslice.alias_rate.sound", outcome.sound.alias_rate);
        registry.set_gauge("optslice.alias_rate.pred", outcome.pred.alias_rate);
        registry.set_gauge("optslice.speedup_vs_hybrid", outcome.speedup_vs_hybrid());
        registry.set_gauge(
            "optslice.misspeculation_rate",
            outcome.misspeculation_rate(),
        );
        let mut report = registry.report("optslice");
        report.meta.insert("tool".into(), "optslice".into());
        report
            .meta
            .insert("testing_runs".into(), outcome.runs.len().to_string());
        report
            .meta
            .insert("profiling_runs_used".into(), profiling_used.to_string());
        if self.pipeline.store().is_some() {
            report.meta.insert(
                "static_cache".into(),
                if from_cache { "hit" } else { "miss" }.into(),
            );
        }
        outcome.report = report;
        outcome
    }

    fn slice_endpoints(&self, tool: &GiriTool<'_>) -> DynamicSlice {
        let mut acc = DynamicSlice::default();
        for &e in &self.endpoints {
            let s = tool.slice_of(e);
            acc = merge(acc, s);
        }
        acc
    }
}

/// Runs the most accurate analyses that complete within budget: CS first,
/// CI as the fallback — the paper's "most accurate static analysis that
/// will complete on that benchmark without exhausting available
/// computational resources" (§6.1.2). Registry-free (each step times
/// itself with a plain clock) so the sound and predicated sides can run
/// concurrently; the caller replays the span shape and stats after the
/// join.
#[allow(clippy::too_many_arguments)]
fn compute_side(
    program: &Program,
    endpoints: &[InstId],
    cfg: &crate::pipeline::PipelineConfig,
    pool: oha_par::Pool,
    serial_cutoff: usize,
    dense_cutoff: usize,
    invariants: Option<&InvariantSet>,
) -> StaticSide {
    let pt_cfg = |sensitivity| PointsToConfig {
        sensitivity,
        invariants,
        clone_budget: cfg.ctx_budget,
        solver_budget: cfg.solver_budget,
        pool,
        serial_cutoff,
        dense_cutoff,
    };
    let start = Instant::now();
    let (pt, pt_at): (PointsTo, Sensitivity) =
        match analyze(program, &pt_cfg(Sensitivity::ContextSensitive)) {
            Ok(pt) => (pt, Sensitivity::ContextSensitive),
            Err(_) => (
                analyze(program, &pt_cfg(Sensitivity::ContextInsensitive))
                    .expect("context-insensitive points-to always completes"),
                Sensitivity::ContextInsensitive,
            ),
        };
    let points_to_time = start.elapsed();

    let sl_cfg = |sensitivity| SliceConfig {
        sensitivity,
        invariants,
        ctx_budget: cfg.ctx_budget,
        visit_budget: cfg.visit_budget,
        pool,
    };
    let start = Instant::now();
    let (static_slice, slice_at) = match slice(
        program,
        &pt,
        endpoints,
        &sl_cfg(Sensitivity::ContextSensitive),
    ) {
        Ok(s) => (s, Sensitivity::ContextSensitive),
        Err(_) => (
            slice(
                program,
                &pt,
                endpoints,
                &sl_cfg(Sensitivity::ContextInsensitive),
            )
            .expect("context-insensitive slicing always completes"),
            Sensitivity::ContextInsensitive,
        ),
    };
    let slice_time = start.elapsed();

    StaticSide {
        report: StaticSideReport {
            points_to_at: pt_at,
            points_to_time,
            slice_at,
            slice_time,
            slice_size: static_slice.len(),
            alias_rate: pt.alias_rate(),
        },
        slice: static_slice,
        pt,
    }
}

fn merge(a: DynamicSlice, b: DynamicSlice) -> DynamicSlice {
    // DynamicSlice does not expose a mutable union, so rebuild through the
    // bit sets.
    let mut bits = a.sites().clone();
    bits.union_with(b.sites());
    DynamicSlice::from_sites(bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oha_ir::{InstKind, Operand, Program, ProgramBuilder};
    use Operand::{Const, Reg as R};

    /// An interpreter-style program: dispatch through function pointers on
    /// input, with a cold error path.
    fn dispatcher() -> Program {
        let mut pb = ProgramBuilder::new();
        let op_add = pb.declare("op_add", 1);
        let op_mul = pb.declare("op_mul", 1);
        let op_err = pb.declare("op_err", 1);
        let mut m = pb.function("main", 0);
        let head = m.block();
        let body = m.block();
        let pick_mul = m.block();
        let pick_err = m.block();
        let do_call = m.block();
        let exit = m.block();
        let acc = m.copy(Const(0));
        let fp = m.reg();
        m.jump(head);
        m.select(head);
        let more = m.input();
        m.branch(R(more), body, exit);
        m.select(body);
        let sel = m.input();
        let fadd = m.addr_func(op_add);
        m.copy_to(fp, R(fadd));
        let is_mul = m.cmp(oha_ir::CmpOp::Eq, R(sel), Const(1));
        let is_err = m.cmp(oha_ir::CmpOp::Eq, R(sel), Const(2));
        let check_err = m.block();
        m.branch(R(is_mul), pick_mul, check_err);
        m.select(pick_mul);
        let fmul = m.addr_func(op_mul);
        m.copy_to(fp, R(fmul));
        m.jump(do_call);
        m.select(check_err);
        m.branch(R(is_err), pick_err, do_call);
        m.select(pick_err);
        let ferr = m.addr_func(op_err);
        m.copy_to(fp, R(ferr));
        m.jump(do_call);
        m.select(do_call);
        let r = m.call_indirect(R(fp), vec![R(acc)]);
        m.copy_to(acc, R(r));
        m.jump(head);
        m.select(exit);
        m.output(R(acc));
        m.ret(None);
        let main = pb.finish_function(m);
        for (name, op) in [
            ("op_add", oha_ir::BinOp::Add),
            ("op_mul", oha_ir::BinOp::Mul),
        ] {
            let mut f = pb.function(name, 1);
            let v = f.bin(op, R(f.param(0)), Const(3));
            f.ret(Some(R(v)));
            pb.finish_function(f);
        }
        let mut f = pb.function("op_err", 1);
        f.output(Const(-999));
        f.ret(Some(Const(0)));
        pb.finish_function(f);
        pb.finish(main).unwrap()
    }

    fn endpoint(p: &Program) -> InstId {
        p.inst_ids()
            .find(|&i| {
                matches!(p.inst(i).kind, InstKind::Output { .. })
                    && p.function(p.func_of_inst(i)).name == "main"
            })
            .unwrap()
    }

    #[test]
    fn optslice_matches_hybrid_and_shrinks_static_slice() {
        let p = dispatcher();
        let e = endpoint(&p);
        let pipeline = Pipeline::new(p);
        // Profile only add/mul operations (sel 0/1).
        let profiling = vec![vec![1, 0, 1, 1, 0], vec![1, 1, 1, 0, 1, 1, 0, 0], vec![0]];
        let testing = vec![vec![1, 0, 1, 1, 1, 1, 0], vec![1, 1, 0], vec![0]];
        let outcome = pipeline.run_optslice(&profiling, &testing, &[e]);

        assert!(outcome.all_slices_equal(), "OptSlice must match hybrid");
        assert_eq!(outcome.misspeculation_rate(), 0.0);
        assert!(
            outcome.pred.slice_size < outcome.sound.slice_size,
            "predicated static slice smaller ({} !< {})",
            outcome.pred.slice_size,
            outcome.sound.slice_size
        );
        assert!(outcome.pred.alias_rate <= outcome.sound.alias_rate);
    }

    #[test]
    fn optslice_rolls_back_on_new_callee() {
        let p = dispatcher();
        let e = endpoint(&p);
        let pipeline = Pipeline::new(p);
        let profiling = vec![vec![1, 0, 1, 1, 0], vec![0]];
        // sel == 2 dispatches to op_err, a path (and callee) profiling
        // never saw: LUC and callee-set invariants are both violated.
        let testing = vec![vec![1, 2], vec![1, 0, 0]];
        let outcome = pipeline.run_optslice(&profiling, &testing, &[e]);
        assert!(outcome.runs[0].rolled_back, "unprofiled path rolls back");
        assert!(!outcome.runs[1].rolled_back);
        assert!(outcome.all_slices_equal(), "rollback restores the answer");
    }
}
