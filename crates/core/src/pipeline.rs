//! The shared pipeline scaffolding: configuration, the profiling phase,
//! and the artifact-store plumbing both tools share.

use std::env;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use oha_faults::FaultPlan;
use oha_interp::{Machine, MachineConfig};
use oha_invariants::{InvariantAccumulator, InvariantSet, ProfileTracer, RunProfile};
use oha_ir::{Fingerprint, FingerprintHasher, InstId, Program};
use oha_obs::{MetricsFrame, MetricsRegistry, SpanStat, TraceLog};
use oha_par::Pool;
use oha_store::{ArtifactKey, ProfileArtifact, Store};

use crate::optft::OptFtOutcome;
use crate::optslice::OptSliceOutcome;

/// Environment variable naming the on-disk artifact-store directory.
/// When set (and non-empty), [`StoreConfig::from_env`] returns a config
/// pointing at it; a default [`Pipeline`] stays uncached.
pub const STORE_DIR_ENV: &str = "OHA_STORE_DIR";

/// Where (and whether) the pipeline persists static-phase artifacts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoreConfig {
    /// Root directory of the on-disk store (created on first use).
    pub dir: PathBuf,
}

impl StoreConfig {
    /// A store rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into() }
    }

    /// The `OHA_STORE_DIR` environment override: `Some` when the variable
    /// is set to a non-empty path, `None` otherwise.
    pub fn from_env() -> Option<Self> {
        env::var(STORE_DIR_ENV)
            .ok()
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .map(Self::new)
    }
}

/// Knobs shared by both tools.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Interpreter configuration (seed, quantum, step budget). The same
    /// seed is reused for a rollback re-execution, which is what makes the
    /// rollback observe the identical interleaving.
    pub machine: MachineConfig,
    /// Context budget for context-sensitive static analyses; exceeding it
    /// makes an analysis "fail to complete" and the pipeline falls back to
    /// the context-insensitive variant (Table 2's AT columns).
    pub ctx_budget: u32,
    /// Iteration budget for the points-to solver.
    pub solver_budget: u64,
    /// Visit budget for the static slicer.
    pub visit_budget: u64,
    /// Worker threads for the profiling phase. `0` (the default) resolves
    /// at run time to the `OHA_THREADS` environment override, falling back
    /// to [`std::thread::available_parallelism`]. The thread count never
    /// changes results: each interpreter run is seeded and deterministic on
    /// its own, and run profiles merge in input order (see DESIGN.md
    /// "Parallelism").
    pub threads: usize,
    /// Optional persistent artifact store. When set, the expensive pure
    /// phases (profiling, predicated static analysis) are keyed by content
    /// fingerprints and cached on disk: a warm key skips straight to the
    /// speculative dynamic phase, and a rollback on a warm run invalidates
    /// only the violated key. `None` (the default) runs fully in memory.
    pub store: Option<StoreConfig>,
    /// Fault-injection plan the store opened from
    /// [`PipelineConfig::store`] rolls against. Defaults to the
    /// `OHA_FAULTS` environment spec (disabled when unset); injected
    /// store failures exercise the delete-and-recompute path without
    /// ever changing canonical results.
    pub faults: FaultPlan,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            machine: MachineConfig::default(),
            ctx_budget: 4096,
            solver_budget: 20_000_000,
            visit_budget: 5_000_000,
            threads: 0,
            store: None,
            faults: FaultPlan::from_env(),
        }
    }
}

/// The three-phase optimistic hybrid analysis driver for one program.
///
/// # Examples
///
/// Profiling runs fan out over a worker pool sized by
/// [`PipelineConfig::threads`] (default `0` = the `OHA_THREADS`
/// environment override, then [`std::thread::available_parallelism`]).
/// The merge is order-deterministic, so any thread count produces the
/// same invariants:
///
/// ```
/// use oha_core::{Pipeline, PipelineConfig};
/// use oha_ir::{Operand, ProgramBuilder};
///
/// let mut pb = ProgramBuilder::new();
/// let mut f = pb.function("main", 0);
/// let x = f.input();
/// f.output(Operand::Reg(x));
/// f.ret(None);
/// let main = pb.finish_function(f);
/// let program = pb.finish(main).unwrap();
///
/// let pipeline = Pipeline::new(program.clone());
/// let (invariants, _time) = pipeline.profile(&[vec![1], vec![2]]);
/// assert_eq!(invariants.num_profiles, 2);
///
/// let serial = Pipeline::new(program)
///     .with_config(PipelineConfig { threads: 1, ..PipelineConfig::default() });
/// let (serial_invariants, _time) = serial.profile(&[vec![1], vec![2]]);
/// assert_eq!(serial_invariants, invariants);
/// ```
#[derive(Clone, Debug)]
pub struct Pipeline {
    program: Program,
    config: PipelineConfig,
    metrics: MetricsRegistry,
    store: Option<Arc<Store>>,
    /// The one worker pool every phase shares, sized when the
    /// configuration is set (see [`Pipeline::pool`]).
    pool: Pool,
}

/// The pool sizing rule shared by every phase:
/// [`PipelineConfig::threads`] when set, otherwise the `OHA_THREADS`
/// environment override, otherwise
/// [`std::thread::available_parallelism`].
fn resolve_pool(config: &PipelineConfig) -> Pool {
    if config.threads == 0 {
        Pool::from_env()
    } else {
        Pool::new(config.threads)
    }
}

impl Pipeline {
    /// A pipeline with default configuration and a fresh metrics registry.
    pub fn new(program: Program) -> Self {
        let config = PipelineConfig::default();
        let metrics = MetricsRegistry::new();
        let pool = resolve_pool(&config);
        let me = Self {
            program,
            config,
            metrics,
            store: None,
            pool,
        };
        me.record_pool_built();
        me
    }

    /// Overrides the configuration. When [`PipelineConfig::store`] names a
    /// directory (and no store was injected via [`Pipeline::with_store`]),
    /// the on-disk store is opened here; an unopenable directory degrades
    /// to running uncached rather than failing the pipeline. The shared
    /// worker pool is (re)sized here — phases only ever copy
    /// [`Pipeline::pool`], they never construct their own.
    pub fn with_config(mut self, config: PipelineConfig) -> Self {
        if self.store.is_none() {
            if let Some(sc) = &config.store {
                self.store = Store::open_with(sc.dir.clone(), config.faults.clone())
                    .ok()
                    .map(Arc::new);
            }
        }
        self.pool = resolve_pool(&config);
        self.config = config;
        self.record_pool_built();
        self
    }

    /// Counts pool constructions (and publishes the width) so tests can
    /// assert that profiling and the static phases share one pool rather
    /// than re-deriving their own.
    fn record_pool_built(&self) {
        self.metrics.add("pipeline.pool.built", 1);
        self.metrics
            .set_gauge("pipeline.pool.width", self.pool.threads() as f64);
    }

    /// Shares an already-open artifact store (the daemon opens one store
    /// and hands it to every per-request pipeline).
    pub fn with_store(mut self, store: Arc<Store>) -> Self {
        self.store = Some(store);
        self
    }

    /// The artifact store, when caching is enabled.
    pub fn store(&self) -> Option<&Arc<Store>> {
        self.store.as_ref()
    }

    /// Shares an external metrics registry, so a caller (for instance a
    /// benchmark harness) can read phase spans and counters after a run.
    pub fn with_metrics(mut self, metrics: MetricsRegistry) -> Self {
        self.metrics = metrics;
        self
    }

    /// Attaches a trace log: every phase span this pipeline opens is also
    /// emitted as a causally-linked begin/end event (the span path is the
    /// event name). Pass [`TraceLog::from_env`] to honor the `OHA_TRACE`
    /// knob; a disabled log keeps the pipeline's zero-overhead-when-off
    /// guarantee.
    pub fn with_trace(self, trace: TraceLog) -> Self {
        self.metrics.set_trace(trace);
        self
    }

    /// The program under analysis.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The metrics registry every phase reports into.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The worker pool shared by the profiling *and* static phases. Sized
    /// once when the configuration is set ([`PipelineConfig::threads`]
    /// when non-zero, otherwise the `OHA_THREADS` environment override,
    /// otherwise [`std::thread::available_parallelism`]); every call hands
    /// out a copy of the same pool and bumps the `pipeline.pool.reuse`
    /// counter so tests can assert the sharing.
    pub fn pool(&self) -> Pool {
        self.metrics.add("pipeline.pool.reuse", 1);
        self.pool
    }

    /// Phase 1: runs the profiling corpus and merges the likely invariants.
    ///
    /// Runs execute in parallel on [`Pipeline::pool`] (each interpreter
    /// execution is an independent, seeded simulation); the resulting
    /// profiles merge in input order, so the returned set is identical at
    /// any thread count. Worker hook counters (`profile.hook.*`) are
    /// absorbed into [`Pipeline::metrics`] in the same order.
    pub fn profile(&self, inputs: &[Vec<i64>]) -> (InvariantSet, Duration) {
        let span = self.metrics.span("profile");
        let (program, mcfg) = (&self.program, self.config.machine);
        let results = self
            .pool()
            .par_map(inputs, |input| profile_one(program, mcfg, input));
        let mut profiles = Vec::with_capacity(results.len());
        for (profile, frame) in results {
            self.metrics.absorb(&frame);
            profiles.push(profile);
        }
        let set = InvariantSet::from_profiles(&profiles);
        (set, span.finish())
    }

    /// Phase 1 with the paper's stopping rule: profile additional inputs
    /// "until the number of dynamic invariants stabilizes" (§6.1) — i.e.
    /// until `patience` consecutive runs add no new facts (or the corpus is
    /// exhausted). Returns the merged set, the time spent, and how many
    /// inputs were consumed.
    ///
    /// Profiles fold into an [`InvariantAccumulator`] as they arrive, so the
    /// whole loop is linear in the number of runs, and the per-run fact
    /// count lands in the `profile.fact_count` series of
    /// [`Pipeline::metrics`] (the Figure 8 convergence curve).
    ///
    /// Executions run in pool-width batches on [`Pipeline::pool`], but the
    /// accumulator folds, the series points and the stopping decision all
    /// happen serially in input order, so the merged set, the consumed-run
    /// count and every recorded metric are identical at any thread count.
    /// (A wider pool may *execute* a few runs past the stopping point; their
    /// profiles and counters are discarded.)
    pub fn profile_until_stable(
        &self,
        inputs: &[Vec<i64>],
        patience: usize,
    ) -> (InvariantSet, Duration, usize) {
        let span = self.metrics.span("profile");
        let pool = self.pool();
        let mut acc = InvariantAccumulator::new();
        let mut last_count = usize::MAX;
        let mut stable_for = 0usize;
        let mut used = 0usize;
        let (program, mcfg) = (&self.program, self.config.machine);
        'corpus: for batch in inputs.chunks(pool.threads()) {
            let results = pool.par_map(batch, |input| profile_one(program, mcfg, input));
            for (profile, frame) in results {
                self.metrics.absorb(&frame);
                acc.add(&profile);
                used += 1;
                let count = acc.fact_count();
                self.metrics.push_series("profile.fact_count", count as f64);
                if count == last_count {
                    stable_for += 1;
                    if stable_for >= patience {
                        break 'corpus;
                    }
                } else {
                    stable_for = 0;
                    last_count = count;
                }
            }
        }
        (acc.finish(), span.finish(), used)
    }

    /// Stable fingerprint of a profiling corpus plus everything the
    /// profiling phase consults besides the program: the interpreter
    /// configuration (seed, step budget, quantum) and the stopping
    /// patience. Equal fingerprints guarantee byte-identical merged
    /// invariant sets, which is what makes the fingerprint a safe cache
    /// key.
    pub fn corpus_fingerprint(&self, inputs: &[Vec<i64>], patience: usize) -> Fingerprint {
        let mut h = FingerprintHasher::new();
        h.write(b"oha-corpus-v1");
        let m = &self.config.machine;
        h.write_u64(m.seed);
        h.write_u64(m.max_steps);
        h.write_u64(u64::from(m.quantum));
        h.write_u64(patience as u64);
        h.write_u64(inputs.len() as u64);
        for input in inputs {
            h.write_u64(input.len() as u64);
            for &v in input {
                h.write_u64(v as u64);
            }
        }
        h.finish()
    }

    /// Fingerprint of the static-analysis budgets a cached phase consults.
    /// Budgets are part of the predicate: a bigger budget can change which
    /// sensitivity completes, and with it the cached artifact.
    pub fn budget_fingerprint(&self, include_visit: bool) -> Fingerprint {
        let mut h = FingerprintHasher::new();
        h.write(b"oha-budgets-v1");
        h.write_u64(u64::from(self.config.ctx_budget));
        h.write_u64(self.config.solver_budget);
        if include_visit {
            h.write_u64(self.config.visit_budget);
        }
        h.finish()
    }

    /// The profiling phase's cache key: the program fingerprint paired
    /// with the corpus fingerprint.
    pub fn profile_key(&self, inputs: &[Vec<i64>], patience: usize) -> ArtifactKey {
        ArtifactKey::new(
            self.program.fingerprint(),
            self.corpus_fingerprint(inputs, patience),
        )
    }

    /// Phase 1 with the artifact store in front: a warm
    /// [`ProfileArtifact`] replaces the whole profiling loop (byte-
    /// identical invariants by the corpus-fingerprint contract); a miss
    /// runs [`Pipeline::profile_until_stable`] and persists the result.
    ///
    /// The returned duration is the *actual* time spent this run (tiny on
    /// a hit); the cold run's duration is replayed into the registry under
    /// the `cached/profile` span so reports can still account for it.
    pub(crate) fn profile_phase(
        &self,
        inputs: &[Vec<i64>],
        patience: usize,
    ) -> (InvariantSet, Duration, usize) {
        let Some(store) = self.store.clone() else {
            return self.profile_until_stable(inputs, patience);
        };
        let key = self.profile_key(inputs, patience);
        let start = std::time::Instant::now();
        let loaded = store.load_profile(&key);
        let load_time = start.elapsed();
        if let Some(artifact) = loaded {
            // Mirror the cold shape: the (tiny) load lands on the live
            // `profile` span, the cold run's duration on `cached/profile`.
            self.metrics
                .observe_duration("store.load.hit_ns", load_time);
            self.metrics.trace_instant("store.profile.hit");
            let elapsed = load_time;
            let span = self.metrics.span("profile");
            self.metrics.add_span_stat(
                "cached/profile",
                SpanStat {
                    total: Duration::from_nanos(artifact.profile_ns),
                    count: 1,
                },
            );
            span.finish();
            return (artifact.invariants, elapsed, artifact.runs_used as usize);
        }
        self.metrics
            .observe_duration("store.load.miss_ns", load_time);
        self.metrics.trace_instant("store.profile.miss");
        let (invariants, time, used) = self.profile_until_stable(inputs, patience);
        let artifact = ProfileArtifact {
            invariants: invariants.clone(),
            runs_used: used as u64,
            profile_ns: time.as_nanos() as u64,
        };
        if store.save_profile(&key, &artifact).is_err() {
            self.metrics.add("store.save_errors", 1);
        }
        (invariants, time, used)
    }

    /// Runs the full OptFT pipeline (profile → predicated static race
    /// detection → speculative FastTrack with rollback) and every baseline.
    pub fn run_optft(&self, profiling: &[Vec<i64>], testing: &[Vec<i64>]) -> OptFtOutcome {
        crate::optft::OptFt::new(self).run(profiling, testing)
    }

    /// Runs the full OptSlice pipeline for the given slice endpoints.
    pub fn run_optslice(
        &self,
        profiling: &[Vec<i64>],
        testing: &[Vec<i64>],
        endpoints: &[InstId],
    ) -> OptSliceOutcome {
        crate::optslice::OptSlice::new(self, endpoints.to_vec()).run(profiling, testing)
    }
}

/// One metered profiling execution. Runs on a worker thread, so it records
/// into a thread-local registry and ships the hook counters back as a
/// detachable [`MetricsFrame`] for in-order absorption by the coordinator.
fn profile_one(
    program: &Program,
    machine: MachineConfig,
    input: &[i64],
) -> (RunProfile, MetricsFrame) {
    let local = MetricsRegistry::new();
    let mut tracer = ProfileTracer::new(program);
    Machine::new(program, machine)
        .with_metrics(&local, "profile")
        .run(input, &mut tracer);
    // Distribution of per-run hook-event volume. The value is a pure
    // function of the input (the interpreter is deterministic), and
    // histogram merge is order-independent, so the merged buckets are
    // bit-identical at any thread count — the distribution-side analogue
    // of the counter determinism contract.
    let events: u64 = local.counters().values().sum();
    local.observe("profile.run.events", events);
    (tracer.into_profile(), local.frame())
}
