//! The shared pipeline scaffolding: configuration and the profiling phase.

use std::time::{Duration, Instant};

use oha_interp::{Machine, MachineConfig};
use oha_invariants::{InvariantSet, ProfileTracer, RunProfile};
use oha_ir::{InstId, Program};

use crate::optft::OptFtOutcome;
use crate::optslice::OptSliceOutcome;

/// Knobs shared by both tools.
#[derive(Clone, Copy, Debug)]
pub struct PipelineConfig {
    /// Interpreter configuration (seed, quantum, step budget). The same
    /// seed is reused for a rollback re-execution, which is what makes the
    /// rollback observe the identical interleaving.
    pub machine: MachineConfig,
    /// Context budget for context-sensitive static analyses; exceeding it
    /// makes an analysis "fail to complete" and the pipeline falls back to
    /// the context-insensitive variant (Table 2's AT columns).
    pub ctx_budget: u32,
    /// Iteration budget for the points-to solver.
    pub solver_budget: u64,
    /// Visit budget for the static slicer.
    pub visit_budget: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            machine: MachineConfig::default(),
            ctx_budget: 4096,
            solver_budget: 20_000_000,
            visit_budget: 5_000_000,
        }
    }
}

/// The three-phase optimistic hybrid analysis driver for one program.
///
/// # Examples
///
/// ```
/// use oha_core::Pipeline;
/// use oha_ir::{Operand, ProgramBuilder};
///
/// let mut pb = ProgramBuilder::new();
/// let mut f = pb.function("main", 0);
/// let x = f.input();
/// f.output(Operand::Reg(x));
/// f.ret(None);
/// let main = pb.finish_function(f);
/// let program = pb.finish(main).unwrap();
///
/// let pipeline = Pipeline::new(program);
/// let (invariants, _time) = pipeline.profile(&[vec![1], vec![2]]);
/// assert_eq!(invariants.num_profiles, 2);
/// ```
#[derive(Clone, Debug)]
pub struct Pipeline {
    program: Program,
    config: PipelineConfig,
}

impl Pipeline {
    /// A pipeline with default configuration.
    pub fn new(program: Program) -> Self {
        Self {
            program,
            config: PipelineConfig::default(),
        }
    }

    /// Overrides the configuration.
    pub fn with_config(mut self, config: PipelineConfig) -> Self {
        self.config = config;
        self
    }

    /// The program under analysis.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The configuration.
    pub fn config(&self) -> PipelineConfig {
        self.config
    }

    /// Phase 1: runs the profiling corpus and merges the likely invariants.
    pub fn profile(&self, inputs: &[Vec<i64>]) -> (InvariantSet, Duration) {
        let start = Instant::now();
        let profiles: Vec<RunProfile> = inputs
            .iter()
            .map(|input| {
                let mut tracer = ProfileTracer::new(&self.program);
                Machine::new(&self.program, self.config.machine).run(input, &mut tracer);
                tracer.into_profile()
            })
            .collect();
        let set = InvariantSet::from_profiles(&profiles);
        (set, start.elapsed())
    }

    /// Phase 1 with the paper's stopping rule: profile additional inputs
    /// "until the number of dynamic invariants stabilizes" (§6.1) — i.e.
    /// until `patience` consecutive runs add no new facts (or the corpus is
    /// exhausted). Returns the merged set, the time spent, and how many
    /// inputs were consumed.
    pub fn profile_until_stable(
        &self,
        inputs: &[Vec<i64>],
        patience: usize,
    ) -> (InvariantSet, Duration, usize) {
        let start = Instant::now();
        let mut profiles: Vec<RunProfile> = Vec::new();
        let mut last_count = usize::MAX;
        let mut stable_for = 0usize;
        let mut used = 0usize;
        for input in inputs {
            let mut tracer = ProfileTracer::new(&self.program);
            Machine::new(&self.program, self.config.machine).run(input, &mut tracer);
            profiles.push(tracer.into_profile());
            used += 1;
            let count = InvariantSet::from_profiles(&profiles).fact_count();
            if count == last_count {
                stable_for += 1;
                if stable_for >= patience {
                    break;
                }
            } else {
                stable_for = 0;
                last_count = count;
            }
        }
        let set = InvariantSet::from_profiles(&profiles);
        (set, start.elapsed(), used)
    }

    /// Runs the full OptFT pipeline (profile → predicated static race
    /// detection → speculative FastTrack with rollback) and every baseline.
    pub fn run_optft(&self, profiling: &[Vec<i64>], testing: &[Vec<i64>]) -> OptFtOutcome {
        crate::optft::OptFt::new(self).run(profiling, testing)
    }

    /// Runs the full OptSlice pipeline for the given slice endpoints.
    pub fn run_optslice(
        &self,
        profiling: &[Vec<i64>],
        testing: &[Vec<i64>],
        endpoints: &[InstId],
    ) -> OptSliceOutcome {
        crate::optslice::OptSlice::new(self, endpoints.to_vec()).run(profiling, testing)
    }
}
