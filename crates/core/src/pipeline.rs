//! The shared pipeline scaffolding: configuration and the profiling phase.

use std::time::Duration;

use oha_interp::{Machine, MachineConfig};
use oha_invariants::{InvariantAccumulator, InvariantSet, ProfileTracer, RunProfile};
use oha_ir::{InstId, Program};
use oha_obs::{MetricsFrame, MetricsRegistry};
use oha_par::Pool;

use crate::optft::OptFtOutcome;
use crate::optslice::OptSliceOutcome;

/// Knobs shared by both tools.
#[derive(Clone, Copy, Debug)]
pub struct PipelineConfig {
    /// Interpreter configuration (seed, quantum, step budget). The same
    /// seed is reused for a rollback re-execution, which is what makes the
    /// rollback observe the identical interleaving.
    pub machine: MachineConfig,
    /// Context budget for context-sensitive static analyses; exceeding it
    /// makes an analysis "fail to complete" and the pipeline falls back to
    /// the context-insensitive variant (Table 2's AT columns).
    pub ctx_budget: u32,
    /// Iteration budget for the points-to solver.
    pub solver_budget: u64,
    /// Visit budget for the static slicer.
    pub visit_budget: u64,
    /// Worker threads for the profiling phase. `0` (the default) resolves
    /// at run time to the `OHA_THREADS` environment override, falling back
    /// to [`std::thread::available_parallelism`]. The thread count never
    /// changes results: each interpreter run is seeded and deterministic on
    /// its own, and run profiles merge in input order (see DESIGN.md
    /// "Parallelism").
    pub threads: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            machine: MachineConfig::default(),
            ctx_budget: 4096,
            solver_budget: 20_000_000,
            visit_budget: 5_000_000,
            threads: 0,
        }
    }
}

/// The three-phase optimistic hybrid analysis driver for one program.
///
/// # Examples
///
/// Profiling runs fan out over a worker pool sized by
/// [`PipelineConfig::threads`] (default `0` = the `OHA_THREADS`
/// environment override, then [`std::thread::available_parallelism`]).
/// The merge is order-deterministic, so any thread count produces the
/// same invariants:
///
/// ```
/// use oha_core::{Pipeline, PipelineConfig};
/// use oha_ir::{Operand, ProgramBuilder};
///
/// let mut pb = ProgramBuilder::new();
/// let mut f = pb.function("main", 0);
/// let x = f.input();
/// f.output(Operand::Reg(x));
/// f.ret(None);
/// let main = pb.finish_function(f);
/// let program = pb.finish(main).unwrap();
///
/// let pipeline = Pipeline::new(program.clone());
/// let (invariants, _time) = pipeline.profile(&[vec![1], vec![2]]);
/// assert_eq!(invariants.num_profiles, 2);
///
/// let serial = Pipeline::new(program)
///     .with_config(PipelineConfig { threads: 1, ..PipelineConfig::default() });
/// let (serial_invariants, _time) = serial.profile(&[vec![1], vec![2]]);
/// assert_eq!(serial_invariants, invariants);
/// ```
#[derive(Clone, Debug)]
pub struct Pipeline {
    program: Program,
    config: PipelineConfig,
    metrics: MetricsRegistry,
}

impl Pipeline {
    /// A pipeline with default configuration and a fresh metrics registry.
    pub fn new(program: Program) -> Self {
        Self {
            program,
            config: PipelineConfig::default(),
            metrics: MetricsRegistry::new(),
        }
    }

    /// Overrides the configuration.
    pub fn with_config(mut self, config: PipelineConfig) -> Self {
        self.config = config;
        self
    }

    /// Shares an external metrics registry, so a caller (for instance a
    /// benchmark harness) can read phase spans and counters after a run.
    pub fn with_metrics(mut self, metrics: MetricsRegistry) -> Self {
        self.metrics = metrics;
        self
    }

    /// The program under analysis.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The configuration.
    pub fn config(&self) -> PipelineConfig {
        self.config
    }

    /// The metrics registry every phase reports into.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The profiling worker pool: [`PipelineConfig::threads`] when set,
    /// otherwise the `OHA_THREADS` environment override, otherwise
    /// [`std::thread::available_parallelism`].
    pub fn pool(&self) -> Pool {
        if self.config.threads == 0 {
            Pool::from_env()
        } else {
            Pool::new(self.config.threads)
        }
    }

    /// Phase 1: runs the profiling corpus and merges the likely invariants.
    ///
    /// Runs execute in parallel on [`Pipeline::pool`] (each interpreter
    /// execution is an independent, seeded simulation); the resulting
    /// profiles merge in input order, so the returned set is identical at
    /// any thread count. Worker hook counters (`profile.hook.*`) are
    /// absorbed into [`Pipeline::metrics`] in the same order.
    pub fn profile(&self, inputs: &[Vec<i64>]) -> (InvariantSet, Duration) {
        let span = self.metrics.span("profile");
        let (program, mcfg) = (&self.program, self.config.machine);
        let results = self
            .pool()
            .par_map(inputs, |input| profile_one(program, mcfg, input));
        let mut profiles = Vec::with_capacity(results.len());
        for (profile, frame) in results {
            self.metrics.absorb(&frame);
            profiles.push(profile);
        }
        let set = InvariantSet::from_profiles(&profiles);
        (set, span.finish())
    }

    /// Phase 1 with the paper's stopping rule: profile additional inputs
    /// "until the number of dynamic invariants stabilizes" (§6.1) — i.e.
    /// until `patience` consecutive runs add no new facts (or the corpus is
    /// exhausted). Returns the merged set, the time spent, and how many
    /// inputs were consumed.
    ///
    /// Profiles fold into an [`InvariantAccumulator`] as they arrive, so the
    /// whole loop is linear in the number of runs, and the per-run fact
    /// count lands in the `profile.fact_count` series of
    /// [`Pipeline::metrics`] (the Figure 8 convergence curve).
    ///
    /// Executions run in pool-width batches on [`Pipeline::pool`], but the
    /// accumulator folds, the series points and the stopping decision all
    /// happen serially in input order, so the merged set, the consumed-run
    /// count and every recorded metric are identical at any thread count.
    /// (A wider pool may *execute* a few runs past the stopping point; their
    /// profiles and counters are discarded.)
    pub fn profile_until_stable(
        &self,
        inputs: &[Vec<i64>],
        patience: usize,
    ) -> (InvariantSet, Duration, usize) {
        let span = self.metrics.span("profile");
        let pool = self.pool();
        let mut acc = InvariantAccumulator::new();
        let mut last_count = usize::MAX;
        let mut stable_for = 0usize;
        let mut used = 0usize;
        let (program, mcfg) = (&self.program, self.config.machine);
        'corpus: for batch in inputs.chunks(pool.threads()) {
            let results = pool.par_map(batch, |input| profile_one(program, mcfg, input));
            for (profile, frame) in results {
                self.metrics.absorb(&frame);
                acc.add(&profile);
                used += 1;
                let count = acc.fact_count();
                self.metrics.push_series("profile.fact_count", count as f64);
                if count == last_count {
                    stable_for += 1;
                    if stable_for >= patience {
                        break 'corpus;
                    }
                } else {
                    stable_for = 0;
                    last_count = count;
                }
            }
        }
        (acc.finish(), span.finish(), used)
    }

    /// Runs the full OptFT pipeline (profile → predicated static race
    /// detection → speculative FastTrack with rollback) and every baseline.
    pub fn run_optft(&self, profiling: &[Vec<i64>], testing: &[Vec<i64>]) -> OptFtOutcome {
        crate::optft::OptFt::new(self).run(profiling, testing)
    }

    /// Runs the full OptSlice pipeline for the given slice endpoints.
    pub fn run_optslice(
        &self,
        profiling: &[Vec<i64>],
        testing: &[Vec<i64>],
        endpoints: &[InstId],
    ) -> OptSliceOutcome {
        crate::optslice::OptSlice::new(self, endpoints.to_vec()).run(profiling, testing)
    }
}

/// One metered profiling execution. Runs on a worker thread, so it records
/// into a thread-local registry and ships the hook counters back as a
/// detachable [`MetricsFrame`] for in-order absorption by the coordinator.
fn profile_one(
    program: &Program,
    machine: MachineConfig,
    input: &[i64],
) -> (RunProfile, MetricsFrame) {
    let local = MetricsRegistry::new();
    let mut tracer = ProfileTracer::new(program);
    Machine::new(program, machine)
        .with_metrics(&local, "profile")
        .run(input, &mut tracer);
    (tracer.into_profile(), local.frame())
}
