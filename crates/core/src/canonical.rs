//! Canonical, timing-free renderings of tool outcomes.
//!
//! Wall-clock numbers differ run to run, but everything *semantic* about
//! an outcome — races found, slice sizes, rollback decisions, invariant
//! fingerprints — is deterministic. These functions serialize exactly
//! that deterministic core as JSON with a fixed key order, so two
//! outcomes are equivalent iff their canonical strings are byte-equal.
//!
//! This is the equality oracle shared by three consumers: the
//! determinism test suite (serial vs. N daemon clients), CI's
//! store-smoke stage (cold vs. warm cache), and the `oha-serve`
//! protocol (whose `analyze` responses are canonical strings and must
//! not vary with cache state or request interleaving).

use std::collections::BTreeSet;
use std::fmt::Write as _;

use oha_ir::InstId;
use oha_pointsto::Sensitivity;

use crate::optft::OptFtOutcome;
use crate::optslice::OptSliceOutcome;

fn push_pairs(out: &mut String, pairs: &BTreeSet<(InstId, InstId)>) {
    out.push('[');
    for (i, (a, b)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{},{}]", a.raw(), b.raw());
    }
    out.push(']');
}

fn sensitivity(s: Sensitivity) -> &'static str {
    match s {
        Sensitivity::ContextSensitive => "CS",
        Sensitivity::ContextInsensitive => "CI",
    }
}

/// The deterministic core of an OptFT outcome as canonical JSON.
pub fn optft_canonical_json(outcome: &OptFtOutcome) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"tool\":\"optft\",\"invariants\":\"{}\",\"profiling_runs_used\":{},\
         \"racy_sites_sound\":{},\"racy_sites_pred\":{},\"statically_race_free\":{},\
         \"elidable_lock_sites\":{},\"baseline_races\":",
        outcome.invariants.fingerprint().to_hex(),
        outcome.profiling_runs_used,
        outcome.racy_sites_sound,
        outcome.racy_sites_pred,
        outcome.statically_race_free,
        outcome.elidable_lock_sites,
    );
    push_pairs(&mut out, &outcome.baseline_races);
    out.push_str(",\"optimistic_races\":");
    push_pairs(&mut out, &outcome.optimistic_races);
    out.push_str(",\"runs\":[");
    for (i, run) in outcome.runs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"rolled_back\":{},\"violations\":{},\"races_full\":",
            run.rolled_back, run.violations
        );
        push_pairs(&mut out, &run.races_full);
        out.push_str(",\"races_hybrid\":");
        push_pairs(&mut out, &run.races_hybrid);
        out.push_str(",\"races_opt\":");
        push_pairs(&mut out, &run.races_opt);
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// The deterministic core of an OptSlice outcome as canonical JSON.
pub fn optslice_canonical_json(outcome: &OptSliceOutcome) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"tool\":\"optslice\",\"invariants\":\"{}\",\"profiling_runs_used\":{},\
         \"sound\":{{\"points_to_at\":\"{}\",\"slice_at\":\"{}\",\"slice_size\":{},\"alias_rate\":{}}},\
         \"pred\":{{\"points_to_at\":\"{}\",\"slice_at\":\"{}\",\"slice_size\":{},\"alias_rate\":{}}},\
         \"all_slices_equal\":{},\"runs\":[",
        outcome.invariants.fingerprint().to_hex(),
        outcome.profiling_runs_used,
        sensitivity(outcome.sound.points_to_at),
        sensitivity(outcome.sound.slice_at),
        outcome.sound.slice_size,
        outcome.sound.alias_rate,
        sensitivity(outcome.pred.points_to_at),
        sensitivity(outcome.pred.slice_at),
        outcome.pred.slice_size,
        outcome.pred.alias_rate,
        outcome.all_slices_equal(),
    );
    for (i, run) in outcome.runs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"rolled_back\":{},\"hybrid_slice_len\":{},\"opt_slice_len\":{},\"slices_equal\":{}}}",
            run.rolled_back, run.hybrid_slice_len, run.opt_slice_len, run.slices_equal
        );
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pipeline;
    use oha_ir::{Operand, ProgramBuilder};
    use Operand::{Const, Reg as R};

    #[test]
    fn canonical_json_is_stable_across_pipelines() {
        let build = || {
            let mut pb = ProgramBuilder::new();
            let mut f = pb.function("main", 0);
            let x = f.input();
            let y = f.bin(oha_ir::BinOp::Add, R(x), Const(1));
            f.output(R(y));
            f.ret(None);
            let main = pb.finish_function(f);
            pb.finish(main).unwrap()
        };
        let profiling = vec![vec![1], vec![2]];
        let testing = vec![vec![3]];
        let a = Pipeline::new(build()).run_optft(&profiling, &testing);
        let b = Pipeline::new(build()).run_optft(&profiling, &testing);
        let ja = optft_canonical_json(&a);
        assert_eq!(ja, optft_canonical_json(&b));
        assert!(ja.starts_with("{\"tool\":\"optft\""));
        assert!(!ja.contains("_time"), "no wall-clock fields");
    }
}
