//! The artifact store wired through the pipeline: warm runs must be
//! byte-identical to cold runs, corruption must degrade to a clean
//! re-analysis, and rollbacks must keep mis-speculating predicates out
//! of (or evict them from) the cache.

use std::fs;
use std::path::{Path, PathBuf};

use oha_core::{
    optft_canonical_json, optslice_canonical_json, Pipeline, PipelineConfig, StoreConfig,
};
use oha_ir::{InstId, InstKind, Operand, Program, ProgramBuilder};
use Operand::{Const, Reg as R};

fn tmp_root(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("oha-store-pipeline-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn pipeline(program: Program, dir: &Path) -> Pipeline {
    Pipeline::new(program).with_config(PipelineConfig {
        store: Some(StoreConfig::new(dir)),
        ..PipelineConfig::default()
    })
}

/// Two workers increment a shared counter under a lock (race-free, locks
/// elidable — exercises the elision loop's cache round trip).
fn locked_counter() -> Program {
    let mut pb = ProgramBuilder::new();
    let g = pb.global("shared", 1);
    let w = pb.declare("worker", 1);
    let mut m = pb.function("main", 0);
    let n1 = m.input();
    let t1 = m.spawn(w, R(n1));
    let t2 = m.spawn(w, R(n1));
    m.join(R(t1));
    m.join(R(t2));
    let ga = m.addr_global(g);
    let v = m.load(R(ga), 0);
    m.output(R(v));
    m.ret(None);
    let main = pb.finish_function(m);
    let mut wf = pb.function("worker", 1);
    let iters = wf.param(0);
    let head = wf.block();
    let body = wf.block();
    let exit = wf.block();
    let ga = wf.addr_global(g);
    let i = wf.copy(Const(0));
    wf.jump(head);
    wf.select(head);
    let c = wf.cmp(oha_ir::CmpOp::Lt, R(i), R(iters));
    wf.branch(R(c), body, exit);
    wf.select(body);
    wf.lock(R(ga));
    let v = wf.load(R(ga), 0);
    let v1 = wf.bin(oha_ir::BinOp::Add, R(v), Const(1));
    wf.store(R(ga), 0, R(v1));
    wf.unlock(R(ga));
    let i1 = wf.bin(oha_ir::BinOp::Add, R(i), Const(1));
    wf.copy_to(i, R(i1));
    wf.jump(head);
    wf.select(exit);
    wf.ret(None);
    pb.finish_function(wf);
    pb.finish(main).unwrap()
}

/// Input-dependent cold path that violates the profiled invariants (and
/// really races) when `sel == 1`.
fn cold_path_racer() -> Program {
    let mut pb = ProgramBuilder::new();
    let g = pb.global("shared", 1);
    let w = pb.declare("worker", 1);
    let mut m = pb.function("main", 0);
    let sel = m.input();
    let cold = m.block();
    let spawn_b = m.block();
    m.branch(R(sel), cold, spawn_b);
    m.select(cold);
    let ga = m.addr_global(g);
    let t1 = m.spawn(w, Const(5));
    m.store(R(ga), 0, Const(-1));
    m.join(R(t1));
    m.ret(None);
    m.select(spawn_b);
    let t1 = m.spawn(w, Const(5));
    m.join(R(t1));
    m.ret(None);
    let main = pb.finish_function(m);
    let mut wf = pb.function("worker", 1);
    let ga = wf.addr_global(g);
    let v = wf.load(R(ga), 0);
    wf.store(R(ga), 0, R(v));
    wf.ret(None);
    pb.finish_function(wf);
    pb.finish(main).unwrap()
}

fn output_endpoint(p: &Program) -> InstId {
    p.insts()
        .find(|i| matches!(i.kind, InstKind::Output { .. }))
        .map(|i| i.id)
        .unwrap()
}

#[test]
fn optft_warm_run_is_byte_identical_to_cold() {
    let dir = tmp_root("optft-warm");
    let profiling: Vec<Vec<i64>> = (1..5).map(|n| vec![n * 10]).collect();
    let testing: Vec<Vec<i64>> = (1..6).map(|n| vec![n * 7]).collect();

    let cold_pipeline = pipeline(locked_counter(), &dir);
    let cold = cold_pipeline.run_optft(&profiling, &testing);
    assert_eq!(
        cold.report.meta.get("static_cache").map(String::as_str),
        Some("miss")
    );
    let store = cold_pipeline.store().unwrap();
    assert!(store.stats().writes >= 2, "profile + optft artifacts saved");

    let warm_pipeline = pipeline(locked_counter(), &dir);
    let warm = warm_pipeline.run_optft(&profiling, &testing);
    assert_eq!(
        warm.report.meta.get("static_cache").map(String::as_str),
        Some("hit")
    );
    assert!(warm_pipeline.store().unwrap().stats().hits >= 2);

    assert_eq!(
        optft_canonical_json(&cold),
        optft_canonical_json(&warm),
        "warm result must be byte-identical"
    );
    assert_eq!(cold.invariants, warm.invariants, "incl. elidable locks");
    // The warm registry still carries the cold points-to gauges and the
    // replayed static spans.
    let metrics = warm_pipeline.metrics();
    assert!(metrics.gauge_value("optft.pointsto.pred.cells").is_some());
    assert!(metrics.span_stat("cached/static_pred").is_some());
    assert!(metrics.gauge_value("store.hits").unwrap_or(0.0) >= 2.0);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn optslice_warm_run_is_byte_identical_to_cold() {
    let dir = tmp_root("optslice-warm");
    let program = locked_counter();
    let endpoints = [output_endpoint(&program)];
    let profiling: Vec<Vec<i64>> = (1..5).map(|n| vec![n * 3]).collect();
    let testing: Vec<Vec<i64>> = (1..4).map(|n| vec![n * 5]).collect();

    let cold_pipeline = pipeline(program.clone(), &dir);
    let cold = cold_pipeline.run_optslice(&profiling, &testing, &endpoints);
    let warm_pipeline = pipeline(program, &dir);
    let warm = warm_pipeline.run_optslice(&profiling, &testing, &endpoints);

    assert_eq!(
        optslice_canonical_json(&cold),
        optslice_canonical_json(&warm),
        "warm result must be byte-identical"
    );
    assert_eq!(
        warm.report.meta.get("static_cache").map(String::as_str),
        Some("hit")
    );
    assert_eq!(cold.sound.slice_size, warm.sound.slice_size);
    assert_eq!(cold.pred.slice_size, warm.pred.slice_size);
    assert_eq!(
        cold.sound.alias_rate.to_bits(),
        warm.sound.alias_rate.to_bits()
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_entries_fall_back_to_clean_reanalysis() {
    let dir = tmp_root("corrupt");
    let profiling: Vec<Vec<i64>> = (1..5).map(|n| vec![n * 10]).collect();
    let testing: Vec<Vec<i64>> = (1..4).map(|n| vec![n * 7]).collect();

    let cold = pipeline(locked_counter(), &dir).run_optft(&profiling, &testing);
    let expected = optft_canonical_json(&cold);

    // Flip one bit in every cached artifact file.
    let mut damaged = 0;
    for entry in walk(&dir) {
        let mut bytes = fs::read(&entry).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&entry, bytes).unwrap();
        damaged += 1;
    }
    assert!(damaged >= 2, "profile and optft artifacts exist");

    let recovered_pipeline = pipeline(locked_counter(), &dir);
    let recovered = recovered_pipeline.run_optft(&profiling, &testing);
    assert_eq!(
        optft_canonical_json(&recovered),
        expected,
        "corruption must mean re-analysis, not a wrong answer"
    );
    let stats = recovered_pipeline.store().unwrap().stats();
    assert!(
        stats.corruptions >= 2,
        "every damaged entry counted ({stats:?})"
    );
    assert_eq!(stats.hits, 0, "no corrupt entry was served");
    assert!(
        recovered_pipeline
            .metrics()
            .gauge_value("store.corruptions")
            .unwrap_or(0.0)
            >= 2.0,
        "corruption counter published to the registry"
    );

    // And the overwritten entries serve the third run warm.
    let third_pipeline = pipeline(locked_counter(), &dir);
    let third = third_pipeline.run_optft(&profiling, &testing);
    assert_eq!(optft_canonical_json(&third), expected);
    assert!(third_pipeline.store().unwrap().stats().hits >= 2);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn rollback_skips_the_save_and_invalidates_warm_entries() {
    let dir = tmp_root("rollback");
    let profiling = vec![vec![0], vec![0]];
    let clean_testing = vec![vec![0]];
    let violating_testing = vec![vec![0], vec![1]];

    // Cold run that rolls back: the optft artifact must NOT be saved
    // (the profile artifact is fine — profiling observed nothing wrong).
    let p1 = pipeline(cold_path_racer(), &dir);
    let out1 = p1.run_optft(&profiling, &violating_testing);
    assert!(out1.runs[1].rolled_back);
    assert_eq!(out1.optimistic_races, out1.baseline_races);
    assert!(
        fs::read_dir(dir.join("optft")).unwrap().next().is_none(),
        "mis-speculating predicate must not enter the cache"
    );

    // A clean corpus populates the cache...
    let p2 = pipeline(cold_path_racer(), &dir);
    let out2 = p2.run_optft(&profiling, &clean_testing);
    assert!(!out2.runs[0].rolled_back);
    assert_eq!(fs::read_dir(dir.join("optft")).unwrap().count(), 1);

    // ...a warm run that rolls back evicts exactly that entry...
    let p3 = pipeline(cold_path_racer(), &dir);
    let out3 = p3.run_optft(&profiling, &violating_testing);
    assert!(out3.runs[1].rolled_back);
    assert_eq!(out3.optimistic_races, out3.baseline_races, "still sound");
    assert_eq!(p3.store().unwrap().stats().invalidations, 1);
    assert!(
        fs::read_dir(dir.join("optft")).unwrap().next().is_none(),
        "rollback invalidates the violated key"
    );

    // ...and the next run re-analyzes from a miss without losing the
    // (still valid) profile artifact.
    let p4 = pipeline(cold_path_racer(), &dir);
    let out4 = p4.run_optft(&profiling, &clean_testing);
    assert_eq!(
        optft_canonical_json(&out4),
        optft_canonical_json(&out2),
        "re-analysis reproduces the clean result"
    );
    let _ = fs::remove_dir_all(&dir);
}

fn walk(dir: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = fs::read_dir(&d) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "oha") {
                files.push(path);
            }
        }
    }
    files
}

/// Injected store faults — short writes, read corruption, transient
/// read/write errors — may cost recomputes, but must never change a
/// canonical result: the fault surface is the cache, and the cache is
/// an optimization, not an oracle.
#[test]
fn injected_store_faults_never_change_canonical_results() {
    let dir = tmp_root("faulty");
    let profiling: Vec<Vec<i64>> = (1..4).map(|n| vec![n * 10]).collect();
    let testing: Vec<Vec<i64>> = (1..4).map(|n| vec![n * 7]).collect();

    // Ground truth from a storeless (purely in-memory) pipeline.
    let clean = Pipeline::new(locked_counter());
    let expected = optft_canonical_json(&clean.run_optft(&profiling, &testing));

    let plan = oha_faults::FaultPlan::parse(
        "seed=42; store.write.short=%3; store.read.corrupt=%4; \
         store.write.error=%5; store.read.error=%5",
    )
    .unwrap();
    let mut total_injected = 0;
    for _ in 0..4 {
        let p = Pipeline::new(locked_counter()).with_config(PipelineConfig {
            store: Some(StoreConfig::new(&dir)),
            faults: plan.clone(),
            ..PipelineConfig::default()
        });
        let out = p.run_optft(&profiling, &testing);
        assert_eq!(
            optft_canonical_json(&out),
            expected,
            "a store fault changed an analysis result"
        );
        total_injected = p.store().unwrap().faults().total_injected();
    }
    assert!(total_injected > 0, "the plan must actually have fired");
    let _ = fs::remove_dir_all(&dir);
}
