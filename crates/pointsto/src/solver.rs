//! The inclusion-constraint solver.
//!
//! A classic Andersen worklist solver with difference propagation: every
//! node carries its full points-to set plus a pending delta; copy edges
//! propagate deltas; *complex* constraints (loads, stores, `gep` offsets,
//! indirect-call targets) are interpreted against each delta, possibly
//! growing the graph. Newly discovered indirect-call targets are returned to
//! the caller (the analysis builder), which wires argument/return edges —
//! and in context-sensitive mode may clone new contexts — before resuming.
//!
//! Propagation is word-parallel: a whole delta is unioned into a
//! successor's `pts`/`delta` with 64-bit word operations
//! ([`BitSet::union_into`]) instead of a per-bit insert loop, and the solve
//! loop borrows each node's successor/constraint lists by take-and-restore
//! instead of cloning them every iteration. Copy cycles are collapsed two
//! ways: two-node cycles on the spot when the reverse edge is inserted, and
//! larger strongly connected components by a periodic iterative Tarjan pass
//! over the copy graph ([`Solver::collapse_sccs`]), triggered by an
//! edge-growth heuristic and feeding the same union-find.

use oha_dataflow::BitSet;
use oha_ir::FuncId;

use crate::analysis::Exhausted;
use crate::model::{pointee_as_cell, pointee_as_func, pointee_of_cell, ObjRegistry};

/// A complex (non-copy) constraint attached to a node.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Complex {
    /// `dst ⊇ *(self + offset)` — a load through this pointer.
    Load { dst: u32, offset: u32 },
    /// `*(self + offset) ⊇ src` — a store through this pointer.
    Store { src: u32, offset: u32 },
    /// `dst ⊇ {(o, f+offset) | (o, f) ∈ self}` — a `gep`.
    Offset { dst: u32, offset: u32 },
    /// This node is the target operand of the indirect call instance
    /// `site_key`; every function pointee discovered is reported to the
    /// builder.
    CallTarget { site_key: u32 },
}

/// Aggregate solver counters, surfaced through [`crate::PtStats`].
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct SolverStats {
    pub(crate) iterations: u64,
    pub(crate) cycle_collapses: u64,
    pub(crate) scc_collapses: u64,
    pub(crate) words_unioned: u64,
    pub(crate) worklist_pops: u64,
}

/// The constraint-solver surface the analysis builder drives.
///
/// The production implementation is [`Solver`]; the equivalence tests and
/// the speedup benchmark drive the same builder over
/// [`crate::reference::ReferenceSolver`] to prove (and measure against) a
/// naive iterate-to-fixpoint engine that computes the identical result.
pub(crate) trait ConstraintSolver: Default {
    /// Allocates a fresh solver node and returns its id.
    fn add_node(&mut self) -> u32;
    /// Adds a pointee to a node's set, scheduling propagation if new.
    fn add_pointee(&mut self, node: u32, pointee: usize);
    /// Adds the copy edge `from → to`.
    fn add_copy(&mut self, from: u32, to: u32);
    /// Attaches a complex constraint to `node`.
    fn add_complex(&mut self, node: u32, c: Complex);
    /// The current points-to set of `node`.
    fn pts(&self, node: u32) -> &BitSet;
    /// Number of solver nodes.
    fn num_nodes(&self) -> usize;
    /// Number of copy edges.
    fn num_copy_edges(&self) -> usize;
    /// Runs to quiescence; returns newly discovered `(site_key, func)`
    /// indirect-call resolutions.
    ///
    /// # Errors
    ///
    /// Returns [`Exhausted`] if the iteration budget is exceeded.
    fn solve(
        &mut self,
        registry: &ObjRegistry,
        budget: u64,
    ) -> Result<Vec<(u32, FuncId)>, Exhausted>;
    /// Aggregate counters for reporting.
    fn stats(&self) -> SolverStats;
}

/// Minimum edge growth before a Tarjan pass is considered.
const COLLAPSE_MIN_GROWTH: usize = 32;

#[derive(Debug, Default)]
pub(crate) struct Solver {
    pts: Vec<BitSet>,
    delta: Vec<BitSet>,
    /// Per-node sorted successor lists (dedup by binary search) — replaces
    /// the old global `HashSet<(u32, u32)>` edge set.
    copy_succs: Vec<Vec<u32>>,
    complex: Vec<Vec<Complex>>,
    /// Solver node per registry cell (created lazily).
    cell_nodes: Vec<u32>,
    worklist: Vec<u32>,
    queued: Vec<bool>,
    /// Union-find parents. Two-node copy cycles (`a → b` and `b → a`) are
    /// unified the moment the reverse edge appears; larger cycles are
    /// folded in by the periodic Tarjan pass. Every public entry point
    /// normalizes through [`Solver::find`].
    repr: Vec<u32>,
    /// Copy edges currently in the graph (kept exact by re-counting after
    /// each collapse pass).
    num_edges: usize,
    /// `num_edges` as of the last Tarjan pass, for the growth heuristic.
    edges_at_last_collapse: usize,
    pub(crate) iterations: u64,
    pub(crate) cycle_collapses: u64,
    pub(crate) scc_collapses: u64,
    pub(crate) words_unioned: u64,
    pub(crate) worklist_pops: u64,
}

impl Solver {
    pub(crate) fn num_nodes(&self) -> usize {
        self.pts.len()
    }

    pub(crate) fn num_copy_edges(&self) -> usize {
        self.num_edges
    }

    pub(crate) fn add_node(&mut self) -> u32 {
        let id = self.pts.len() as u32;
        self.pts.push(BitSet::new());
        self.delta.push(BitSet::new());
        self.copy_succs.push(Vec::new());
        self.complex.push(Vec::new());
        self.queued.push(false);
        self.repr.push(id);
        id
    }

    /// The representative of `n`'s union-find class, with path compression.
    fn find(&mut self, mut n: u32) -> u32 {
        while self.repr[n as usize] != n {
            let parent = self.repr[n as usize];
            self.repr[n as usize] = self.repr[parent as usize];
            n = self.repr[n as usize];
        }
        n
    }

    /// Merges `loser` into `winner` (both must be representatives).
    /// Re-adding the loser's pointees, constraints and out-edges through the
    /// public entry points reschedules whatever propagation is still owed;
    /// the loser's pending delta can be dropped because its full set merges
    /// into the winner and any bits new to the winner land in the winner's
    /// delta.
    fn unify(&mut self, winner: u32, loser: u32) {
        self.cycle_collapses += 1;
        self.repr[loser as usize] = winner;
        self.delta[loser as usize] = BitSet::new();
        let pts = std::mem::take(&mut self.pts[loser as usize]);
        self.words_unioned += (pts.capacity() / 64) as u64;
        if pts.union_into(
            &mut self.pts[winner as usize],
            &mut self.delta[winner as usize],
        ) {
            self.enqueue(winner);
        }
        let complexes = std::mem::take(&mut self.complex[loser as usize]);
        for c in complexes {
            self.add_complex(winner, c);
        }
        let succs = std::mem::take(&mut self.copy_succs[loser as usize]);
        self.num_edges -= succs.len();
        for s in succs {
            self.add_copy(winner, s);
        }
    }

    /// The solver node standing for a memory cell, created on first use.
    pub(crate) fn cell_node(&mut self, cell: u32) -> u32 {
        while self.cell_nodes.len() <= cell as usize {
            self.cell_nodes.push(u32::MAX);
        }
        if self.cell_nodes[cell as usize] == u32::MAX {
            let n = self.add_node();
            self.cell_nodes[cell as usize] = n;
        }
        self.cell_nodes[cell as usize]
    }

    fn enqueue(&mut self, node: u32) {
        if !self.queued[node as usize] {
            self.queued[node as usize] = true;
            self.worklist.push(node);
        }
    }

    /// Adds a pointee to a node's set, scheduling propagation if new.
    pub(crate) fn add_pointee(&mut self, node: u32, pointee: usize) {
        let node = self.find(node);
        if self.pts[node as usize].insert(pointee) {
            self.delta[node as usize].insert(pointee);
            self.enqueue(node);
        }
    }

    /// Adds the copy edge `from → to` and propagates `from`'s current set
    /// word-parallel. If the reverse edge already exists the two nodes form
    /// a cycle and are unified instead.
    pub(crate) fn add_copy(&mut self, from: u32, to: u32) {
        let from = self.find(from);
        let to = self.find(to);
        if from == to {
            return;
        }
        match self.copy_succs[from as usize].binary_search(&to) {
            Ok(_) => return,
            Err(pos) => {
                if self.copy_succs[to as usize].binary_search(&from).is_ok() {
                    self.unify(from, to);
                    return;
                }
                self.copy_succs[from as usize].insert(pos, to);
                self.num_edges += 1;
            }
        }
        // Propagate everything already known at `from`.
        let src = std::mem::take(&mut self.pts[from as usize]);
        self.words_unioned += (src.capacity() / 64) as u64;
        if src.union_into(&mut self.pts[to as usize], &mut self.delta[to as usize]) {
            self.enqueue(to);
        }
        self.pts[from as usize] = src;
    }

    pub(crate) fn add_complex(&mut self, node: u32, c: Complex) {
        let node = self.find(node);
        self.complex[node as usize].push(c);
        // Interpret the constraint against everything already known by
        // restaging the full set as a pending delta (no clone: the set is
        // taken out for the duration of the in-place union).
        let pts = std::mem::take(&mut self.pts[node as usize]);
        if !pts.is_empty() {
            self.delta[node as usize].union_with(&pts);
            self.enqueue(node);
        }
        self.pts[node as usize] = pts;
    }

    pub(crate) fn pts(&self, node: u32) -> &BitSet {
        let mut n = node;
        while self.repr[n as usize] != n {
            n = self.repr[n as usize];
        }
        &self.pts[n as usize]
    }

    /// Growth heuristic for the periodic Tarjan pass: fire once the copy
    /// graph has gained at least [`COLLAPSE_MIN_GROWTH`] edges since the
    /// last pass *and* that growth is at least a quarter of the graph —
    /// deterministic, and amortizes the O(V+E) pass against real growth.
    fn should_collapse(&self) -> bool {
        // Saturating: two-node fast-path unifications can shrink the edge
        // count below the last pass's snapshot.
        let grown = self.num_edges.saturating_sub(self.edges_at_last_collapse);
        grown >= COLLAPSE_MIN_GROWTH && grown * 4 >= self.num_edges
    }

    /// Snapshot adjacency of the copy graph at union-find representative
    /// level: successors mapped through [`Solver::find`], self-loops
    /// dropped, sorted and deduplicated.
    fn rep_adjacency(&mut self) -> Vec<Vec<u32>> {
        let n = self.pts.len();
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for node in 0..n as u32 {
            if self.find(node) != node {
                continue;
            }
            let succs = std::mem::take(&mut self.copy_succs[node as usize]);
            let mut out: Vec<u32> = Vec::with_capacity(succs.len());
            for &s in &succs {
                let r = self.find(s);
                if r != node {
                    out.push(r);
                }
            }
            self.copy_succs[node as usize] = succs;
            out.sort_unstable();
            out.dedup();
            adj[node as usize] = out;
        }
        adj
    }

    /// Strongly connected components of `adj` (iterative Tarjan), visiting
    /// roots in ascending node order so the output is deterministic.
    fn tarjan(adj: &[Vec<u32>]) -> Vec<Vec<u32>> {
        const UNVISITED: u32 = u32::MAX;
        let n = adj.len();
        let mut index = vec![UNVISITED; n];
        let mut low = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<u32> = Vec::new();
        let mut frames: Vec<(u32, usize)> = Vec::new();
        let mut next = 0u32;
        let mut comps = Vec::new();
        for root in 0..n as u32 {
            if index[root as usize] != UNVISITED {
                continue;
            }
            frames.push((root, 0));
            while let Some(&(v, ci)) = frames.last() {
                if index[v as usize] == UNVISITED {
                    index[v as usize] = next;
                    low[v as usize] = next;
                    next += 1;
                    stack.push(v);
                    on_stack[v as usize] = true;
                }
                if let Some(&w) = adj[v as usize].get(ci) {
                    frames.last_mut().expect("frame exists").1 += 1;
                    if index[w as usize] == UNVISITED {
                        frames.push((w, 0));
                    } else if on_stack[w as usize] {
                        low[v as usize] = low[v as usize].min(index[w as usize]);
                    }
                } else {
                    frames.pop();
                    if let Some(&(p, _)) = frames.last() {
                        low[p as usize] = low[p as usize].min(low[v as usize]);
                    }
                    if low[v as usize] == index[v as usize] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("stack holds the component");
                            on_stack[w as usize] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        comps.push(comp);
                    }
                }
            }
        }
        comps
    }

    /// Collapses every multi-node strongly connected component of the copy
    /// graph into its minimum-id member via the union-find, then normalizes
    /// the surviving successor lists and re-counts edges. Each multi-node
    /// component bumps `scc_collapses` once (and `cycle_collapses` once per
    /// merged loser, same as the two-node fast path).
    fn collapse_sccs(&mut self) {
        let adj = self.rep_adjacency();
        for comp in Self::tarjan(&adj) {
            if comp.len() < 2 {
                continue;
            }
            self.scc_collapses += 1;
            let winner = *comp.iter().min().expect("non-empty component");
            for &node in &comp {
                if node == winner {
                    continue;
                }
                let loser = self.find(node);
                let w = self.find(winner);
                if loser != w {
                    self.unify(w, loser);
                }
            }
        }
        // Normalize surviving successor lists (map through find, drop
        // self-loops and duplicates) and restore an exact edge count.
        let mut total = 0;
        for node in 0..self.pts.len() as u32 {
            if self.find(node) != node {
                continue;
            }
            let mut succs = std::mem::take(&mut self.copy_succs[node as usize]);
            for s in succs.iter_mut() {
                *s = self.find(*s);
            }
            succs.sort_unstable();
            succs.dedup();
            succs.retain(|&s| s != node);
            total += succs.len();
            self.copy_succs[node as usize] = succs;
        }
        self.num_edges = total;
        self.edges_at_last_collapse = total;
    }

    /// Runs to quiescence; returns newly discovered `(site_key, func)`
    /// indirect-call resolutions (deduplicated across calls by the caller's
    /// wiring state).
    ///
    /// # Errors
    ///
    /// Returns [`Exhausted`] if the iteration budget is exceeded.
    pub(crate) fn solve(
        &mut self,
        registry: &ObjRegistry,
        budget: u64,
    ) -> Result<Vec<(u32, FuncId)>, Exhausted> {
        let mut discovered = Vec::new();
        while let Some(node) = self.worklist.pop() {
            self.queued[node as usize] = false;
            self.worklist_pops += 1;
            self.iterations += 1;
            if self.iterations > budget {
                return Err(Exhausted {
                    reason: format!("solver exceeded {budget} iterations"),
                });
            }
            if self.should_collapse() {
                self.collapse_sccs();
            }
            // The popped id may have been unified away since it was queued;
            // its pending delta lives at the representative.
            let node = self.find(node);
            let delta = std::mem::take(&mut self.delta[node as usize]);
            if delta.is_empty() {
                continue;
            }

            // Copy edges: one word-parallel union per successor. The list
            // is taken, not cloned — nothing on this path can touch
            // `copy_succs[node]`, so restoring it directly is safe.
            let succs = std::mem::take(&mut self.copy_succs[node as usize]);
            for &s in &succs {
                let s = self.find(s);
                if s == node {
                    continue;
                }
                self.words_unioned += (delta.capacity() / 64) as u64;
                if delta.union_into(&mut self.pts[s as usize], &mut self.delta[s as usize]) {
                    self.enqueue(s);
                }
            }
            self.copy_succs[node as usize] = succs;

            // Complex constraints, also by take-and-restore. Interpreting
            // them can add edges and thereby unify `node` away as a cycle
            // loser, so the restore must route through the representative.
            let complexes = std::mem::take(&mut self.complex[node as usize]);
            for &c in &complexes {
                match c {
                    Complex::Load { dst, offset } => {
                        for p in delta.iter() {
                            if let Some(cell) = pointee_as_cell(p) {
                                if let Some(shifted) = registry.cell_offset(cell, offset) {
                                    let cn = self.cell_node(shifted);
                                    self.add_copy(cn, dst);
                                }
                            }
                        }
                    }
                    Complex::Store { src, offset } => {
                        for p in delta.iter() {
                            if let Some(cell) = pointee_as_cell(p) {
                                if let Some(shifted) = registry.cell_offset(cell, offset) {
                                    let cn = self.cell_node(shifted);
                                    self.add_copy(src, cn);
                                }
                            }
                        }
                    }
                    Complex::Offset { dst, offset } => {
                        for p in delta.iter() {
                            if let Some(cell) = pointee_as_cell(p) {
                                if let Some(shifted) = registry.cell_offset(cell, offset) {
                                    self.add_pointee(dst, pointee_of_cell(shifted));
                                }
                            }
                        }
                    }
                    Complex::CallTarget { site_key } => {
                        for p in delta.iter() {
                            if let Some(f) = pointee_as_func(p) {
                                discovered.push((site_key, f));
                            }
                        }
                    }
                }
            }
            let rep = self.find(node);
            if rep == node {
                self.complex[node as usize] = complexes;
            } else {
                // `node` lost a unification while its list was out:
                // re-attach through the public entry point, which also
                // reschedules interpretation against the merged set.
                for c in complexes {
                    self.add_complex(rep, c);
                }
            }
        }
        Ok(discovered)
    }

    pub(crate) fn stats(&self) -> SolverStats {
        SolverStats {
            iterations: self.iterations,
            cycle_collapses: self.cycle_collapses,
            scc_collapses: self.scc_collapses,
            words_unioned: self.words_unioned,
            worklist_pops: self.worklist_pops,
        }
    }
}

impl ConstraintSolver for Solver {
    fn add_node(&mut self) -> u32 {
        Solver::add_node(self)
    }
    fn add_pointee(&mut self, node: u32, pointee: usize) {
        Solver::add_pointee(self, node, pointee);
    }
    fn add_copy(&mut self, from: u32, to: u32) {
        Solver::add_copy(self, from, to);
    }
    fn add_complex(&mut self, node: u32, c: Complex) {
        Solver::add_complex(self, node, c);
    }
    fn pts(&self, node: u32) -> &BitSet {
        Solver::pts(self, node)
    }
    fn num_nodes(&self) -> usize {
        Solver::num_nodes(self)
    }
    fn num_copy_edges(&self) -> usize {
        Solver::num_copy_edges(self)
    }
    fn solve(
        &mut self,
        registry: &ObjRegistry,
        budget: u64,
    ) -> Result<Vec<(u32, FuncId)>, Exhausted> {
        Solver::solve(self, registry, budget)
    }
    fn stats(&self) -> SolverStats {
        Solver::stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::AbsObj;
    use oha_ir::{GlobalId, InstId, ProgramBuilder};

    fn empty_registry() -> ObjRegistry {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0);
        f.ret(None);
        let main = pb.finish_function(f);
        ObjRegistry::new(&pb.finish(main).unwrap())
    }

    #[test]
    fn copy_edges_propagate() {
        let reg = empty_registry();
        let mut s = Solver::default();
        let a = s.add_node();
        let b = s.add_node();
        let c = s.add_node();
        s.add_pointee(a, pointee_of_cell(0));
        s.add_copy(a, b);
        s.add_copy(b, c);
        s.solve(&reg, 1_000).unwrap();
        assert!(s.pts(c).contains(pointee_of_cell(0)));
    }

    #[test]
    fn load_store_flow_through_cells() {
        // p -> cell0 ; store: *p = q ; load: r = *p  ⇒ pts(r) ⊇ pts(q)
        let mut reg = empty_registry();
        reg.intern(AbsObj::Global(GlobalId::new(9)), 1); // cell 0
        reg.intern(
            AbsObj::Heap {
                site: InstId::new(1),
                ctx: 0,
            },
            1,
        ); // cell 1
        let mut s = Solver::default();
        let p = s.add_node();
        let q = s.add_node();
        let r = s.add_node();
        s.add_pointee(p, pointee_of_cell(0));
        s.add_pointee(q, pointee_of_cell(1));
        s.add_complex(p, Complex::Store { src: q, offset: 0 });
        s.add_complex(p, Complex::Load { dst: r, offset: 0 });
        s.solve(&reg, 1_000).unwrap();
        assert!(s.pts(r).contains(pointee_of_cell(1)));
    }

    #[test]
    fn offsets_respect_object_bounds() {
        let mut reg = empty_registry();
        reg.intern(AbsObj::Global(GlobalId::new(9)), 2); // cells 0,1
        let mut s = Solver::default();
        let p = s.add_node();
        let q1 = s.add_node();
        let q9 = s.add_node();
        s.add_pointee(p, pointee_of_cell(0));
        s.add_complex(p, Complex::Offset { dst: q1, offset: 1 });
        s.add_complex(p, Complex::Offset { dst: q9, offset: 9 });
        s.solve(&reg, 1_000).unwrap();
        assert!(s.pts(q1).contains(pointee_of_cell(1)));
        assert!(s.pts(q9).is_empty(), "out-of-object offsets are dropped");
    }

    #[test]
    fn call_targets_reported_once() {
        let reg = empty_registry();
        let mut s = Solver::default();
        let t = s.add_node();
        s.add_complex(t, Complex::CallTarget { site_key: 3 });
        s.add_pointee(t, crate::model::pointee_of_func(oha_ir::FuncId::new(2)));
        let found = s.solve(&reg, 1_000).unwrap();
        assert_eq!(found, vec![(3, oha_ir::FuncId::new(2))]);
        let found = s.solve(&reg, 1_000).unwrap();
        assert!(found.is_empty(), "no rediscovery without new pointees");
    }

    #[test]
    fn two_node_cycles_collapse() {
        let reg = empty_registry();
        let mut s = Solver::default();
        let a = s.add_node();
        let b = s.add_node();
        let c = s.add_node();
        s.add_copy(a, b);
        s.add_copy(b, a); // forms a two-node cycle: unified on the spot
        s.add_copy(b, c);
        s.add_pointee(a, pointee_of_cell(0));
        s.solve(&reg, 1_000).unwrap();
        assert_eq!(s.cycle_collapses, 1);
        assert!(s.pts(a).contains(pointee_of_cell(0)));
        assert!(s.pts(b).contains(pointee_of_cell(0)));
        assert!(
            s.pts(c).contains(pointee_of_cell(0)),
            "flows out of the cycle"
        );
    }

    #[test]
    fn multi_node_cycles_collapse_via_tarjan() {
        let reg = empty_registry();
        let mut s = Solver::default();
        let a = s.add_node();
        let b = s.add_node();
        let c = s.add_node();
        let d = s.add_node();
        s.add_copy(a, b);
        s.add_copy(b, c);
        s.add_copy(c, a); // three-node cycle: no reverse edge to fast-path on
        s.add_copy(c, d);
        s.add_pointee(a, pointee_of_cell(0));
        assert_eq!(s.cycle_collapses, 0, "no two-node fast path fired");
        s.collapse_sccs();
        assert_eq!(s.scc_collapses, 1, "one multi-node component found");
        assert_eq!(s.cycle_collapses, 2, "two losers merged into the winner");
        let rep = s.find(a);
        assert_eq!(rep, a, "minimum-id member wins deterministically");
        assert_eq!(s.find(b), rep);
        assert_eq!(s.find(c), rep);
        s.solve(&reg, 1_000).unwrap();
        for n in [a, b, c, d] {
            assert!(s.pts(n).contains(pointee_of_cell(0)));
        }
        assert_eq!(s.num_copy_edges(), 1, "only the collapsed a→d edge is left");
    }

    #[test]
    fn growth_heuristic_triggers_collapse_during_solve() {
        let reg = empty_registry();
        let mut s = Solver::default();
        let nodes: Vec<u32> = (0..40).map(|_| s.add_node()).collect();
        for w in nodes.windows(2) {
            s.add_copy(w[0], w[1]);
        }
        s.add_copy(*nodes.last().unwrap(), nodes[0]); // close the 40-cycle
        s.add_pointee(nodes[0], pointee_of_cell(0));
        s.solve(&reg, 10_000).unwrap();
        assert!(s.scc_collapses >= 1, "edge growth tripped the Tarjan pass");
        let rep = s.find(nodes[0]);
        for &n in &nodes {
            assert_eq!(s.find(n), rep, "whole cycle shares one representative");
            assert!(s.pts(n).contains(pointee_of_cell(0)));
        }
    }

    #[test]
    fn budget_exhaustion_errors() {
        let reg = empty_registry();
        let mut s = Solver::default();
        let nodes: Vec<u32> = (0..100).map(|_| s.add_node()).collect();
        for w in nodes.windows(2) {
            s.add_copy(w[0], w[1]);
        }
        s.add_pointee(nodes[0], pointee_of_cell(0));
        assert!(s.solve(&reg, 5).is_err());
    }
}
