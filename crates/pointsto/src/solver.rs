//! The inclusion-constraint solver.
//!
//! A classic Andersen worklist solver with difference propagation: every
//! node carries its full points-to set plus a pending delta; copy edges
//! propagate deltas; *complex* constraints (loads, stores, `gep` offsets,
//! indirect-call targets) are interpreted against each delta, possibly
//! growing the graph. Newly discovered indirect-call targets are returned to
//! the caller (the analysis builder), which wires argument/return edges —
//! and in context-sensitive mode may clone new contexts — before resuming.
//!
//! Propagation is word-parallel: a whole delta is unioned into a
//! successor's `pts`/`delta` with 64-bit word operations
//! ([`BitSet::union_into`]) instead of a per-bit insert loop, and the solve
//! loop borrows each node's successor/constraint lists by take-and-restore
//! instead of cloning them every iteration. Copy cycles are collapsed two
//! ways: two-node cycles on the spot when the reverse edge is inserted, and
//! larger strongly connected components by a periodic iterative Tarjan pass
//! over the copy graph ([`Solver::collapse_sccs`]), triggered by an
//! edge-growth heuristic and feeding the same union-find.
//!
//! Three solve loops share that machinery. [`Solver::solve`] is the plain
//! serial worklist. [`Solver::solve_dense`] drops the worklist entirely
//! and runs full word-parallel passes to fixpoint — the cheapest shape
//! for micro graphs, where per-pop bookkeeping outweighs the work it
//! avoids. [`Solver::solve_sharded`] is a bulk-synchronous variant for
//! large constraint graphs: each round drains the worklist into a
//! canonically ordered ready list, fans copy propagation out over an
//! [`oha_par::Pool`] into private per-shard change buffers, merges the
//! buffers in deterministic shard order, and only then interprets complex
//! constraints (and collapses SCCs) serially. [`Solver::solve_tuned`]
//! picks the dense or sharded loop from the constraint-graph size alone —
//! never from the thread count — so budget exhaustion and every
//! externally visible result are identical at any `OHA_THREADS` setting
//! (see DESIGN.md "Parallel static phase").

use std::collections::{BTreeMap, HashSet};
use std::time::Instant;

use oha_dataflow::BitSet;
use oha_ir::FuncId;
use oha_par::Pool;

use crate::analysis::Exhausted;
use crate::model::{pointee_as_cell, pointee_as_func, pointee_of_cell, ObjRegistry};

/// A complex (non-copy) constraint attached to a node.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Complex {
    /// `dst ⊇ *(self + offset)` — a load through this pointer.
    Load { dst: u32, offset: u32 },
    /// `*(self + offset) ⊇ src` — a store through this pointer.
    Store { src: u32, offset: u32 },
    /// `dst ⊇ {(o, f+offset) | (o, f) ∈ self}` — a `gep`.
    Offset { dst: u32, offset: u32 },
    /// This node is the target operand of the indirect call instance
    /// `site_key`; every function pointee discovered is reported to the
    /// builder.
    CallTarget { site_key: u32 },
}

/// Aggregate solver counters, surfaced through [`crate::PtStats`].
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct SolverStats {
    pub(crate) iterations: u64,
    pub(crate) cycle_collapses: u64,
    pub(crate) scc_collapses: u64,
    pub(crate) words_unioned: u64,
    pub(crate) worklist_pops: u64,
    /// Bulk-synchronous rounds executed by the sharded solve loop.
    pub(crate) shard_rounds: u64,
    /// Nanoseconds spent serially merging shard change buffers.
    pub(crate) shard_merge_ns: u64,
    /// `solve_tuned` calls routed to the serial path.
    pub(crate) serial_solves: u64,
    /// `solve_tuned` calls routed to the sharded path.
    pub(crate) sharded_solves: u64,
}

/// The constraint-solver surface the analysis builder drives.
///
/// The production implementation is [`Solver`]; the equivalence tests and
/// the speedup benchmark drive the same builder over
/// [`crate::reference::ReferenceSolver`] to prove (and measure against) a
/// naive iterate-to-fixpoint engine that computes the identical result.
pub(crate) trait ConstraintSolver: Default {
    /// Allocates a fresh solver node and returns its id.
    fn add_node(&mut self) -> u32;
    /// Capacity hint: about `extra` more nodes are coming. Purely an
    /// allocation optimization — the default (and the naive reference
    /// engine) ignores it.
    fn reserve(&mut self, _extra: usize) {}
    /// Adds a pointee to a node's set, scheduling propagation if new.
    fn add_pointee(&mut self, node: u32, pointee: usize);
    /// Adds the copy edge `from → to`.
    fn add_copy(&mut self, from: u32, to: u32);
    /// Attaches a complex constraint to `node`.
    fn add_complex(&mut self, node: u32, c: Complex);
    /// The current points-to set of `node`.
    fn pts(&self, node: u32) -> &BitSet;
    /// Number of solver nodes.
    fn num_nodes(&self) -> usize;
    /// Number of copy edges.
    fn num_copy_edges(&self) -> usize;
    /// Runs to quiescence; returns newly discovered `(site_key, func)`
    /// indirect-call resolutions.
    ///
    /// # Errors
    ///
    /// Returns [`Exhausted`] if the iteration budget is exceeded.
    fn solve(
        &mut self,
        registry: &ObjRegistry,
        budget: u64,
    ) -> Result<Vec<(u32, FuncId)>, Exhausted>;
    /// [`solve`](ConstraintSolver::solve) with an execution-strategy hint:
    /// implementations may shard large constraint graphs over `pool` and
    /// keep graphs below `serial_cutoff` (nodes + copy edges) on a lean
    /// serial path. The default ignores the hint and runs serially — the
    /// reference engine stays a naive single-threaded oracle.
    ///
    /// The contract is strict: results, iteration counts and budget
    /// exhaustion must not depend on `pool`'s width, only on the problem.
    ///
    /// # Errors
    ///
    /// Returns [`Exhausted`] if the iteration budget is exceeded.
    fn solve_tuned(
        &mut self,
        registry: &ObjRegistry,
        budget: u64,
        pool: Pool,
        serial_cutoff: usize,
    ) -> Result<Vec<(u32, FuncId)>, Exhausted> {
        let _ = (pool, serial_cutoff);
        self.solve(registry, budget)
    }
    /// Aggregate counters for reporting.
    fn stats(&self) -> SolverStats;
}

/// Minimum edge growth before a Tarjan pass is considered.
const COLLAPSE_MIN_GROWTH: usize = 32;

#[derive(Debug, Default)]
pub(crate) struct Solver {
    pts: Vec<BitSet>,
    delta: Vec<BitSet>,
    /// Per-node sorted successor lists (dedup by binary search) — replaces
    /// the old global `HashSet<(u32, u32)>` edge set.
    copy_succs: Vec<Vec<u32>>,
    complex: Vec<Vec<Complex>>,
    /// Solver node per registry cell (created lazily).
    cell_nodes: Vec<u32>,
    worklist: Vec<u32>,
    queued: Vec<bool>,
    /// Union-find parents. Two-node copy cycles (`a → b` and `b → a`) are
    /// unified the moment the reverse edge appears; larger cycles are
    /// folded in by the periodic Tarjan pass. Every public entry point
    /// normalizes through [`Solver::find`].
    repr: Vec<u32>,
    /// Copy edges currently in the graph (kept exact by re-counting after
    /// each collapse pass).
    num_edges: usize,
    /// `num_edges` as of the last Tarjan pass, for the growth heuristic.
    edges_at_last_collapse: usize,
    /// `(site_key, func)` resolutions already returned to the builder.
    /// The dense solve loop interprets `CallTarget` constraints against
    /// *full* points-to sets every pass, so without this gate it would
    /// re-report the same resolution forever and the builder's
    /// solve/wire loop could never observe quiescence. The delta-driven
    /// loops are gated too, which only suppresses the harmless
    /// duplicates a cycle collapse could restage. Membership-only use —
    /// discovery order still follows the deterministic interpretation
    /// order, never hash order.
    reported: HashSet<(u32, u32)>,
    pub(crate) iterations: u64,
    pub(crate) cycle_collapses: u64,
    pub(crate) scc_collapses: u64,
    pub(crate) words_unioned: u64,
    pub(crate) worklist_pops: u64,
    pub(crate) shard_rounds: u64,
    pub(crate) shard_merge_ns: u64,
    pub(crate) serial_solves: u64,
    pub(crate) sharded_solves: u64,
}

impl Solver {
    /// Pre-sizes the six per-node parallel vectors for `extra` more
    /// nodes. One call from the builder (which knows the planned op
    /// count) replaces dozens of interleaved doubling reallocations —
    /// on micro graphs that growth churn is a measurable slice of the
    /// whole analysis.
    pub(crate) fn reserve(&mut self, extra: usize) {
        self.pts.reserve(extra);
        self.delta.reserve(extra);
        self.copy_succs.reserve(extra);
        self.complex.reserve(extra);
        self.queued.reserve(extra);
        self.repr.reserve(extra);
    }

    pub(crate) fn num_nodes(&self) -> usize {
        self.pts.len()
    }

    pub(crate) fn num_copy_edges(&self) -> usize {
        self.num_edges
    }

    pub(crate) fn add_node(&mut self) -> u32 {
        let id = self.pts.len() as u32;
        self.pts.push(BitSet::new());
        self.delta.push(BitSet::new());
        self.copy_succs.push(Vec::new());
        self.complex.push(Vec::new());
        self.queued.push(false);
        self.repr.push(id);
        id
    }

    /// The representative of `n`'s union-find class, with path compression.
    fn find(&mut self, mut n: u32) -> u32 {
        while self.repr[n as usize] != n {
            let parent = self.repr[n as usize];
            self.repr[n as usize] = self.repr[parent as usize];
            n = self.repr[n as usize];
        }
        n
    }

    /// Read-only representative lookup (no path compression) — safe for
    /// shard workers to call concurrently while `repr` is frozen between
    /// bulk-synchronous rounds.
    fn rep_of(&self, mut n: u32) -> u32 {
        while self.repr[n as usize] != n {
            n = self.repr[n as usize];
        }
        n
    }

    /// Merges `loser` into `winner` (both must be representatives).
    /// Re-adding the loser's pointees, constraints and out-edges through the
    /// public entry points reschedules whatever propagation is still owed;
    /// the loser's pending delta can be dropped because its full set merges
    /// into the winner and any bits new to the winner land in the winner's
    /// delta.
    fn unify(&mut self, winner: u32, loser: u32) {
        self.cycle_collapses += 1;
        self.repr[loser as usize] = winner;
        self.delta[loser as usize] = BitSet::new();
        let pts = std::mem::take(&mut self.pts[loser as usize]);
        self.words_unioned += (pts.capacity() / 64) as u64;
        if pts.union_into(
            &mut self.pts[winner as usize],
            &mut self.delta[winner as usize],
        ) {
            self.enqueue(winner);
        }
        let complexes = std::mem::take(&mut self.complex[loser as usize]);
        for c in complexes {
            self.add_complex(winner, c);
        }
        let succs = std::mem::take(&mut self.copy_succs[loser as usize]);
        self.num_edges -= succs.len();
        for s in succs {
            self.add_copy(winner, s);
        }
    }

    /// The solver node standing for a memory cell, created on first use.
    pub(crate) fn cell_node(&mut self, cell: u32) -> u32 {
        while self.cell_nodes.len() <= cell as usize {
            self.cell_nodes.push(u32::MAX);
        }
        if self.cell_nodes[cell as usize] == u32::MAX {
            let n = self.add_node();
            self.cell_nodes[cell as usize] = n;
        }
        self.cell_nodes[cell as usize]
    }

    fn enqueue(&mut self, node: u32) {
        if !self.queued[node as usize] {
            self.queued[node as usize] = true;
            self.worklist.push(node);
        }
    }

    /// Adds a pointee to a node's set, scheduling propagation if new.
    pub(crate) fn add_pointee(&mut self, node: u32, pointee: usize) {
        let node = self.find(node);
        if self.pts[node as usize].insert(pointee) {
            // A single-bit insert touches one word in each set.
            self.words_unioned += 1;
            self.delta[node as usize].insert(pointee);
            self.enqueue(node);
        }
    }

    /// Adds the copy edge `from → to` and propagates `from`'s current set
    /// word-parallel. If the reverse edge already exists the two nodes form
    /// a cycle and are unified instead.
    pub(crate) fn add_copy(&mut self, from: u32, to: u32) {
        let from = self.find(from);
        let to = self.find(to);
        if from == to {
            return;
        }
        match self.copy_succs[from as usize].binary_search(&to) {
            Ok(_) => return,
            Err(pos) => {
                if self.copy_succs[to as usize].binary_search(&from).is_ok() {
                    self.unify(from, to);
                    return;
                }
                self.copy_succs[from as usize].insert(pos, to);
                self.num_edges += 1;
            }
        }
        // Propagate everything already known at `from`.
        let src = std::mem::take(&mut self.pts[from as usize]);
        self.words_unioned += (src.capacity() / 64) as u64;
        if src.union_into(&mut self.pts[to as usize], &mut self.delta[to as usize]) {
            self.enqueue(to);
        }
        self.pts[from as usize] = src;
    }

    pub(crate) fn add_complex(&mut self, node: u32, c: Complex) {
        let node = self.find(node);
        self.complex[node as usize].push(c);
        // Interpret the constraint against everything already known by
        // restaging the full set as a pending delta (no clone: the set is
        // taken out for the duration of the in-place union).
        let pts = std::mem::take(&mut self.pts[node as usize]);
        if !pts.is_empty() {
            self.words_unioned += (pts.capacity() / 64) as u64;
            self.delta[node as usize].union_with(&pts);
            self.enqueue(node);
        }
        self.pts[node as usize] = pts;
    }

    pub(crate) fn pts(&self, node: u32) -> &BitSet {
        &self.pts[self.rep_of(node) as usize]
    }

    /// Growth heuristic for the periodic Tarjan pass: fire once the copy
    /// graph has gained at least [`COLLAPSE_MIN_GROWTH`] edges since the
    /// last pass *and* that growth is at least a quarter of the graph —
    /// deterministic, and amortizes the O(V+E) pass against real growth.
    fn should_collapse(&self) -> bool {
        // Saturating: two-node fast-path unifications can shrink the edge
        // count below the last pass's snapshot.
        let grown = self.num_edges.saturating_sub(self.edges_at_last_collapse);
        grown >= COLLAPSE_MIN_GROWTH && grown * 4 >= self.num_edges
    }

    /// Snapshot adjacency of the copy graph at union-find representative
    /// level: successors mapped through [`Solver::find`], self-loops
    /// dropped, sorted and deduplicated.
    fn rep_adjacency(&mut self) -> Vec<Vec<u32>> {
        let n = self.pts.len();
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for node in 0..n as u32 {
            if self.find(node) != node {
                continue;
            }
            let succs = std::mem::take(&mut self.copy_succs[node as usize]);
            let mut out: Vec<u32> = Vec::with_capacity(succs.len());
            for &s in &succs {
                let r = self.find(s);
                if r != node {
                    out.push(r);
                }
            }
            self.copy_succs[node as usize] = succs;
            out.sort_unstable();
            out.dedup();
            adj[node as usize] = out;
        }
        adj
    }

    /// Strongly connected components of `adj` (iterative Tarjan), visiting
    /// roots in ascending node order so the output is deterministic.
    fn tarjan(adj: &[Vec<u32>]) -> Vec<Vec<u32>> {
        const UNVISITED: u32 = u32::MAX;
        let n = adj.len();
        let mut index = vec![UNVISITED; n];
        let mut low = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<u32> = Vec::new();
        let mut frames: Vec<(u32, usize)> = Vec::new();
        let mut next = 0u32;
        let mut comps = Vec::new();
        for root in 0..n as u32 {
            if index[root as usize] != UNVISITED {
                continue;
            }
            frames.push((root, 0));
            while let Some(&(v, ci)) = frames.last() {
                if index[v as usize] == UNVISITED {
                    index[v as usize] = next;
                    low[v as usize] = next;
                    next += 1;
                    stack.push(v);
                    on_stack[v as usize] = true;
                }
                if let Some(&w) = adj[v as usize].get(ci) {
                    frames.last_mut().expect("frame exists").1 += 1;
                    if index[w as usize] == UNVISITED {
                        frames.push((w, 0));
                    } else if on_stack[w as usize] {
                        low[v as usize] = low[v as usize].min(index[w as usize]);
                    }
                } else {
                    frames.pop();
                    if let Some(&(p, _)) = frames.last() {
                        low[p as usize] = low[p as usize].min(low[v as usize]);
                    }
                    if low[v as usize] == index[v as usize] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("stack holds the component");
                            on_stack[w as usize] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        comps.push(comp);
                    }
                }
            }
        }
        comps
    }

    /// Collapses every multi-node strongly connected component of the copy
    /// graph into its minimum-id member via the union-find, then normalizes
    /// the surviving successor lists and re-counts edges. Each multi-node
    /// component bumps `scc_collapses` once (and `cycle_collapses` once per
    /// merged loser, same as the two-node fast path).
    fn collapse_sccs(&mut self) {
        let adj = self.rep_adjacency();
        for comp in Self::tarjan(&adj) {
            if comp.len() < 2 {
                continue;
            }
            self.scc_collapses += 1;
            let winner = *comp.iter().min().expect("non-empty component");
            for &node in &comp {
                if node == winner {
                    continue;
                }
                let loser = self.find(node);
                let w = self.find(winner);
                if loser != w {
                    self.unify(w, loser);
                }
            }
        }
        // Normalize surviving successor lists (map through find, drop
        // self-loops and duplicates) and restore an exact edge count.
        let mut total = 0;
        for node in 0..self.pts.len() as u32 {
            if self.find(node) != node {
                continue;
            }
            let mut succs = std::mem::take(&mut self.copy_succs[node as usize]);
            for s in succs.iter_mut() {
                *s = self.find(*s);
            }
            succs.sort_unstable();
            succs.dedup();
            succs.retain(|&s| s != node);
            total += succs.len();
            self.copy_succs[node as usize] = succs;
        }
        self.num_edges = total;
        self.edges_at_last_collapse = total;
    }

    /// Interprets one complex constraint against a freshly drained delta.
    /// May create cell nodes, add copy edges (and thereby unify cycles) or
    /// stage new pointees.
    fn interpret(
        &mut self,
        registry: &ObjRegistry,
        c: Complex,
        delta: &BitSet,
        discovered: &mut Vec<(u32, FuncId)>,
    ) {
        match c {
            Complex::Load { dst, offset } => {
                for p in delta.iter() {
                    if let Some(cell) = pointee_as_cell(p) {
                        if let Some(shifted) = registry.cell_offset(cell, offset) {
                            let cn = self.cell_node(shifted);
                            self.add_copy(cn, dst);
                        }
                    }
                }
            }
            Complex::Store { src, offset } => {
                for p in delta.iter() {
                    if let Some(cell) = pointee_as_cell(p) {
                        if let Some(shifted) = registry.cell_offset(cell, offset) {
                            let cn = self.cell_node(shifted);
                            self.add_copy(src, cn);
                        }
                    }
                }
            }
            Complex::Offset { dst, offset } => {
                for p in delta.iter() {
                    if let Some(cell) = pointee_as_cell(p) {
                        if let Some(shifted) = registry.cell_offset(cell, offset) {
                            self.add_pointee(dst, pointee_of_cell(shifted));
                        }
                    }
                }
            }
            Complex::CallTarget { site_key } => {
                for p in delta.iter() {
                    if let Some(f) = pointee_as_func(p) {
                        if self.reported.insert((site_key, f.raw())) {
                            discovered.push((site_key, f));
                        }
                    }
                }
            }
        }
    }

    /// Puts a taken-out constraint list back after interpretation.
    /// Interpreting can unify `node` away as a cycle loser (re-attach at
    /// the representative, restaging against the merged set) or make it a
    /// cycle *winner* (the loser's constraints landed in `node`'s in-place
    /// list while ours was out — append rather than overwrite, so they
    /// survive).
    fn restore_complexes(&mut self, node: u32, mut complexes: Vec<Complex>) {
        let rep = self.find(node);
        if rep == node {
            complexes.append(&mut self.complex[node as usize]);
            self.complex[node as usize] = complexes;
        } else {
            for c in complexes {
                self.add_complex(rep, c);
            }
        }
    }

    /// Runs to quiescence; returns newly discovered `(site_key, func)`
    /// indirect-call resolutions (deduplicated across calls by the caller's
    /// wiring state).
    ///
    /// # Errors
    ///
    /// Returns [`Exhausted`] if the iteration budget is exceeded.
    pub(crate) fn solve(
        &mut self,
        registry: &ObjRegistry,
        budget: u64,
    ) -> Result<Vec<(u32, FuncId)>, Exhausted> {
        let mut discovered = Vec::new();
        // The popped delta is swapped through this scratch set instead of
        // `mem::take`n: a take frees the node's word vector on every pop
        // and re-grows it from empty on the next enqueue, and on micro
        // graphs that malloc/free pair per pop costs more than the actual
        // propagation. The swap hands the previous pop's (zeroed)
        // allocation to the current node's slot, so delta vectors are
        // recycled instead of churned. Invariant: `scratch` is all-zero at
        // the top of every iteration.
        let mut scratch = BitSet::new();
        while let Some(node) = self.worklist.pop() {
            self.queued[node as usize] = false;
            self.worklist_pops += 1;
            self.iterations += 1;
            if self.iterations > budget {
                return Err(Exhausted {
                    reason: format!("solver exceeded {budget} iterations"),
                });
            }
            if self.should_collapse() {
                self.collapse_sccs();
            }
            // The popped id may have been unified away since it was queued;
            // its pending delta lives at the representative.
            let node = self.find(node);
            std::mem::swap(&mut scratch, &mut self.delta[node as usize]);
            let delta = &scratch;
            if delta.is_empty() {
                continue;
            }

            // Copy edges: one word-parallel union per successor. The list
            // is taken, not cloned — nothing on this path can touch
            // `copy_succs[node]`, so restoring it directly is safe. Nodes
            // without successors (most cell nodes) skip the take entirely.
            if !self.copy_succs[node as usize].is_empty() {
                let succs = std::mem::take(&mut self.copy_succs[node as usize]);
                for &s in &succs {
                    let s = self.find(s);
                    if s == node {
                        continue;
                    }
                    self.words_unioned += (delta.capacity() / 64) as u64;
                    if delta.union_into(&mut self.pts[s as usize], &mut self.delta[s as usize]) {
                        self.enqueue(s);
                    }
                }
                self.copy_succs[node as usize] = succs;
            }

            // Complex constraints, also by take-and-restore (skipped
            // outright for the constraint-free majority of nodes).
            if !self.complex[node as usize].is_empty() {
                let complexes = std::mem::take(&mut self.complex[node as usize]);
                for &c in &complexes {
                    self.interpret(registry, c, delta, &mut discovered);
                }
                self.restore_complexes(node, complexes);
            }
            // Restore the scratch invariant; the allocation is handed to
            // the next popped node's slot by the swap above.
            scratch.clear();
        }
        Ok(discovered)
    }

    /// Drains scheduling state staged for the worklist engines: clears
    /// queue flags and folds pending deltas away (every delta bit is
    /// already in its representative's full set, which is what the dense
    /// loop propagates). Returns whether any drained entry carried a
    /// non-empty delta — i.e. whether the constraint-side entry points
    /// recorded a real set change since the last drain.
    fn drain_pending(&mut self) -> bool {
        let mut changed = false;
        while let Some(node) = self.worklist.pop() {
            self.queued[node as usize] = false;
            self.worklist_pops += 1;
            let rep = self.find(node);
            if !self.delta[rep as usize].is_empty() {
                self.delta[rep as usize].clear();
                changed = true;
            }
        }
        changed
    }

    /// Dense word-parallel fixpoint for graphs below the serial cutoff.
    ///
    /// The worklist engine's per-pop bookkeeping — delta staging, queue
    /// flags, take-and-restore of successor lists — only pays for itself
    /// once the graph is large enough that full passes would mostly
    /// revisit quiescent edges. Micro graphs are the opposite regime:
    /// the whole constraint set fits in a few cache lines, so the
    /// cheapest strategy is the reference engine's shape — full passes
    /// to fixpoint — with its per-bit clone-and-insert inner loop
    /// replaced by one word-parallel [`BitSet::union_with`] per edge and
    /// its linear-scan edge set replaced by the shared per-node sorted
    /// lists. Cycle handling rides along unchanged: the two-node
    /// fast path fires inside [`Solver::add_copy`], and larger cycles
    /// simply iterate to the same least fixpoint (a Tarjan pass costs
    /// more than it saves at this size).
    ///
    /// Pending deltas and the worklist are drained up front and after
    /// every pass, so at fixpoint both are empty and a later
    /// [`Solver::solve_tuned`] round that routes to a worklist engine
    /// (the graph may outgrow the cutoff between wiring rounds) starts
    /// from a consistent state. Entirely serial and size-routed, so its
    /// choice and its counters cannot vary with the pool width.
    ///
    /// # Errors
    ///
    /// Returns [`Exhausted`] if the iteration budget is exceeded.
    pub(crate) fn solve_dense(
        &mut self,
        registry: &ObjRegistry,
        budget: u64,
    ) -> Result<Vec<(u32, FuncId)>, Exhausted> {
        let mut discovered = Vec::new();
        self.drain_pending();
        // Reusable buffer for per-node set snapshots in the complex pass.
        let mut snapshot = BitSet::new();
        loop {
            let mut changed = false;
            // Copy pass, ascending node order. Nothing here can unify
            // nodes or touch the taken slots, so take-and-restore of the
            // source set and successor list is safe.
            for node in 0..self.pts.len() as u32 {
                if self.repr[node as usize] != node || self.copy_succs[node as usize].is_empty() {
                    continue;
                }
                self.iterations += 1;
                if self.iterations > budget {
                    return Err(Exhausted {
                        reason: format!("solver exceeded {budget} iterations"),
                    });
                }
                let src = std::mem::take(&mut self.pts[node as usize]);
                let succs = std::mem::take(&mut self.copy_succs[node as usize]);
                for &s in &succs {
                    let s = self.find(s);
                    if s == node {
                        continue;
                    }
                    self.words_unioned += (src.capacity() / 64) as u64;
                    changed |= self.pts[s as usize].union_with(&src);
                }
                self.copy_succs[node as usize] = succs;
                self.pts[node as usize] = src;
            }
            // Complex pass: interpret every constraint against the full
            // set (the `reported` gate keeps call-target discovery
            // convergent). The set is *copied* into a reusable snapshot
            // buffer rather than taken: interpretation can add an edge
            // back into `node` itself, and the eager propagation in
            // [`Solver::add_copy`] must see the real set — against a
            // temporarily emptied slot every incoming bit would look
            // new, restage forever and livelock the changed test. New
            // nodes created here wait for the next pass, whose entry
            // points flag any real change through the worklist.
            for node in 0..self.pts.len() as u32 {
                if self.repr[node as usize] != node || self.complex[node as usize].is_empty() {
                    continue;
                }
                self.iterations += 1;
                if self.iterations > budget {
                    return Err(Exhausted {
                        reason: format!("solver exceeded {budget} iterations"),
                    });
                }
                let complexes = std::mem::take(&mut self.complex[node as usize]);
                snapshot.clone_from(&self.pts[node as usize]);
                for &c in &complexes {
                    self.interpret(registry, c, &snapshot, &mut discovered);
                }
                self.restore_complexes(node, complexes);
            }
            changed |= self.drain_pending();
            if !changed {
                return Ok(discovered);
            }
        }
    }

    /// Bulk-synchronous sharded solve over `pool`. Each round:
    ///
    /// 1. collapses SCCs if the growth heuristic fired — round boundaries
    ///    only, so the union-find is frozen for the rest of the round;
    /// 2. drains the worklist into a ready list of `(node, delta)` pairs
    ///    and sorts it by node id (the canonical round order — worklist
    ///    push order varies with the previous round's chunking);
    /// 3. fans the ready list out over the pool in contiguous chunks; each
    ///    shard resolves copy successors through the frozen union-find and
    ///    accumulates per-successor deltas into a private change buffer,
    ///    touching no shared mutable state;
    /// 4. merges the buffers serially, in shard order then ascending node
    ///    order within each shard — set union is commutative and
    ///    associative, so the merged `pts`/`delta` state (and with it every
    ///    later round) is independent of the chunking;
    /// 5. interprets complex constraints serially in canonical ready
    ///    order. This phase may create cell nodes, add edges and unify
    ///    cycles, which is why it cannot overlap the shard phase.
    ///
    /// Reaches the same least fixpoint as [`Solver::solve`]; iteration
    /// counts — and therefore budget exhaustion — are identical at every
    /// pool width, including width 1.
    ///
    /// # Errors
    ///
    /// Returns [`Exhausted`] if the iteration budget is exceeded.
    pub(crate) fn solve_sharded(
        &mut self,
        registry: &ObjRegistry,
        budget: u64,
        pool: Pool,
    ) -> Result<Vec<(u32, FuncId)>, Exhausted> {
        let mut discovered = Vec::new();
        while !self.worklist.is_empty() {
            self.shard_rounds += 1;
            if self.should_collapse() {
                self.collapse_sccs();
            }
            // Phase 1: drain into the ready list. Entries folded into the
            // same representative see an empty delta on the second take
            // and drop out, so representatives appear at most once.
            let mut ready: Vec<(u32, BitSet)> = Vec::new();
            while let Some(node) = self.worklist.pop() {
                self.queued[node as usize] = false;
                self.worklist_pops += 1;
                self.iterations += 1;
                if self.iterations > budget {
                    return Err(Exhausted {
                        reason: format!("solver exceeded {budget} iterations"),
                    });
                }
                let rep = self.find(node);
                let delta = std::mem::take(&mut self.delta[rep as usize]);
                if delta.is_empty() {
                    continue;
                }
                ready.push((rep, delta));
            }
            ready.sort_unstable_by_key(|&(n, _)| n);

            // Phase 2: sharded copy propagation into private buffers.
            let chunk = ready.len().div_ceil(pool.threads()).max(1);
            let chunks: Vec<&[(u32, BitSet)]> = ready.chunks(chunk).collect();
            let frozen = &*self;
            let buffers: Vec<(BTreeMap<u32, BitSet>, u64)> = pool.par_map(&chunks, |entries| {
                let mut buf: BTreeMap<u32, BitSet> = BTreeMap::new();
                let mut words = 0u64;
                for &(node, ref delta) in entries.iter() {
                    for &s in &frozen.copy_succs[node as usize] {
                        let s = frozen.rep_of(s);
                        if s == node {
                            continue;
                        }
                        words += (delta.capacity() / 64) as u64;
                        buf.entry(s).or_default().union_with(delta);
                    }
                }
                (buf, words)
            });

            // Phase 3: serial merge in deterministic shard order.
            let merge_start = Instant::now();
            for (buf, words) in buffers {
                self.words_unioned += words;
                for (succ, bits) in buf {
                    if bits.union_into(&mut self.pts[succ as usize], &mut self.delta[succ as usize])
                    {
                        self.enqueue(succ);
                    }
                }
            }
            self.shard_merge_ns += merge_start.elapsed().as_nanos() as u64;

            // Phase 4: complex constraints, serially in canonical order.
            for (node, delta) in &ready {
                // Earlier entries' constraints may have unified this node
                // away; its list lives at the current representative.
                let node = self.find(*node);
                if self.complex[node as usize].is_empty() {
                    continue;
                }
                let complexes = std::mem::take(&mut self.complex[node as usize]);
                for &c in &complexes {
                    self.interpret(registry, c, delta, &mut discovered);
                }
                self.restore_complexes(node, complexes);
            }
        }
        Ok(discovered)
    }

    /// Size-adaptive solve: constraint graphs below `serial_cutoff`
    /// (nodes + copy edges) run [`Solver::solve_dense`]; larger graphs
    /// run [`Solver::solve_sharded`] over `pool`. The routing decision
    /// is a pure function of problem size so it cannot vary with
    /// `OHA_THREADS`.
    ///
    /// # Errors
    ///
    /// Returns [`Exhausted`] if the iteration budget is exceeded.
    pub(crate) fn solve_tuned(
        &mut self,
        registry: &ObjRegistry,
        budget: u64,
        pool: Pool,
        serial_cutoff: usize,
    ) -> Result<Vec<(u32, FuncId)>, Exhausted> {
        if self.num_nodes() + self.num_edges < serial_cutoff {
            self.serial_solves += 1;
            self.solve_dense(registry, budget)
        } else {
            self.sharded_solves += 1;
            self.solve_sharded(registry, budget, pool)
        }
    }

    pub(crate) fn stats(&self) -> SolverStats {
        SolverStats {
            iterations: self.iterations,
            cycle_collapses: self.cycle_collapses,
            scc_collapses: self.scc_collapses,
            words_unioned: self.words_unioned,
            worklist_pops: self.worklist_pops,
            shard_rounds: self.shard_rounds,
            shard_merge_ns: self.shard_merge_ns,
            serial_solves: self.serial_solves,
            sharded_solves: self.sharded_solves,
        }
    }
}

impl ConstraintSolver for Solver {
    fn add_node(&mut self) -> u32 {
        Solver::add_node(self)
    }
    fn reserve(&mut self, extra: usize) {
        Solver::reserve(self, extra);
    }
    fn add_pointee(&mut self, node: u32, pointee: usize) {
        Solver::add_pointee(self, node, pointee);
    }
    fn add_copy(&mut self, from: u32, to: u32) {
        Solver::add_copy(self, from, to);
    }
    fn add_complex(&mut self, node: u32, c: Complex) {
        Solver::add_complex(self, node, c);
    }
    fn pts(&self, node: u32) -> &BitSet {
        Solver::pts(self, node)
    }
    fn num_nodes(&self) -> usize {
        Solver::num_nodes(self)
    }
    fn num_copy_edges(&self) -> usize {
        Solver::num_copy_edges(self)
    }
    fn solve(
        &mut self,
        registry: &ObjRegistry,
        budget: u64,
    ) -> Result<Vec<(u32, FuncId)>, Exhausted> {
        Solver::solve(self, registry, budget)
    }
    fn solve_tuned(
        &mut self,
        registry: &ObjRegistry,
        budget: u64,
        pool: Pool,
        serial_cutoff: usize,
    ) -> Result<Vec<(u32, FuncId)>, Exhausted> {
        Solver::solve_tuned(self, registry, budget, pool, serial_cutoff)
    }
    fn stats(&self) -> SolverStats {
        Solver::stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::AbsObj;
    use oha_ir::{GlobalId, InstId, ProgramBuilder};

    fn empty_registry() -> ObjRegistry {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0);
        f.ret(None);
        let main = pb.finish_function(f);
        ObjRegistry::new(&pb.finish(main).unwrap())
    }

    #[test]
    fn copy_edges_propagate() {
        let reg = empty_registry();
        let mut s = Solver::default();
        let a = s.add_node();
        let b = s.add_node();
        let c = s.add_node();
        s.add_pointee(a, pointee_of_cell(0));
        s.add_copy(a, b);
        s.add_copy(b, c);
        s.solve(&reg, 1_000).unwrap();
        assert!(s.pts(c).contains(pointee_of_cell(0)));
    }

    #[test]
    fn load_store_flow_through_cells() {
        // p -> cell0 ; store: *p = q ; load: r = *p  ⇒ pts(r) ⊇ pts(q)
        let mut reg = empty_registry();
        reg.intern(AbsObj::Global(GlobalId::new(9)), 1); // cell 0
        reg.intern(
            AbsObj::Heap {
                site: InstId::new(1),
                ctx: 0,
            },
            1,
        ); // cell 1
        let mut s = Solver::default();
        let p = s.add_node();
        let q = s.add_node();
        let r = s.add_node();
        s.add_pointee(p, pointee_of_cell(0));
        s.add_pointee(q, pointee_of_cell(1));
        s.add_complex(p, Complex::Store { src: q, offset: 0 });
        s.add_complex(p, Complex::Load { dst: r, offset: 0 });
        s.solve(&reg, 1_000).unwrap();
        assert!(s.pts(r).contains(pointee_of_cell(1)));
    }

    #[test]
    fn offsets_respect_object_bounds() {
        let mut reg = empty_registry();
        reg.intern(AbsObj::Global(GlobalId::new(9)), 2); // cells 0,1
        let mut s = Solver::default();
        let p = s.add_node();
        let q1 = s.add_node();
        let q9 = s.add_node();
        s.add_pointee(p, pointee_of_cell(0));
        s.add_complex(p, Complex::Offset { dst: q1, offset: 1 });
        s.add_complex(p, Complex::Offset { dst: q9, offset: 9 });
        s.solve(&reg, 1_000).unwrap();
        assert!(s.pts(q1).contains(pointee_of_cell(1)));
        assert!(s.pts(q9).is_empty(), "out-of-object offsets are dropped");
    }

    #[test]
    fn call_targets_reported_once() {
        let reg = empty_registry();
        let mut s = Solver::default();
        let t = s.add_node();
        s.add_complex(t, Complex::CallTarget { site_key: 3 });
        s.add_pointee(t, crate::model::pointee_of_func(oha_ir::FuncId::new(2)));
        let found = s.solve(&reg, 1_000).unwrap();
        assert_eq!(found, vec![(3, oha_ir::FuncId::new(2))]);
        let found = s.solve(&reg, 1_000).unwrap();
        assert!(found.is_empty(), "no rediscovery without new pointees");
    }

    #[test]
    fn dense_call_targets_reported_once() {
        // The dense loop reinterprets CallTarget against the *full* set
        // every pass; the `reported` gate must keep both the pass loop
        // and repeat solve rounds convergent.
        let reg = empty_registry();
        let mut s = Solver::default();
        let t = s.add_node();
        s.add_complex(t, Complex::CallTarget { site_key: 3 });
        s.add_pointee(t, crate::model::pointee_of_func(oha_ir::FuncId::new(2)));
        let found = s.solve_dense(&reg, 1_000).unwrap();
        assert_eq!(found, vec![(3, oha_ir::FuncId::new(2))]);
        let found = s.solve_dense(&reg, 1_000).unwrap();
        assert!(found.is_empty(), "full-set reinterpretation is gated");
    }

    #[test]
    fn dense_converges_when_interpretation_feeds_the_interpreted_node() {
        let mut reg = empty_registry();
        reg.intern(AbsObj::Global(GlobalId::new(9)), 1); // cell 0
        reg.intern(
            AbsObj::Heap {
                site: InstId::new(1),
                ctx: 0,
            },
            1,
        ); // cell 1
        let mut s = Solver::default();
        let p = s.add_node();
        let q = s.add_node();
        s.add_pointee(p, pointee_of_cell(0));
        s.add_pointee(q, pointee_of_cell(1));
        s.add_complex(p, Complex::Store { src: q, offset: 0 });
        // The load writes back into `p` itself: interpreting it adds a
        // copy edge cell→p whose eager propagation targets the node
        // under interpretation. If the dense loop took `p`'s set out
        // instead of snapshotting it, every incoming bit would hit an
        // emptied slot, restage as new and livelock (hence the tight
        // budget here).
        s.add_complex(p, Complex::Load { dst: p, offset: 0 });
        s.solve_dense(&reg, 1_000).unwrap();
        assert!(
            s.pts(p).contains(pointee_of_cell(1)),
            "loaded value flows back into p"
        );
    }

    #[test]
    fn two_node_cycles_collapse() {
        let reg = empty_registry();
        let mut s = Solver::default();
        let a = s.add_node();
        let b = s.add_node();
        let c = s.add_node();
        s.add_copy(a, b);
        s.add_copy(b, a); // forms a two-node cycle: unified on the spot
        s.add_copy(b, c);
        s.add_pointee(a, pointee_of_cell(0));
        s.solve(&reg, 1_000).unwrap();
        assert_eq!(s.cycle_collapses, 1);
        assert!(s.pts(a).contains(pointee_of_cell(0)));
        assert!(s.pts(b).contains(pointee_of_cell(0)));
        assert!(
            s.pts(c).contains(pointee_of_cell(0)),
            "flows out of the cycle"
        );
    }

    #[test]
    fn multi_node_cycles_collapse_via_tarjan() {
        let reg = empty_registry();
        let mut s = Solver::default();
        let a = s.add_node();
        let b = s.add_node();
        let c = s.add_node();
        let d = s.add_node();
        s.add_copy(a, b);
        s.add_copy(b, c);
        s.add_copy(c, a); // three-node cycle: no reverse edge to fast-path on
        s.add_copy(c, d);
        s.add_pointee(a, pointee_of_cell(0));
        assert_eq!(s.cycle_collapses, 0, "no two-node fast path fired");
        s.collapse_sccs();
        assert_eq!(s.scc_collapses, 1, "one multi-node component found");
        assert_eq!(s.cycle_collapses, 2, "two losers merged into the winner");
        let rep = s.find(a);
        assert_eq!(rep, a, "minimum-id member wins deterministically");
        assert_eq!(s.find(b), rep);
        assert_eq!(s.find(c), rep);
        s.solve(&reg, 1_000).unwrap();
        for n in [a, b, c, d] {
            assert!(s.pts(n).contains(pointee_of_cell(0)));
        }
        assert_eq!(s.num_copy_edges(), 1, "only the collapsed a→d edge is left");
    }

    #[test]
    fn growth_heuristic_triggers_collapse_during_solve() {
        let reg = empty_registry();
        let mut s = Solver::default();
        let nodes: Vec<u32> = (0..40).map(|_| s.add_node()).collect();
        for w in nodes.windows(2) {
            s.add_copy(w[0], w[1]);
        }
        s.add_copy(*nodes.last().unwrap(), nodes[0]); // close the 40-cycle
        s.add_pointee(nodes[0], pointee_of_cell(0));
        s.solve(&reg, 10_000).unwrap();
        assert!(s.scc_collapses >= 1, "edge growth tripped the Tarjan pass");
        let rep = s.find(nodes[0]);
        for &n in &nodes {
            assert_eq!(s.find(n), rep, "whole cycle shares one representative");
            assert!(s.pts(n).contains(pointee_of_cell(0)));
        }
    }

    #[test]
    fn budget_exhaustion_errors() {
        let reg = empty_registry();
        let mut s = Solver::default();
        let nodes: Vec<u32> = (0..100).map(|_| s.add_node()).collect();
        for w in nodes.windows(2) {
            s.add_copy(w[0], w[1]);
        }
        s.add_pointee(nodes[0], pointee_of_cell(0));
        assert!(s.solve(&reg, 5).is_err());
    }

    /// A constraint soup exercising every constraint kind: a copy chain, a
    /// cycle, loads/stores through cells, offsets and a call target.
    fn build_soup(s: &mut impl ConstraintSolver) {
        let nodes: Vec<u32> = (0..24).map(|_| s.add_node()).collect();
        for w in nodes.windows(2) {
            s.add_copy(w[0], w[1]);
        }
        s.add_copy(nodes[7], nodes[2]); // cycle 2..=7
        s.add_pointee(nodes[0], pointee_of_cell(0));
        s.add_pointee(nodes[12], pointee_of_cell(2));
        s.add_complex(
            nodes[3],
            Complex::Store {
                src: nodes[12],
                offset: 0,
            },
        );
        s.add_complex(
            nodes[5],
            Complex::Load {
                dst: nodes[20],
                offset: 0,
            },
        );
        s.add_complex(
            nodes[9],
            Complex::Offset {
                dst: nodes[21],
                offset: 1,
            },
        );
        s.add_pointee(nodes[22], crate::model::pointee_of_func(FuncId::new(4)));
        s.add_complex(nodes[22], Complex::CallTarget { site_key: 7 });
    }

    fn soup_registry() -> ObjRegistry {
        let mut reg = empty_registry();
        reg.intern(AbsObj::Global(GlobalId::new(9)), 2); // cells 0,1
        reg.intern(
            AbsObj::Heap {
                site: InstId::new(1),
                ctx: 0,
            },
            1,
        ); // cell 2
        reg
    }

    #[test]
    fn sharded_solve_matches_serial_at_every_width() {
        let reg = soup_registry();
        let mut serial = Solver::default();
        build_soup(&mut serial);
        let mut found_serial = serial.solve(&reg, 100_000).unwrap();
        found_serial.sort_unstable();
        found_serial.dedup();
        for threads in [1, 2, 4, 8] {
            let mut sharded = Solver::default();
            build_soup(&mut sharded);
            let mut found = sharded
                .solve_sharded(&reg, 100_000, Pool::new(threads))
                .unwrap();
            found.sort_unstable();
            found.dedup();
            assert_eq!(found, found_serial, "discoveries diverge at {threads}");
            for n in 0..24 {
                assert_eq!(
                    sharded.pts(n),
                    serial.pts(n),
                    "pts({n}) diverges at {threads} threads"
                );
            }
            assert!(sharded.shard_rounds > 0);
        }
    }

    #[test]
    fn sharded_iteration_counts_are_width_invariant() {
        let reg = soup_registry();
        let mut baseline = None;
        for threads in [1, 2, 4, 8] {
            let mut s = Solver::default();
            build_soup(&mut s);
            s.solve_sharded(&reg, 100_000, Pool::new(threads)).unwrap();
            let key = (s.iterations, s.worklist_pops, s.shard_rounds);
            match baseline {
                None => baseline = Some(key),
                Some(b) => assert_eq!(key, b, "counters diverge at {threads} threads"),
            }
        }
    }

    #[test]
    fn sharded_budget_exhaustion_is_width_invariant() {
        let reg = empty_registry();
        for threads in [1, 2, 4, 8] {
            let mut s = Solver::default();
            let nodes: Vec<u32> = (0..100).map(|_| s.add_node()).collect();
            for w in nodes.windows(2) {
                s.add_copy(w[0], w[1]);
            }
            s.add_pointee(nodes[0], pointee_of_cell(0));
            assert!(
                s.solve_sharded(&reg, 5, Pool::new(threads)).is_err(),
                "budget must exhaust at {threads} threads too"
            );
        }
    }

    #[test]
    fn solve_tuned_routes_by_problem_size() {
        let reg = empty_registry();
        let mut small = Solver::default();
        let a = small.add_node();
        let b = small.add_node();
        small.add_copy(a, b);
        small.add_pointee(a, pointee_of_cell(0));
        small.solve_tuned(&reg, 1_000, Pool::new(4), 1_000).unwrap();
        assert_eq!((small.serial_solves, small.sharded_solves), (1, 0));
        assert!(small.pts(b).contains(pointee_of_cell(0)));

        let mut big = Solver::default();
        let a = big.add_node();
        let b = big.add_node();
        big.add_copy(a, b);
        big.add_pointee(a, pointee_of_cell(0));
        big.solve_tuned(&reg, 1_000, Pool::new(4), 0).unwrap();
        assert_eq!((big.serial_solves, big.sharded_solves), (0, 1));
        assert!(big.pts(b).contains(pointee_of_cell(0)));
    }
}
