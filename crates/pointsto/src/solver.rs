//! The inclusion-constraint solver.
//!
//! A classic Andersen worklist solver with difference propagation: every
//! node carries its full points-to set plus a pending delta; copy edges
//! propagate deltas; *complex* constraints (loads, stores, `gep` offsets,
//! indirect-call targets) are interpreted against each delta, possibly
//! growing the graph. Newly discovered indirect-call targets are returned to
//! the caller (the analysis builder), which wires argument/return edges —
//! and in context-sensitive mode may clone new contexts — before resuming.

use std::collections::HashSet;

use oha_dataflow::BitSet;
use oha_ir::FuncId;

use crate::analysis::Exhausted;
use crate::model::{pointee_as_cell, pointee_as_func, pointee_of_cell, ObjRegistry};

/// A complex (non-copy) constraint attached to a node.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Complex {
    /// `dst ⊇ *(self + offset)` — a load through this pointer.
    Load { dst: u32, offset: u32 },
    /// `*(self + offset) ⊇ src` — a store through this pointer.
    Store { src: u32, offset: u32 },
    /// `dst ⊇ {(o, f+offset) | (o, f) ∈ self}` — a `gep`.
    Offset { dst: u32, offset: u32 },
    /// This node is the target operand of the indirect call instance
    /// `site_key`; every function pointee discovered is reported to the
    /// builder.
    CallTarget { site_key: u32 },
}

#[derive(Debug, Default)]
pub(crate) struct Solver {
    pts: Vec<BitSet>,
    delta: Vec<BitSet>,
    copy_succs: Vec<Vec<u32>>,
    complex: Vec<Vec<Complex>>,
    edge_set: HashSet<(u32, u32)>,
    /// Solver node per registry cell (created lazily).
    cell_nodes: Vec<u32>,
    worklist: Vec<u32>,
    queued: Vec<bool>,
    /// Union-find parents: two-node copy cycles (`a → b` and `b → a`) are
    /// unified online, since both nodes provably reach the same fixpoint
    /// set. Every public entry point normalizes through [`Solver::find`].
    repr: Vec<u32>,
    pub(crate) iterations: u64,
    pub(crate) cycle_collapses: u64,
}

impl Solver {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn num_nodes(&self) -> usize {
        self.pts.len()
    }

    pub(crate) fn num_copy_edges(&self) -> usize {
        self.edge_set.len()
    }

    pub(crate) fn add_node(&mut self) -> u32 {
        let id = self.pts.len() as u32;
        self.pts.push(BitSet::new());
        self.delta.push(BitSet::new());
        self.copy_succs.push(Vec::new());
        self.complex.push(Vec::new());
        self.queued.push(false);
        self.repr.push(id);
        id
    }

    /// The representative of `n`'s union-find class, with path compression.
    fn find(&mut self, mut n: u32) -> u32 {
        while self.repr[n as usize] != n {
            let parent = self.repr[n as usize];
            self.repr[n as usize] = self.repr[parent as usize];
            n = self.repr[n as usize];
        }
        n
    }

    /// Merges `loser` into `winner` after a two-node copy cycle was found.
    /// Re-adding the loser's pointees, constraints and out-edges through the
    /// public entry points reschedules whatever propagation is still owed.
    fn unify(&mut self, winner: u32, loser: u32) {
        self.cycle_collapses += 1;
        self.repr[loser as usize] = winner;
        self.delta[loser as usize] = BitSet::new();
        let pts = std::mem::take(&mut self.pts[loser as usize]);
        for p in pts.iter() {
            self.add_pointee(winner, p);
        }
        let complexes = std::mem::take(&mut self.complex[loser as usize]);
        for c in complexes {
            self.add_complex(winner, c);
        }
        let succs = std::mem::take(&mut self.copy_succs[loser as usize]);
        for s in succs {
            self.add_copy(winner, s);
        }
    }

    /// The solver node standing for a memory cell, created on first use.
    pub(crate) fn cell_node(&mut self, cell: u32) -> u32 {
        while self.cell_nodes.len() <= cell as usize {
            self.cell_nodes.push(u32::MAX);
        }
        if self.cell_nodes[cell as usize] == u32::MAX {
            let n = self.add_node();
            self.cell_nodes[cell as usize] = n;
        }
        self.cell_nodes[cell as usize]
    }

    fn enqueue(&mut self, node: u32) {
        if !self.queued[node as usize] {
            self.queued[node as usize] = true;
            self.worklist.push(node);
        }
    }

    /// Adds a pointee to a node's set, scheduling propagation if new.
    pub(crate) fn add_pointee(&mut self, node: u32, pointee: usize) {
        let node = self.find(node);
        if self.pts[node as usize].insert(pointee) {
            self.delta[node as usize].insert(pointee);
            self.enqueue(node);
        }
    }

    /// Adds the copy edge `from → to` and propagates `from`'s current set.
    /// If the reverse edge already exists the two nodes form a cycle and are
    /// unified instead.
    pub(crate) fn add_copy(&mut self, from: u32, to: u32) {
        let from = self.find(from);
        let to = self.find(to);
        if from == to || !self.edge_set.insert((from, to)) {
            return;
        }
        if self.edge_set.contains(&(to, from)) {
            self.unify(from, to);
            return;
        }
        self.copy_succs[from as usize].push(to);
        // Propagate everything already known at `from`.
        let pending: Vec<usize> = self.pts[from as usize].iter().collect();
        for p in pending {
            self.add_pointee(to, p);
        }
    }

    pub(crate) fn add_complex(&mut self, node: u32, c: Complex) {
        let node = self.find(node);
        self.complex[node as usize].push(c);
        // Interpret the constraint against everything already known.
        if !self.pts[node as usize].is_empty() {
            self.delta[node as usize].union_with(&self.pts[node as usize].clone());
            self.enqueue(node);
        }
    }

    pub(crate) fn pts(&self, node: u32) -> &BitSet {
        let mut n = node;
        while self.repr[n as usize] != n {
            n = self.repr[n as usize];
        }
        &self.pts[n as usize]
    }

    /// Runs to quiescence; returns newly discovered `(site_key, func)`
    /// indirect-call resolutions (deduplicated across calls by the caller's
    /// wiring state).
    ///
    /// # Errors
    ///
    /// Returns [`Exhausted`] if the iteration budget is exceeded.
    pub(crate) fn solve(
        &mut self,
        registry: &ObjRegistry,
        budget: u64,
    ) -> Result<Vec<(u32, FuncId)>, Exhausted> {
        let mut discovered = Vec::new();
        while let Some(node) = self.worklist.pop() {
            self.queued[node as usize] = false;
            self.iterations += 1;
            if self.iterations > budget {
                return Err(Exhausted {
                    reason: format!("solver exceeded {budget} iterations"),
                });
            }
            let delta = std::mem::take(&mut self.delta[node as usize]);
            if delta.is_empty() {
                continue;
            }

            // Copy edges.
            let succs = self.copy_succs[node as usize].clone();
            for s in succs {
                for p in delta.iter() {
                    self.add_pointee(s, p);
                }
            }

            // Complex constraints.
            let complexes = self.complex[node as usize].clone();
            for c in complexes {
                match c {
                    Complex::Load { dst, offset } => {
                        for p in delta.iter() {
                            if let Some(cell) = pointee_as_cell(p) {
                                if let Some(shifted) = registry.cell_offset(cell, offset) {
                                    let cn = self.cell_node(shifted);
                                    self.add_copy(cn, dst);
                                }
                            }
                        }
                    }
                    Complex::Store { src, offset } => {
                        for p in delta.iter() {
                            if let Some(cell) = pointee_as_cell(p) {
                                if let Some(shifted) = registry.cell_offset(cell, offset) {
                                    let cn = self.cell_node(shifted);
                                    self.add_copy(src, cn);
                                }
                            }
                        }
                    }
                    Complex::Offset { dst, offset } => {
                        for p in delta.iter() {
                            if let Some(cell) = pointee_as_cell(p) {
                                if let Some(shifted) = registry.cell_offset(cell, offset) {
                                    self.add_pointee(dst, pointee_of_cell(shifted));
                                }
                            }
                        }
                    }
                    Complex::CallTarget { site_key } => {
                        for p in delta.iter() {
                            if let Some(f) = pointee_as_func(p) {
                                discovered.push((site_key, f));
                            }
                        }
                    }
                }
            }
        }
        Ok(discovered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::AbsObj;
    use oha_ir::{GlobalId, InstId, ProgramBuilder};

    fn empty_registry() -> ObjRegistry {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0);
        f.ret(None);
        let main = pb.finish_function(f);
        ObjRegistry::new(&pb.finish(main).unwrap())
    }

    #[test]
    fn copy_edges_propagate() {
        let reg = empty_registry();
        let mut s = Solver::new();
        let a = s.add_node();
        let b = s.add_node();
        let c = s.add_node();
        s.add_pointee(a, pointee_of_cell(0));
        s.add_copy(a, b);
        s.add_copy(b, c);
        s.solve(&reg, 1_000).unwrap();
        assert!(s.pts(c).contains(pointee_of_cell(0)));
    }

    #[test]
    fn load_store_flow_through_cells() {
        // p -> cell0 ; store: *p = q ; load: r = *p  ⇒ pts(r) ⊇ pts(q)
        let mut reg = empty_registry();
        reg.intern(AbsObj::Global(GlobalId::new(9)), 1); // cell 0
        reg.intern(
            AbsObj::Heap {
                site: InstId::new(1),
                ctx: 0,
            },
            1,
        ); // cell 1
        let mut s = Solver::new();
        let p = s.add_node();
        let q = s.add_node();
        let r = s.add_node();
        s.add_pointee(p, pointee_of_cell(0));
        s.add_pointee(q, pointee_of_cell(1));
        s.add_complex(p, Complex::Store { src: q, offset: 0 });
        s.add_complex(p, Complex::Load { dst: r, offset: 0 });
        s.solve(&reg, 1_000).unwrap();
        assert!(s.pts(r).contains(pointee_of_cell(1)));
    }

    #[test]
    fn offsets_respect_object_bounds() {
        let mut reg = empty_registry();
        reg.intern(AbsObj::Global(GlobalId::new(9)), 2); // cells 0,1
        let mut s = Solver::new();
        let p = s.add_node();
        let q1 = s.add_node();
        let q9 = s.add_node();
        s.add_pointee(p, pointee_of_cell(0));
        s.add_complex(p, Complex::Offset { dst: q1, offset: 1 });
        s.add_complex(p, Complex::Offset { dst: q9, offset: 9 });
        s.solve(&reg, 1_000).unwrap();
        assert!(s.pts(q1).contains(pointee_of_cell(1)));
        assert!(s.pts(q9).is_empty(), "out-of-object offsets are dropped");
    }

    #[test]
    fn call_targets_reported_once() {
        let reg = empty_registry();
        let mut s = Solver::new();
        let t = s.add_node();
        s.add_complex(t, Complex::CallTarget { site_key: 3 });
        s.add_pointee(t, crate::model::pointee_of_func(oha_ir::FuncId::new(2)));
        let found = s.solve(&reg, 1_000).unwrap();
        assert_eq!(found, vec![(3, oha_ir::FuncId::new(2))]);
        let found = s.solve(&reg, 1_000).unwrap();
        assert!(found.is_empty(), "no rediscovery without new pointees");
    }

    #[test]
    fn two_node_cycles_collapse() {
        let reg = empty_registry();
        let mut s = Solver::new();
        let a = s.add_node();
        let b = s.add_node();
        let c = s.add_node();
        s.add_copy(a, b);
        s.add_copy(b, a); // forms a two-node cycle: unified on the spot
        s.add_copy(b, c);
        s.add_pointee(a, pointee_of_cell(0));
        s.solve(&reg, 1_000).unwrap();
        assert_eq!(s.cycle_collapses, 1);
        assert!(s.pts(a).contains(pointee_of_cell(0)));
        assert!(s.pts(b).contains(pointee_of_cell(0)));
        assert!(
            s.pts(c).contains(pointee_of_cell(0)),
            "flows out of the cycle"
        );
    }

    #[test]
    fn budget_exhaustion_errors() {
        let reg = empty_registry();
        let mut s = Solver::new();
        let nodes: Vec<u32> = (0..100).map(|_| s.add_node()).collect();
        for w in nodes.windows(2) {
            s.add_copy(w[0], w[1]);
        }
        s.add_pointee(nodes[0], pointee_of_cell(0));
        assert!(s.solve(&reg, 5).is_err());
    }
}
