//! The dense micro-graph solver.
//!
//! Third production engine beside the worklist [`crate::solver::Solver`]
//! and its sharded loop, selected upfront by [`crate::analyze`] for
//! programs below the dense-engine cutoff (see
//! [`crate::analysis::DENSE_CUTOFF_DEFAULT`]). On micro constraint
//! graphs the worklist machinery loses before solving starts: every
//! `add_copy` pays a binary search plus an eager word union, every
//! `add_pointee` stages a delta and a queue entry, and six per-node
//! parallel vectors are allocated, grown and dropped — all to avoid
//! re-propagation that a graph of a few hundred constraints never
//! amortizes. This engine keeps construction as cheap as the naive
//! [`crate::reference::ReferenceSolver`] — push a constraint, nothing
//! else — and solves with full passes whose inner loop is one
//! word-parallel [`BitSet::union_with`] per edge instead of the
//! reference's clone-and-insert per bit. Same pass structure, strictly
//! less work per pass: the measured floor against the reference engine
//! on micro workloads is what `scripts/bench_static.sh` guards.
//!
//! Entirely serial and chosen by a pure function of the input program,
//! so results and counters cannot vary with `OHA_THREADS`. The least
//! solution of an inclusion constraint system is unique, so the fixpoint
//! is bit-identical to both other engines'.

use std::collections::HashSet;

use oha_dataflow::BitSet;
use oha_ir::FuncId;

use crate::analysis::Exhausted;
use crate::model::{pointee_as_cell, pointee_as_func, pointee_of_cell, ObjRegistry};
use crate::solver::{Complex, ConstraintSolver, SolverStats};

#[derive(Debug, Default)]
pub(crate) struct DenseSolver {
    pts: Vec<BitSet>,
    /// Copy edges in insertion order, deduplicated by linear scan —
    /// cheaper than any index at the graph sizes this engine accepts.
    copies: Vec<(u32, u32)>,
    complex: Vec<(u32, Complex)>,
    /// Solver node per registry cell (created lazily).
    cell_nodes: Vec<u32>,
    /// `(site_key, func)` resolutions already returned to the builder.
    /// Full-set reinterpretation would re-report every resolution each
    /// pass; the gate keeps the builder's solve/wire loop convergent.
    reported: HashSet<(u32, u32)>,
    iterations: u64,
    words_unioned: u64,
    serial_solves: u64,
}

impl DenseSolver {
    fn cell_node(&mut self, cell: u32) -> u32 {
        while self.cell_nodes.len() <= cell as usize {
            self.cell_nodes.push(u32::MAX);
        }
        if self.cell_nodes[cell as usize] == u32::MAX {
            let n = self.add_node();
            self.cell_nodes[cell as usize] = n;
        }
        self.cell_nodes[cell as usize]
    }

    fn add_edge(&mut self, from: u32, to: u32) -> bool {
        if from == to || self.copies.contains(&(from, to)) {
            return false;
        }
        self.copies.push((from, to));
        true
    }
}

impl ConstraintSolver for DenseSolver {
    fn add_node(&mut self) -> u32 {
        let id = self.pts.len() as u32;
        self.pts.push(BitSet::new());
        id
    }

    fn add_pointee(&mut self, node: u32, pointee: usize) {
        if self.pts[node as usize].insert(pointee) {
            self.words_unioned += 1;
        }
    }

    fn add_copy(&mut self, from: u32, to: u32) {
        self.add_edge(from, to);
    }

    fn add_complex(&mut self, node: u32, c: Complex) {
        self.complex.push((node, c));
    }

    fn pts(&self, node: u32) -> &BitSet {
        &self.pts[node as usize]
    }

    fn num_nodes(&self) -> usize {
        self.pts.len()
    }

    fn num_copy_edges(&self) -> usize {
        self.copies.len()
    }

    fn solve(
        &mut self,
        registry: &ObjRegistry,
        budget: u64,
    ) -> Result<Vec<(u32, FuncId)>, Exhausted> {
        self.serial_solves += 1;
        let mut found: Vec<(u32, FuncId)> = Vec::new();
        // Reusable buffer for per-node set snapshots in the complex pass:
        // interpretation may grow `pts`, which would invalidate a borrow.
        let mut snapshot = BitSet::new();
        loop {
            let mut changed = false;
            // The budget is a runaway guard, not a precise meter: checking
            // once per pass keeps the per-edge loop branch-free.
            self.iterations += (self.copies.len() + self.complex.len()) as u64;
            if self.iterations > budget {
                return Err(Exhausted {
                    reason: format!("dense solver exceeded {budget} iterations"),
                });
            }
            // Copy pass: one word-parallel union per edge. `add_edge`
            // rejects self-loops, so take-and-restore of the source set
            // is safe.
            for i in 0..self.copies.len() {
                let (from, to) = self.copies[i];
                if self.pts[from as usize].is_empty() {
                    continue;
                }
                let src = std::mem::take(&mut self.pts[from as usize]);
                self.words_unioned += (src.capacity() / 64) as u64;
                changed |= self.pts[to as usize].union_with(&src);
                self.pts[from as usize] = src;
            }
            // Complex pass, against full-set snapshots. New edges wait
            // for the next pass (flagged through `changed`), exactly
            // like the reference engine.
            for i in 0..self.complex.len() {
                let (node, c) = self.complex[i];
                if self.pts[node as usize].is_empty() {
                    continue;
                }
                snapshot.clone_from(&self.pts[node as usize]);
                match c {
                    Complex::Load { dst, offset } => {
                        for p in snapshot.iter() {
                            if let Some(cell) = pointee_as_cell(p) {
                                if let Some(shifted) = registry.cell_offset(cell, offset) {
                                    let cn = self.cell_node(shifted);
                                    changed |= self.add_edge(cn, dst);
                                }
                            }
                        }
                    }
                    Complex::Store { src, offset } => {
                        for p in snapshot.iter() {
                            if let Some(cell) = pointee_as_cell(p) {
                                if let Some(shifted) = registry.cell_offset(cell, offset) {
                                    let cn = self.cell_node(shifted);
                                    changed |= self.add_edge(src, cn);
                                }
                            }
                        }
                    }
                    Complex::Offset { dst, offset } => {
                        for p in snapshot.iter() {
                            if let Some(cell) = pointee_as_cell(p) {
                                if let Some(shifted) = registry.cell_offset(cell, offset) {
                                    if self.pts[dst as usize].insert(pointee_of_cell(shifted)) {
                                        self.words_unioned += 1;
                                        changed = true;
                                    }
                                }
                            }
                        }
                    }
                    Complex::CallTarget { site_key } => {
                        for p in snapshot.iter() {
                            if let Some(f) = pointee_as_func(p) {
                                if self.reported.insert((site_key, f.raw())) {
                                    found.push((site_key, f));
                                    changed = true;
                                }
                            }
                        }
                    }
                }
            }
            if !changed {
                return Ok(found);
            }
        }
    }

    fn stats(&self) -> SolverStats {
        SolverStats {
            iterations: self.iterations,
            words_unioned: self.words_unioned,
            // Constraint applications are this engine's unit of work —
            // the closest analogue of a worklist pop.
            worklist_pops: self.iterations,
            serial_solves: self.serial_solves,
            ..SolverStats::default()
        }
    }
}
