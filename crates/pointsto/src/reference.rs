//! A deliberately naive inclusion-constraint solver.
//!
//! No worklist, no difference propagation, no cycle collapse: every pass
//! re-applies every constraint against every node's *full* points-to set,
//! bit by bit, until nothing changes. This is the textbook O(V·E)
//! fixpoint — trivially auditable, and the least solution of an inclusion
//! constraint system is unique, so the optimized [`crate::solver::Solver`]
//! must compute exactly the same sets. The equivalence property test and
//! the `bench_static` speedup measurement both lean on that.

use std::collections::HashSet;

use oha_dataflow::BitSet;
use oha_ir::FuncId;

use crate::analysis::Exhausted;
use crate::model::{pointee_as_cell, pointee_as_func, pointee_of_cell, ObjRegistry};
use crate::solver::{Complex, ConstraintSolver, SolverStats};

#[derive(Debug, Default)]
pub(crate) struct ReferenceSolver {
    pts: Vec<BitSet>,
    copies: Vec<(u32, u32)>,
    complex: Vec<(u32, Complex)>,
    cell_nodes: Vec<u32>,
    /// `(site_key, func)` pairs already returned to the builder, so repeat
    /// `solve` calls only report genuinely new resolutions (matching the
    /// optimized solver's delta-driven behaviour).
    reported: HashSet<(u32, u32)>,
    iterations: u64,
}

impl ReferenceSolver {
    fn cell_node(&mut self, cell: u32) -> u32 {
        while self.cell_nodes.len() <= cell as usize {
            self.cell_nodes.push(u32::MAX);
        }
        if self.cell_nodes[cell as usize] == u32::MAX {
            let n = self.add_node();
            self.cell_nodes[cell as usize] = n;
        }
        self.cell_nodes[cell as usize]
    }

    fn add_edge(&mut self, from: u32, to: u32) -> bool {
        if from == to || self.copies.contains(&(from, to)) {
            return false;
        }
        self.copies.push((from, to));
        true
    }
}

impl ConstraintSolver for ReferenceSolver {
    fn add_node(&mut self) -> u32 {
        let id = self.pts.len() as u32;
        self.pts.push(BitSet::new());
        id
    }

    fn add_pointee(&mut self, node: u32, pointee: usize) {
        self.pts[node as usize].insert(pointee);
    }

    fn add_copy(&mut self, from: u32, to: u32) {
        self.add_edge(from, to);
    }

    fn add_complex(&mut self, node: u32, c: Complex) {
        self.complex.push((node, c));
    }

    fn pts(&self, node: u32) -> &BitSet {
        &self.pts[node as usize]
    }

    fn num_nodes(&self) -> usize {
        self.pts.len()
    }

    fn num_copy_edges(&self) -> usize {
        self.copies.len()
    }

    fn solve(
        &mut self,
        registry: &ObjRegistry,
        budget: u64,
    ) -> Result<Vec<(u32, FuncId)>, Exhausted> {
        let mut found: Vec<(u32, FuncId)> = Vec::new();
        loop {
            let mut changed = false;
            // Copy edges: per-bit insertion of the source's full set.
            for i in 0..self.copies.len() {
                let (from, to) = self.copies[i];
                self.iterations += 1;
                if self.iterations > budget {
                    return Err(Exhausted {
                        reason: format!("reference solver exceeded {budget} iterations"),
                    });
                }
                for p in self.pts[from as usize].clone().iter() {
                    changed |= self.pts[to as usize].insert(p);
                }
            }
            // Complex constraints, interpreted against full sets.
            for i in 0..self.complex.len() {
                let (node, c) = self.complex[i];
                let pointees: Vec<usize> = self.pts[node as usize].iter().collect();
                match c {
                    Complex::Load { dst, offset } => {
                        for p in pointees {
                            if let Some(cell) = pointee_as_cell(p) {
                                if let Some(shifted) = registry.cell_offset(cell, offset) {
                                    let cn = self.cell_node(shifted);
                                    changed |= self.add_edge(cn, dst);
                                }
                            }
                        }
                    }
                    Complex::Store { src, offset } => {
                        for p in pointees {
                            if let Some(cell) = pointee_as_cell(p) {
                                if let Some(shifted) = registry.cell_offset(cell, offset) {
                                    let cn = self.cell_node(shifted);
                                    changed |= self.add_edge(src, cn);
                                }
                            }
                        }
                    }
                    Complex::Offset { dst, offset } => {
                        for p in pointees {
                            if let Some(cell) = pointee_as_cell(p) {
                                if let Some(shifted) = registry.cell_offset(cell, offset) {
                                    changed |=
                                        self.pts[dst as usize].insert(pointee_of_cell(shifted));
                                }
                            }
                        }
                    }
                    Complex::CallTarget { site_key } => {
                        for p in pointees {
                            if let Some(f) = pointee_as_func(p) {
                                if self.reported.insert((site_key, f.raw())) {
                                    found.push((site_key, f));
                                    changed = true;
                                }
                            }
                        }
                    }
                }
            }
            if !changed {
                return Ok(found);
            }
        }
    }

    fn stats(&self) -> SolverStats {
        SolverStats {
            iterations: self.iterations,
            ..SolverStats::default()
        }
    }
}
