//! Abstract objects, cells and the pointee encoding.

use std::collections::HashMap;

use oha_ir::{FuncId, GlobalId, InstId, Program};

/// An abstract object the analysis reasons about.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AbsObj {
    /// A global object.
    Global(GlobalId),
    /// A heap object named by its allocation site and (in the
    /// context-sensitive variant) the allocating context.
    Heap {
        /// The `alloc` instruction.
        site: InstId,
        /// The allocating context (`0` in context-insensitive mode).
        ctx: u32,
    },
}

/// Registry of abstract objects and their cells.
///
/// A *cell* is one field of one abstract object; cells are numbered densely
/// in creation order. Pointee ids interleave cells and functions:
/// `2 * cell` for cells, `2 * func + 1` for function pointees, so both
/// spaces can grow during solving.
#[derive(Clone, Debug, Default)]
pub struct ObjRegistry {
    /// (first cell id, number of fields) per object, in creation order.
    objects: Vec<(u32, u32, AbsObj)>,
    by_key: HashMap<AbsObj, u32>,
    next_cell: u32,
    /// Map from cell id back to its object index (dense).
    cell_owner: Vec<u32>,
}

impl ObjRegistry {
    /// Creates a registry with all of `program`'s globals materialized.
    pub fn new(program: &Program) -> Self {
        let mut reg = Self::default();
        for gid in program.global_ids() {
            reg.intern(AbsObj::Global(gid), program.global(gid).fields.max(1));
        }
        reg
    }

    /// Interns an abstract object with `fields` cells, returning its object
    /// index.
    pub fn intern(&mut self, obj: AbsObj, fields: u32) -> u32 {
        if let Some(&idx) = self.by_key.get(&obj) {
            return idx;
        }
        let idx = self.objects.len() as u32;
        let fields = fields.max(1);
        self.objects.push((self.next_cell, fields, obj));
        self.by_key.insert(obj, idx);
        for _ in 0..fields {
            self.cell_owner.push(idx);
        }
        self.next_cell += fields;
        idx
    }

    /// The cell id of `(obj_index, field)`, or `None` if out of range.
    pub fn cell(&self, obj_index: u32, field: u32) -> Option<u32> {
        let (base, fields, _) = self.objects[obj_index as usize];
        (field < fields).then_some(base + field)
    }

    /// Resolves a cell id to `(object, field)`.
    ///
    /// # Panics
    ///
    /// Panics if `cell` was never allocated.
    pub fn cell_info(&self, cell: u32) -> (AbsObj, u32) {
        let owner = self.cell_owner[cell as usize];
        let (base, _, obj) = self.objects[owner as usize];
        (obj, cell - base)
    }

    /// The object index owning `cell`.
    pub fn cell_object(&self, cell: u32) -> u32 {
        self.cell_owner[cell as usize]
    }

    /// Shifts a cell id by `offset` fields within its object, or `None` if
    /// that would escape the object.
    pub fn cell_offset(&self, cell: u32, offset: u32) -> Option<u32> {
        if offset == 0 {
            return Some(cell);
        }
        let owner = self.cell_owner[cell as usize];
        let (base, fields, _) = self.objects[owner as usize];
        let field = cell - base + offset;
        (field < fields).then_some(base + field)
    }

    /// The interned objects in creation order, each with its field count.
    /// Re-interning them in this order into a fresh registry reproduces
    /// identical cell numbering — the property `oha-store` relies on to
    /// rehydrate a cached analysis.
    pub fn objects(&self) -> impl Iterator<Item = (AbsObj, u32)> + '_ {
        self.objects.iter().map(|&(_, fields, obj)| (obj, fields))
    }

    /// Number of cells allocated so far.
    pub fn num_cells(&self) -> u32 {
        self.next_cell
    }

    /// Number of objects allocated so far.
    pub fn num_objects(&self) -> usize {
        self.objects.len()
    }
}

/// Pointee-id helpers (even = cell, odd = function).
pub(crate) fn pointee_of_cell(cell: u32) -> usize {
    (cell as usize) * 2
}

pub(crate) fn pointee_of_func(func: FuncId) -> usize {
    (func.index() * 2) + 1
}

pub(crate) fn pointee_as_cell(pointee: usize) -> Option<u32> {
    pointee.is_multiple_of(2).then_some((pointee / 2) as u32)
}

pub(crate) fn pointee_as_func(pointee: usize) -> Option<FuncId> {
    (pointee % 2 == 1).then_some(FuncId::new((pointee / 2) as u32))
}

#[cfg(test)]
mod tests {
    use super::*;
    use oha_ir::ProgramBuilder;

    #[test]
    fn registry_interns_and_offsets() {
        let mut pb = ProgramBuilder::new();
        pb.global("g", 3);
        let mut f = pb.function("main", 0);
        f.ret(None);
        let main = pb.finish_function(f);
        let p = pb.finish(main).unwrap();

        let mut reg = ObjRegistry::new(&p);
        assert_eq!(reg.num_objects(), 1);
        assert_eq!(reg.num_cells(), 3);
        let g = 0;
        assert_eq!(reg.cell(g, 0), Some(0));
        assert_eq!(reg.cell(g, 2), Some(2));
        assert_eq!(reg.cell(g, 3), None);
        assert_eq!(reg.cell_offset(0, 2), Some(2));
        assert_eq!(reg.cell_offset(1, 2), None);

        let h = reg.intern(
            AbsObj::Heap {
                site: oha_ir::InstId::new(5),
                ctx: 0,
            },
            2,
        );
        assert_eq!(reg.cell(h, 0), Some(3));
        assert_eq!(
            reg.cell_info(4),
            (
                AbsObj::Heap {
                    site: oha_ir::InstId::new(5),
                    ctx: 0
                },
                1
            )
        );
        // Re-interning returns the same index.
        assert_eq!(
            reg.intern(
                AbsObj::Heap {
                    site: oha_ir::InstId::new(5),
                    ctx: 0
                },
                2
            ),
            h
        );
    }

    #[test]
    fn pointee_encoding_round_trips() {
        assert_eq!(pointee_as_cell(pointee_of_cell(7)), Some(7));
        assert_eq!(pointee_as_func(pointee_of_cell(7)), None);
        let f = FuncId::new(3);
        assert_eq!(pointee_as_func(pointee_of_func(f)), Some(f));
        assert_eq!(pointee_as_cell(pointee_of_func(f)), None);
    }

    #[test]
    fn zero_field_objects_get_one_cell() {
        let mut pb = ProgramBuilder::new();
        pb.global("empty", 0);
        let mut f = pb.function("main", 0);
        f.ret(None);
        let main = pb.finish_function(f);
        let p = pb.finish(main).unwrap();
        let reg = ObjRegistry::new(&p);
        assert_eq!(reg.num_cells(), 1, "padded so locks on it still work");
    }
}
