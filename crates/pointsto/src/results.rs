//! Points-to analysis results and derived statistics.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use oha_dataflow::BitSet;
use oha_ir::{FuncId, InstId};

use crate::model::ObjRegistry;

/// Size statistics of a solved analysis (reported in Table 2-style
/// summaries and used to compare sound vs. predicated state-space size).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PtStats {
    /// Solver nodes created.
    pub nodes: usize,
    /// Contexts materialized (1 for context-insensitive runs).
    pub contexts: usize,
    /// The context clone budget the run was configured with (the
    /// denominator of `contexts`' budget-consumption ratio).
    pub clone_budget: u32,
    /// Copy edges in the constraint graph.
    pub copy_edges: usize,
    /// Worklist iterations performed.
    pub solver_iterations: u64,
    /// Copy-cycle nodes unified during solving (each merged loser counts
    /// once, whether found by the two-node fast path or a Tarjan pass).
    pub cycle_collapses: u64,
    /// Multi-node strongly connected components collapsed by the periodic
    /// Tarjan pass.
    pub scc_collapses: u64,
    /// 64-bit words scanned by word-parallel set unions.
    pub words_unioned: u64,
    /// Worklist entries popped by the solver.
    pub worklist_pops: u64,
    /// Bulk-synchronous rounds executed by the sharded solve loop (0 when
    /// every solve ran serially).
    pub shard_rounds: u64,
    /// Nanoseconds spent serially merging shard change buffers.
    pub shard_merge_ns: u64,
    /// Solve calls routed to the lean serial path by the adaptive cutoff.
    pub serial_solves: u64,
    /// Solve calls routed to the sharded bulk-synchronous path.
    pub sharded_solves: u64,
    /// Memory cells tracked.
    pub num_cells: u32,
}

impl PtStats {
    /// Publishes the stats under `<prefix>.` in `registry` (see DESIGN.md
    /// "Observability" for the metric names).
    pub fn record(&self, registry: &oha_obs::MetricsRegistry, prefix: &str) {
        registry.add(
            &format!("{prefix}.solver_iterations"),
            self.solver_iterations,
        );
        registry.add(&format!("{prefix}.cycle_collapses"), self.cycle_collapses);
        registry.set_gauge(
            &format!("{prefix}.scc_collapses"),
            self.scc_collapses as f64,
        );
        registry.set_gauge(
            &format!("{prefix}.words_unioned"),
            self.words_unioned as f64,
        );
        registry.set_gauge(
            &format!("{prefix}.worklist_pops"),
            self.worklist_pops as f64,
        );
        // Sharded-solve telemetry: once per-prefix, and once under the
        // global `pt.` names aggregated across every analysis in the run.
        registry.set_gauge(&format!("{prefix}.shard.rounds"), self.shard_rounds as f64);
        registry.set_gauge(
            &format!("{prefix}.shard.merge_ns"),
            self.shard_merge_ns as f64,
        );
        registry.add("pt.shard.rounds", self.shard_rounds);
        // Merge time is wall clock, so it rides a histogram — counters
        // must stay bit-identical across `OHA_THREADS`.
        registry.observe("pt.shard.merge_ns", self.shard_merge_ns);
        registry.add("pt.solver.path.serial", self.serial_solves);
        registry.add("pt.solver.path.sharded", self.sharded_solves);
        registry.set_gauge(&format!("{prefix}.nodes"), self.nodes as f64);
        registry.set_gauge(&format!("{prefix}.contexts"), self.contexts as f64);
        registry.set_gauge(&format!("{prefix}.copy_edges"), self.copy_edges as f64);
        registry.set_gauge(&format!("{prefix}.cells"), f64::from(self.num_cells));
        if self.clone_budget > 0 {
            registry.set_gauge(
                &format!("{prefix}.context_budget_used"),
                self.contexts as f64 / f64::from(self.clone_budget),
            );
        }
    }
}

/// The result of a points-to analysis (see
/// [`analyze`](crate::analyze)).
#[derive(Clone, Debug)]
pub struct PointsTo {
    registry: ObjRegistry,
    loads: HashMap<InstId, BitSet>,
    stores: HashMap<InstId, BitSet>,
    locks: HashMap<InstId, BitSet>,
    /// Per-(access, context-hash) cells; see
    /// [`ctx_hash`](crate::ctx_hash).
    per_ctx: HashMap<(InstId, u64), BitSet>,
    callees: BTreeMap<InstId, BTreeSet<FuncId>>,
    stats: PtStats,
    empty: BitSet,
    empty_funcs: BTreeSet<FuncId>,
}

impl PointsTo {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        registry: ObjRegistry,
        loads: HashMap<InstId, BitSet>,
        stores: HashMap<InstId, BitSet>,
        locks: HashMap<InstId, BitSet>,
        per_ctx: HashMap<(InstId, u64), BitSet>,
        callees: BTreeMap<InstId, BTreeSet<FuncId>>,
        stats: PtStats,
    ) -> Self {
        Self {
            registry,
            loads,
            stores,
            locks,
            per_ctx,
            callees,
            stats,
            empty: BitSet::new(),
            empty_funcs: BTreeSet::new(),
        }
    }

    /// Reconstructs a `PointsTo` from its serialized parts — the
    /// rehydration entry point for `oha-store`'s artifact cache. The parts
    /// must come from [`PointsTo::load_entries`] and friends on an analysis
    /// of the *same* program; nothing is revalidated here.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        registry: ObjRegistry,
        loads: HashMap<InstId, BitSet>,
        stores: HashMap<InstId, BitSet>,
        locks: HashMap<InstId, BitSet>,
        per_ctx: HashMap<(InstId, u64), BitSet>,
        callees: BTreeMap<InstId, BTreeSet<FuncId>>,
        stats: PtStats,
    ) -> Self {
        Self::new(registry, loads, stores, locks, per_ctx, callees, stats)
    }

    /// The abstract-object registry backing the cell ids.
    pub fn registry(&self) -> &ObjRegistry {
        &self.registry
    }

    /// Every (load site, cells) entry — the serialization form of
    /// [`PointsTo::load_cells`].
    pub fn load_entries(&self) -> impl Iterator<Item = (InstId, &BitSet)> {
        self.loads.iter().map(|(&i, s)| (i, s))
    }

    /// Every (store site, cells) entry.
    pub fn store_entries(&self) -> impl Iterator<Item = (InstId, &BitSet)> {
        self.stores.iter().map(|(&i, s)| (i, s))
    }

    /// Every (lock site, cells) entry.
    pub fn lock_entries(&self) -> impl Iterator<Item = (InstId, &BitSet)> {
        self.locks.iter().map(|(&i, s)| (i, s))
    }

    /// Every per-(access, context-hash) entry (empty for the
    /// context-insensitive variant).
    pub fn ctx_entries(&self) -> impl Iterator<Item = ((InstId, u64), &BitSet)> {
        self.per_ctx.iter().map(|(&k, s)| (k, s))
    }

    /// The cells a load may read (empty for non-loads and unreachable
    /// code).
    pub fn load_cells(&self, inst: InstId) -> &BitSet {
        self.loads.get(&inst).unwrap_or(&self.empty)
    }

    /// The cells a store may write.
    pub fn store_cells(&self, inst: InstId) -> &BitSet {
        self.stores.get(&inst).unwrap_or(&self.empty)
    }

    /// The cells a memory access (load or store) may touch.
    pub fn access_cells(&self, inst: InstId) -> &BitSet {
        let l = self.load_cells(inst);
        if l.is_empty() {
            self.store_cells(inst)
        } else {
            l
        }
    }

    /// The cells an access may touch when executing in the context with
    /// the given [`ctx_hash`](crate::ctx_hash), or `None` if this analysis
    /// has no record for that context (e.g. a context-insensitive analysis
    /// asked about a specific chain) — callers fall back to the merged
    /// sets, which is always sound.
    pub fn access_cells_in(&self, inst: InstId, ctx: u64) -> Option<&BitSet> {
        self.per_ctx.get(&(inst, ctx))
    }

    /// The cells a lock/unlock site may use as its mutex.
    pub fn lock_cells(&self, inst: InstId) -> &BitSet {
        self.locks.get(&inst).unwrap_or(&self.empty)
    }

    /// Whether two memory accesses may touch the same cell.
    pub fn may_alias(&self, a: InstId, b: InstId) -> bool {
        self.access_cells(a).intersects(self.access_cells(b))
    }

    /// The possible targets of a call or spawn site (direct sites report
    /// their single target; predicated indirect sites report their likely
    /// callee set).
    pub fn callees(&self, site: InstId) -> &BTreeSet<FuncId> {
        self.callees.get(&site).unwrap_or(&self.empty_funcs)
    }

    /// All call sites with at least one resolved target.
    pub fn call_sites(&self) -> impl Iterator<Item = (InstId, &BTreeSet<FuncId>)> {
        self.callees.iter().map(|(&i, s)| (i, s))
    }

    /// Load sites known to the analysis.
    pub fn load_sites(&self) -> impl Iterator<Item = InstId> + '_ {
        self.loads.keys().copied()
    }

    /// Store sites known to the analysis.
    pub fn store_sites(&self) -> impl Iterator<Item = InstId> + '_ {
        self.stores.keys().copied()
    }

    /// Analysis size statistics.
    pub fn stats(&self) -> PtStats {
        self.stats
    }

    /// The probability that a random (load, store) pair may alias —
    /// Figure 9's metric. Returns 0 when there are no pairs.
    pub fn alias_rate(&self) -> f64 {
        self.alias_rate_filtered(|_| true)
    }

    /// [`PointsTo::alias_rate`] restricted to the load/store sites that are
    /// also live in `other` — the paper's fairness rule for comparing a
    /// sound analysis against a predicated one ("both … consider only the
    /// set of loads and stores present in the optimistic analysis", §6.3).
    pub fn alias_rate_over(&self, other: &PointsTo) -> f64 {
        self.alias_rate_filtered(|site| !other.access_cells(site).is_empty())
    }

    fn alias_rate_filtered(&self, keep: impl Fn(InstId) -> bool) -> f64 {
        let loads: Vec<&BitSet> = self
            .loads
            .iter()
            .filter(|(&i, _)| keep(i))
            .map(|(_, s)| s)
            .collect();
        let stores: Vec<&BitSet> = self
            .stores
            .iter()
            .filter(|(&i, _)| keep(i))
            .map(|(_, s)| s)
            .collect();
        let total = loads.len() as u64 * stores.len() as u64;
        if total == 0 {
            return 0.0;
        }
        let mut aliasing = 0u64;
        for l in &loads {
            for s in &stores {
                if l.intersects(s) {
                    aliasing += 1;
                }
            }
        }
        aliasing as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{analyze, PointsToConfig, Sensitivity};
    use oha_ir::{InstKind, Operand, Program, ProgramBuilder};
    use Operand::{Const, Reg as R};

    fn find(p: &Program, pred: impl Fn(&InstKind) -> bool) -> Vec<InstId> {
        p.inst_ids().filter(|&i| pred(&p.inst(i).kind)).collect()
    }

    #[test]
    fn distinct_allocations_do_not_alias() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0);
        let a = f.alloc(1);
        let b = f.alloc(1);
        f.store(R(a), 0, Const(1));
        f.store(R(b), 0, Const(2));
        let la = f.load(R(a), 0);
        f.output(R(la));
        f.ret(None);
        let main = pb.finish_function(f);
        let p = pb.finish(main).unwrap();
        let pt = analyze(&p, &PointsToConfig::default()).unwrap();

        let stores = find(&p, |k| matches!(k, InstKind::Store { .. }));
        let loads = find(&p, |k| matches!(k, InstKind::Load { .. }));
        assert!(pt.may_alias(stores[0], loads[0]), "same allocation");
        assert!(!pt.may_alias(stores[1], loads[0]), "different allocations");
    }

    #[test]
    fn field_sensitivity_separates_fields() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0);
        let o = f.alloc(2);
        f.store(R(o), 0, Const(1));
        f.store(R(o), 1, Const(2));
        let l0 = f.load(R(o), 0);
        f.output(R(l0));
        f.ret(None);
        let main = pb.finish_function(f);
        let p = pb.finish(main).unwrap();
        let pt = analyze(&p, &PointsToConfig::default()).unwrap();
        let stores = find(&p, |k| matches!(k, InstKind::Store { .. }));
        let loads = find(&p, |k| matches!(k, InstKind::Load { .. }));
        assert!(pt.may_alias(stores[0], loads[0]));
        assert!(!pt.may_alias(stores[1], loads[0]), "field 1 vs field 0");
    }

    #[test]
    fn flow_through_the_heap() {
        // box = alloc; *box = p (p -> obj); q = *box; store through q.
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0);
        let obj = f.alloc(1);
        let bx = f.alloc(1);
        f.store(R(bx), 0, R(obj));
        let q = f.load(R(bx), 0);
        f.store(R(q), 0, Const(7));
        let l = f.load(R(obj), 0);
        f.output(R(l));
        f.ret(None);
        let main = pb.finish_function(f);
        let p = pb.finish(main).unwrap();
        let pt = analyze(&p, &PointsToConfig::default()).unwrap();
        let stores = find(&p, |k| matches!(k, InstKind::Store { .. }));
        let loads = find(&p, |k| matches!(k, InstKind::Load { .. }));
        // store *q=7 aliases load of obj.
        assert!(pt.may_alias(stores[1], loads[1]));
    }

    /// The paper's Figure 3 example: a wrapper allocator called twice. A
    /// context-insensitive analysis merges the two calls (one heap object
    /// per site), so the two results alias; a context-sensitive analysis
    /// with heap cloning distinguishes them.
    fn my_malloc_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let my_malloc = pb.declare("my_malloc", 0);
        let mut m = pb.function("main", 0);
        let a = m.call(my_malloc, vec![]);
        let b = m.call(my_malloc, vec![]);
        m.store(R(a), 0, Const(1));
        let lb = m.load(R(b), 0);
        m.output(R(lb));
        m.ret(None);
        let main = pb.finish_function(m);
        let mut mm = pb.function("my_malloc", 0);
        let o = mm.alloc(1);
        mm.ret(Some(R(o)));
        pb.finish_function(mm);
        pb.finish(main).unwrap()
    }

    #[test]
    fn context_sensitivity_separates_figure3_allocations() {
        let p = my_malloc_program();
        let stores = find(&p, |k| matches!(k, InstKind::Store { .. }));
        let loads = find(&p, |k| matches!(k, InstKind::Load { .. }));

        let ci = analyze(&p, &PointsToConfig::default()).unwrap();
        assert!(
            ci.may_alias(stores[0], loads[0]),
            "CI merges the two my_malloc calls"
        );
        assert_eq!(ci.stats().contexts, 1);

        let cs = analyze(
            &p,
            &PointsToConfig {
                sensitivity: Sensitivity::ContextSensitive,
                ..PointsToConfig::default()
            },
        )
        .unwrap();
        assert!(
            !cs.may_alias(stores[0], loads[0]),
            "CS + heap cloning separates them"
        );
        assert!(cs.stats().contexts > 1);
    }

    #[test]
    fn recursion_reuses_clones() {
        let mut pb = ProgramBuilder::new();
        let rec = pb.declare("rec", 1);
        let mut m = pb.function("main", 0);
        let o = m.alloc(1);
        m.call_void(rec, vec![R(o)]);
        m.ret(None);
        let main = pb.finish_function(m);
        let mut r = pb.function("rec", 1);
        let p0 = r.param(0);
        let stop = r.block();
        let go = r.block();
        let c = r.input();
        r.branch(R(c), go, stop);
        r.select(go);
        r.store(R(p0), 0, Const(1));
        r.call_void(rec, vec![R(p0)]);
        r.ret(None);
        r.select(stop);
        r.ret(None);
        pb.finish_function(r);
        let p = pb.finish(main).unwrap();

        let cs = analyze(
            &p,
            &PointsToConfig {
                sensitivity: Sensitivity::ContextSensitive,
                clone_budget: 16,
                ..PointsToConfig::default()
            },
        )
        .unwrap();
        // main + one clone of rec; the recursive self-call reuses it.
        assert_eq!(cs.stats().contexts, 2);
        let stores = find(&p, |k| matches!(k, InstKind::Store { .. }));
        assert!(!cs.store_cells(stores[0]).is_empty());
    }

    #[test]
    fn indirect_calls_resolve_on_the_fly() {
        let mut pb = ProgramBuilder::new();
        let ret_a = pb.declare("ret_a", 0);
        let ret_b = pb.declare("ret_b", 0);
        let ga = pb.global("slot", 1);
        let mut m = pb.function("main", 0);
        let slot = m.addr_global(ga);
        let fp = m.addr_func(ret_a);
        m.store(R(slot), 0, R(fp));
        let loaded = m.load(R(slot), 0);
        let got = m.call_indirect(R(loaded), vec![]);
        m.store(R(got), 0, Const(5));
        m.ret(None);
        let main = pb.finish_function(m);
        for (name, _) in [("ret_a", 0), ("ret_b", 0)] {
            let mut f = pb.function(name, 0);
            let o = f.alloc(1);
            f.ret(Some(R(o)));
            pb.finish_function(f);
        }
        let p = pb.finish(main).unwrap();
        let pt = analyze(&p, &PointsToConfig::default()).unwrap();
        let icall = find(&p, |k| {
            matches!(
                k,
                InstKind::Call {
                    callee: oha_ir::Callee::Indirect(_),
                    ..
                }
            )
        })[0];
        let callees = pt.callees(icall);
        assert!(callees.contains(&ret_a), "reached through memory");
        assert!(!callees.contains(&ret_b), "never stored anywhere");
        // The store through the returned pointer hits ret_a's allocation.
        let stores = find(&p, |k| matches!(k, InstKind::Store { .. }));
        assert!(!pt.store_cells(stores[1]).is_empty());
    }

    #[test]
    fn alias_rate_bounds() {
        let p = my_malloc_program();
        let ci = analyze(&p, &PointsToConfig::default()).unwrap();
        let rate = ci.alias_rate();
        assert!((0.0..=1.0).contains(&rate));
        assert!(rate > 0.0);
        let cs = analyze(
            &p,
            &PointsToConfig {
                sensitivity: Sensitivity::ContextSensitive,
                ..PointsToConfig::default()
            },
        )
        .unwrap();
        assert!(
            cs.alias_rate() < ci.alias_rate(),
            "CS strictly sharper here"
        );
    }
}
