//! Andersen-style points-to analysis over the OHA IR (paper §5.1.2).
//!
//! Inclusion-based (Andersen) constraint solving with:
//!
//! * **field sensitivity** — pointees are object *cells* `(object, field)`,
//!   and `gep` adds constant offsets;
//! * **heap cloning** — abstract heap objects are named by allocation site,
//!   and additionally by calling context in the context-sensitive variant;
//! * **context sensitivity** (optional) — bottom-up cloning of per-function
//!   constraint templates, reusing clones across recursive cycles exactly as
//!   the paper describes, with a clone budget modelling the paper's
//!   "analysis that will not complete without exhausting resources";
//! * **on-the-fly call graph** — indirect calls are wired as their target
//!   points-to sets grow (sound mode), or devirtualized to the profiled
//!   likely callee sets (predicated mode);
//! * **predication** (optional) — likely invariants shrink the constraint
//!   system: likely-unreachable code contributes no constraints, likely
//!   callee sets replace indirect resolution, and likely-used call contexts
//!   bound context cloning (making CS feasible where sound CS exhausts its
//!   budget — the Table 2 / Figure 11 effect).
//!
//! The result ([`PointsTo`]) answers the queries the race detector and the
//! slicer need: which cells may each load/store/lock access, how indirect
//! calls resolve, and the whole-program load/store alias rate (Figure 9).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod dense;
mod model;
#[cfg(test)]
mod proptests;
mod reference;
mod results;
mod solver;

pub use analysis::{
    analyze, analyze_reference, ctx_hash, dense_cutoff_from_env, serial_cutoff_from_env, Exhausted,
    PointsToConfig, Sensitivity, DENSE_CUTOFF_DEFAULT, DENSE_CUTOFF_ENV, SERIAL_CUTOFF_DEFAULT,
    SERIAL_CUTOFF_ENV,
};
pub use model::{AbsObj, ObjRegistry};
pub use results::{PointsTo, PtStats};
