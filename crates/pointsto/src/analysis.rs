//! Constraint generation: context-insensitive and context-sensitive
//! (bottom-up cloning) analysis construction, with optional predication.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::error::Error;
use std::fmt;

use oha_dataflow::BitSet;
use oha_invariants::{InvariantSet, MAX_CONTEXT_DEPTH};
use oha_ir::{Callee, FuncId, InstId, InstKind, Operand, Program, Reg, Terminator};

use crate::model::{pointee_as_cell, pointee_of_cell, pointee_of_func, AbsObj, ObjRegistry};
use crate::reference::ReferenceSolver;
use crate::results::{PointsTo, PtStats};
use crate::solver::{Complex, ConstraintSolver, Solver};

/// Context handling of the analysis (paper §3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sensitivity {
    /// One abstract instance per function ("CI" in Table 2).
    ContextInsensitive,
    /// Bottom-up cloning per calling context ("CS" in Table 2).
    ContextSensitive,
}

/// Configuration for [`analyze`].
#[derive(Clone, Copy, Debug)]
pub struct PointsToConfig<'a> {
    /// Context sensitivity.
    pub sensitivity: Sensitivity,
    /// Likely invariants to predicate on; `None` gives the sound analysis.
    pub invariants: Option<&'a InvariantSet>,
    /// Maximum number of contexts the CS variant may clone before the
    /// analysis reports resource exhaustion.
    pub clone_budget: u32,
    /// Maximum solver iterations before the analysis reports resource
    /// exhaustion.
    pub solver_budget: u64,
}

impl Default for PointsToConfig<'static> {
    fn default() -> Self {
        Self {
            sensitivity: Sensitivity::ContextInsensitive,
            invariants: None,
            clone_budget: 4096,
            solver_budget: 20_000_000,
        }
    }
}

/// The analysis exceeded its clone or solver budget — the reproduction of
/// the paper's "cannot run without exhausting computational resources".
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Exhausted {
    /// What ran out.
    pub reason: String,
}

impl fmt::Display for Exhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "analysis exhausted resources: {}", self.reason)
    }
}

impl Error for Exhausted {}

#[derive(Clone, Debug)]
struct CtxInfo {
    parent: u32,
    func: FuncId,
    chain: Vec<InstId>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum AccessKind {
    Load,
    Store,
    Lock,
}

#[derive(Clone, Debug)]
struct AccessRec {
    inst: InstId,
    kind: AccessKind,
    node: u32,
    offset: u32,
    ctx: u32,
}

#[derive(Clone, Debug)]
struct SiteInstance {
    inst: InstId,
    ctx: u32,
    /// Argument nodes (`None` for constant arguments).
    args: Vec<Option<u32>>,
    dst: Option<u32>,
    is_spawn: bool,
}

/// Runs the points-to analysis.
///
/// # Errors
///
/// Returns [`Exhausted`] when the clone or solver budget is exceeded —
/// sound context-sensitive analysis of large indirect-call-heavy programs
/// does this by design (Table 2), while the predicated variant completes.
///
/// # Examples
///
/// ```
/// use oha_ir::{Operand, ProgramBuilder};
/// use oha_pointsto::{analyze, PointsToConfig};
///
/// let mut pb = ProgramBuilder::new();
/// let mut f = pb.function("main", 0);
/// let a = f.alloc(1);
/// f.store(Operand::Reg(a), 0, Operand::Const(1));
/// let l = f.load(Operand::Reg(a), 0);
/// f.output(Operand::Reg(l));
/// f.ret(None);
/// let main = pb.finish_function(f);
/// let p = pb.finish(main).unwrap();
///
/// let pt = analyze(&p, &PointsToConfig::default())?;
/// // The load and the store touch the same allocation: they may alias.
/// let (store, load) = {
///     let mut ids = p.inst_ids().skip(1);
///     (ids.next().unwrap(), ids.next().unwrap())
/// };
/// assert!(pt.may_alias(store, load));
/// # Ok::<(), oha_pointsto::Exhausted>(())
/// ```
pub fn analyze(program: &Program, config: &PointsToConfig<'_>) -> Result<PointsTo, Exhausted> {
    Builder::<Solver>::new(program, config).run()
}

/// Runs the points-to analysis on the naive iterate-to-fixpoint reference
/// solver instead of the optimized difference-propagation engine.
///
/// The least solution of an inclusion constraint system is unique and the
/// builder drives both engines identically (indirect-call targets are wired
/// in sorted order), so the returned [`PointsTo`] must match [`analyze`]
/// bit for bit — except for the solver-internal [`PtStats`] counters. The
/// equivalence property test and `scripts/bench_static.sh` both rely on
/// this entry point; it is not part of the supported API surface.
///
/// # Errors
///
/// Returns [`Exhausted`] when the clone or solver budget is exceeded, like
/// [`analyze`] (the reference engine burns its iteration budget much
/// faster — it re-applies every constraint per pass).
#[doc(hidden)]
pub fn analyze_reference(
    program: &Program,
    config: &PointsToConfig<'_>,
) -> Result<PointsTo, Exhausted> {
    Builder::<ReferenceSolver>::new(program, config).run()
}

/// Stable hash of a calling context: the function instantiated plus the
/// call-site chain that reached it. Both the points-to analysis and the
/// context-sensitive slicer key their per-context facts with this, so the
/// slicer can ask the points-to side "which cells does this access touch in
/// *this* context" even though the two build their context tables
/// independently (they follow the same construction policy).
pub fn ctx_hash(func: FuncId, chain: &[InstId]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ u64::from(func.raw());
    for s in chain {
        for b in s.raw().to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

struct Builder<'p, 'c, S: ConstraintSolver> {
    program: &'p Program,
    config: &'c PointsToConfig<'c>,
    registry: ObjRegistry,
    solver: S,
    ctxs: Vec<CtxInfo>,
    var_nodes: HashMap<(u32, u32, u32), u32>,
    ret_nodes: HashMap<(u32, u32), u32>,
    instantiated: HashSet<(u32, u32)>,
    site_instances: Vec<SiteInstance>,
    wired: HashSet<(u32, u32)>,
    spawn_roots: HashMap<(InstId, u32), u32>,
    accesses: Vec<AccessRec>,
    callees_out: BTreeMap<InstId, BTreeSet<FuncId>>,
    queue: Vec<(u32, FuncId)>,
}

impl<'p, 'c, S: ConstraintSolver> Builder<'p, 'c, S> {
    fn new(program: &'p Program, config: &'c PointsToConfig<'c>) -> Self {
        let registry = ObjRegistry::new(program);
        Self {
            program,
            config,
            registry,
            solver: S::default(),
            ctxs: Vec::new(),
            var_nodes: HashMap::new(),
            ret_nodes: HashMap::new(),
            instantiated: HashSet::new(),
            site_instances: Vec::new(),
            wired: HashSet::new(),
            spawn_roots: HashMap::new(),
            accesses: Vec::new(),
            callees_out: BTreeMap::new(),
            queue: Vec::new(),
        }
    }

    fn cs(&self) -> bool {
        self.config.sensitivity == Sensitivity::ContextSensitive
    }

    fn pruned(&self, block: oha_ir::BlockId) -> bool {
        self.config
            .invariants
            .is_some_and(|inv| !inv.is_visited(block))
    }

    fn var(&mut self, ctx: u32, func: FuncId, reg: Reg) -> u32 {
        *self
            .var_nodes
            .entry((ctx, func.raw(), reg.raw()))
            .or_insert_with(|| self.solver.add_node())
    }

    fn ret(&mut self, ctx: u32, func: FuncId) -> u32 {
        *self
            .ret_nodes
            .entry((ctx, func.raw()))
            .or_insert_with(|| self.solver.add_node())
    }

    fn operand_node(&mut self, ctx: u32, func: FuncId, op: Operand) -> Option<u32> {
        match op {
            Operand::Reg(r) => Some(self.var(ctx, func, r)),
            Operand::Const(_) => None,
        }
    }

    /// Resolves the context a call into `callee` should use, creating it if
    /// needed. `None` means the call is assumed never to happen
    /// (predicated-away context).
    fn ctx_for_call(
        &mut self,
        caller_ctx: u32,
        site: InstId,
        callee: FuncId,
    ) -> Result<Option<u32>, Exhausted> {
        if !self.cs() {
            return Ok(Some(0));
        }
        // Recursive call: reuse the existing clone on the context chain.
        let mut cur = caller_ctx;
        loop {
            if self.ctxs[cur as usize].func == callee {
                return Ok(Some(cur));
            }
            let parent = self.ctxs[cur as usize].parent;
            if parent == cur {
                break;
            }
            cur = parent;
        }
        // Predication: clone only likely-used call contexts (§5.2.3).
        let mut chain = self.ctxs[caller_ctx as usize].chain.clone();
        chain.push(site);
        if let Some(inv) = self.config.invariants {
            if chain.len() > MAX_CONTEXT_DEPTH || !inv.contexts.contains(&chain) {
                return Ok(None);
            }
        }
        self.new_ctx(caller_ctx, callee, chain).map(Some)
    }

    fn new_ctx(&mut self, parent: u32, func: FuncId, chain: Vec<InstId>) -> Result<u32, Exhausted> {
        if self.ctxs.len() as u32 >= self.config.clone_budget {
            return Err(Exhausted {
                reason: format!("context clone budget {} exceeded", self.config.clone_budget),
            });
        }
        let id = self.ctxs.len() as u32;
        self.ctxs.push(CtxInfo {
            parent: if self.ctxs.is_empty() { 0 } else { parent },
            func,
            chain,
        });
        Ok(id)
    }

    fn spawn_root(&mut self, site: InstId, entry: FuncId) -> Result<u32, Exhausted> {
        if !self.cs() {
            return Ok(0);
        }
        if let Some(&c) = self.spawn_roots.get(&(site, entry.raw())) {
            return Ok(c);
        }
        let c = self.new_root(entry)?;
        self.spawn_roots.insert((site, entry.raw()), c);
        Ok(c)
    }

    fn new_root(&mut self, func: FuncId) -> Result<u32, Exhausted> {
        let id = self.ctxs.len() as u32;
        if id >= self.config.clone_budget {
            return Err(Exhausted {
                reason: format!("context clone budget {} exceeded", self.config.clone_budget),
            });
        }
        self.ctxs.push(CtxInfo {
            parent: id,
            func,
            chain: Vec::new(),
        });
        Ok(id)
    }

    fn enqueue(&mut self, ctx: u32, func: FuncId) {
        if self.instantiated.insert((ctx, func.raw())) {
            self.queue.push((ctx, func));
        }
    }

    fn run(mut self) -> Result<PointsTo, Exhausted> {
        let main = self.program.entry();
        let root = self.new_root(main)?;
        self.enqueue(root, main);

        loop {
            // Drain the instantiation queue.
            while let Some((ctx, func)) = self.queue.pop() {
                self.instantiate(ctx, func)?;
            }
            // Solve; wire any newly discovered indirect targets. Wiring
            // happens in sorted order so the context/cell numbering does
            // not depend on the solver's internal propagation order —
            // that is what lets the reference engine reproduce the
            // optimized engine's results bit for bit.
            let mut discovered = self
                .solver
                .solve(&self.registry, self.config.solver_budget)?;
            if discovered.is_empty() && self.queue.is_empty() {
                break;
            }
            discovered.sort_unstable_by_key(|&(site, f)| (site, f.raw()));
            discovered.dedup();
            for (site_key, func) in discovered {
                self.wire_indirect(site_key, func)?;
            }
        }
        self.extract()
    }

    fn instantiate(&mut self, ctx: u32, func: FuncId) -> Result<(), Exhausted> {
        let f = self.program.function(func).clone();
        for &bid in &f.blocks {
            if self.pruned(bid) {
                continue;
            }
            let block = self.program.block(bid).clone();
            for inst in &block.insts {
                self.gen_inst(ctx, func, inst.id, &inst.kind)?;
            }
            if let Terminator::Return(Some(op)) = block.terminator {
                if let Some(n) = self.operand_node(ctx, func, op) {
                    let r = self.ret(ctx, func);
                    self.solver.add_copy(n, r);
                }
            }
        }
        Ok(())
    }

    fn gen_inst(
        &mut self,
        ctx: u32,
        func: FuncId,
        inst: InstId,
        kind: &InstKind,
    ) -> Result<(), Exhausted> {
        match kind {
            InstKind::Copy { dst, src } => {
                if let Some(s) = self.operand_node(ctx, func, *src) {
                    let d = self.var(ctx, func, *dst);
                    self.solver.add_copy(s, d);
                }
            }
            InstKind::BinOp { .. } | InstKind::Input { .. } | InstKind::Output { .. } => {}
            InstKind::Alloc { dst, fields } => {
                let heap_ctx = if self.cs() { ctx } else { 0 };
                let obj = self.registry.intern(
                    AbsObj::Heap {
                        site: inst,
                        ctx: heap_ctx,
                    },
                    *fields,
                );
                let cell = self.registry.cell(obj, 0).expect("field 0 exists");
                let d = self.var(ctx, func, *dst);
                self.solver.add_pointee(d, pointee_of_cell(cell));
            }
            InstKind::AddrGlobal { dst, global } => {
                let cell = self
                    .registry
                    .cell(global.raw(), 0)
                    .expect("globals are interned first");
                let d = self.var(ctx, func, *dst);
                self.solver.add_pointee(d, pointee_of_cell(cell));
            }
            InstKind::AddrFunc { dst, func: target } => {
                let d = self.var(ctx, func, *dst);
                self.solver.add_pointee(d, pointee_of_func(*target));
            }
            InstKind::Gep { dst, base, field } => {
                if let Some(b) = self.operand_node(ctx, func, *base) {
                    let d = self.var(ctx, func, *dst);
                    self.solver.add_complex(
                        b,
                        Complex::Offset {
                            dst: d,
                            offset: *field,
                        },
                    );
                }
            }
            InstKind::Load { dst, addr, field } => {
                if let Some(a) = self.operand_node(ctx, func, *addr) {
                    let d = self.var(ctx, func, *dst);
                    self.solver.add_complex(
                        a,
                        Complex::Load {
                            dst: d,
                            offset: *field,
                        },
                    );
                    self.accesses.push(AccessRec {
                        inst,
                        kind: AccessKind::Load,
                        node: a,
                        offset: *field,
                        ctx,
                    });
                }
            }
            InstKind::Store { addr, field, value } => {
                if let Some(a) = self.operand_node(ctx, func, *addr) {
                    if let Some(v) = self.operand_node(ctx, func, *value) {
                        self.solver.add_complex(
                            a,
                            Complex::Store {
                                src: v,
                                offset: *field,
                            },
                        );
                    }
                    self.accesses.push(AccessRec {
                        inst,
                        kind: AccessKind::Store,
                        node: a,
                        offset: *field,
                        ctx,
                    });
                }
            }
            InstKind::Lock { addr } | InstKind::Unlock { addr } => {
                if let Some(a) = self.operand_node(ctx, func, *addr) {
                    self.accesses.push(AccessRec {
                        inst,
                        kind: AccessKind::Lock,
                        node: a,
                        offset: 0,
                        ctx,
                    });
                }
            }
            InstKind::Call { dst, callee, args } => {
                let dst_node = dst.map(|d| self.var(ctx, func, d));
                let arg_nodes: Vec<Option<u32>> = args
                    .iter()
                    .map(|&a| self.operand_node(ctx, func, a))
                    .collect();
                self.gen_call(ctx, func, inst, callee, arg_nodes, dst_node, false)?;
            }
            InstKind::Spawn {
                func: target, arg, ..
            } => {
                let arg_node = self.operand_node(ctx, func, *arg);
                self.gen_call(ctx, func, inst, target, vec![arg_node], None, true)?;
            }
            InstKind::Join { .. } => {}
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn gen_call(
        &mut self,
        ctx: u32,
        func: FuncId,
        inst: InstId,
        callee: &Callee,
        args: Vec<Option<u32>>,
        dst: Option<u32>,
        is_spawn: bool,
    ) -> Result<(), Exhausted> {
        match callee {
            Callee::Direct(target) => {
                self.wire_call(ctx, inst, *target, &args, dst, is_spawn)?;
            }
            Callee::Indirect(op) => {
                let targets: Option<Vec<FuncId>> = self.config.invariants.map(|inv| {
                    inv.callee_sets
                        .get(&inst)
                        .map(|s| s.iter().copied().collect())
                        .unwrap_or_default()
                });
                match targets {
                    Some(targets) => {
                        // Predicated: devirtualize to the likely callee set.
                        for t in targets {
                            if self.program.function(t).arity() == args.len() {
                                self.wire_call(ctx, inst, t, &args, dst, is_spawn)?;
                            }
                        }
                    }
                    None => {
                        // Sound: resolve on the fly from the points-to set
                        // of the target operand.
                        if let Some(n) = self.operand_node(ctx, func, *op) {
                            let key = self.site_instances.len() as u32;
                            self.site_instances.push(SiteInstance {
                                inst,
                                ctx,
                                args,
                                dst,
                                is_spawn,
                            });
                            self.solver
                                .add_complex(n, Complex::CallTarget { site_key: key });
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn wire_indirect(&mut self, site_key: u32, target: FuncId) -> Result<(), Exhausted> {
        if !self.wired.insert((site_key, target.raw())) {
            return Ok(());
        }
        let si = self.site_instances[site_key as usize].clone();
        if self.program.function(target).arity() != si.args.len() {
            return Ok(());
        }
        self.wire_call(si.ctx, si.inst, target, &si.args, si.dst, si.is_spawn)
    }

    fn wire_call(
        &mut self,
        caller_ctx: u32,
        site: InstId,
        target: FuncId,
        args: &[Option<u32>],
        dst: Option<u32>,
        is_spawn: bool,
    ) -> Result<(), Exhausted> {
        if self.program.function(target).arity() != args.len() {
            return Ok(());
        }
        let callee_ctx = if is_spawn {
            Some(self.spawn_root(site, target)?)
        } else {
            self.ctx_for_call(caller_ctx, site, target)?
        };
        let Some(cc) = callee_ctx else {
            return Ok(()); // predicated away
        };
        self.callees_out.entry(site).or_default().insert(target);
        for (i, arg) in args.iter().enumerate() {
            if let Some(a) = arg {
                let param = self.var(cc, target, Reg::new(i as u32));
                self.solver.add_copy(*a, param);
            }
        }
        if let Some(d) = dst {
            let r = self.ret(cc, target);
            self.solver.add_copy(r, d);
        }
        self.enqueue(cc, target);
        Ok(())
    }

    fn extract(self) -> Result<PointsTo, Exhausted> {
        let mut loads: HashMap<InstId, BitSet> = HashMap::new();
        let mut stores: HashMap<InstId, BitSet> = HashMap::new();
        let mut locks: HashMap<InstId, BitSet> = HashMap::new();
        let mut per_ctx: HashMap<(InstId, u64), BitSet> = HashMap::new();
        for rec in &self.accesses {
            let map = match rec.kind {
                AccessKind::Load => &mut loads,
                AccessKind::Store => &mut stores,
                AccessKind::Lock => &mut locks,
            };
            let cells: Vec<usize> = self
                .solver
                .pts(rec.node)
                .iter()
                .filter_map(pointee_as_cell)
                .filter_map(|cell| self.registry.cell_offset(cell, rec.offset))
                .map(|c| c as usize)
                .collect();
            let set = map.entry(rec.inst).or_default();
            set.extend(cells.iter().copied());
            if rec.kind != AccessKind::Lock {
                let info = &self.ctxs[rec.ctx as usize];
                let h = ctx_hash(info.func, &info.chain);
                per_ctx
                    .entry((rec.inst, h))
                    .or_default()
                    .extend(cells.iter().copied());
            }
        }
        let solver_stats = self.solver.stats();
        let stats = PtStats {
            nodes: self.solver.num_nodes(),
            contexts: self.ctxs.len(),
            clone_budget: self.config.clone_budget,
            copy_edges: self.solver.num_copy_edges(),
            solver_iterations: solver_stats.iterations,
            cycle_collapses: solver_stats.cycle_collapses,
            scc_collapses: solver_stats.scc_collapses,
            words_unioned: solver_stats.words_unioned,
            worklist_pops: solver_stats.worklist_pops,
            num_cells: self.registry.num_cells(),
        };
        Ok(PointsTo::new(
            self.registry,
            loads,
            stores,
            locks,
            per_ctx,
            self.callees_out,
            stats,
        ))
    }
}
