//! Constraint generation: context-insensitive and context-sensitive
//! (bottom-up cloning) analysis construction, with optional predication.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::error::Error;
use std::fmt;
use std::sync::Arc;

use oha_dataflow::BitSet;
use oha_invariants::{InvariantSet, MAX_CONTEXT_DEPTH};
use oha_ir::{Callee, FuncId, GlobalId, InstId, InstKind, Operand, Program, Reg, Terminator};
use oha_par::Pool;

use crate::dense::DenseSolver;
use crate::model::{pointee_as_cell, pointee_of_cell, pointee_of_func, AbsObj, ObjRegistry};
use crate::reference::ReferenceSolver;
use crate::results::{PointsTo, PtStats};
use crate::solver::{Complex, ConstraintSolver, Solver};

/// Context handling of the analysis (paper §3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sensitivity {
    /// One abstract instance per function ("CI" in Table 2).
    ContextInsensitive,
    /// Bottom-up cloning per calling context ("CS" in Table 2).
    ContextSensitive,
}

/// Environment variable overriding [`SERIAL_CUTOFF_DEFAULT`] (empty or
/// unparsable values fall back to the default).
pub const SERIAL_CUTOFF_ENV: &str = "OHA_SERIAL_CUTOFF";

/// Default adaptive serial cutoff: constraint graphs with fewer than this
/// many solver nodes + copy edges solve on the lean serial path — micro
/// workloads lose more to sharding bookkeeping than they gain from extra
/// cores (see DESIGN.md "Parallel static phase").
pub const SERIAL_CUTOFF_DEFAULT: usize = 2048;

/// [`SERIAL_CUTOFF_DEFAULT`], unless [`SERIAL_CUTOFF_ENV`] overrides it.
pub fn serial_cutoff_from_env() -> usize {
    std::env::var(SERIAL_CUTOFF_ENV)
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(SERIAL_CUTOFF_DEFAULT)
}

/// Environment variable overriding [`DENSE_CUTOFF_DEFAULT`] (empty or
/// unparsable values fall back to the default).
pub const DENSE_CUTOFF_ENV: &str = "OHA_DENSE_CUTOFF";

/// Default dense-engine cutoff, in *program instructions*: inputs below
/// it solve on [`crate::dense::DenseSolver`], whose construction is as
/// cheap as the naive reference engine and whose full-pass solve is
/// word-parallel. Unlike [`SERIAL_CUTOFF_DEFAULT`] (a constraint-graph
/// size, decided per solve round) this is decided once, before any
/// constraints exist, from the input program alone — which keeps the
/// choice identical for the sound and predicated runs of a workload
/// only when both stay micro, and keeps programs whose
/// context-sensitive graphs outgrow their instruction count (vim, go)
/// on the adaptive worklist/sharded path.
pub const DENSE_CUTOFF_DEFAULT: usize = 320;

/// [`DENSE_CUTOFF_DEFAULT`], unless [`DENSE_CUTOFF_ENV`] overrides it.
pub fn dense_cutoff_from_env() -> usize {
    std::env::var(DENSE_CUTOFF_ENV)
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(DENSE_CUTOFF_DEFAULT)
}

/// Configuration for [`analyze`].
#[derive(Clone, Copy, Debug)]
pub struct PointsToConfig<'a> {
    /// Context sensitivity.
    pub sensitivity: Sensitivity,
    /// Likely invariants to predicate on; `None` gives the sound analysis.
    pub invariants: Option<&'a InvariantSet>,
    /// Maximum number of contexts the CS variant may clone before the
    /// analysis reports resource exhaustion.
    pub clone_budget: u32,
    /// Maximum solver iterations before the analysis reports resource
    /// exhaustion.
    pub solver_budget: u64,
    /// Worker pool for the parallel sections: per-function constraint
    /// planning and the sharded solve. Results are bit-identical at any
    /// width; `Pool::new(1)` forces fully serial execution.
    pub pool: Pool,
    /// Constraint graphs below this size (solver nodes + copy edges) route
    /// to the serial solve path regardless of pool width. The routing is a
    /// pure function of problem size, never of thread count.
    pub serial_cutoff: usize,
    /// Programs below this many instructions run on the dense micro-graph
    /// engine ([`crate::dense::DenseSolver`]) instead of the worklist
    /// solver — reference-cheap construction plus word-parallel full
    /// passes, the fastest shape for graphs too small to amortize
    /// worklist bookkeeping. Decided once from the input program, so it
    /// cannot vary with thread count; a zero `serial_cutoff` disables it
    /// along with every other small-graph shortcut.
    pub dense_cutoff: usize,
}

impl Default for PointsToConfig<'static> {
    fn default() -> Self {
        Self {
            sensitivity: Sensitivity::ContextInsensitive,
            invariants: None,
            clone_budget: 4096,
            solver_budget: 20_000_000,
            pool: Pool::from_env(),
            serial_cutoff: serial_cutoff_from_env(),
            dense_cutoff: dense_cutoff_from_env(),
        }
    }
}

/// The analysis exceeded its clone or solver budget — the reproduction of
/// the paper's "cannot run without exhausting computational resources".
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Exhausted {
    /// What ran out.
    pub reason: String,
}

impl fmt::Display for Exhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "analysis exhausted resources: {}", self.reason)
    }
}

impl Error for Exhausted {}

#[derive(Clone, Debug)]
struct CtxInfo {
    parent: u32,
    func: FuncId,
    chain: Vec<InstId>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum AccessKind {
    Load,
    Store,
    Lock,
}

#[derive(Clone, Debug)]
struct AccessRec {
    inst: InstId,
    kind: AccessKind,
    node: u32,
    offset: u32,
    ctx: u32,
}

#[derive(Clone, Debug)]
struct SiteInstance {
    inst: InstId,
    ctx: u32,
    /// Argument nodes (`None` for constant arguments).
    args: Vec<Option<u32>>,
    dst: Option<u32>,
    is_spawn: bool,
}

/// Runs the points-to analysis.
///
/// # Errors
///
/// Returns [`Exhausted`] when the clone or solver budget is exceeded —
/// sound context-sensitive analysis of large indirect-call-heavy programs
/// does this by design (Table 2), while the predicated variant completes.
///
/// # Examples
///
/// ```
/// use oha_ir::{Operand, ProgramBuilder};
/// use oha_pointsto::{analyze, PointsToConfig};
///
/// let mut pb = ProgramBuilder::new();
/// let mut f = pb.function("main", 0);
/// let a = f.alloc(1);
/// f.store(Operand::Reg(a), 0, Operand::Const(1));
/// let l = f.load(Operand::Reg(a), 0);
/// f.output(Operand::Reg(l));
/// f.ret(None);
/// let main = pb.finish_function(f);
/// let p = pb.finish(main).unwrap();
///
/// let pt = analyze(&p, &PointsToConfig::default())?;
/// // The load and the store touch the same allocation: they may alias.
/// let (store, load) = {
///     let mut ids = p.inst_ids().skip(1);
///     (ids.next().unwrap(), ids.next().unwrap())
/// };
/// assert!(pt.may_alias(store, load));
/// # Ok::<(), oha_pointsto::Exhausted>(())
/// ```
pub fn analyze(program: &Program, config: &PointsToConfig<'_>) -> Result<PointsTo, Exhausted> {
    // Engine routing, decided once from the input program (a pure
    // function of the input, so identical at every `OHA_THREADS`):
    // micro programs run the dense engine, everything else the adaptive
    // worklist/sharded solver. `serial_cutoff == 0` means "no serial
    // shortcuts at all" — used by tests to force the sharded loop.
    if program.num_insts() < config.dense_cutoff && config.serial_cutoff > 0 {
        Builder::<DenseSolver>::new(program, config).run()
    } else {
        Builder::<Solver>::new(program, config).run()
    }
}

/// Runs the points-to analysis on the naive iterate-to-fixpoint reference
/// solver instead of the optimized difference-propagation engine.
///
/// The least solution of an inclusion constraint system is unique and the
/// builder drives both engines identically (indirect-call targets are wired
/// in sorted order), so the returned [`PointsTo`] must match [`analyze`]
/// bit for bit — except for the solver-internal [`PtStats`] counters. The
/// equivalence property test and `scripts/bench_static.sh` both rely on
/// this entry point; it is not part of the supported API surface.
///
/// # Errors
///
/// Returns [`Exhausted`] when the clone or solver budget is exceeded, like
/// [`analyze`] (the reference engine burns its iteration budget much
/// faster — it re-applies every constraint per pass).
#[doc(hidden)]
pub fn analyze_reference(
    program: &Program,
    config: &PointsToConfig<'_>,
) -> Result<PointsTo, Exhausted> {
    Builder::<ReferenceSolver>::new(program, config).run()
}

/// Stable hash of a calling context: the function instantiated plus the
/// call-site chain that reached it. Both the points-to analysis and the
/// context-sensitive slicer key their per-context facts with this, so the
/// slicer can ask the points-to side "which cells does this access touch in
/// *this* context" even though the two build their context tables
/// independently (they follow the same construction policy).
pub fn ctx_hash(func: FuncId, chain: &[InstId]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ u64::from(func.raw());
    for s in chain {
        for b in s.raw().to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// The call shape a planned call site resolved to at plan time.
#[derive(Clone, Debug)]
enum PlanCallee {
    /// Statically known target.
    Direct(FuncId),
    /// Predicated indirect call, devirtualized to the arity-matching
    /// likely-callee set (§5.2.3) while planning.
    Devirt(Vec<FuncId>),
    /// Sound indirect call: targets resolve on the fly from the points-to
    /// set of this register.
    Dynamic(Reg),
    /// Sound indirect call through a constant operand — can never resolve;
    /// only the destination/argument nodes are materialized.
    Opaque,
}

/// One replayable constraint-generation step of a [`FuncPlan`]. Operands
/// are pre-filtered: constant sources that generate nothing are dropped at
/// plan time, so replay touches only ops that allocate nodes or emit
/// constraints.
#[derive(Clone, Debug)]
enum PlanOp {
    Copy {
        dst: Reg,
        src: Reg,
    },
    Alloc {
        inst: InstId,
        dst: Reg,
        fields: u32,
    },
    AddrGlobal {
        dst: Reg,
        global: GlobalId,
    },
    AddrFunc {
        dst: Reg,
        target: FuncId,
    },
    Gep {
        dst: Reg,
        base: Reg,
        offset: u32,
    },
    Load {
        inst: InstId,
        dst: Reg,
        addr: Reg,
        offset: u32,
    },
    Store {
        inst: InstId,
        addr: Reg,
        offset: u32,
        value: Option<Reg>,
    },
    /// A lock or unlock site (both record a [`AccessKind::Lock`] access).
    Access {
        inst: InstId,
        addr: Reg,
    },
    Call {
        inst: InstId,
        dst: Option<Reg>,
        args: Vec<Option<Reg>>,
        callee: PlanCallee,
        is_spawn: bool,
    },
    /// `Return(reg)` at the end of a block.
    Ret {
        src: Reg,
    },
}

/// A function's constraint-generation recipe: the context-independent
/// [`PlanOp`] sequence its instantiation replays, with pruned blocks
/// dropped and indirect calls devirtualized up front. Building a plan is a
/// pure function of `(program, invariants)` — it touches neither solver
/// nor registry — so plans for all functions build in parallel while node
/// and cell numbering stay artifacts of serial replay order alone.
#[derive(Debug, Default)]
struct FuncPlan {
    ops: Vec<PlanOp>,
}

fn reg_of(op: Operand) -> Option<Reg> {
    match op {
        Operand::Reg(r) => Some(r),
        Operand::Const(_) => None,
    }
}

fn plan_callee(
    program: &Program,
    invariants: Option<&InvariantSet>,
    inst: InstId,
    callee: &Callee,
    arity: usize,
) -> PlanCallee {
    match callee {
        Callee::Direct(target) => PlanCallee::Direct(*target),
        Callee::Indirect(op) => match invariants {
            // Predicated: devirtualize to the likely callee set.
            Some(inv) => PlanCallee::Devirt(
                inv.callee_sets
                    .get(&inst)
                    .map(|s| {
                        s.iter()
                            .copied()
                            .filter(|&t| program.function(t).arity() == arity)
                            .collect()
                    })
                    .unwrap_or_default(),
            ),
            None => match reg_of(*op) {
                Some(r) => PlanCallee::Dynamic(r),
                None => PlanCallee::Opaque,
            },
        },
    }
}

fn plan_inst(
    program: &Program,
    invariants: Option<&InvariantSet>,
    inst: InstId,
    kind: &InstKind,
    ops: &mut Vec<PlanOp>,
) {
    match kind {
        InstKind::Copy { dst, src } => {
            if let Some(src) = reg_of(*src) {
                ops.push(PlanOp::Copy { dst: *dst, src });
            }
        }
        InstKind::BinOp { .. }
        | InstKind::Input { .. }
        | InstKind::Output { .. }
        | InstKind::Join { .. } => {}
        InstKind::Alloc { dst, fields } => ops.push(PlanOp::Alloc {
            inst,
            dst: *dst,
            fields: *fields,
        }),
        InstKind::AddrGlobal { dst, global } => ops.push(PlanOp::AddrGlobal {
            dst: *dst,
            global: *global,
        }),
        InstKind::AddrFunc { dst, func: target } => ops.push(PlanOp::AddrFunc {
            dst: *dst,
            target: *target,
        }),
        InstKind::Gep { dst, base, field } => {
            if let Some(base) = reg_of(*base) {
                ops.push(PlanOp::Gep {
                    dst: *dst,
                    base,
                    offset: *field,
                });
            }
        }
        InstKind::Load { dst, addr, field } => {
            if let Some(addr) = reg_of(*addr) {
                ops.push(PlanOp::Load {
                    inst,
                    dst: *dst,
                    addr,
                    offset: *field,
                });
            }
        }
        InstKind::Store { addr, field, value } => {
            if let Some(addr) = reg_of(*addr) {
                ops.push(PlanOp::Store {
                    inst,
                    addr,
                    offset: *field,
                    value: reg_of(*value),
                });
            }
        }
        InstKind::Lock { addr } | InstKind::Unlock { addr } => {
            if let Some(addr) = reg_of(*addr) {
                ops.push(PlanOp::Access { inst, addr });
            }
        }
        InstKind::Call { dst, callee, args } => {
            let args: Vec<Option<Reg>> = args.iter().map(|&a| reg_of(a)).collect();
            let callee = plan_callee(program, invariants, inst, callee, args.len());
            ops.push(PlanOp::Call {
                inst,
                dst: *dst,
                args,
                callee,
                is_spawn: false,
            });
        }
        InstKind::Spawn {
            func: target, arg, ..
        } => {
            let args = vec![reg_of(*arg)];
            let callee = plan_callee(program, invariants, inst, target, args.len());
            ops.push(PlanOp::Call {
                inst,
                dst: None,
                args,
                callee,
                is_spawn: true,
            });
        }
    }
}

fn build_plan(program: &Program, invariants: Option<&InvariantSet>, func: FuncId) -> FuncPlan {
    let mut ops = Vec::new();
    let f = program.function(func);
    for &bid in &f.blocks {
        if invariants.is_some_and(|inv| !inv.is_visited(bid)) {
            continue;
        }
        let block = program.block(bid);
        for inst in &block.insts {
            plan_inst(program, invariants, inst.id, &inst.kind, &mut ops);
        }
        if let Terminator::Return(Some(op)) = block.terminator {
            if let Some(src) = reg_of(op) {
                ops.push(PlanOp::Ret { src });
            }
        }
    }
    FuncPlan { ops }
}

struct Builder<'p, 'c, S: ConstraintSolver> {
    program: &'p Program,
    config: &'c PointsToConfig<'c>,
    registry: ObjRegistry,
    solver: S,
    /// Per-function constraint plans, indexed by `FuncId::raw`, built in
    /// parallel at the start of [`Builder::run`].
    plans: Vec<Arc<FuncPlan>>,
    ctxs: Vec<CtxInfo>,
    var_nodes: HashMap<(u32, u32, u32), u32>,
    ret_nodes: HashMap<(u32, u32), u32>,
    instantiated: HashSet<(u32, u32)>,
    site_instances: Vec<SiteInstance>,
    wired: HashSet<(u32, u32)>,
    spawn_roots: HashMap<(InstId, u32), u32>,
    accesses: Vec<AccessRec>,
    callees_out: BTreeMap<InstId, BTreeSet<FuncId>>,
    queue: Vec<(u32, FuncId)>,
}

impl<'p, 'c, S: ConstraintSolver> Builder<'p, 'c, S> {
    fn new(program: &'p Program, config: &'c PointsToConfig<'c>) -> Self {
        let registry = ObjRegistry::new(program);
        Self {
            program,
            config,
            registry,
            solver: S::default(),
            plans: Vec::new(),
            ctxs: Vec::new(),
            var_nodes: HashMap::new(),
            ret_nodes: HashMap::new(),
            instantiated: HashSet::new(),
            site_instances: Vec::new(),
            wired: HashSet::new(),
            spawn_roots: HashMap::new(),
            accesses: Vec::new(),
            callees_out: BTreeMap::new(),
            queue: Vec::new(),
        }
    }

    fn cs(&self) -> bool {
        self.config.sensitivity == Sensitivity::ContextSensitive
    }

    fn var(&mut self, ctx: u32, func: FuncId, reg: Reg) -> u32 {
        *self
            .var_nodes
            .entry((ctx, func.raw(), reg.raw()))
            .or_insert_with(|| self.solver.add_node())
    }

    fn ret(&mut self, ctx: u32, func: FuncId) -> u32 {
        *self
            .ret_nodes
            .entry((ctx, func.raw()))
            .or_insert_with(|| self.solver.add_node())
    }

    /// Resolves the context a call into `callee` should use, creating it if
    /// needed. `None` means the call is assumed never to happen
    /// (predicated-away context).
    fn ctx_for_call(
        &mut self,
        caller_ctx: u32,
        site: InstId,
        callee: FuncId,
    ) -> Result<Option<u32>, Exhausted> {
        if !self.cs() {
            return Ok(Some(0));
        }
        // Recursive call: reuse the existing clone on the context chain.
        let mut cur = caller_ctx;
        loop {
            if self.ctxs[cur as usize].func == callee {
                return Ok(Some(cur));
            }
            let parent = self.ctxs[cur as usize].parent;
            if parent == cur {
                break;
            }
            cur = parent;
        }
        // Predication: clone only likely-used call contexts (§5.2.3).
        let mut chain = self.ctxs[caller_ctx as usize].chain.clone();
        chain.push(site);
        if let Some(inv) = self.config.invariants {
            if chain.len() > MAX_CONTEXT_DEPTH || !inv.contexts.contains(&chain) {
                return Ok(None);
            }
        }
        self.new_ctx(caller_ctx, callee, chain).map(Some)
    }

    fn new_ctx(&mut self, parent: u32, func: FuncId, chain: Vec<InstId>) -> Result<u32, Exhausted> {
        if self.ctxs.len() as u32 >= self.config.clone_budget {
            return Err(Exhausted {
                reason: format!("context clone budget {} exceeded", self.config.clone_budget),
            });
        }
        let id = self.ctxs.len() as u32;
        self.ctxs.push(CtxInfo {
            parent: if self.ctxs.is_empty() { 0 } else { parent },
            func,
            chain,
        });
        Ok(id)
    }

    fn spawn_root(&mut self, site: InstId, entry: FuncId) -> Result<u32, Exhausted> {
        if !self.cs() {
            return Ok(0);
        }
        if let Some(&c) = self.spawn_roots.get(&(site, entry.raw())) {
            return Ok(c);
        }
        let c = self.new_root(entry)?;
        self.spawn_roots.insert((site, entry.raw()), c);
        Ok(c)
    }

    fn new_root(&mut self, func: FuncId) -> Result<u32, Exhausted> {
        let id = self.ctxs.len() as u32;
        if id >= self.config.clone_budget {
            return Err(Exhausted {
                reason: format!("context clone budget {} exceeded", self.config.clone_budget),
            });
        }
        self.ctxs.push(CtxInfo {
            parent: id,
            func,
            chain: Vec::new(),
        });
        Ok(id)
    }

    fn enqueue(&mut self, ctx: u32, func: FuncId) {
        if self.instantiated.insert((ctx, func.raw())) {
            self.queue.push((ctx, func));
        }
    }

    fn run(mut self) -> Result<PointsTo, Exhausted> {
        // Fan constraint planning out per function over the shared pool;
        // par_map returns in input order, so the plan table is merged in
        // function order no matter how wide the pool is. Everything
        // order-sensitive (node/cell numbering) happens at replay time, on
        // this thread, in the same instantiation order as ever.
        let funcs: Vec<FuncId> = self.program.func_ids().collect();
        let program = self.program;
        let invariants = self.config.invariants;
        self.plans = self
            .config
            .pool
            .par_map(&funcs, |&f| Arc::new(build_plan(program, invariants, f)));

        // Capacity hint: roughly one node per planned op for a single
        // instantiation of every function — about exact for the
        // context-insensitive graphs, a harmless lower bound once
        // cloning multiplies contexts.
        let hint: usize = self.plans.iter().map(|p| p.ops.len()).sum();
        self.solver.reserve(hint + 16);

        let main = self.program.entry();
        let root = self.new_root(main)?;
        self.enqueue(root, main);

        loop {
            // Drain the instantiation queue.
            while let Some((ctx, func)) = self.queue.pop() {
                self.instantiate(ctx, func)?;
            }
            // Solve; wire any newly discovered indirect targets. Wiring
            // happens in sorted order so the context/cell numbering does
            // not depend on the solver's internal propagation order —
            // that is what lets the reference engine reproduce the
            // optimized engine's results bit for bit.
            let mut discovered = self.solver.solve_tuned(
                &self.registry,
                self.config.solver_budget,
                self.config.pool,
                self.config.serial_cutoff,
            )?;
            if discovered.is_empty() && self.queue.is_empty() {
                break;
            }
            discovered.sort_unstable_by_key(|&(site, f)| (site, f.raw()));
            discovered.dedup();
            for (site_key, func) in discovered {
                self.wire_indirect(site_key, func)?;
            }
        }
        self.extract()
    }

    /// Replays `func`'s plan in context `ctx`. Node allocation order — and
    /// with it every downstream id — is identical to what direct traversal
    /// produced before plans existed.
    fn instantiate(&mut self, ctx: u32, func: FuncId) -> Result<(), Exhausted> {
        let plan = Arc::clone(&self.plans[func.raw() as usize]);
        for op in &plan.ops {
            self.apply_op(ctx, func, op)?;
        }
        Ok(())
    }

    fn apply_op(&mut self, ctx: u32, func: FuncId, op: &PlanOp) -> Result<(), Exhausted> {
        match *op {
            PlanOp::Copy { dst, src } => {
                let s = self.var(ctx, func, src);
                let d = self.var(ctx, func, dst);
                self.solver.add_copy(s, d);
            }
            PlanOp::Alloc { inst, dst, fields } => {
                let heap_ctx = if self.cs() { ctx } else { 0 };
                let obj = self.registry.intern(
                    AbsObj::Heap {
                        site: inst,
                        ctx: heap_ctx,
                    },
                    fields,
                );
                let cell = self.registry.cell(obj, 0).expect("field 0 exists");
                let d = self.var(ctx, func, dst);
                self.solver.add_pointee(d, pointee_of_cell(cell));
            }
            PlanOp::AddrGlobal { dst, global } => {
                let cell = self
                    .registry
                    .cell(global.raw(), 0)
                    .expect("globals are interned first");
                let d = self.var(ctx, func, dst);
                self.solver.add_pointee(d, pointee_of_cell(cell));
            }
            PlanOp::AddrFunc { dst, target } => {
                let d = self.var(ctx, func, dst);
                self.solver.add_pointee(d, pointee_of_func(target));
            }
            PlanOp::Gep { dst, base, offset } => {
                let b = self.var(ctx, func, base);
                let d = self.var(ctx, func, dst);
                self.solver
                    .add_complex(b, Complex::Offset { dst: d, offset });
            }
            PlanOp::Load {
                inst,
                dst,
                addr,
                offset,
            } => {
                let a = self.var(ctx, func, addr);
                let d = self.var(ctx, func, dst);
                self.solver.add_complex(a, Complex::Load { dst: d, offset });
                self.accesses.push(AccessRec {
                    inst,
                    kind: AccessKind::Load,
                    node: a,
                    offset,
                    ctx,
                });
            }
            PlanOp::Store {
                inst,
                addr,
                offset,
                value,
            } => {
                let a = self.var(ctx, func, addr);
                if let Some(v) = value {
                    let v = self.var(ctx, func, v);
                    self.solver
                        .add_complex(a, Complex::Store { src: v, offset });
                }
                self.accesses.push(AccessRec {
                    inst,
                    kind: AccessKind::Store,
                    node: a,
                    offset,
                    ctx,
                });
            }
            PlanOp::Access { inst, addr } => {
                let a = self.var(ctx, func, addr);
                self.accesses.push(AccessRec {
                    inst,
                    kind: AccessKind::Lock,
                    node: a,
                    offset: 0,
                    ctx,
                });
            }
            PlanOp::Call {
                inst,
                dst,
                ref args,
                ref callee,
                is_spawn,
            } => {
                let dst_node = dst.map(|d| self.var(ctx, func, d));
                let arg_nodes: Vec<Option<u32>> = args
                    .iter()
                    .map(|a| a.map(|r| self.var(ctx, func, r)))
                    .collect();
                match *callee {
                    PlanCallee::Direct(target) => {
                        self.wire_call(ctx, inst, target, &arg_nodes, dst_node, is_spawn)?;
                    }
                    PlanCallee::Devirt(ref targets) => {
                        for &t in targets {
                            self.wire_call(ctx, inst, t, &arg_nodes, dst_node, is_spawn)?;
                        }
                    }
                    PlanCallee::Dynamic(r) => {
                        let n = self.var(ctx, func, r);
                        let key = self.site_instances.len() as u32;
                        self.site_instances.push(SiteInstance {
                            inst,
                            ctx,
                            args: arg_nodes,
                            dst: dst_node,
                            is_spawn,
                        });
                        self.solver
                            .add_complex(n, Complex::CallTarget { site_key: key });
                    }
                    PlanCallee::Opaque => {}
                }
            }
            PlanOp::Ret { src } => {
                let n = self.var(ctx, func, src);
                let r = self.ret(ctx, func);
                self.solver.add_copy(n, r);
            }
        }
        Ok(())
    }

    fn wire_indirect(&mut self, site_key: u32, target: FuncId) -> Result<(), Exhausted> {
        if !self.wired.insert((site_key, target.raw())) {
            return Ok(());
        }
        let si = self.site_instances[site_key as usize].clone();
        if self.program.function(target).arity() != si.args.len() {
            return Ok(());
        }
        self.wire_call(si.ctx, si.inst, target, &si.args, si.dst, si.is_spawn)
    }

    fn wire_call(
        &mut self,
        caller_ctx: u32,
        site: InstId,
        target: FuncId,
        args: &[Option<u32>],
        dst: Option<u32>,
        is_spawn: bool,
    ) -> Result<(), Exhausted> {
        if self.program.function(target).arity() != args.len() {
            return Ok(());
        }
        let callee_ctx = if is_spawn {
            Some(self.spawn_root(site, target)?)
        } else {
            self.ctx_for_call(caller_ctx, site, target)?
        };
        let Some(cc) = callee_ctx else {
            return Ok(()); // predicated away
        };
        self.callees_out.entry(site).or_default().insert(target);
        for (i, arg) in args.iter().enumerate() {
            if let Some(a) = arg {
                let param = self.var(cc, target, Reg::new(i as u32));
                self.solver.add_copy(*a, param);
            }
        }
        if let Some(d) = dst {
            let r = self.ret(cc, target);
            self.solver.add_copy(r, d);
        }
        self.enqueue(cc, target);
        Ok(())
    }

    fn extract(self) -> Result<PointsTo, Exhausted> {
        let mut loads: HashMap<InstId, BitSet> = HashMap::new();
        let mut stores: HashMap<InstId, BitSet> = HashMap::new();
        let mut locks: HashMap<InstId, BitSet> = HashMap::new();
        let mut per_ctx: HashMap<(InstId, u64), BitSet> = HashMap::new();
        for rec in &self.accesses {
            let map = match rec.kind {
                AccessKind::Load => &mut loads,
                AccessKind::Store => &mut stores,
                AccessKind::Lock => &mut locks,
            };
            let cells: Vec<usize> = self
                .solver
                .pts(rec.node)
                .iter()
                .filter_map(pointee_as_cell)
                .filter_map(|cell| self.registry.cell_offset(cell, rec.offset))
                .map(|c| c as usize)
                .collect();
            let set = map.entry(rec.inst).or_default();
            set.extend(cells.iter().copied());
            if rec.kind != AccessKind::Lock {
                let info = &self.ctxs[rec.ctx as usize];
                let h = ctx_hash(info.func, &info.chain);
                per_ctx
                    .entry((rec.inst, h))
                    .or_default()
                    .extend(cells.iter().copied());
            }
        }
        let solver_stats = self.solver.stats();
        let stats = PtStats {
            nodes: self.solver.num_nodes(),
            contexts: self.ctxs.len(),
            clone_budget: self.config.clone_budget,
            copy_edges: self.solver.num_copy_edges(),
            solver_iterations: solver_stats.iterations,
            cycle_collapses: solver_stats.cycle_collapses,
            scc_collapses: solver_stats.scc_collapses,
            words_unioned: solver_stats.words_unioned,
            worklist_pops: solver_stats.worklist_pops,
            shard_rounds: solver_stats.shard_rounds,
            shard_merge_ns: solver_stats.shard_merge_ns,
            serial_solves: solver_stats.serial_solves,
            sharded_solves: solver_stats.sharded_solves,
            num_cells: self.registry.num_cells(),
        };
        Ok(PointsTo::new(
            self.registry,
            loads,
            stores,
            locks,
            per_ctx,
            self.callees_out,
            stats,
        ))
    }
}
