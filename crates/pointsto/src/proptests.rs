//! Property tests: the optimized difference-propagation solver computes
//! exactly the same fixpoint as the naive [`ReferenceSolver`], the dense
//! full-pass loop (the adaptive cutoff's micro-graph path) matches both,
//! and the bulk-synchronous sharded loop computes exactly the same
//! fixpoint at every pool width.
//!
//! An inclusion constraint system has a unique least solution, so any
//! divergence between the engines — missed propagation after a cycle
//! collapse, a dropped delta during take-and-restore, a stale successor
//! list, a shard buffer merged out of order — shows up as a points-to
//! set or discovered-callee mismatch on some random constraint graph.

use oha_ir::{FuncId, GlobalId, ProgramBuilder};
use oha_par::Pool;
use proptest::prelude::*;

use crate::model::{pointee_of_cell, pointee_of_func, AbsObj, ObjRegistry};
use crate::reference::ReferenceSolver;
use crate::solver::{Complex, ConstraintSolver, Solver};

/// Three interned objects of three fields each: cells 0..9, with room for
/// `Offset` constraints to land both in and out of bounds.
const NUM_CELLS: u32 = 9;
const NUM_FUNCS: u32 = 3;
const NUM_SITES: u32 = 4;

fn registry() -> ObjRegistry {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main", 0);
    f.ret(None);
    let main = pb.finish_function(f);
    let mut reg = ObjRegistry::new(&pb.finish(main).unwrap());
    for g in 0..3 {
        reg.intern(AbsObj::Global(GlobalId::new(100 + g)), 3);
    }
    reg
}

/// One randomized constraint: `(selector, a, b, offset)`, interpreted
/// modulo the node/cell/function counts so every draw is valid.
type Op = (u8, u32, u32, u32);

fn apply(solver: &mut impl ConstraintSolver, num_nodes: u32, ops: &[Op]) {
    for &(sel, a, b, off) in ops {
        let x = a % num_nodes;
        let y = b % num_nodes;
        match sel {
            0 => solver.add_pointee(x, pointee_of_cell(b % NUM_CELLS)),
            1 => solver.add_pointee(x, pointee_of_func(FuncId::new(b % NUM_FUNCS))),
            2 => solver.add_copy(x, y),
            3 => solver.add_complex(
                x,
                Complex::Load {
                    dst: y,
                    offset: off,
                },
            ),
            4 => solver.add_complex(
                x,
                Complex::Store {
                    src: y,
                    offset: off,
                },
            ),
            5 => solver.add_complex(
                x,
                Complex::Offset {
                    dst: y,
                    offset: off,
                },
            ),
            _ => solver.add_complex(
                x,
                Complex::CallTarget {
                    site_key: b % NUM_SITES,
                },
            ),
        }
    }
}

/// Sorted, deduplicated `(site_key, func)` pairs — the form the builder
/// consumes after its own normalization pass.
fn normalize(found: Vec<(u32, FuncId)>) -> Vec<(u32, u32)> {
    let mut v: Vec<(u32, u32)> = found.into_iter().map(|(s, f)| (s, f.raw())).collect();
    v.sort_unstable();
    v.dedup();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn optimized_solver_matches_naive_reference(
        num_nodes in 2u32..14,
        ops in prop::collection::vec((0u8..7, 0u32..64, 0u32..64, 0u32..4), 1..80),
        split in 0usize..80,
    ) {
        let reg = registry();
        let mut opt = Solver::default();
        let mut naive = ReferenceSolver::default();
        for _ in 0..num_nodes {
            opt.add_node();
            naive.add_node();
        }

        // Two solve rounds with constraints added in between, mirroring the
        // builder's incremental solve→wire→solve loop: the second round
        // exercises delta restaging on already-saturated nodes.
        let split = split.min(ops.len());
        apply(&mut opt, num_nodes, &ops[..split]);
        apply(&mut naive, num_nodes, &ops[..split]);
        let opt_first = normalize(opt.solve(&reg, 1_000_000).unwrap());
        let naive_first = normalize(naive.solve(&reg, 1_000_000).unwrap());
        prop_assert_eq!(&opt_first, &naive_first);

        apply(&mut opt, num_nodes, &ops[split..]);
        apply(&mut naive, num_nodes, &ops[split..]);
        let opt_second = normalize(opt.solve(&reg, 1_000_000).unwrap());
        let naive_second = normalize(naive.solve(&reg, 1_000_000).unwrap());
        // The optimized solver may re-report a pair the first round already
        // delivered (restaged deltas); the builder dedups against wired
        // calls, so what must match is the set of *new* resolutions.
        let opt_new: Vec<(u32, u32)> = opt_second
            .into_iter()
            .filter(|p| !opt_first.contains(p))
            .collect();
        prop_assert_eq!(&opt_new, &naive_second);

        // The original nodes must agree exactly; cell nodes are created
        // lazily in engine-specific order, so they are compared through
        // the pointee-indexed sets of the nodes that reach them.
        for n in 0..num_nodes {
            prop_assert_eq!(
                opt.pts(n),
                naive.pts(n),
                "points-to sets diverge at node {}",
                n
            );
        }

        // Third engine: the dense full-pass loop that the adaptive serial
        // cutoff routes micro graphs to. Same incremental two-round
        // protocol; its `reported` gate means repeat resolutions are
        // filtered at the source, exactly like the reference engine.
        let mut dense = Solver::default();
        for _ in 0..num_nodes {
            dense.add_node();
        }
        apply(&mut dense, num_nodes, &ops[..split]);
        let dense_first = normalize(dense.solve_dense(&reg, 1_000_000).unwrap());
        prop_assert_eq!(&dense_first, &naive_first);

        apply(&mut dense, num_nodes, &ops[split..]);
        let dense_second = normalize(dense.solve_dense(&reg, 1_000_000).unwrap());
        let dense_new: Vec<(u32, u32)> = dense_second
            .into_iter()
            .filter(|p| !dense_first.contains(p))
            .collect();
        prop_assert_eq!(&dense_new, &naive_second);

        for n in 0..num_nodes {
            prop_assert_eq!(
                dense.pts(n),
                naive.pts(n),
                "dense points-to diverges at node {}",
                n
            );
        }

        // Fourth engine: the sharded bulk-synchronous loop, at several pool
        // widths, must match the serial optimized solver bit for bit —
        // same new resolutions per round and same final points-to sets.
        for width in [1usize, 2, 3] {
            let pool = Pool::new(width);
            let mut sharded = Solver::default();
            for _ in 0..num_nodes {
                sharded.add_node();
            }
            apply(&mut sharded, num_nodes, &ops[..split]);
            let first = normalize(sharded.solve_sharded(&reg, 1_000_000, pool).unwrap());
            prop_assert_eq!(&first, &naive_first, "sharded first round, width {}", width);

            apply(&mut sharded, num_nodes, &ops[split..]);
            let second = normalize(sharded.solve_sharded(&reg, 1_000_000, pool).unwrap());
            let new: Vec<(u32, u32)> =
                second.into_iter().filter(|p| !first.contains(p)).collect();
            prop_assert_eq!(&new, &naive_second, "sharded second round, width {}", width);

            for n in 0..num_nodes {
                prop_assert_eq!(
                    sharded.pts(n),
                    naive.pts(n),
                    "sharded points-to diverges at node {}, width {}",
                    n,
                    width
                );
            }
        }
    }
}
