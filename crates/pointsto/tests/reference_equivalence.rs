//! End-to-end equivalence: [`analyze`] (word-parallel difference
//! propagation, cycle collapse) against [`analyze_reference`] (naive
//! iterate-to-fixpoint), over every synthetic Java and C workload.
//!
//! The builder normalizes the order in which discovered indirect-call
//! targets are wired, so the two engines assign identical context and cell
//! numbers and every externally observable query must agree bit for bit.

use oha_pointsto::{analyze, analyze_reference, PointsTo, PointsToConfig, Sensitivity};
use oha_workloads::{c_suite, java_suite, Workload, WorkloadParams};

fn assert_equivalent(w: &Workload, config: &PointsToConfig<'_>, label: &str) {
    // Clone-budget exhaustion (the paper's "sound CS cannot complete") is
    // decided by the builder, not the solver, so the engines must agree on
    // it too — same outcome, same reason.
    match (
        analyze(&w.program, config),
        analyze_reference(&w.program, config),
    ) {
        (Ok(opt), Ok(naive)) => assert_same_results(w, label, &opt, &naive),
        (Err(a), Err(b)) => assert_eq!(
            a.reason, b.reason,
            "{}/{label}: engines exhausted for different reasons",
            w.name
        ),
        (Ok(_), Err(e)) => panic!(
            "{}/{label}: only the reference solver exhausted: {}",
            w.name, e.reason
        ),
        (Err(e), Ok(_)) => panic!(
            "{}/{label}: only the optimized solver exhausted: {}",
            w.name, e.reason
        ),
    }
}

fn assert_same_results(w: &Workload, label: &str, opt: &PointsTo, naive: &PointsTo) {
    for inst in w.program.inst_ids() {
        assert_eq!(
            opt.load_cells(inst),
            naive.load_cells(inst),
            "{}/{label}: load cells diverge at {inst:?}",
            w.name
        );
        assert_eq!(
            opt.store_cells(inst),
            naive.store_cells(inst),
            "{}/{label}: store cells diverge at {inst:?}",
            w.name
        );
        assert_eq!(
            opt.lock_cells(inst),
            naive.lock_cells(inst),
            "{}/{label}: lock cells diverge at {inst:?}",
            w.name
        );
        assert_eq!(
            opt.callees(inst),
            naive.callees(inst),
            "{}/{label}: callees diverge at {inst:?}",
            w.name
        );
    }
    assert_eq!(
        opt.stats().contexts,
        naive.stats().contexts,
        "{}/{label}: context counts diverge",
        w.name
    );
    assert_eq!(
        opt.stats().num_cells,
        naive.stats().num_cells,
        "{}/{label}: cell counts diverge",
        w.name
    );
    let (a, b) = (opt.alias_rate(), naive.alias_rate());
    assert!(
        (a - b).abs() < 1e-12,
        "{}/{label}: alias rates diverge ({a} vs {b})",
        w.name
    );
}

#[test]
fn optimized_and_reference_agree_on_every_workload() {
    let params = WorkloadParams::small();
    let ci = PointsToConfig {
        sensitivity: Sensitivity::ContextInsensitive,
        ..PointsToConfig::default()
    };
    let cs = PointsToConfig {
        sensitivity: Sensitivity::ContextSensitive,
        ..PointsToConfig::default()
    };
    for w in java_suite::all(&params)
        .iter()
        .chain(c_suite::all(&params).iter())
    {
        assert_equivalent(w, &ci, "sound_ci");
        assert_equivalent(w, &cs, "sound_cs");
    }
}
