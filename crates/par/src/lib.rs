//! # oha-par — scoped fork/join parallelism for the pipeline
//!
//! A zero-dependency (std-only) scoped thread pool used by the profiling
//! phase and the benchmark harness. Registry crates (rayon and friends)
//! are unavailable in the offline build environment, so — like the
//! `vendor/` stand-ins — this crate implements exactly the surface the
//! workspace needs:
//!
//! - [`scope`] / [`PoolScope::spawn`]: structured scoped threads whose
//!   handles propagate worker panics on [`TaskHandle::join`],
//! - [`Pool::par_map`]: an order-preserving parallel map over a slice,
//!   scheduled as contiguous chunks (no work stealing — static chunking
//!   keeps the execution shape reproducible and the scheduler trivial),
//! - [`thread_count`]: the pool sizing rule, `OHA_THREADS` environment
//!   override first, [`std::thread::available_parallelism`] otherwise,
//! - [`TaskPool`]: persistent workers over a shared FIFO queue, for
//!   long-running services (the `oha-serve` daemon) that need graceful
//!   drain semantics rather than scoped fork/join.
//!
//! Determinism is the contract of every consumer: `par_map` returns
//! results in input order, so folding its output sequentially yields the
//! same bytes whether the pool has one thread or sixteen. See DESIGN.md
//! "Parallelism".

use std::env;
use std::panic::resume_unwind;
use std::thread::{self, Scope, ScopedJoinHandle};

mod taskpool;

pub use taskpool::TaskPool;

/// Environment variable overriding the worker-thread count (`0`, empty, or
/// unparsable values fall back to the hardware default).
pub const THREADS_ENV: &str = "OHA_THREADS";

/// The hardware thread budget: [`std::thread::available_parallelism`],
/// or 1 when the platform cannot report it.
pub fn hardware_threads() -> usize {
    thread::available_parallelism().map_or(1, usize::from)
}

/// The pool sizing rule: the `OHA_THREADS` environment override when it
/// parses to a positive integer, the hardware budget otherwise.
pub fn thread_count() -> usize {
    thread_count_from(env::var(THREADS_ENV).ok().as_deref())
}

/// [`thread_count`] with an explicit override value (testable without
/// touching process environment).
pub fn thread_count_from(over: Option<&str>) -> usize {
    over.map(str::trim)
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(hardware_threads)
}

/// Runs `f` with a [`PoolScope`] that can spawn scoped worker threads; all
/// workers are joined before `scope` returns (and an unjoined worker panic
/// re-raises here, as with [`std::thread::scope`]).
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&PoolScope<'scope, 'env>) -> T,
{
    thread::scope(|s| f(&PoolScope { inner: s }))
}

/// Spawner handed to the [`scope`] closure.
#[derive(Debug)]
pub struct PoolScope<'scope, 'env: 'scope> {
    inner: &'scope Scope<'scope, 'env>,
}

impl<'scope, 'env> PoolScope<'scope, 'env> {
    /// Spawns a scoped worker; the returned handle's
    /// [`join`](TaskHandle::join) yields the closure's result.
    pub fn spawn<F, T>(&self, f: F) -> TaskHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        TaskHandle {
            inner: self.inner.spawn(f),
        }
    }
}

/// Handle to one spawned worker.
#[derive(Debug)]
pub struct TaskHandle<'scope, T> {
    inner: ScopedJoinHandle<'scope, T>,
}

impl<T> TaskHandle<'_, T> {
    /// Waits for the worker and returns its result, re-raising the
    /// worker's panic on the calling thread if it panicked.
    pub fn join(self) -> T {
        match self.inner.join() {
            Ok(v) => v,
            Err(payload) => resume_unwind(payload),
        }
    }
}

/// A fixed-width fork/join pool. Creating one is free (threads are scoped
/// per call, not kept alive), so consumers build one wherever they need a
/// parallel section.
#[derive(Clone, Copy, Debug)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool with exactly `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// A pool sized by [`thread_count`] (`OHA_THREADS` override, hardware
    /// default).
    pub fn from_env() -> Self {
        Self::new(thread_count())
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `items` in parallel, returning results **in input
    /// order**. Items are scheduled as contiguous chunks, one worker per
    /// chunk (work-stealing-free: the assignment of item to worker is a
    /// pure function of `items.len()` and the pool width). A panicking
    /// `f` propagates to the caller. With one worker (or one item) this
    /// degenerates to a plain serial map on the calling thread.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        if self.threads <= 1 || items.len() <= 1 {
            return items.iter().map(&f).collect();
        }
        let chunk = items.len().div_ceil(self.threads);
        let f = &f;
        scope(|s| {
            let handles: Vec<_> = items
                .chunks(chunk)
                .map(|c| s.spawn(move || c.iter().map(f).collect::<Vec<R>>()))
                .collect();
            let mut out = Vec::with_capacity(items.len());
            for h in handles {
                out.extend(h.join());
            }
            out
        })
    }

    /// Runs two independent closures, potentially in parallel, and
    /// returns both results. With a single-thread pool both run serially
    /// on the calling thread (in `a`, `b` order); otherwise `b` runs on a
    /// scoped worker while `a` runs on the caller. Either side's panic
    /// propagates to the caller. The two closures must not communicate —
    /// callers rely on the results being independent of which branch
    /// finishes first.
    pub fn join<A, B, RA, RB>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        if self.threads <= 1 {
            return (a(), b());
        }
        scope(|s| {
            let hb = s.spawn(b);
            let ra = a();
            (ra, hb.join())
        })
    }

    /// [`par_map`](Pool::par_map) with the item index passed to `f`
    /// (useful when workers need a per-item seed or label).
    pub fn par_map_indexed<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        if self.threads <= 1 || items.len() <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let chunk = items.len().div_ceil(self.threads);
        let f = &f;
        scope(|s| {
            let handles: Vec<_> = items
                .chunks(chunk)
                .enumerate()
                .map(|(k, c)| {
                    let base = k * chunk;
                    s.spawn(move || {
                        c.iter()
                            .enumerate()
                            .map(|(i, t)| f(base + i, t))
                            .collect::<Vec<R>>()
                    })
                })
                .collect();
            let mut out = Vec::with_capacity(items.len());
            for h in handles {
                out.extend(h.join());
            }
            out
        })
    }
}

impl Default for Pool {
    fn default() -> Self {
        Self::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 4, 16, 64] {
            let parallel = Pool::new(threads).par_map(&items, |x| x * 3 + 1);
            assert_eq!(parallel, serial, "order broken at {threads} threads");
        }
    }

    #[test]
    fn par_map_indexed_sees_true_indices() {
        let items = vec!["a", "b", "c", "d", "e"];
        let got = Pool::new(3).par_map_indexed(&items, |i, s| format!("{i}:{s}"));
        assert_eq!(got, ["0:a", "1:b", "2:c", "3:d", "4:e"]);
    }

    #[test]
    fn par_map_runs_every_item_exactly_once() {
        let hits = AtomicUsize::new(0);
        let items: Vec<usize> = (0..100).collect();
        let out = Pool::new(7).par_map(&items, |&i| {
            hits.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(out, items);
        assert_eq!(hits.load(Ordering::Relaxed), items.len());
    }

    #[test]
    fn par_map_propagates_worker_panics() {
        let items: Vec<u32> = (0..32).collect();
        let pool = Pool::new(4);
        let err = catch_unwind(AssertUnwindSafe(|| {
            pool.par_map(&items, |&x| {
                if x == 17 {
                    panic!("boom at {x}");
                }
                x
            })
        }))
        .expect_err("worker panic must reach the caller");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("boom at 17"), "unexpected payload: {msg}");
    }

    #[test]
    fn join_returns_both_results_at_any_width() {
        for threads in [1, 2, 8] {
            let pool = Pool::new(threads);
            let (a, b) = pool.join(|| 40, || "two");
            assert_eq!((a, b), (40, "two"), "join broken at {threads} threads");
        }
    }

    #[test]
    fn join_propagates_panics_from_either_branch() {
        for threads in [1, 4] {
            let pool = Pool::new(threads);
            let err = catch_unwind(AssertUnwindSafe(|| {
                pool.join(|| 1, || panic!("right side"))
            }))
            .expect_err("branch panic must reach the caller");
            let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
            assert!(msg.contains("right side"), "unexpected payload: {msg}");
        }
    }

    #[test]
    fn scope_spawn_join_returns_values() {
        let total = scope(|s| {
            let a = s.spawn(|| 40);
            let b = s.spawn(|| 2);
            a.join() + b.join()
        });
        assert_eq!(total, 42);
    }

    #[test]
    fn thread_count_override_rules() {
        assert_eq!(thread_count_from(Some("3")), 3);
        assert_eq!(thread_count_from(Some(" 8 ")), 8);
        let hw = hardware_threads();
        assert_eq!(thread_count_from(None), hw);
        assert_eq!(thread_count_from(Some("")), hw);
        assert_eq!(thread_count_from(Some("0")), hw);
        assert_eq!(thread_count_from(Some("lots")), hw);
        assert!(hw >= 1);
    }

    #[test]
    fn pool_clamps_to_one_thread() {
        assert_eq!(Pool::new(0).threads(), 1);
        assert_eq!(Pool::new(5).threads(), 5);
        let empty: Vec<i32> = Vec::new();
        assert!(Pool::new(4).par_map(&empty, |x| *x).is_empty());
    }
}
