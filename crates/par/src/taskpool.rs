//! A persistent worker pool with a shared job queue.
//!
//! [`Pool`](crate::Pool) is scoped fork/join: threads live for one
//! parallel section. A long-running service (the `oha-serve` analysis
//! daemon) instead needs workers that outlive any one request, a queue
//! that absorbs bursts, and a graceful drain on shutdown. `TaskPool`
//! provides exactly that, std-only: a `Mutex`-protected `VecDeque` of
//! boxed jobs and two `Condvar`s (one waking idle workers, one waking
//! drain waiters).
//!
//! Results do not flow through the pool — callers pair each submitted job
//! with their own channel (e.g. `std::sync::mpsc` plus `recv_timeout` for
//! per-request deadlines), which keeps the pool's surface minimal and its
//! jobs `FnOnce() + Send + 'static`.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use oha_obs::Histogram;

type Job = Box<dyn FnOnce() + Send + 'static>;

#[derive(Default)]
struct QueueState {
    /// Queued jobs, each stamped with its enqueue time so the pool can
    /// account queue-wait latency.
    jobs: VecDeque<(Instant, Job)>,
    /// Jobs currently executing on a worker.
    active: usize,
    /// Once set, `submit` refuses new jobs; workers exit when the queue
    /// drains.
    shutting_down: bool,
}

struct Shared {
    state: Mutex<QueueState>,
    /// Wakes workers when a job arrives or shutdown begins.
    work_ready: Condvar,
    /// Wakes `wait_idle`/`shutdown` when the pool may have drained.
    drained: Condvar,
    /// Jobs whose closure panicked (the worker survives; the panic is
    /// contained and counted).
    panicked: AtomicU64,
    /// Time jobs spent queued before a worker picked them up.
    queue_wait: Mutex<Histogram>,
}

/// A fixed-width pool of persistent workers consuming a shared FIFO
/// queue.
///
/// Dropping the pool performs a graceful [`TaskPool::shutdown`]: already
/// queued jobs still run, then workers are joined.
pub struct TaskPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for TaskPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskPool")
            .field("threads", &self.workers.len())
            .field("pending", &self.pending())
            .finish()
    }
}

impl TaskPool {
    /// Starts a pool with `threads` persistent workers (clamped to at
    /// least 1).
    pub fn new(threads: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState::default()),
            work_ready: Condvar::new(),
            drained: Condvar::new(),
            panicked: AtomicU64::new(0),
            queue_wait: Mutex::new(Histogram::new()),
        });
        let workers = (0..threads.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("oha-taskpool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning a pool worker")
            })
            .collect();
        Self { shared, workers }
    }

    /// A pool sized by [`thread_count`](crate::thread_count)
    /// (`OHA_THREADS` override, hardware default).
    pub fn from_env() -> Self {
        Self::new(crate::thread_count())
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a job. Returns `false` (dropping the job) if the pool is
    /// shutting down.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) -> bool {
        let mut state = self.shared.state.lock().expect("pool lock");
        if state.shutting_down {
            return false;
        }
        state.jobs.push_back((Instant::now(), Box::new(job)));
        drop(state);
        self.shared.work_ready.notify_one();
        true
    }

    /// Jobs queued but not yet started.
    pub fn pending(&self) -> usize {
        self.shared.state.lock().expect("pool lock").jobs.len()
    }

    /// Jobs currently executing on a worker.
    pub fn active(&self) -> usize {
        self.shared.state.lock().expect("pool lock").active
    }

    /// A snapshot of the queue-wait latency distribution (nanoseconds
    /// from submit to worker pickup).
    pub fn queue_wait(&self) -> Histogram {
        self.shared.queue_wait.lock().expect("pool lock").clone()
    }

    /// Jobs whose closure panicked (each was contained; its worker
    /// survived).
    pub fn panicked_jobs(&self) -> u64 {
        self.shared.panicked.load(Ordering::Relaxed)
    }

    /// Blocks until the queue is empty **and** no job is executing.
    pub fn wait_idle(&self) {
        let mut state = self.shared.state.lock().expect("pool lock");
        while !state.jobs.is_empty() || state.active > 0 {
            state = self.shared.drained.wait(state).expect("pool lock");
        }
    }

    /// Graceful drain: stop accepting jobs, run everything already
    /// queued, then join the workers.
    pub fn shutdown(mut self) {
        self.begin_shutdown_and_join();
    }

    fn begin_shutdown_and_join(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool lock");
            if state.shutting_down && self.workers.is_empty() {
                return;
            }
            state.shutting_down = true;
        }
        self.shared.work_ready.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for TaskPool {
    fn drop(&mut self) {
        self.begin_shutdown_and_join();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let (enqueued, job) = {
            let mut state = shared.state.lock().expect("pool lock");
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    state.active += 1;
                    break job;
                }
                if state.shutting_down {
                    return;
                }
                state = shared.work_ready.wait(state).expect("pool lock");
            }
        };
        shared
            .queue_wait
            .lock()
            .expect("pool lock")
            .record_duration(enqueued.elapsed());
        // Contain job panics: a poisoned request must not take a worker
        // (and with it, eventually, the whole daemon) down.
        if catch_unwind(AssertUnwindSafe(job)).is_err() {
            shared.panicked.fetch_add(1, Ordering::Relaxed);
        }
        let mut state = shared.state.lock().expect("pool lock");
        state.active -= 1;
        if state.jobs.is_empty() && state.active == 0 {
            shared.drained.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn runs_every_submitted_job_exactly_once() {
        let pool = TaskPool::new(4);
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let hits = Arc::clone(&hits);
            assert!(pool.submit(move || {
                hits.fetch_add(1, Ordering::Relaxed);
            }));
        }
        pool.wait_idle();
        assert_eq!(hits.load(Ordering::Relaxed), 100);
        pool.shutdown();
        assert_eq!(hits.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let pool = TaskPool::new(2);
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..32 {
            let hits = Arc::clone(&hits);
            pool.submit(move || {
                std::thread::sleep(Duration::from_millis(1));
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.shutdown();
        assert_eq!(
            hits.load(Ordering::Relaxed),
            32,
            "graceful drain runs everything already queued"
        );
    }

    #[test]
    fn submit_after_shutdown_is_refused() {
        let pool = TaskPool::new(1);
        // Drop triggers the same code path as shutdown(); use a second
        // pool to check the flag directly.
        {
            let mut state = pool.shared.state.lock().unwrap();
            state.shutting_down = true;
        }
        assert!(!pool.submit(|| panic!("must never run")));
        // Reset so drop's join can complete.
        pool.shared.state.lock().unwrap().shutting_down = false;
    }

    #[test]
    fn panicking_job_does_not_kill_workers() {
        let pool = TaskPool::new(1);
        pool.submit(|| panic!("contained"));
        pool.wait_idle();
        assert_eq!(pool.panicked_jobs(), 1);
        // The single worker is still alive and serving.
        let (tx, rx) = mpsc::channel();
        pool.submit(move || tx.send(42u32).unwrap());
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 42);
        pool.shutdown();
    }

    #[test]
    fn results_flow_through_caller_channels() {
        let pool = TaskPool::new(3);
        let (tx, rx) = mpsc::channel();
        for i in 0..10u64 {
            let tx = tx.clone();
            pool.submit(move || tx.send(i * i).unwrap());
        }
        drop(tx);
        let mut got: Vec<u64> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..10).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn width_is_clamped_and_reported() {
        let pool = TaskPool::new(0);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.pending(), 0);
        assert_eq!(pool.active(), 0);
    }

    #[test]
    fn queue_wait_is_recorded_per_job() {
        let pool = TaskPool::new(1);
        let (tx, rx) = mpsc::channel();
        for _ in 0..8 {
            let tx = tx.clone();
            pool.submit(move || tx.send(()).unwrap());
        }
        for _ in 0..8 {
            rx.recv_timeout(Duration::from_secs(5)).unwrap();
        }
        pool.wait_idle();
        let wait = pool.queue_wait();
        assert_eq!(wait.count(), 8, "one sample per executed job");
        assert!(wait.max() < 5_000_000_000, "waits are sane nanoseconds");
    }
}
