//! End-to-end daemon tests: many concurrent clients must get responses
//! byte-identical to a serial in-process pipeline, malformed requests
//! must get error responses (not a dead daemon), and shutdown must
//! drain gracefully.

use std::fs;
use std::path::PathBuf;
use std::thread;

use oha_core::{optft_canonical_json, optslice_canonical_json, Pipeline};
use oha_ir::{print_program, InstKind, Operand, Program, ProgramBuilder};
use oha_obs::{Json, TraceEventKind, TraceLog};
use oha_serve::{Client, MetricsFormat, Server, ServerConfig, Tool};
use Operand::{Const, Reg as R};

const CLIENTS: usize = 16;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("oha-daemon-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Two workers increment a shared counter under a lock.
fn locked_counter() -> Program {
    let mut pb = ProgramBuilder::new();
    let g = pb.global("shared", 1);
    let w = pb.declare("worker", 1);
    let mut m = pb.function("main", 0);
    let n1 = m.input();
    let t1 = m.spawn(w, R(n1));
    let t2 = m.spawn(w, R(n1));
    m.join(R(t1));
    m.join(R(t2));
    let ga = m.addr_global(g);
    let v = m.load(R(ga), 0);
    m.output(R(v));
    m.ret(None);
    let main = pb.finish_function(m);
    let mut wf = pb.function("worker", 1);
    let iters = wf.param(0);
    let head = wf.block();
    let body = wf.block();
    let exit = wf.block();
    let ga = wf.addr_global(g);
    let i = wf.copy(Const(0));
    wf.jump(head);
    wf.select(head);
    let c = wf.cmp(oha_ir::CmpOp::Lt, R(i), R(iters));
    wf.branch(R(c), body, exit);
    wf.select(body);
    wf.lock(R(ga));
    let v = wf.load(R(ga), 0);
    let v1 = wf.bin(oha_ir::BinOp::Add, R(v), Const(1));
    wf.store(R(ga), 0, R(v1));
    wf.unlock(R(ga));
    let i1 = wf.bin(oha_ir::BinOp::Add, R(i), Const(1));
    wf.copy_to(i, R(i1));
    wf.jump(head);
    wf.select(exit);
    wf.ret(None);
    pb.finish_function(wf);
    pb.finish(main).unwrap()
}

fn corpora() -> (Vec<Vec<i64>>, Vec<Vec<i64>>) {
    let profiling = (1..5).map(|n| vec![n * 10]).collect();
    let testing = (1..4).map(|n| vec![n * 7]).collect();
    (profiling, testing)
}

#[test]
fn concurrent_clients_match_the_serial_pipeline_byte_for_byte() {
    let dir = tmp_dir("concurrent");
    let socket = dir.join("daemon.sock");
    let store_dir = dir.join("store");

    let program = locked_counter();
    let text = print_program(&program);
    let (profiling, testing) = corpora();

    // The serial, storeless in-process runs are the oracle. Empty
    // endpoints on the wire mean "every output instruction" — mirror
    // that here.
    let expected_ft =
        optft_canonical_json(&Pipeline::new(program.clone()).run_optft(&profiling, &testing));
    let endpoints: Vec<_> = program
        .insts()
        .filter(|i| matches!(i.kind, InstKind::Output { .. }))
        .map(|i| i.id)
        .collect();
    let expected_slice = optslice_canonical_json(
        &Pipeline::new(program.clone()).run_optslice(&profiling, &testing, &endpoints),
    );

    let server = Server::bind(ServerConfig {
        socket: socket.clone(),
        store_dir: Some(store_dir),
        ..ServerConfig::default()
    })
    .unwrap();
    let server_thread = thread::spawn(move || server.run().unwrap());

    thread::scope(|scope| {
        for n in 0..CLIENTS {
            let (socket, text) = (&socket, &text);
            let (profiling, testing) = (&profiling, &testing);
            let (expected_ft, expected_slice) = (&expected_ft, &expected_slice);
            scope.spawn(move || {
                let mut client = Client::connect(socket).unwrap();
                let (tool, expected) = if n % 2 == 0 {
                    (Tool::OptFt, expected_ft)
                } else {
                    (Tool::OptSlice, expected_slice)
                };
                let response = client.analyze(tool, text, profiling, testing, &[]).unwrap();
                assert!(response.ok, "client {n}: {}", response.body);
                assert_eq!(
                    &response.body,
                    expected,
                    "client {n} ({}) diverged from the serial pipeline",
                    tool.name()
                );
            });
        }
    });

    // A repeat of an already-answered request is served from the LRU
    // front and flagged as cached — with the same bytes.
    let mut client = Client::connect(&socket).unwrap();
    let repeat = client
        .analyze(Tool::OptFt, &text, &profiling, &testing, &[])
        .unwrap();
    assert!(repeat.ok);
    assert!(repeat.cached, "identical request must hit the LRU front");
    assert_eq!(repeat.body, expected_ft);

    let stats = client.stats().unwrap();
    assert!(stats.ok);
    assert!(
        stats.body.contains("\"requests\""),
        "stats is JSON: {}",
        stats.body
    );

    let bye = client.shutdown().unwrap();
    assert!(bye.ok);
    let drained = server_thread.join().unwrap();
    assert!(drained.requests >= CLIENTS as u64 + 2);
    assert!(drained.lru_hits >= 1);
    assert!(!socket.exists(), "graceful drain removes the socket file");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn bad_requests_get_error_responses_and_the_daemon_survives() {
    let dir = tmp_dir("bad-requests");
    let socket = dir.join("daemon.sock");

    let server = Server::bind(ServerConfig {
        socket: socket.clone(),
        store_dir: None,
        ..ServerConfig::default()
    })
    .unwrap();
    let server_thread = thread::spawn(move || server.run().unwrap());

    let program = locked_counter();
    let text = print_program(&program);
    let (profiling, testing) = corpora();
    let mut client = Client::connect(&socket).unwrap();

    // Unparsable program: an error response, not a hangup.
    let garbage = client
        .analyze(Tool::OptFt, "fn main( {", &profiling, &testing, &[])
        .unwrap();
    assert!(!garbage.ok);

    // Out-of-range endpoint id: likewise.
    let out_of_range = client
        .analyze(Tool::OptSlice, &text, &profiling, &testing, &[u32::MAX])
        .unwrap();
    assert!(!out_of_range.ok);
    assert!(
        out_of_range.body.contains("endpoint"),
        "diagnosable error: {}",
        out_of_range.body
    );

    // The same connection still serves good requests afterwards.
    let good = client
        .analyze(Tool::OptFt, &text, &profiling, &testing, &[])
        .unwrap();
    assert!(good.ok, "{}", good.body);

    client.shutdown().unwrap();
    let drained = server_thread.join().unwrap();
    assert_eq!(drained.errors, 2);
    let _ = fs::remove_dir_all(&dir);
}

/// The `metrics` op under concurrent load: the Prometheus exposition
/// parses, and the request-latency histogram's count equals the requests
/// counter in the same snapshot (both recorded at the same site).
#[test]
fn metrics_endpoint_reports_live_gauges_and_latency() {
    let dir = tmp_dir("metrics");
    let socket = dir.join("daemon.sock");

    let server = Server::bind(ServerConfig {
        socket: socket.clone(),
        store_dir: None,
        ..ServerConfig::default()
    })
    .unwrap();
    let server_thread = thread::spawn(move || server.run().unwrap());

    let program = locked_counter();
    let text = print_program(&program);
    let (profiling, testing) = corpora();

    thread::scope(|scope| {
        for n in 0..CLIENTS {
            let (socket, text) = (&socket, &text);
            let (profiling, testing) = (&profiling, &testing);
            scope.spawn(move || {
                let mut client = Client::connect(socket).unwrap();
                let response = client
                    .analyze(Tool::OptFt, text, profiling, testing, &[])
                    .unwrap();
                assert!(response.ok, "client {n}: {}", response.body);
            });
        }
    });

    let mut client = Client::connect(&socket).unwrap();

    // JSON snapshot first: at this point exactly CLIENTS requests were
    // answered, and the latency histogram must account for every one.
    let snapshot = client.metrics(MetricsFormat::Json).unwrap();
    assert!(snapshot.ok, "{}", snapshot.body);
    let doc = Json::parse(&snapshot.body).expect("metrics JSON must parse");
    let requests = doc.get("requests").and_then(Json::as_u64).unwrap();
    assert_eq!(requests, CLIENTS as u64);
    let latency = doc.get("request_latency_ns").expect("latency histogram");
    let hist = oha_obs::Histogram::from_json(latency).expect("histogram parses");
    assert_eq!(
        hist.count(),
        requests,
        "one latency sample per answered request"
    );
    assert!(hist.max() > 0, "analyze requests take measurable time");
    // This client is connected; handlers for the 16 just-closed
    // connections may not have observed EOF yet.
    let open = doc.get("open_connections").and_then(Json::as_u64).unwrap();
    assert!(
        (1..=CLIENTS as u64 + 1).contains(&open),
        "open_connections gauge out of range: {open}"
    );
    assert!(doc.get("queue_wait_ns").is_some());
    assert_eq!(
        doc.get("trace")
            .and_then(|t| t.get("enabled"))
            .and_then(|e| match e {
                Json::Bool(b) => Some(*b),
                _ => None,
            }),
        Some(false),
        "tracing stays off unless configured"
    );

    // Prometheus exposition second (it sees the metrics request too):
    // every non-comment line is `name[{labels}] value` with a numeric
    // value, and the core families are present.
    let prom = client.metrics(MetricsFormat::Prometheus).unwrap();
    assert!(prom.ok);
    let body = &prom.body;
    for family in [
        "oha_requests_total",
        "oha_request_latency_seconds_bucket",
        "oha_request_latency_seconds_count",
        "oha_queue_wait_seconds_count",
        "oha_queue_depth",
        "oha_open_connections",
        "oha_lru_entries",
    ] {
        assert!(body.contains(family), "missing {family} in:\n{body}");
    }
    for line in body
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
    {
        let (name, value) = line.rsplit_once(' ').expect("sample line shape");
        assert!(!name.is_empty(), "unnamed sample: {line}");
        value.parse::<f64>().unwrap_or_else(|_| {
            panic!("non-numeric sample value in line: {line}");
        });
    }
    assert!(
        body.contains(&format!(
            "oha_requests_total {}",
            CLIENTS as u64 + 1 // the JSON metrics request was answered too
        )),
        "{body}"
    );
    assert!(
        body.contains("oha_request_latency_seconds_bucket{le=\"+Inf\"}"),
        "histograms end with the +Inf bucket"
    );

    client.shutdown().unwrap();
    let drained = server_thread.join().unwrap();
    assert_eq!(drained.requests, CLIENTS as u64 + 3);
    assert_eq!(drained.open_connections, 0, "drained gauges settle to zero");
    assert_eq!(drained.in_flight, 0);
    let _ = fs::remove_dir_all(&dir);
}

/// With tracing enabled, one analyze request yields causally-linked
/// events across the I/O handler and the compute pipeline (distinct
/// virtual tracks, one trace ID), the trace ID round-trips to the
/// client, an LRU repeat records a hit instant, and the drain writes a
/// parseable Chrome trace file.
#[test]
fn traced_requests_link_io_and_compute_events() {
    let dir = tmp_dir("traced");
    let socket = dir.join("daemon.sock");
    let trace_path = dir.join("trace.json");

    let trace = TraceLog::enabled(1 << 14);
    let server = Server::bind(ServerConfig {
        socket: socket.clone(),
        store_dir: None,
        trace: trace.clone(),
        trace_out: Some(trace_path.clone()),
        ..ServerConfig::default()
    })
    .unwrap();
    let server_thread = thread::spawn(move || server.run().unwrap());

    let program = locked_counter();
    let text = print_program(&program);
    let (profiling, testing) = corpora();
    let mut client = Client::connect(&socket).unwrap();

    const TRACE_ID: u64 = 7777;
    let response = client
        .analyze_traced(Tool::OptFt, &text, &profiling, &testing, &[], TRACE_ID)
        .unwrap();
    assert!(response.ok, "{}", response.body);
    assert_eq!(
        response.trace_id, TRACE_ID,
        "the client's trace ID is echoed back"
    );

    // A daemon-minted ID when the client sends 0 — and the repeat is an
    // LRU hit despite the different trace ID (the cache key ignores it).
    let repeat = client
        .analyze(Tool::OptFt, &text, &profiling, &testing, &[])
        .unwrap();
    assert!(repeat.ok);
    assert!(repeat.cached, "trace IDs must not defeat the LRU front");
    assert_ne!(repeat.trace_id, 0, "daemon mints an ID for trace_id 0");
    assert_ne!(repeat.trace_id, TRACE_ID);

    let events = trace.events();
    let request_spans: Vec<_> = events
        .iter()
        .filter(|e| e.kind == TraceEventKind::Begin && e.name == "serve/request")
        .collect();
    assert_eq!(request_spans.len(), 2, "one request span per analyze");
    let first = request_spans
        .iter()
        .find(|e| e.trace_id == TRACE_ID)
        .expect("the traced request's span");
    let compute_event = events
        .iter()
        .find(|e| {
            e.trace_id == TRACE_ID && e.kind == TraceEventKind::Begin && e.name != "serve/request"
        })
        .expect("compute-side pipeline spans share the request's trace ID");
    assert_ne!(
        compute_event.tid, first.tid,
        "I/O handler and compute pipeline record on distinct tracks"
    );
    assert!(
        events.iter().any(|e| e.kind == TraceEventKind::Instant
            && e.name == "serve/lru.hit"
            && e.trace_id == repeat.trace_id),
        "the LRU repeat records a hit instant under its own trace"
    );

    client.shutdown().unwrap();
    server_thread.join().unwrap();

    // The drain wrote a Perfetto-loadable Chrome trace document.
    let written = fs::read_to_string(&trace_path).expect("trace file written on drain");
    let doc = Json::parse(&written).expect("trace file is valid JSON");
    let trace_events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(!trace_events.is_empty());
    assert!(trace_events.iter().any(|e| {
        e.get("name").and_then(Json::as_str) == Some("serve/request")
            && e.get("ph").and_then(Json::as_str) == Some("B")
    }));
    let _ = fs::remove_dir_all(&dir);
}
