//! End-to-end daemon tests: many concurrent clients must get responses
//! byte-identical to a serial in-process pipeline, malformed requests
//! must get error responses (not a dead daemon), and shutdown must
//! drain gracefully.

use std::fs;
use std::path::PathBuf;
use std::thread;

use oha_core::{optft_canonical_json, optslice_canonical_json, Pipeline};
use oha_ir::{print_program, InstKind, Operand, Program, ProgramBuilder};
use oha_obs::{Json, TraceEventKind, TraceLog};
use oha_serve::{Client, MetricsFormat, Server, ServerConfig, Tool};
use Operand::{Const, Reg as R};

const CLIENTS: usize = 16;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("oha-daemon-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Two workers increment a shared counter under a lock.
fn locked_counter() -> Program {
    let mut pb = ProgramBuilder::new();
    let g = pb.global("shared", 1);
    let w = pb.declare("worker", 1);
    let mut m = pb.function("main", 0);
    let n1 = m.input();
    let t1 = m.spawn(w, R(n1));
    let t2 = m.spawn(w, R(n1));
    m.join(R(t1));
    m.join(R(t2));
    let ga = m.addr_global(g);
    let v = m.load(R(ga), 0);
    m.output(R(v));
    m.ret(None);
    let main = pb.finish_function(m);
    let mut wf = pb.function("worker", 1);
    let iters = wf.param(0);
    let head = wf.block();
    let body = wf.block();
    let exit = wf.block();
    let ga = wf.addr_global(g);
    let i = wf.copy(Const(0));
    wf.jump(head);
    wf.select(head);
    let c = wf.cmp(oha_ir::CmpOp::Lt, R(i), R(iters));
    wf.branch(R(c), body, exit);
    wf.select(body);
    wf.lock(R(ga));
    let v = wf.load(R(ga), 0);
    let v1 = wf.bin(oha_ir::BinOp::Add, R(v), Const(1));
    wf.store(R(ga), 0, R(v1));
    wf.unlock(R(ga));
    let i1 = wf.bin(oha_ir::BinOp::Add, R(i), Const(1));
    wf.copy_to(i, R(i1));
    wf.jump(head);
    wf.select(exit);
    wf.ret(None);
    pb.finish_function(wf);
    pb.finish(main).unwrap()
}

fn corpora() -> (Vec<Vec<i64>>, Vec<Vec<i64>>) {
    let profiling = (1..5).map(|n| vec![n * 10]).collect();
    let testing = (1..4).map(|n| vec![n * 7]).collect();
    (profiling, testing)
}

#[test]
fn concurrent_clients_match_the_serial_pipeline_byte_for_byte() {
    let dir = tmp_dir("concurrent");
    let socket = dir.join("daemon.sock");
    let store_dir = dir.join("store");

    let program = locked_counter();
    let text = print_program(&program);
    let (profiling, testing) = corpora();

    // The serial, storeless in-process runs are the oracle. Empty
    // endpoints on the wire mean "every output instruction" — mirror
    // that here.
    let expected_ft =
        optft_canonical_json(&Pipeline::new(program.clone()).run_optft(&profiling, &testing));
    let endpoints: Vec<_> = program
        .insts()
        .filter(|i| matches!(i.kind, InstKind::Output { .. }))
        .map(|i| i.id)
        .collect();
    let expected_slice = optslice_canonical_json(
        &Pipeline::new(program.clone()).run_optslice(&profiling, &testing, &endpoints),
    );

    let server = Server::bind(ServerConfig {
        socket: socket.clone(),
        store_dir: Some(store_dir),
        ..ServerConfig::default()
    })
    .unwrap();
    let server_thread = thread::spawn(move || server.run().unwrap());

    thread::scope(|scope| {
        for n in 0..CLIENTS {
            let (socket, text) = (&socket, &text);
            let (profiling, testing) = (&profiling, &testing);
            let (expected_ft, expected_slice) = (&expected_ft, &expected_slice);
            scope.spawn(move || {
                let mut client = Client::connect(socket).unwrap();
                let (tool, expected) = if n % 2 == 0 {
                    (Tool::OptFt, expected_ft)
                } else {
                    (Tool::OptSlice, expected_slice)
                };
                let response = client.analyze(tool, text, profiling, testing, &[]).unwrap();
                assert!(response.ok, "client {n}: {}", response.body);
                assert_eq!(
                    &response.body,
                    expected,
                    "client {n} ({}) diverged from the serial pipeline",
                    tool.name()
                );
            });
        }
    });

    // A repeat of an already-answered request is served from the LRU
    // front and flagged as cached — with the same bytes.
    let mut client = Client::connect(&socket).unwrap();
    let repeat = client
        .analyze(Tool::OptFt, &text, &profiling, &testing, &[])
        .unwrap();
    assert!(repeat.ok);
    assert!(repeat.cached, "identical request must hit the LRU front");
    assert_eq!(repeat.body, expected_ft);

    let stats = client.stats().unwrap();
    assert!(stats.ok);
    assert!(
        stats.body.contains("\"requests\""),
        "stats is JSON: {}",
        stats.body
    );

    let bye = client.shutdown().unwrap();
    assert!(bye.ok);
    let drained = server_thread.join().unwrap();
    assert!(drained.requests >= CLIENTS as u64 + 2);
    assert!(drained.lru_hits >= 1);
    assert!(!socket.exists(), "graceful drain removes the socket file");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn bad_requests_get_error_responses_and_the_daemon_survives() {
    let dir = tmp_dir("bad-requests");
    let socket = dir.join("daemon.sock");

    let server = Server::bind(ServerConfig {
        socket: socket.clone(),
        store_dir: None,
        ..ServerConfig::default()
    })
    .unwrap();
    let server_thread = thread::spawn(move || server.run().unwrap());

    let program = locked_counter();
    let text = print_program(&program);
    let (profiling, testing) = corpora();
    let mut client = Client::connect(&socket).unwrap();

    // Unparsable program: an error response, not a hangup.
    let garbage = client
        .analyze(Tool::OptFt, "fn main( {", &profiling, &testing, &[])
        .unwrap();
    assert!(!garbage.ok);

    // Out-of-range endpoint id: likewise.
    let out_of_range = client
        .analyze(Tool::OptSlice, &text, &profiling, &testing, &[u32::MAX])
        .unwrap();
    assert!(!out_of_range.ok);
    assert!(
        out_of_range.body.contains("endpoint"),
        "diagnosable error: {}",
        out_of_range.body
    );

    // The same connection still serves good requests afterwards.
    let good = client
        .analyze(Tool::OptFt, &text, &profiling, &testing, &[])
        .unwrap();
    assert!(good.ok, "{}", good.body);

    client.shutdown().unwrap();
    let drained = server_thread.join().unwrap();
    assert_eq!(drained.errors, 2);
    let _ = fs::remove_dir_all(&dir);
}

/// The `metrics` op under concurrent load: the Prometheus exposition
/// parses, and the request-latency histogram's count equals the requests
/// counter in the same snapshot (both recorded at the same site).
#[test]
fn metrics_endpoint_reports_live_gauges_and_latency() {
    let dir = tmp_dir("metrics");
    let socket = dir.join("daemon.sock");

    let server = Server::bind(ServerConfig {
        socket: socket.clone(),
        store_dir: None,
        // This test pins exact request counts; a queue bound wider than
        // the client burst keeps Busy sheds (and their hidden retries)
        // out of the arithmetic.
        max_queue: CLIENTS * 2,
        ..ServerConfig::default()
    })
    .unwrap();
    let server_thread = thread::spawn(move || server.run().unwrap());

    let program = locked_counter();
    let text = print_program(&program);
    let (profiling, testing) = corpora();

    thread::scope(|scope| {
        for n in 0..CLIENTS {
            let (socket, text) = (&socket, &text);
            let (profiling, testing) = (&profiling, &testing);
            scope.spawn(move || {
                let mut client = Client::connect(socket).unwrap();
                let response = client
                    .analyze(Tool::OptFt, text, profiling, testing, &[])
                    .unwrap();
                assert!(response.ok, "client {n}: {}", response.body);
            });
        }
    });

    let mut client = Client::connect(&socket).unwrap();

    // JSON snapshot first: at this point exactly CLIENTS requests were
    // answered, and the latency histogram must account for every one.
    let snapshot = client.metrics(MetricsFormat::Json).unwrap();
    assert!(snapshot.ok, "{}", snapshot.body);
    let doc = Json::parse(&snapshot.body).expect("metrics JSON must parse");
    let requests = doc.get("requests").and_then(Json::as_u64).unwrap();
    assert_eq!(requests, CLIENTS as u64);
    let latency = doc.get("request_latency_ns").expect("latency histogram");
    let hist = oha_obs::Histogram::from_json(latency).expect("histogram parses");
    assert_eq!(
        hist.count(),
        requests,
        "one latency sample per answered request"
    );
    assert!(hist.max() > 0, "analyze requests take measurable time");
    // This client is connected; handlers for the 16 just-closed
    // connections may not have observed EOF yet.
    let open = doc.get("open_connections").and_then(Json::as_u64).unwrap();
    assert!(
        (1..=CLIENTS as u64 + 1).contains(&open),
        "open_connections gauge out of range: {open}"
    );
    assert!(doc.get("queue_wait_ns").is_some());
    assert_eq!(
        doc.get("trace")
            .and_then(|t| t.get("enabled"))
            .and_then(|e| match e {
                Json::Bool(b) => Some(*b),
                _ => None,
            }),
        Some(false),
        "tracing stays off unless configured"
    );

    // Prometheus exposition second (it sees the metrics request too):
    // every non-comment line is `name[{labels}] value` with a numeric
    // value, and the core families are present.
    let prom = client.metrics(MetricsFormat::Prometheus).unwrap();
    assert!(prom.ok);
    let body = &prom.body;
    for family in [
        "oha_requests_total",
        "oha_request_latency_seconds_bucket",
        "oha_request_latency_seconds_count",
        "oha_queue_wait_seconds_count",
        "oha_queue_depth",
        "oha_open_connections",
        "oha_lru_entries",
    ] {
        assert!(body.contains(family), "missing {family} in:\n{body}");
    }
    for line in body
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
    {
        let (name, value) = line.rsplit_once(' ').expect("sample line shape");
        assert!(!name.is_empty(), "unnamed sample: {line}");
        value.parse::<f64>().unwrap_or_else(|_| {
            panic!("non-numeric sample value in line: {line}");
        });
    }
    assert!(
        body.contains(&format!(
            "oha_requests_total {}",
            CLIENTS as u64 + 1 // the JSON metrics request was answered too
        )),
        "{body}"
    );
    assert!(
        body.contains("oha_request_latency_seconds_bucket{le=\"+Inf\"}"),
        "histograms end with the +Inf bucket"
    );

    client.shutdown().unwrap();
    let drained = server_thread.join().unwrap();
    assert_eq!(drained.requests, CLIENTS as u64 + 3);
    assert_eq!(drained.open_connections, 0, "drained gauges settle to zero");
    assert_eq!(drained.in_flight, 0);
    let _ = fs::remove_dir_all(&dir);
}

/// With tracing enabled, one analyze request yields causally-linked
/// events across the I/O handler and the compute pipeline (distinct
/// virtual tracks, one trace ID), the trace ID round-trips to the
/// client, an LRU repeat records a hit instant, and the drain writes a
/// parseable Chrome trace file.
#[test]
fn traced_requests_link_io_and_compute_events() {
    let dir = tmp_dir("traced");
    let socket = dir.join("daemon.sock");
    let trace_path = dir.join("trace.json");

    let trace = TraceLog::enabled(1 << 14);
    let server = Server::bind(ServerConfig {
        socket: socket.clone(),
        store_dir: None,
        trace: trace.clone(),
        trace_out: Some(trace_path.clone()),
        ..ServerConfig::default()
    })
    .unwrap();
    let server_thread = thread::spawn(move || server.run().unwrap());

    let program = locked_counter();
    let text = print_program(&program);
    let (profiling, testing) = corpora();
    let mut client = Client::connect(&socket).unwrap();

    const TRACE_ID: u64 = 7777;
    let response = client
        .analyze_traced(Tool::OptFt, &text, &profiling, &testing, &[], TRACE_ID)
        .unwrap();
    assert!(response.ok, "{}", response.body);
    assert_eq!(
        response.trace_id, TRACE_ID,
        "the client's trace ID is echoed back"
    );

    // A daemon-minted ID when the client sends 0 — and the repeat is an
    // LRU hit despite the different trace ID (the cache key ignores it).
    let repeat = client
        .analyze(Tool::OptFt, &text, &profiling, &testing, &[])
        .unwrap();
    assert!(repeat.ok);
    assert!(repeat.cached, "trace IDs must not defeat the LRU front");
    assert_ne!(repeat.trace_id, 0, "daemon mints an ID for trace_id 0");
    assert_ne!(repeat.trace_id, TRACE_ID);

    let events = trace.events();
    let request_spans: Vec<_> = events
        .iter()
        .filter(|e| e.kind == TraceEventKind::Begin && e.name == "serve/request")
        .collect();
    assert_eq!(request_spans.len(), 2, "one request span per analyze");
    let first = request_spans
        .iter()
        .find(|e| e.trace_id == TRACE_ID)
        .expect("the traced request's span");
    let compute_event = events
        .iter()
        .find(|e| {
            e.trace_id == TRACE_ID && e.kind == TraceEventKind::Begin && e.name != "serve/request"
        })
        .expect("compute-side pipeline spans share the request's trace ID");
    assert_ne!(
        compute_event.tid, first.tid,
        "I/O handler and compute pipeline record on distinct tracks"
    );
    assert!(
        events.iter().any(|e| e.kind == TraceEventKind::Instant
            && e.name == "serve/lru.hit"
            && e.trace_id == repeat.trace_id),
        "the LRU repeat records a hit instant under its own trace"
    );

    client.shutdown().unwrap();
    server_thread.join().unwrap();

    // The drain wrote a Perfetto-loadable Chrome trace document.
    let written = fs::read_to_string(&trace_path).expect("trace file written on drain");
    let doc = Json::parse(&written).expect("trace file is valid JSON");
    let trace_events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(!trace_events.is_empty());
    assert!(trace_events.iter().any(|e| {
        e.get("name").and_then(Json::as_str) == Some("serve/request")
            && e.get("ph").and_then(Json::as_str) == Some("B")
    }));
    let _ = fs::remove_dir_all(&dir);
}

/// Regression: a half-open peer — accepts the connection, reads the
/// request, never replies — used to block the client forever. The
/// client-side read deadline must turn that into a prompt typed error.
#[test]
fn client_read_deadline_unwedges_a_half_open_daemon() {
    use std::io::Read as _;
    use std::os::unix::net::UnixListener;
    use std::time::{Duration, Instant};

    let dir = tmp_dir("half-open");
    let socket = dir.join("wedged.sock");
    let listener = UnixListener::bind(&socket).unwrap();
    let wedge = thread::spawn(move || {
        let (mut conn, _) = listener.accept().unwrap();
        // Swallow the request bytes, then go silent without hanging up
        // (an EOF would be detected immediately; silence is the trap).
        let mut sink = [0u8; 4096];
        while let Ok(n) = conn.read(&mut sink) {
            if n == 0 {
                break;
            }
        }
    });

    let mut client = Client::connect_with(
        &socket,
        oha_serve::ClientConfig {
            read_timeout: Some(Duration::from_millis(200)),
            retry: oha_serve::RetryPolicy::none(),
            ..oha_serve::ClientConfig::default()
        },
    )
    .unwrap();
    let started = Instant::now();
    let err = client.stats().unwrap_err();
    assert!(
        matches!(
            err.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ),
        "expected a read-deadline error, got: {err}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "deadline must fire promptly, took {:?}",
        started.elapsed()
    );
    drop(client);
    wedge.join().unwrap();
    let _ = fs::remove_dir_all(&dir);
}

/// At the queue bound the daemon sheds load with a typed `Busy` response
/// instead of queueing without limit; a non-retrying client sees the
/// flag, and the drain counts the rejections.
#[test]
fn saturated_daemon_sheds_load_with_typed_busy_responses() {
    let dir = tmp_dir("busy");
    let socket = dir.join("daemon.sock");

    let server = Server::bind(ServerConfig {
        socket: socket.clone(),
        store_dir: None,
        threads: 1,
        max_queue: 1,
        lru_capacity: 1,
        faults: oha_faults::FaultPlan::parse("delay_ms=400; serve.compute.delay=%1").unwrap(),
        ..ServerConfig::default()
    })
    .unwrap();
    let server_thread = thread::spawn(move || server.run().unwrap());

    let program = locked_counter();
    let text = print_program(&program);

    // Distinct corpora defeat the LRU front, so every request really
    // queues compute. One worker, each job stalled 400 ms, queue bound
    // 1: burst of 8 → some must be shed.
    let outcomes: Vec<bool> = thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|n| {
                let (socket, text) = (&socket, &text);
                scope.spawn(move || {
                    let mut client = Client::connect_with(
                        socket,
                        oha_serve::ClientConfig {
                            retry: oha_serve::RetryPolicy::none(),
                            ..oha_serve::ClientConfig::default()
                        },
                    )
                    .unwrap();
                    let response = client
                        .analyze(Tool::OptFt, text, &[vec![n]], &[vec![n + 1]], &[])
                        .unwrap();
                    assert!(
                        response.ok || response.busy,
                        "only Busy may fail here: {}",
                        response.body
                    );
                    response.busy
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let shed = outcomes.iter().filter(|&&b| b).count();
    assert!(shed >= 1, "an 8-deep burst into a 1-slot queue must shed");
    assert!(shed < 8, "the worker must still make progress");

    let mut client = Client::connect(&socket).unwrap();
    client.shutdown().unwrap();
    let drained = server_thread.join().unwrap();
    assert_eq!(drained.busy_rejections, shed as u64);
    let _ = fs::remove_dir_all(&dir);
}

/// Chaos invariant, end to end: under a multi-site fault plan (torn
/// response frames, compute delays, read stalls, short store writes,
/// read corruption) every retrying client must end with bytes identical
/// to the clean serial pipeline — faults may cost retries and
/// recomputes, never a wrong answer.
#[test]
fn retrying_clients_survive_a_multi_site_fault_plan_with_correct_bytes() {
    let dir = tmp_dir("chaos");
    let socket = dir.join("daemon.sock");
    let store_dir = dir.join("store");

    let program = locked_counter();
    let text = print_program(&program);
    let (profiling, testing) = corpora();
    let expected =
        optft_canonical_json(&Pipeline::new(program.clone()).run_optft(&profiling, &testing));

    let plan = oha_faults::FaultPlan::parse(
        "seed=7; delay_ms=5; serve.write.disconnect=%3; serve.compute.delay=%4; \
         serve.read.stall=%5; store.write.short=%2; store.read.corrupt=%3",
    )
    .unwrap();
    let server = Server::bind(ServerConfig {
        socket: socket.clone(),
        store_dir: Some(store_dir),
        faults: plan.clone(),
        ..ServerConfig::default()
    })
    .unwrap();
    let server_thread = thread::spawn(move || server.run().unwrap());

    thread::scope(|scope| {
        for n in 0..CLIENTS {
            let (socket, text) = (&socket, &text);
            let (profiling, testing) = (&profiling, &testing);
            let expected = &expected;
            scope.spawn(move || {
                let mut client = Client::connect(socket).unwrap();
                let response = client
                    .analyze(Tool::OptFt, text, profiling, testing, &[])
                    .unwrap_or_else(|e| panic!("client {n} exhausted retries: {e}"));
                assert!(response.ok, "client {n}: {}", response.body);
                assert_eq!(
                    &response.body, expected,
                    "client {n}: an injected fault changed the answer"
                );
            });
        }
    });

    // The control plane is exempt from response-tearing, so the fault
    // report is always reachable: the plan really fired.
    let mut client = Client::connect(&socket).unwrap();
    let stats = client.stats().unwrap();
    assert!(stats.ok);
    let doc = Json::parse(&stats.body).unwrap();
    let injected = doc
        .get("faults")
        .and_then(|f| f.get("injected_total"))
        .and_then(Json::as_u64)
        .expect("armed plan reports fault counters in stats");
    assert!(injected > 0, "the chaos plan never fired");

    client.shutdown().unwrap();
    server_thread.join().unwrap();
    assert!(plan.injected()[oha_faults::sites::SERVE_WRITE_DISCONNECT] > 0);
    let _ = fs::remove_dir_all(&dir);
}

/// Two daemons over one store directory: the atomic temp-write→rename
/// discipline (with injected delays widening the race window) must keep
/// every served artifact whole, and neither store may count a single
/// corruption.
#[test]
fn two_daemons_share_one_store_dir_without_torn_artifacts() {
    let dir = tmp_dir("shared-store");
    let store_dir = dir.join("store");
    let sockets = [dir.join("a.sock"), dir.join("b.sock")];

    let program = locked_counter();
    let text = print_program(&program);
    let (profiling, testing) = corpora();
    let expected =
        optft_canonical_json(&Pipeline::new(program.clone()).run_optft(&profiling, &testing));

    let servers: Vec<Server> = sockets
        .iter()
        .map(|socket| {
            Server::bind(ServerConfig {
                socket: socket.clone(),
                store_dir: Some(store_dir.clone()),
                // Defeat each daemon's LRU front so both really hit disk.
                lru_capacity: 1,
                faults: oha_faults::FaultPlan::parse("delay_ms=10; store.rename.delay=%1").unwrap(),
                ..ServerConfig::default()
            })
            .unwrap()
        })
        .collect();
    let threads: Vec<_> = servers
        .into_iter()
        .map(|s| thread::spawn(move || s.run().unwrap()))
        .collect();

    thread::scope(|scope| {
        for n in 0..8 {
            let socket = &sockets[n % 2];
            let (text, profiling, testing) = (&text, &profiling, &testing);
            let expected = &expected;
            scope.spawn(move || {
                let mut client = Client::connect(socket).unwrap();
                let response = client
                    .analyze(Tool::OptFt, text, profiling, testing, &[])
                    .unwrap();
                assert!(response.ok, "client {n}: {}", response.body);
                assert_eq!(&response.body, expected, "client {n} got torn bytes");
            });
        }
    });

    // Neither daemon may have seen a corrupt (torn) artifact: renames
    // are atomic however they interleave.
    for socket in &sockets {
        let mut client = Client::connect(socket).unwrap();
        let stats = client.stats().unwrap();
        let doc = Json::parse(&stats.body).unwrap();
        let corruptions = doc
            .get("store")
            .and_then(|s| s.get("corruptions"))
            .and_then(Json::as_u64)
            .unwrap();
        assert_eq!(corruptions, 0, "torn artifact observed via {socket:?}");
        client.shutdown().unwrap();
    }
    for t in threads {
        t.join().unwrap();
    }
    let _ = fs::remove_dir_all(&dir);
}
