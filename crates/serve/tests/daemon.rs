//! End-to-end daemon tests: many concurrent clients must get responses
//! byte-identical to a serial in-process pipeline, malformed requests
//! must get error responses (not a dead daemon), and shutdown must
//! drain gracefully.

use std::fs;
use std::path::PathBuf;
use std::thread;

use oha_core::{optft_canonical_json, optslice_canonical_json, Pipeline};
use oha_ir::{print_program, InstKind, Operand, Program, ProgramBuilder};
use oha_serve::{Client, Server, ServerConfig, Tool};
use Operand::{Const, Reg as R};

const CLIENTS: usize = 16;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("oha-daemon-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Two workers increment a shared counter under a lock.
fn locked_counter() -> Program {
    let mut pb = ProgramBuilder::new();
    let g = pb.global("shared", 1);
    let w = pb.declare("worker", 1);
    let mut m = pb.function("main", 0);
    let n1 = m.input();
    let t1 = m.spawn(w, R(n1));
    let t2 = m.spawn(w, R(n1));
    m.join(R(t1));
    m.join(R(t2));
    let ga = m.addr_global(g);
    let v = m.load(R(ga), 0);
    m.output(R(v));
    m.ret(None);
    let main = pb.finish_function(m);
    let mut wf = pb.function("worker", 1);
    let iters = wf.param(0);
    let head = wf.block();
    let body = wf.block();
    let exit = wf.block();
    let ga = wf.addr_global(g);
    let i = wf.copy(Const(0));
    wf.jump(head);
    wf.select(head);
    let c = wf.cmp(oha_ir::CmpOp::Lt, R(i), R(iters));
    wf.branch(R(c), body, exit);
    wf.select(body);
    wf.lock(R(ga));
    let v = wf.load(R(ga), 0);
    let v1 = wf.bin(oha_ir::BinOp::Add, R(v), Const(1));
    wf.store(R(ga), 0, R(v1));
    wf.unlock(R(ga));
    let i1 = wf.bin(oha_ir::BinOp::Add, R(i), Const(1));
    wf.copy_to(i, R(i1));
    wf.jump(head);
    wf.select(exit);
    wf.ret(None);
    pb.finish_function(wf);
    pb.finish(main).unwrap()
}

fn corpora() -> (Vec<Vec<i64>>, Vec<Vec<i64>>) {
    let profiling = (1..5).map(|n| vec![n * 10]).collect();
    let testing = (1..4).map(|n| vec![n * 7]).collect();
    (profiling, testing)
}

#[test]
fn concurrent_clients_match_the_serial_pipeline_byte_for_byte() {
    let dir = tmp_dir("concurrent");
    let socket = dir.join("daemon.sock");
    let store_dir = dir.join("store");

    let program = locked_counter();
    let text = print_program(&program);
    let (profiling, testing) = corpora();

    // The serial, storeless in-process runs are the oracle. Empty
    // endpoints on the wire mean "every output instruction" — mirror
    // that here.
    let expected_ft =
        optft_canonical_json(&Pipeline::new(program.clone()).run_optft(&profiling, &testing));
    let endpoints: Vec<_> = program
        .insts()
        .filter(|i| matches!(i.kind, InstKind::Output { .. }))
        .map(|i| i.id)
        .collect();
    let expected_slice = optslice_canonical_json(
        &Pipeline::new(program.clone()).run_optslice(&profiling, &testing, &endpoints),
    );

    let server = Server::bind(ServerConfig {
        socket: socket.clone(),
        store_dir: Some(store_dir),
        ..ServerConfig::default()
    })
    .unwrap();
    let server_thread = thread::spawn(move || server.run().unwrap());

    thread::scope(|scope| {
        for n in 0..CLIENTS {
            let (socket, text) = (&socket, &text);
            let (profiling, testing) = (&profiling, &testing);
            let (expected_ft, expected_slice) = (&expected_ft, &expected_slice);
            scope.spawn(move || {
                let mut client = Client::connect(socket).unwrap();
                let (tool, expected) = if n % 2 == 0 {
                    (Tool::OptFt, expected_ft)
                } else {
                    (Tool::OptSlice, expected_slice)
                };
                let response = client.analyze(tool, text, profiling, testing, &[]).unwrap();
                assert!(response.ok, "client {n}: {}", response.body);
                assert_eq!(
                    &response.body,
                    expected,
                    "client {n} ({}) diverged from the serial pipeline",
                    tool.name()
                );
            });
        }
    });

    // A repeat of an already-answered request is served from the LRU
    // front and flagged as cached — with the same bytes.
    let mut client = Client::connect(&socket).unwrap();
    let repeat = client
        .analyze(Tool::OptFt, &text, &profiling, &testing, &[])
        .unwrap();
    assert!(repeat.ok);
    assert!(repeat.cached, "identical request must hit the LRU front");
    assert_eq!(repeat.body, expected_ft);

    let stats = client.stats().unwrap();
    assert!(stats.ok);
    assert!(
        stats.body.contains("\"requests\""),
        "stats is JSON: {}",
        stats.body
    );

    let bye = client.shutdown().unwrap();
    assert!(bye.ok);
    let drained = server_thread.join().unwrap();
    assert!(drained.requests >= CLIENTS as u64 + 2);
    assert!(drained.lru_hits >= 1);
    assert!(!socket.exists(), "graceful drain removes the socket file");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn bad_requests_get_error_responses_and_the_daemon_survives() {
    let dir = tmp_dir("bad-requests");
    let socket = dir.join("daemon.sock");

    let server = Server::bind(ServerConfig {
        socket: socket.clone(),
        store_dir: None,
        ..ServerConfig::default()
    })
    .unwrap();
    let server_thread = thread::spawn(move || server.run().unwrap());

    let program = locked_counter();
    let text = print_program(&program);
    let (profiling, testing) = corpora();
    let mut client = Client::connect(&socket).unwrap();

    // Unparsable program: an error response, not a hangup.
    let garbage = client
        .analyze(Tool::OptFt, "fn main( {", &profiling, &testing, &[])
        .unwrap();
    assert!(!garbage.ok);

    // Out-of-range endpoint id: likewise.
    let out_of_range = client
        .analyze(Tool::OptSlice, &text, &profiling, &testing, &[u32::MAX])
        .unwrap();
    assert!(!out_of_range.ok);
    assert!(
        out_of_range.body.contains("endpoint"),
        "diagnosable error: {}",
        out_of_range.body
    );

    // The same connection still serves good requests afterwards.
    let good = client
        .analyze(Tool::OptFt, &text, &profiling, &testing, &[])
        .unwrap();
    assert!(good.ok, "{}", good.body);

    client.shutdown().unwrap();
    let drained = server_thread.join().unwrap();
    assert_eq!(drained.errors, 2);
    let _ = fs::remove_dir_all(&dir);
}
