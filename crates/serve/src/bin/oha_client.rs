//! Command-line client for the OHA analysis daemon. See `--help`.

use std::path::PathBuf;
use std::process::exit;

use std::time::Duration;

use oha_obs::Json;
use oha_serve::{Client, ClientConfig, MetricsFormat, Tool};

const USAGE: &str = "\
oha-client: talk to a running oha-serve daemon

USAGE:
  oha-client [--socket PATH] optft    --program FILE [--profiling SPEC] [--testing SPEC]
  oha-client [--socket PATH] optslice --program FILE [--profiling SPEC] [--testing SPEC]
                                      [--endpoints 3,17]
  oha-client [--socket PATH] stats    [--raw]
  oha-client [--socket PATH] metrics  [--json] [--raw]
  oha-client [--socket PATH] shutdown

OPTIONS:
  --socket PATH     Daemon socket (default: oha-serve.sock)
  --timeout-ms N    Socket read deadline in milliseconds; a wedged or
                    half-open daemon errors out instead of hanging the
                    client (default: 150000; 0 waits forever)
  --retries N       Max retries for idempotent requests on transport
                    errors and Busy load-sheds (default: 4; 0 disables)
  --retry-base-ms N Base backoff delay before the first retry; doubles
                    per attempt, capped at 1s, with deterministic jitter
                    (default: 25)
  --connect-timeout-ms N
                    How long to keep retrying a connect that fails with
                    ConnectionRefused/NotFound — absorbs the daemon-startup
                    race without sleep loops (default: 10000; 0 fails fast)
  --program FILE    Program in IR text form ('-' reads stdin)
  --profiling SPEC  Profiling corpus: runs split by ';', values by ','
                    e.g. \"1,2;3\" is two runs, [1,2] and [3] (default: \"1;2;3\")
  --testing SPEC    Testing corpus, same format (default: \"4;5\")
  --endpoints LIST  OptSlice endpoints as raw instruction ids; omitted or
                    empty means every `output` instruction
  --json            metrics: ask for the JSON snapshot instead of the
                    Prometheus text exposition
  --raw             stats/metrics: print the response body verbatim instead
                    of the pretty rendering (for scripts and CI)

The analyze ops print the canonical (timing-free) result JSON on stdout;
stats prints the daemon's counters (pretty key/value lines, or the raw
JSON under --raw); metrics prints live telemetry. Exit status is non-zero
on an error response.
";

fn main() {
    let mut socket = PathBuf::from("oha-serve.sock");
    let mut command: Option<String> = None;
    let mut program_path: Option<String> = None;
    let mut profiling = "1;2;3".to_string();
    let mut testing = "4;5".to_string();
    let mut endpoints: Vec<u32> = Vec::new();
    let mut raw = false;
    let mut json = false;
    let mut config = ClientConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {name} needs a value\n\n{USAGE}");
                exit(2);
            })
        };
        match arg.as_str() {
            "--socket" => socket = PathBuf::from(value("--socket")),
            "--timeout-ms" => {
                let ms: u64 = parse(&value("--timeout-ms"), "--timeout-ms");
                config.read_timeout = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--retries" => config.retry.max_retries = parse(&value("--retries"), "--retries"),
            "--connect-timeout-ms" => {
                let ms: u64 = parse(&value("--connect-timeout-ms"), "--connect-timeout-ms");
                config.connect_timeout = Duration::from_millis(ms);
            }
            "--retry-base-ms" => {
                config.retry.base_delay =
                    Duration::from_millis(parse(&value("--retry-base-ms"), "--retry-base-ms"))
            }
            "--program" => program_path = Some(value("--program")),
            "--profiling" => profiling = value("--profiling"),
            "--testing" => testing = value("--testing"),
            "--endpoints" => {
                endpoints = value("--endpoints")
                    .split(',')
                    .filter(|s| !s.trim().is_empty())
                    .map(|s| {
                        s.trim().parse().unwrap_or_else(|_| {
                            eprintln!("error: bad endpoint id {s:?}\n\n{USAGE}");
                            exit(2);
                        })
                    })
                    .collect()
            }
            "--raw" => raw = true,
            "--json" => json = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                return;
            }
            cmd if command.is_none() && !cmd.starts_with('-') => command = Some(cmd.to_string()),
            other => {
                eprintln!("error: unknown argument {other:?}\n\n{USAGE}");
                exit(2);
            }
        }
    }

    let Some(command) = command else {
        eprintln!("error: no command\n\n{USAGE}");
        exit(2);
    };

    let mut client = Client::connect_with(&socket, config).unwrap_or_else(|e| {
        eprintln!("error: cannot connect to {}: {e}", socket.display());
        exit(1);
    });

    let response = match command.as_str() {
        "stats" => client.stats(),
        "metrics" => client.metrics(if json {
            MetricsFormat::Json
        } else {
            MetricsFormat::Prometheus
        }),
        "shutdown" => client.shutdown(),
        "optft" | "optslice" => {
            let tool = if command == "optft" {
                Tool::OptFt
            } else {
                Tool::OptSlice
            };
            let program = read_program(program_path.as_deref());
            client.analyze(
                tool,
                &program,
                &parse_corpus(&profiling, "--profiling"),
                &parse_corpus(&testing, "--testing"),
                &endpoints,
            )
        }
        other => {
            eprintln!("error: unknown command {other:?}\n\n{USAGE}");
            exit(2);
        }
    }
    .unwrap_or_else(|e| {
        eprintln!("error: request failed: {e}");
        exit(1);
    });

    if response.ok {
        // JSON bodies render as aligned key/value lines unless --raw; the
        // Prometheus exposition is already text and passes through as-is.
        let pretty = command == "stats" || (command == "metrics" && json);
        if pretty && !raw {
            print!("{}", pretty_stats(&response.body));
        } else {
            println!("{}", response.body);
        }
    } else {
        eprintln!("error: daemon said: {}", response.body);
        exit(1);
    }
}

/// Renders the stats JSON as aligned `key  value` lines, flattening
/// nested objects with dotted keys. Falls back to the raw body if it is
/// not the JSON object it should be.
fn pretty_stats(body: &str) -> String {
    let Ok(doc) = Json::parse(body) else {
        return format!("{body}\n");
    };
    let mut pairs: Vec<(String, String)> = Vec::new();
    flatten(&doc, "", &mut pairs);
    if pairs.is_empty() {
        return format!("{body}\n");
    }
    let width = pairs.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
    pairs
        .iter()
        .map(|(k, v)| format!("{k:<width$}  {v}\n"))
        .collect()
}

fn flatten(value: &Json, prefix: &str, out: &mut Vec<(String, String)>) {
    match value {
        Json::Obj(fields) => {
            for (k, v) in fields {
                let key = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten(v, &key, out);
            }
        }
        Json::Null => out.push((prefix.to_string(), "-".to_string())),
        other => out.push((prefix.to_string(), other.to_string_compact())),
    }
}

fn read_program(path: Option<&str>) -> String {
    let Some(path) = path else {
        eprintln!("error: analyze commands need --program\n\n{USAGE}");
        exit(2);
    };
    let result = if path == "-" {
        use std::io::Read as _;
        let mut text = String::new();
        std::io::stdin()
            .read_to_string(&mut text)
            .map(move |_| text)
    } else {
        std::fs::read_to_string(path)
    };
    result.unwrap_or_else(|e| {
        eprintln!("error: cannot read program {path:?}: {e}");
        exit(1);
    })
}

fn parse<T: std::str::FromStr>(text: &str, flag: &str) -> T {
    text.parse().unwrap_or_else(|_| {
        eprintln!("error: {flag} got unparsable value {text:?}\n\n{USAGE}");
        exit(2);
    })
}

fn parse_corpus(spec: &str, flag: &str) -> Vec<Vec<i64>> {
    spec.split(';')
        .filter(|run| !run.trim().is_empty())
        .map(|run| {
            run.split(',')
                .filter(|v| !v.trim().is_empty())
                .map(|v| {
                    v.trim().parse().unwrap_or_else(|_| {
                        eprintln!("error: {flag} has a non-integer value {v:?}\n\n{USAGE}");
                        exit(2);
                    })
                })
                .collect()
        })
        .collect()
}
