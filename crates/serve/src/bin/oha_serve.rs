//! The daemon binary. See `--help`.

use std::path::PathBuf;
use std::process::exit;
use std::time::Duration;

use oha_serve::{Server, ServerConfig};

const USAGE: &str = "\
oha-serve: the OHA analysis daemon

USAGE:
  oha-serve [--socket PATH] [--store DIR] [--threads N] [--timeout-ms N] [--lru N]
            [--max-queue N] [--io-timeout-ms N] [--faults SPEC] [--trace-out FILE]
            [--worker-id N]

OPTIONS:
  --socket PATH      Unix-domain socket to listen on (default: oha-serve.sock)
  --store DIR        Artifact-store directory (default: $OHA_STORE_DIR, else no
                     persistence; the in-memory response cache still applies)
  --threads N        Worker threads per pool (default: $OHA_THREADS, else hardware)
  --timeout-ms N     Per-request compute deadline in milliseconds (default: 120000)
  --lru N            Response-cache capacity in entries (default: 64)
  --max-queue N      Bound on queued (not yet running) compute jobs; analyze
                     requests past the bound get a typed Busy response
                     (default: 0 = 4x worker count)
  --io-timeout-ms N  Per-operation socket read/write deadline for connection
                     handlers (default: 0 = 2x --timeout-ms, at least 1s)
  --faults SPEC      Deterministic fault-injection plan, e.g.
                     'seed=7; store.read.corrupt=0.01; serve.write.disconnect=@3'
                     (default: $OHA_FAULTS, else disabled)
  --trace-out FILE   Record per-request trace events and write them as Chrome
                     trace-event JSON (Perfetto-loadable) on graceful drain.
                     $OHA_TRACE also enables tracing (a number > 1 sets the
                     event-ring capacity); live telemetry is always available
                     through `oha-client metrics`.
  --worker-id N      Shard identity when running as an oha-router worker;
                     echoed as `worker_id` in stats/metrics snapshots
                     (default: none, reported as null)

Stop the daemon with `oha-client --socket PATH shutdown` (graceful drain).
";

fn main() {
    let mut config = ServerConfig::default();
    if let Ok(dir) = std::env::var(oha_core::STORE_DIR_ENV) {
        if !dir.trim().is_empty() {
            config.store_dir = Some(PathBuf::from(dir.trim()));
        }
    }
    // OHA_TRACE alone enables in-memory tracing (inspectable through the
    // metrics op); --trace-out additionally writes the ring on drain.
    config.trace = oha_obs::TraceLog::from_env();
    // OHA_FAULTS arms deterministic fault injection (chaos runs);
    // --faults overrides it.
    config.faults = oha_faults::FaultPlan::from_env();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {name} needs a value\n\n{USAGE}");
                exit(2);
            })
        };
        match arg.as_str() {
            "--socket" => config.socket = PathBuf::from(value("--socket")),
            "--store" => config.store_dir = Some(PathBuf::from(value("--store"))),
            "--threads" => config.threads = parse(&value("--threads"), "--threads"),
            "--timeout-ms" => {
                config.request_timeout =
                    Duration::from_millis(parse(&value("--timeout-ms"), "--timeout-ms"))
            }
            "--lru" => config.lru_capacity = parse(&value("--lru"), "--lru"),
            "--max-queue" => config.max_queue = parse(&value("--max-queue"), "--max-queue"),
            "--io-timeout-ms" => {
                let ms: u64 = parse(&value("--io-timeout-ms"), "--io-timeout-ms");
                config.io_timeout = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--faults" => {
                let spec = value("--faults");
                config.faults = oha_faults::FaultPlan::parse(&spec).unwrap_or_else(|e| {
                    eprintln!("error: --faults: {e}\n\n{USAGE}");
                    exit(2);
                });
            }
            "--trace-out" => config.trace_out = Some(PathBuf::from(value("--trace-out"))),
            "--worker-id" => config.worker_id = Some(parse(&value("--worker-id"), "--worker-id")),
            "--help" | "-h" => {
                print!("{USAGE}");
                return;
            }
            other => {
                eprintln!("error: unknown argument {other:?}\n\n{USAGE}");
                exit(2);
            }
        }
    }

    let server = match Server::bind(config.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot bind {}: {e}", config.socket.display());
            exit(1);
        }
    };
    eprintln!(
        "oha-serve: listening on {} (store: {})",
        server.socket().display(),
        config
            .store_dir
            .as_ref()
            .map(|d| d.display().to_string())
            .unwrap_or_else(|| "none".to_string()),
    );
    match server.run() {
        Ok(stats) => {
            eprintln!(
                "oha-serve: drained after {} requests ({} LRU hits, {} timeouts, {} errors, \
                 {} busy)",
                stats.requests, stats.lru_hits, stats.timeouts, stats.errors, stats.busy_rejections
            );
            if config.faults.is_enabled() {
                eprintln!(
                    "oha-serve: fault plan injected {} faults",
                    config.faults.total_injected()
                );
            }
        }
        Err(e) => {
            eprintln!("error: serve loop failed: {e}");
            exit(1);
        }
    }
}

fn parse<T: std::str::FromStr>(text: &str, flag: &str) -> T {
    text.parse().unwrap_or_else(|_| {
        eprintln!("error: {flag} got unparsable value {text:?}\n\n{USAGE}");
        exit(2);
    })
}
