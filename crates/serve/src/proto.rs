//! The daemon's wire protocol: length-prefixed frames carrying requests
//! and responses in the workspace's hand-rolled codec.
//!
//! A frame is a little-endian `u32` payload length followed by that many
//! payload bytes, capped at [`MAX_FRAME`] (a hostile length prefix must
//! not drive an allocation). Payloads encode with
//! [`oha_store::Writer`]/[`oha_store::Reader`], so the same truncation
//! and bad-tag discipline the on-disk artifacts enjoy applies on the
//! wire: decoding is total over arbitrary bytes.

use std::io::{self, Read, Write as IoWrite};

use oha_store::{CodecError, Reader, Writer};

/// Upper bound on one frame's payload (16 MiB — a whole benchmark
/// program in IR text plus corpora fits with room to spare).
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Which pipeline a request drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tool {
    /// Optimistic FastTrack race detection.
    OptFt,
    /// Optimistic dynamic backward slicing.
    OptSlice,
}

impl Tool {
    fn tag(self) -> u8 {
        match self {
            Tool::OptFt => 1,
            Tool::OptSlice => 2,
        }
    }

    fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            1 => Some(Tool::OptFt),
            2 => Some(Tool::OptSlice),
            _ => None,
        }
    }

    /// The tool's protocol name (`optft` / `optslice`).
    pub fn name(self) -> &'static str {
        match self {
            Tool::OptFt => "optft",
            Tool::OptSlice => "optslice",
        }
    }
}

/// The shape the `metrics` op answers in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricsFormat {
    /// A JSON snapshot of live gauges, counters and latency histograms.
    Json,
    /// Prometheus-style text exposition (`# TYPE ...` plus samples).
    Prometheus,
}

impl MetricsFormat {
    fn tag(self) -> u8 {
        match self {
            MetricsFormat::Json => 0,
            MetricsFormat::Prometheus => 1,
        }
    }

    fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(MetricsFormat::Json),
            1 => Some(MetricsFormat::Prometheus),
            _ => None,
        }
    }
}

/// One client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Run a full pipeline on a program shipped as IR text.
    Analyze {
        /// Which pipeline to run.
        tool: Tool,
        /// The program in IR text form ([`oha_ir::parse_program`]).
        program: String,
        /// Profiling corpus.
        profiling: Vec<Vec<i64>>,
        /// Testing corpus.
        testing: Vec<Vec<i64>>,
        /// Slice endpoints (raw instruction ids) for
        /// [`Tool::OptSlice`]. Empty means "every `output` instruction"
        /// (resolved server-side); ignored for [`Tool::OptFt`].
        endpoints: Vec<u32>,
        /// Client-chosen trace ID linking this request's server-side
        /// trace events; 0 asks the daemon to mint one. Echoed back in
        /// [`Response::trace_id`].
        trace_id: u64,
    },
    /// Ask for daemon and store statistics as JSON.
    Stats,
    /// Ask for live telemetry (gauges, counters, latency histograms).
    Metrics {
        /// JSON snapshot or Prometheus text exposition.
        format: MetricsFormat,
    },
    /// Graceful drain: finish in-flight requests, then exit.
    Shutdown,
}

const OP_ANALYZE: u8 = 1;
const OP_STATS: u8 = 4;
const OP_SHUTDOWN: u8 = 5;
const OP_METRICS: u8 = 6;

impl Request {
    /// Serializes the request payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Request::Analyze {
                tool,
                program,
                profiling,
                testing,
                endpoints,
                trace_id,
            } => {
                w.put_u8(OP_ANALYZE);
                w.put_u8(tool.tag());
                w.put_str(program);
                put_corpus(&mut w, profiling);
                put_corpus(&mut w, testing);
                w.put_usize(endpoints.len());
                for &e in endpoints {
                    w.put_u32(e);
                }
                w.put_u64(*trace_id);
            }
            Request::Stats => w.put_u8(OP_STATS),
            Request::Metrics { format } => {
                w.put_u8(OP_METRICS);
                w.put_u8(format.tag());
            }
            Request::Shutdown => w.put_u8(OP_SHUTDOWN),
        }
        w.into_bytes()
    }

    /// The request's encoding with the trace ID zeroed — the daemon's
    /// LRU cache key, so identical analyses stay byte-identical (and
    /// deduplicate) no matter which trace each one rides in.
    pub fn cache_key_bytes(&self) -> Vec<u8> {
        match self {
            Request::Analyze { trace_id, .. } if *trace_id != 0 => {
                let mut normalized = self.clone();
                if let Request::Analyze { trace_id, .. } = &mut normalized {
                    *trace_id = 0;
                }
                normalized.encode()
            }
            _ => self.encode(),
        }
    }

    /// Decodes a request payload; total over arbitrary bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(bytes);
        let op = r.get_u8()?;
        let req = match op {
            OP_ANALYZE => {
                let tool_tag = r.get_u8()?;
                let tool = Tool::from_tag(tool_tag).ok_or(CodecError::BadTag(tool_tag))?;
                let program = r.get_str()?.to_string();
                let profiling = get_corpus(&mut r)?;
                let testing = get_corpus(&mut r)?;
                let n = r.get_len(4)?;
                let mut endpoints = Vec::with_capacity(n);
                for _ in 0..n {
                    endpoints.push(r.get_u32()?);
                }
                let trace_id = r.get_u64()?;
                Request::Analyze {
                    tool,
                    program,
                    profiling,
                    testing,
                    endpoints,
                    trace_id,
                }
            }
            OP_STATS => Request::Stats,
            OP_METRICS => {
                let tag = r.get_u8()?;
                let format = MetricsFormat::from_tag(tag).ok_or(CodecError::BadTag(tag))?;
                Request::Metrics { format }
            }
            OP_SHUTDOWN => Request::Shutdown,
            _ => return Err(CodecError::BadTag(op)),
        };
        if !r.is_done() {
            return Err(CodecError::BadLength(r.remaining() as u64));
        }
        Ok(req)
    }
}

/// One daemon response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// `false` means `body` is an error message, not a result.
    pub ok: bool,
    /// The daemon shed this request at its queue bound (always with
    /// `ok == false`): the request was *not* processed, and an
    /// idempotent client should back off and retry rather than report
    /// a failure.
    pub busy: bool,
    /// Canonical result JSON (analyze), stats JSON, or an error message.
    pub body: String,
    /// Whether the response was served from the daemon's in-memory LRU
    /// front (the body is byte-identical either way).
    pub cached: bool,
    /// Server-side wall-clock nanoseconds spent on this request.
    pub elapsed_ns: u64,
    /// The trace ID this request's server-side events were recorded
    /// under (the client's, or daemon-minted when the client sent 0;
    /// 0 when tracing is disabled).
    pub trace_id: u64,
}

/// Wire tag for a busy (shed) response — distinct from plain errors so
/// clients can apply the retry-with-backoff rule only where it is safe.
const STATUS_ERR: u8 = 0;
const STATUS_OK: u8 = 1;
const STATUS_BUSY: u8 = 2;

impl Response {
    /// A successful response.
    pub fn ok(body: impl Into<String>) -> Self {
        Response {
            ok: true,
            busy: false,
            body: body.into(),
            cached: false,
            elapsed_ns: 0,
            trace_id: 0,
        }
    }

    /// An error response.
    pub fn err(message: impl Into<String>) -> Self {
        Response {
            ok: false,
            busy: false,
            body: message.into(),
            cached: false,
            elapsed_ns: 0,
            trace_id: 0,
        }
    }

    /// A load-shed response: the daemon's queue is at its bound and the
    /// request was refused *before* any processing.
    pub fn busy(message: impl Into<String>) -> Self {
        Response {
            ok: false,
            busy: true,
            body: message.into(),
            cached: false,
            elapsed_ns: 0,
            trace_id: 0,
        }
    }

    /// Serializes the response payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u8(if self.busy {
            STATUS_BUSY
        } else if self.ok {
            STATUS_OK
        } else {
            STATUS_ERR
        });
        w.put_str(&self.body);
        w.put_u8(u8::from(self.cached));
        w.put_u64(self.elapsed_ns);
        w.put_u64(self.trace_id);
        w.into_bytes()
    }

    /// Decodes a response payload; total over arbitrary bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(bytes);
        let (ok, busy) = match r.get_u8()? {
            STATUS_ERR => (false, false),
            STATUS_OK => (true, false),
            STATUS_BUSY => (false, true),
            t => return Err(CodecError::BadTag(t)),
        };
        let body = r.get_str()?.to_string();
        let cached = match r.get_u8()? {
            0 => false,
            1 => true,
            t => return Err(CodecError::BadTag(t)),
        };
        let elapsed_ns = r.get_u64()?;
        let trace_id = r.get_u64()?;
        if !r.is_done() {
            return Err(CodecError::BadLength(r.remaining() as u64));
        }
        Ok(Response {
            ok,
            busy,
            body,
            cached,
            elapsed_ns,
            trace_id,
        })
    }
}

fn put_corpus(w: &mut Writer, corpus: &[Vec<i64>]) {
    w.put_usize(corpus.len());
    for input in corpus {
        w.put_usize(input.len());
        for &v in input {
            w.put_i64(v);
        }
    }
}

fn get_corpus(r: &mut Reader<'_>) -> Result<Vec<Vec<i64>>, CodecError> {
    let n = r.get_len(8)?;
    let mut corpus = Vec::with_capacity(n);
    for _ in 0..n {
        let len = r.get_len(8)?;
        let mut input = Vec::with_capacity(len);
        for _ in 0..len {
            input.push(r.get_i64()?);
        }
        corpus.push(input);
    }
    Ok(corpus)
}

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl IoWrite, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&l| l <= MAX_FRAME)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame. Returns `Ok(None)` on a clean EOF at
/// a frame boundary (the peer hung up); oversized or truncated frames
/// are errors.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    match r.read_exact(&mut len_bytes) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_analyze() -> Request {
        Request::Analyze {
            tool: Tool::OptSlice,
            program: "func @main() {\n}\n".to_string(),
            profiling: vec![vec![1, 2], vec![-3]],
            testing: vec![vec![], vec![i64::MIN, i64::MAX]],
            endpoints: vec![7, 42],
            trace_id: 99,
        }
    }

    #[test]
    fn requests_round_trip() {
        for req in [
            sample_analyze(),
            Request::Stats,
            Request::Metrics {
                format: MetricsFormat::Json,
            },
            Request::Metrics {
                format: MetricsFormat::Prometheus,
            },
            Request::Shutdown,
        ] {
            let bytes = req.encode();
            assert_eq!(Request::decode(&bytes).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let resp = Response {
            ok: true,
            busy: false,
            body: "{\"tool\":\"optft\"}".to_string(),
            cached: true,
            elapsed_ns: 123_456,
            trace_id: 7,
        };
        assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
    }

    #[test]
    fn busy_responses_round_trip_and_read_as_failures() {
        let resp = Response::busy("queue full: 64 jobs pending");
        assert!(!resp.ok, "busy is not success — scripts must fail closed");
        assert!(resp.busy);
        let decoded = Response::decode(&resp.encode()).unwrap();
        assert_eq!(decoded, resp);
        // Plain errors stay non-busy on the wire.
        let err = Response::decode(&Response::err("boom").encode()).unwrap();
        assert!(!err.ok && !err.busy);
    }

    #[test]
    fn cache_key_ignores_the_trace_id() {
        let traced = sample_analyze();
        let mut untraced = traced.clone();
        if let Request::Analyze { trace_id, .. } = &mut untraced {
            *trace_id = 0;
        }
        assert_ne!(traced.encode(), untraced.encode());
        assert_eq!(traced.cache_key_bytes(), untraced.cache_key_bytes());
        assert_eq!(untraced.cache_key_bytes(), untraced.encode());
        // Non-analyze ops key on their plain encoding.
        assert_eq!(Request::Stats.cache_key_bytes(), Request::Stats.encode());
    }

    #[test]
    fn truncated_requests_never_panic() {
        let bytes = sample_analyze().encode();
        for cut in 0..bytes.len() {
            assert!(Request::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = Request::Stats.encode();
        bytes.push(0);
        assert!(Request::decode(&bytes).is_err());
    }

    #[test]
    fn frames_round_trip_and_reject_oversize() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"");
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");

        let huge = (MAX_FRAME + 1).to_le_bytes();
        let mut cursor = std::io::Cursor::new(huge.to_vec());
        assert!(read_frame(&mut cursor).is_err());
    }
}
