//! The analysis daemon: a Unix-domain-socket server dispatching pipeline
//! requests onto a persistent worker pool.
//!
//! Concurrency shape:
//!
//! - an accept loop (the thread that called [`Server::run`]) hands each
//!   connection to the I/O pool,
//! - each connection handler reads frames and submits the compute to the
//!   *work* pool, waiting on a per-request channel with a deadline
//!   ([`ServerConfig::request_timeout`]) — a wedged analysis times the
//!   request out without wedging the connection or the daemon,
//! - compute jobs build a fresh [`Pipeline`] per request (the metrics
//!   registry is deliberately thread-local) over the *shared*
//!   [`Store`], and identical requests are answered from an in-memory
//!   LRU front without touching a pipeline at all.
//!
//! Telemetry: every request's wall-clock latency lands in a log₂
//! [`Histogram`], the `metrics` op answers with a JSON snapshot or a
//! Prometheus-style text exposition of the live gauges (queue depth,
//! in-flight compute, open connections, LRU occupancy) and latency
//! distributions, and when a [`TraceLog`] is configured each `analyze`
//! request records a causally-linked span tree — the connection handler's
//! `serve/request` span on one track, the compute pipeline's phase spans
//! on another, all under one trace ID that is echoed to the client.
//!
//! Shutdown is a graceful drain: the `shutdown` op stops the accept
//! loop (a self-connection wakes it), in-flight requests finish, then
//! both pools join their workers and the Chrome trace JSON (if
//! [`ServerConfig::trace_out`] is set) is written.

use std::fmt::Write as _;
use std::io::{self, BufReader, BufWriter, Write as _};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use oha_core::{optft_canonical_json, optslice_canonical_json, Pipeline, PipelineConfig};
use oha_faults::{sites, FaultPlan};
use oha_ir::{parse_program, Fingerprint, InstId, InstKind, Program};
use oha_obs::{Histogram, Json, TraceLog, DEFAULT_TRACE_CAPACITY};
use oha_par::TaskPool;
use oha_store::{Lru, Store};

use crate::proto::{read_frame, write_frame, MetricsFormat, Request, Response, Tool};

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Unix-domain socket path (a stale file at this path is removed on
    /// bind).
    pub socket: PathBuf,
    /// Artifact-store directory; `None` serves without persistence (the
    /// LRU front still deduplicates identical requests).
    pub store_dir: Option<PathBuf>,
    /// Compute-pool worker threads (`0` = the `OHA_THREADS` override,
    /// then the hardware default). The connection-handler pool is sized
    /// `threads + max_queue + 1`, so the compute queue can reach its
    /// bound and the arrival after that gets the `Busy` shed.
    pub threads: usize,
    /// Per-request compute deadline; an overrun answers the client with
    /// an error while the stray job finishes in the background.
    pub request_timeout: Duration,
    /// Response-cache capacity in entries.
    pub lru_capacity: usize,
    /// Trace-event log shared by every request. Disabled by default;
    /// when [`trace_out`](ServerConfig::trace_out) is set and this is
    /// still disabled, [`Server::bind`] enables a default-capacity log.
    pub trace: TraceLog,
    /// Write the Chrome trace-event JSON here on graceful drain.
    pub trace_out: Option<PathBuf>,
    /// Bound on compute jobs queued (not yet running) on the work pool.
    /// An analyze request arriving past the bound is refused with a
    /// typed `Busy` response instead of queuing without limit. `0` (the
    /// default) resolves to 4× the worker count.
    pub max_queue: usize,
    /// Per-operation deadline for the connection handlers' socket reads
    /// and writes (the I/O pool's analogue of the compute deadline): a
    /// stalled or half-open peer errors out instead of pinning a
    /// handler forever. `None` (the default) resolves to twice
    /// [`request_timeout`](ServerConfig::request_timeout), at least one
    /// second.
    pub io_timeout: Option<Duration>,
    /// Fault-injection plan shared by the store, the connection
    /// handlers and the compute jobs. Disabled by default; the
    /// `oha-serve` binary arms it from `OHA_FAULTS`.
    pub faults: FaultPlan,
    /// Shard identity when this daemon runs as a cluster worker under
    /// `oha-router`; echoed as `worker_id` in `stats`/`metrics`
    /// snapshots so aggregated telemetry can attribute each snapshot.
    /// `None` (the default) reports `null` — a standalone daemon.
    pub worker_id: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            socket: PathBuf::from("oha-serve.sock"),
            store_dir: None,
            threads: 0,
            request_timeout: Duration::from_secs(120),
            lru_capacity: 64,
            trace: TraceLog::disabled(),
            trace_out: None,
            max_queue: 0,
            io_timeout: None,
            faults: FaultPlan::disabled(),
            worker_id: None,
        }
    }
}

/// Counters and gauges the daemon reports through the `stats` op and
/// returns from [`Server::run`]. The gauge fields (`queue_depth`,
/// `in_flight`, `open_connections`, `lru_len`) are point-in-time
/// snapshots — in the final stats returned by a drained server they are
/// normally zero.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests answered (all ops).
    pub requests: u64,
    /// Analyze responses served from the in-memory LRU front.
    pub lru_hits: u64,
    /// Responses evicted from the LRU front.
    pub lru_evictions: u64,
    /// Requests that overran the compute deadline.
    pub timeouts: u64,
    /// Malformed or failed requests.
    pub errors: u64,
    /// Analyze requests shed with a `Busy` response at the queue bound.
    pub busy_rejections: u64,
    /// Compute jobs queued on the work pool but not yet started.
    pub queue_depth: u64,
    /// Analyze requests currently waiting on compute.
    pub in_flight: u64,
    /// Client connections currently open.
    pub open_connections: u64,
    /// Entries currently held by the LRU front.
    pub lru_len: u64,
}

struct Shared {
    store: Option<Arc<Store>>,
    lru: Mutex<Lru<Fingerprint, Response>>,
    work: TaskPool,
    timeout: Duration,
    io_timeout: Duration,
    max_queue: usize,
    faults: FaultPlan,
    worker_id: Option<u64>,
    /// Worker threads each request's pipeline may use for its own
    /// parallel phases (profiling fan-out, sharded static solve). Capped
    /// at `host threads / compute workers` so concurrent requests never
    /// oversubscribe the host; results are width-invariant, so the cap
    /// only affects latency.
    pipeline_threads: usize,
    shutting: AtomicBool,
    socket: PathBuf,
    trace: TraceLog,
    requests: AtomicU64,
    lru_hits: AtomicU64,
    timeouts: AtomicU64,
    errors: AtomicU64,
    busy_rejections: AtomicU64,
    in_flight: AtomicU64,
    open_connections: AtomicU64,
    /// Wall-clock nanoseconds per answered request (all ops), recorded
    /// at the same site as the `requests` counter so the histogram's
    /// count always equals it.
    request_latency: Mutex<Histogram>,
}

/// Decrements an atomic gauge on drop, so early returns cannot leak an
/// increment.
struct GaugeGuard<'a>(&'a AtomicU64);

impl<'a> GaugeGuard<'a> {
    fn enter(gauge: &'a AtomicU64) -> Self {
        gauge.fetch_add(1, Ordering::Relaxed);
        GaugeGuard(gauge)
    }
}

impl Drop for GaugeGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

impl Shared {
    fn stats(&self) -> ServeStats {
        ServeStats {
            requests: self.requests.load(Ordering::Relaxed),
            lru_hits: self.lru_hits.load(Ordering::Relaxed),
            lru_evictions: self.lru.lock().map(|l| l.evictions()).unwrap_or(0),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            busy_rejections: self.busy_rejections.load(Ordering::Relaxed),
            queue_depth: self.work.pending() as u64,
            in_flight: self.in_flight.load(Ordering::Relaxed),
            open_connections: self.open_connections.load(Ordering::Relaxed),
            lru_len: self.lru.lock().map(|l| l.len() as u64).unwrap_or(0),
        }
    }

    fn request_latency(&self) -> Histogram {
        self.request_latency
            .lock()
            .map(|h| h.clone())
            .unwrap_or_default()
    }

    fn stats_json(&self) -> String {
        let s = self.stats();
        let store = match &self.store {
            Some(store) => {
                let ss = store.stats();
                format!(
                    "{{\"hits\":{},\"misses\":{},\"writes\":{},\"corruptions\":{},\
                     \"version_mismatches\":{},\"invalidations\":{},\"stale_tmp_cleaned\":{}}}",
                    ss.hits,
                    ss.misses,
                    ss.writes,
                    ss.corruptions,
                    ss.version_mismatches,
                    ss.invalidations,
                    ss.stale_tmp_cleaned
                )
            }
            None => "null".to_string(),
        };
        let worker_id = match self.worker_id {
            Some(id) => id.to_string(),
            None => "null".to_string(),
        };
        format!(
            "{{\"worker_id\":{worker_id},\"requests\":{},\"lru_hits\":{},\
             \"lru_evictions\":{},\"timeouts\":{},\
             \"errors\":{},\"busy_rejections\":{},\"panicked_jobs\":{},\"queue_depth\":{},\
             \"in_flight\":{},\"open_connections\":{},\"lru_len\":{},\"store\":{store},\
             \"faults\":{}}}",
            s.requests,
            s.lru_hits,
            s.lru_evictions,
            s.timeouts,
            s.errors,
            s.busy_rejections,
            self.work.panicked_jobs(),
            s.queue_depth,
            s.in_flight,
            s.open_connections,
            s.lru_len,
            self.faults_json().to_string_compact(),
        )
    }

    /// The fault-injection record: `null` with injection disabled, else
    /// per-site injected counts plus the total — the chaos CI artifact.
    fn faults_json(&self) -> Json {
        if !self.faults.is_enabled() {
            return Json::Null;
        }
        let injected = self.faults.injected();
        let mut fields: Vec<(String, Json)> = vec![(
            "injected_total".to_string(),
            Json::Num(injected.values().sum::<u64>() as f64),
        )];
        fields.extend(
            injected
                .into_iter()
                .map(|(site, n)| (site, Json::Num(n as f64))),
        );
        Json::Obj(fields)
    }

    /// The `metrics` op's JSON form: the live gauges and counters plus
    /// the request-latency and queue-wait histograms in the same sparse
    /// shape `RunReport` uses.
    fn metrics_json(&self) -> Json {
        let s = self.stats();
        let num = |v: u64| Json::Num(v as f64);
        let worker_id = match self.worker_id {
            Some(id) => Json::Num(id as f64),
            None => Json::Null,
        };
        Json::Obj(vec![
            ("worker_id".to_string(), worker_id),
            ("queue_depth".to_string(), num(s.queue_depth)),
            ("in_flight".to_string(), num(s.in_flight)),
            ("open_connections".to_string(), num(s.open_connections)),
            ("lru_len".to_string(), num(s.lru_len)),
            ("requests".to_string(), num(s.requests)),
            ("lru_hits".to_string(), num(s.lru_hits)),
            ("lru_evictions".to_string(), num(s.lru_evictions)),
            ("timeouts".to_string(), num(s.timeouts)),
            ("errors".to_string(), num(s.errors)),
            ("busy_rejections".to_string(), num(s.busy_rejections)),
            ("panicked_jobs".to_string(), num(self.work.panicked_jobs())),
            ("faults".to_string(), self.faults_json()),
            (
                "request_latency_ns".to_string(),
                self.request_latency().to_json(),
            ),
            (
                "queue_wait_ns".to_string(),
                self.work.queue_wait().to_json(),
            ),
            (
                "trace".to_string(),
                Json::Obj(vec![
                    ("enabled".to_string(), Json::Bool(self.trace.is_enabled())),
                    ("events".to_string(), num(self.trace.events().len() as u64)),
                    ("dropped".to_string(), num(self.trace.dropped())),
                ]),
            ),
        ])
    }

    /// The `metrics` op's Prometheus-style text exposition, rendered by
    /// the shared [`oha_obs::prom`] module so worker and router
    /// expositions stay field-for-field compatible.
    fn metrics_prometheus(&self) -> String {
        use oha_obs::prom::{histogram as prom_histogram, sample};
        let s = self.stats();
        let mut out = String::new();
        let counter = "counter";
        let gauge = "gauge";
        sample(
            &mut out,
            counter,
            "oha_requests_total",
            "Requests answered (all ops).",
            s.requests,
        );
        sample(
            &mut out,
            counter,
            "oha_lru_hits_total",
            "Analyze responses served from the LRU front.",
            s.lru_hits,
        );
        sample(
            &mut out,
            counter,
            "oha_lru_evictions_total",
            "Responses evicted from the LRU front.",
            s.lru_evictions,
        );
        sample(
            &mut out,
            counter,
            "oha_timeouts_total",
            "Requests that overran the compute deadline.",
            s.timeouts,
        );
        sample(
            &mut out,
            counter,
            "oha_errors_total",
            "Malformed or failed requests.",
            s.errors,
        );
        sample(
            &mut out,
            counter,
            "oha_busy_rejections_total",
            "Analyze requests shed with a Busy response at the queue bound.",
            s.busy_rejections,
        );
        sample(
            &mut out,
            counter,
            "oha_panicked_jobs_total",
            "Compute jobs whose closure panicked.",
            self.work.panicked_jobs(),
        );
        if self.faults.is_enabled() {
            let injected = self.faults.injected();
            let _ = writeln!(
                out,
                "# HELP oha_injected_faults_total Faults injected by the OHA_FAULTS plan."
            );
            let _ = writeln!(out, "# TYPE oha_injected_faults_total counter");
            for (site, n) in &injected {
                let _ = writeln!(out, "oha_injected_faults_total{{site=\"{site}\"}} {n}");
            }
        }
        sample(
            &mut out,
            counter,
            "oha_trace_dropped_events_total",
            "Trace events evicted from the ring buffer.",
            self.trace.dropped(),
        );
        sample(
            &mut out,
            gauge,
            "oha_queue_depth",
            "Compute jobs queued but not yet started.",
            s.queue_depth,
        );
        sample(
            &mut out,
            gauge,
            "oha_in_flight",
            "Analyze requests currently waiting on compute.",
            s.in_flight,
        );
        sample(
            &mut out,
            gauge,
            "oha_open_connections",
            "Client connections currently open.",
            s.open_connections,
        );
        sample(
            &mut out,
            gauge,
            "oha_lru_entries",
            "Entries currently held by the LRU front.",
            s.lru_len,
        );
        prom_histogram(
            &mut out,
            "oha_request_latency_seconds",
            "Wall-clock time per answered request.",
            &self.request_latency(),
        );
        prom_histogram(
            &mut out,
            "oha_queue_wait_seconds",
            "Time compute jobs spent queued before a worker picked them up.",
            &self.work.queue_wait(),
        );
        out
    }
}

/// The analysis daemon. [`Server::bind`], then [`Server::run`].
pub struct Server {
    listener: UnixListener,
    shared: Arc<Shared>,
    io_pool: TaskPool,
    trace_out: Option<PathBuf>,
}

impl Server {
    /// Binds the socket (replacing a stale socket file), opens the store
    /// and starts the worker pools. The server does not accept
    /// connections until [`Server::run`].
    pub fn bind(config: ServerConfig) -> io::Result<Self> {
        if config.socket.exists() {
            std::fs::remove_file(&config.socket)?;
        }
        let listener = UnixListener::bind(&config.socket)?;
        let store = match &config.store_dir {
            Some(dir) => Some(Arc::new(Store::open_with(
                dir.clone(),
                config.faults.clone(),
            )?)),
            None => None,
        };
        let threads = if config.threads == 0 {
            oha_par::thread_count()
        } else {
            config.threads
        };
        let io_timeout = config
            .io_timeout
            .unwrap_or_else(|| config.request_timeout.saturating_mul(2))
            .max(Duration::from_secs(1));
        let max_queue = if config.max_queue == 0 {
            threads.saturating_mul(4).max(1)
        } else {
            config.max_queue
        };
        // A trace destination implies tracing even when the caller left
        // the log disabled.
        let trace = if config.trace_out.is_some() && !config.trace.is_enabled() {
            TraceLog::enabled(DEFAULT_TRACE_CAPACITY)
        } else {
            config.trace.clone()
        };
        let shared = Arc::new(Shared {
            store,
            lru: Mutex::new(Lru::new(config.lru_capacity.max(1))),
            work: TaskPool::new(threads),
            timeout: config.request_timeout,
            io_timeout,
            max_queue,
            faults: config.faults.clone(),
            worker_id: config.worker_id,
            pipeline_threads: (oha_par::thread_count() / threads).max(1),
            shutting: AtomicBool::new(false),
            socket: config.socket.clone(),
            trace,
            requests: AtomicU64::new(0),
            lru_hits: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            busy_rejections: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            open_connections: AtomicU64::new(0),
            request_latency: Mutex::new(Histogram::new()),
        });
        // The I/O pool must out-size compute for the queue bound to mean
        // anything: each connection handler parks while its request
        // computes, so with only `threads` handlers the work queue could
        // never reach `max_queue` and the Busy path would be dead code.
        // `threads + max_queue + 1` lets the queue fill to its bound and
        // still leaves a handler free to answer (or shed) the next
        // arrival.
        Ok(Self {
            listener,
            shared,
            io_pool: TaskPool::new(threads + max_queue + 1),
            trace_out: config.trace_out,
        })
    }

    /// The socket path clients connect to.
    pub fn socket(&self) -> &Path {
        &self.shared.socket
    }

    /// The shared artifact store, when persistence is configured.
    pub fn store(&self) -> Option<&Arc<Store>> {
        self.shared.store.as_ref()
    }

    /// The trace log every request records into (disabled unless
    /// configured).
    pub fn trace(&self) -> &TraceLog {
        &self.shared.trace
    }

    /// Serves until a `shutdown` request arrives, then drains gracefully
    /// and returns the final counters. Consumes the server; the socket
    /// file is removed on exit and the Chrome trace JSON is written when
    /// [`ServerConfig::trace_out`] was set.
    pub fn run(self) -> io::Result<ServeStats> {
        for stream in self.listener.incoming() {
            if self.shared.shutting.load(Ordering::SeqCst) {
                break;
            }
            let stream = stream?;
            let shared = Arc::clone(&self.shared);
            self.io_pool
                .submit(move || handle_connection(stream, &shared));
        }
        // Graceful drain: no new connections; finish queued handlers,
        // which in turn wait out their in-flight compute jobs.
        self.io_pool.shutdown();
        self.shared.work.wait_idle();
        let stats = self.shared.stats();
        let _ = std::fs::remove_file(&self.shared.socket);
        if let Some(path) = &self.trace_out {
            // A failed trace write must not discard the drain's stats.
            if let Err(e) = self.shared.trace.write_chrome_json(path) {
                eprintln!("oha-serve: cannot write trace {}: {e}", path.display());
            }
        }
        Ok(stats)
    }
}

fn handle_connection(stream: UnixStream, shared: &Arc<Shared>) {
    let _open = GaugeGuard::enter(&shared.open_connections);
    // One virtual trace track per connection: the I/O-side request spans
    // render as a row separate from the compute pipelines'.
    let conn_tid = shared.trace.alloc_tid();
    // A stalled or half-open peer must not pin a handler (or wedge the
    // graceful drain): cap every socket read and write. (Waiting for a
    // response is server-side compute, bounded separately by the request
    // timeout.)
    let _ = stream.set_read_timeout(Some(shared.io_timeout));
    let _ = stream.set_write_timeout(Some(shared.io_timeout));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = BufWriter::new(stream);
    loop {
        if shared.faults.should_inject(sites::SERVE_READ_STALL) {
            std::thread::sleep(shared.faults.delay());
        }
        let payload = match read_frame(&mut reader) {
            Ok(Some(p)) => p,
            Ok(None) | Err(_) => return,
        };
        let started = Instant::now();
        let decoded = Request::decode(&payload);
        let is_analyze = matches!(decoded, Ok(Request::Analyze { .. }));
        let response = match decoded {
            Ok(request) => dispatch(request, shared, conn_tid),
            Err(e) => {
                shared.errors.fetch_add(1, Ordering::Relaxed);
                Response::err(format!("bad request: {e}"))
            }
        };
        if let Ok(mut latency) = shared.request_latency.lock() {
            latency.record_duration(started.elapsed());
        }
        shared.requests.fetch_add(1, Ordering::Relaxed);
        // Mid-frame disconnect: the peer sees a length prefix promising
        // more bytes than ever arrive, then EOF — exactly a daemon dying
        // mid-response. Control-plane ops (stats, metrics, shutdown) are
        // exempt so chaos harnesses can always drain and read counters.
        if is_analyze && shared.faults.should_inject(sites::SERVE_WRITE_DISCONNECT) {
            let encoded = response.encode();
            let len = encoded.len() as u32;
            let _ = writer.write_all(&len.to_le_bytes());
            let _ = writer.write_all(&encoded[..encoded.len() / 2]);
            let _ = writer.flush();
            return;
        }
        if write_frame(&mut writer, &response.encode()).is_err() {
            return;
        }
        // Once a drain starts, keepalive ends: close after the response
        // in hand (including the shutdown acknowledgement itself) so an
        // open connection cannot hold the drain hostage.
        if shared.shutting.load(Ordering::SeqCst) {
            return;
        }
    }
}

fn dispatch(request: Request, shared: &Arc<Shared>, conn_tid: u64) -> Response {
    match request {
        Request::Stats => Response::ok(shared.stats_json()),
        Request::Metrics { format } => Response::ok(match format {
            MetricsFormat::Json => shared.metrics_json().to_string_pretty(),
            MetricsFormat::Prometheus => shared.metrics_prometheus(),
        }),
        Request::Shutdown => {
            shared.shutting.store(true, Ordering::SeqCst);
            // The accept loop is blocked in `accept`; a throwaway
            // connection wakes it so it can observe the flag.
            let _ = UnixStream::connect(&shared.socket);
            Response::ok("{\"shutting_down\":true}")
        }
        Request::Analyze { .. } => analyze(request, shared, conn_tid),
    }
}

fn analyze(request: Request, shared: &Arc<Shared>, conn_tid: u64) -> Response {
    // One trace groups everything this request causes, across the I/O
    // handler and the compute pipeline: the client's ID when it sent
    // one, a daemon-minted one otherwise (0 while tracing is off).
    let trace_id = match &request {
        Request::Analyze { trace_id, .. } if *trace_id != 0 => *trace_id,
        _ => shared.trace.next_trace_id(),
    };
    let span = shared.trace.begin("serve/request", trace_id, 0, conn_tid);
    let mut response = analyze_inner(request, shared, trace_id, span, conn_tid);
    shared
        .trace
        .end("serve/request", trace_id, span, 0, conn_tid);
    response.trace_id = trace_id;
    response
}

fn analyze_inner(
    request: Request,
    shared: &Arc<Shared>,
    trace_id: u64,
    span: u64,
    conn_tid: u64,
) -> Response {
    // Identical request bytes (trace ID aside) → identical canonical
    // response; serve repeats from the LRU front without touching a
    // pipeline.
    let key = Fingerprint::of_bytes(&request.cache_key_bytes());
    if let Ok(mut lru) = shared.lru.lock() {
        if let Some(hit) = lru.get(&key) {
            shared.lru_hits.fetch_add(1, Ordering::Relaxed);
            shared
                .trace
                .instant("serve/lru.hit", trace_id, span, conn_tid);
            let mut response = hit.clone();
            response.cached = true;
            return response;
        }
    }

    // Load shed at the queue bound: refusing with a typed `Busy` — which
    // clients know is safe to retry — beats queuing without limit until
    // every request times out.
    if shared.work.pending() >= shared.max_queue {
        shared.busy_rejections.fetch_add(1, Ordering::Relaxed);
        shared.trace.instant("serve/busy", trace_id, span, conn_tid);
        return Response::busy(format!(
            "compute queue full ({} jobs pending); retry with backoff",
            shared.max_queue
        ));
    }

    let started = Instant::now();
    let _in_flight = GaugeGuard::enter(&shared.in_flight);
    let (tx, rx) = mpsc::channel();
    let store = shared.store.clone();
    let trace = shared.trace.clone();
    let faults = shared.faults.clone();
    let pipeline_threads = shared.pipeline_threads;
    let submitted = shared.work.submit(move || {
        let _ = tx.send(compute(
            request,
            store,
            trace,
            trace_id,
            &faults,
            pipeline_threads,
        ));
    });
    if !submitted {
        shared.errors.fetch_add(1, Ordering::Relaxed);
        return Response::err("daemon is shutting down");
    }
    match rx.recv_timeout(shared.timeout) {
        Ok(Ok(body)) => {
            let mut response = Response::ok(body);
            response.elapsed_ns = started.elapsed().as_nanos() as u64;
            if let Ok(mut lru) = shared.lru.lock() {
                lru.insert(key, response.clone());
            }
            response
        }
        Ok(Err(message)) => {
            shared.errors.fetch_add(1, Ordering::Relaxed);
            Response::err(message)
        }
        Err(_) => {
            shared.timeouts.fetch_add(1, Ordering::Relaxed);
            shared
                .trace
                .instant("serve/timeout", trace_id, span, conn_tid);
            Response::err(format!(
                "request timed out after {:?} (the job keeps running in the background)",
                shared.timeout
            ))
        }
    }
}

/// Runs one pipeline on a work-pool thread. The registry inside
/// [`Pipeline`] is `Rc`-based, so the pipeline is constructed *here*,
/// never shipped across threads; the shared [`TraceLog`] (an `Arc`) is
/// what links its span events back to the request's trace.
fn compute(
    request: Request,
    store: Option<Arc<Store>>,
    trace: TraceLog,
    trace_id: u64,
    faults: &FaultPlan,
    pipeline_threads: usize,
) -> Result<String, String> {
    // A slow analysis, injected: exercises the request deadline and the
    // client's retry budget without needing a pathological input.
    if faults.should_inject(sites::SERVE_COMPUTE_DELAY) {
        std::thread::sleep(faults.delay());
    }
    let Request::Analyze {
        tool,
        program,
        profiling,
        testing,
        endpoints,
        ..
    } = request
    else {
        return Err("not an analyze request".to_string());
    };
    let program = parse_program(&program).map_err(|e| format!("parse error: {e}"))?;
    let endpoints = resolve_endpoints(&program, &endpoints)?;
    // Nested-parallelism cap: the request already runs on a compute-pool
    // thread, so its pipeline only gets the host's leftover share. The
    // canonical output is identical at any width (tests/determinism.rs),
    // so this is purely a scheduling decision.
    let config = PipelineConfig {
        threads: pipeline_threads.max(1),
        ..PipelineConfig::default()
    };
    let mut pipeline = Pipeline::new(program).with_config(config);
    if let Some(store) = store {
        pipeline = pipeline.with_store(store);
    }
    if trace.is_enabled() {
        pipeline = pipeline.with_trace(trace);
        pipeline.metrics().set_trace_id(trace_id);
    }
    Ok(match tool {
        Tool::OptFt => optft_canonical_json(&pipeline.run_optft(&profiling, &testing)),
        Tool::OptSlice => {
            let outcome = pipeline.run_optslice(&profiling, &testing, &endpoints);
            optslice_canonical_json(&outcome)
        }
    })
}

/// Maps raw endpoint ids to [`InstId`]s, defaulting to every `output`
/// instruction when the request names none.
fn resolve_endpoints(program: &Program, raw: &[u32]) -> Result<Vec<InstId>, String> {
    if raw.is_empty() {
        return Ok(program
            .insts()
            .filter(|i| matches!(i.kind, InstKind::Output { .. }))
            .map(|i| i.id)
            .collect());
    }
    let total = program.insts().count() as u32;
    raw.iter()
        .map(|&r| {
            if r < total {
                Ok(InstId::new(r))
            } else {
                Err(format!(
                    "endpoint i{r} out of range (program has {total} instructions)"
                ))
            }
        })
        .collect()
}
