//! The analysis daemon: a Unix-domain-socket server dispatching pipeline
//! requests onto a persistent worker pool.
//!
//! Concurrency shape:
//!
//! - an accept loop (the thread that called [`Server::run`]) hands each
//!   connection to the I/O pool,
//! - each connection handler reads frames and submits the compute to the
//!   *work* pool, waiting on a per-request channel with a deadline
//!   ([`ServerConfig::request_timeout`]) — a wedged analysis times the
//!   request out without wedging the connection or the daemon,
//! - compute jobs build a fresh [`Pipeline`] per request (the metrics
//!   registry is deliberately thread-local) over the *shared*
//!   [`Store`], and identical requests are answered from an in-memory
//!   LRU front without touching a pipeline at all.
//!
//! Shutdown is a graceful drain: the `shutdown` op stops the accept
//! loop (a self-connection wakes it), in-flight requests finish, then
//! both pools join their workers.

use std::io::{self, BufReader, BufWriter};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use oha_core::{optft_canonical_json, optslice_canonical_json, Pipeline, PipelineConfig};
use oha_ir::{parse_program, Fingerprint, InstId, InstKind, Program};
use oha_par::TaskPool;
use oha_store::{Lru, Store};

use crate::proto::{read_frame, write_frame, Request, Response, Tool};

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Unix-domain socket path (a stale file at this path is removed on
    /// bind).
    pub socket: PathBuf,
    /// Artifact-store directory; `None` serves without persistence (the
    /// LRU front still deduplicates identical requests).
    pub store_dir: Option<PathBuf>,
    /// Worker threads for each pool (`0` = the `OHA_THREADS` override,
    /// then the hardware default).
    pub threads: usize,
    /// Per-request compute deadline; an overrun answers the client with
    /// an error while the stray job finishes in the background.
    pub request_timeout: Duration,
    /// Response-cache capacity in entries.
    pub lru_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            socket: PathBuf::from("oha-serve.sock"),
            store_dir: None,
            threads: 0,
            request_timeout: Duration::from_secs(120),
            lru_capacity: 64,
        }
    }
}

/// Counters the daemon reports through the `stats` op and returns from
/// [`Server::run`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests answered (all ops).
    pub requests: u64,
    /// Analyze responses served from the in-memory LRU front.
    pub lru_hits: u64,
    /// Responses evicted from the LRU front.
    pub lru_evictions: u64,
    /// Requests that overran the compute deadline.
    pub timeouts: u64,
    /// Malformed or failed requests.
    pub errors: u64,
}

struct Shared {
    store: Option<Arc<Store>>,
    lru: Mutex<Lru<Fingerprint, Response>>,
    work: TaskPool,
    timeout: Duration,
    shutting: AtomicBool,
    socket: PathBuf,
    requests: AtomicU64,
    lru_hits: AtomicU64,
    timeouts: AtomicU64,
    errors: AtomicU64,
}

impl Shared {
    fn stats(&self) -> ServeStats {
        ServeStats {
            requests: self.requests.load(Ordering::Relaxed),
            lru_hits: self.lru_hits.load(Ordering::Relaxed),
            lru_evictions: self.lru.lock().map(|l| l.evictions()).unwrap_or(0),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
        }
    }

    fn stats_json(&self) -> String {
        let s = self.stats();
        let store = match &self.store {
            Some(store) => {
                let ss = store.stats();
                format!(
                    "{{\"hits\":{},\"misses\":{},\"writes\":{},\"corruptions\":{},\
                     \"version_mismatches\":{},\"invalidations\":{}}}",
                    ss.hits,
                    ss.misses,
                    ss.writes,
                    ss.corruptions,
                    ss.version_mismatches,
                    ss.invalidations
                )
            }
            None => "null".to_string(),
        };
        format!(
            "{{\"requests\":{},\"lru_hits\":{},\"lru_evictions\":{},\"timeouts\":{},\
             \"errors\":{},\"panicked_jobs\":{},\"store\":{store}}}",
            s.requests,
            s.lru_hits,
            s.lru_evictions,
            s.timeouts,
            s.errors,
            self.work.panicked_jobs()
        )
    }
}

/// The analysis daemon. [`Server::bind`], then [`Server::run`].
pub struct Server {
    listener: UnixListener,
    shared: Arc<Shared>,
    io_pool: TaskPool,
}

impl Server {
    /// Binds the socket (replacing a stale socket file), opens the store
    /// and starts the worker pools. The server does not accept
    /// connections until [`Server::run`].
    pub fn bind(config: ServerConfig) -> io::Result<Self> {
        if config.socket.exists() {
            std::fs::remove_file(&config.socket)?;
        }
        let listener = UnixListener::bind(&config.socket)?;
        let store = match &config.store_dir {
            Some(dir) => Some(Arc::new(Store::open(dir.clone())?)),
            None => None,
        };
        let threads = if config.threads == 0 {
            oha_par::thread_count()
        } else {
            config.threads
        };
        let shared = Arc::new(Shared {
            store,
            lru: Mutex::new(Lru::new(config.lru_capacity.max(1))),
            work: TaskPool::new(threads),
            timeout: config.request_timeout,
            shutting: AtomicBool::new(false),
            socket: config.socket.clone(),
            requests: AtomicU64::new(0),
            lru_hits: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        });
        Ok(Self {
            listener,
            shared,
            io_pool: TaskPool::new(threads),
        })
    }

    /// The socket path clients connect to.
    pub fn socket(&self) -> &Path {
        &self.shared.socket
    }

    /// The shared artifact store, when persistence is configured.
    pub fn store(&self) -> Option<&Arc<Store>> {
        self.shared.store.as_ref()
    }

    /// Serves until a `shutdown` request arrives, then drains gracefully
    /// and returns the final counters. Consumes the server; the socket
    /// file is removed on exit.
    pub fn run(self) -> io::Result<ServeStats> {
        for stream in self.listener.incoming() {
            if self.shared.shutting.load(Ordering::SeqCst) {
                break;
            }
            let stream = stream?;
            let shared = Arc::clone(&self.shared);
            self.io_pool
                .submit(move || handle_connection(stream, &shared));
        }
        // Graceful drain: no new connections; finish queued handlers,
        // which in turn wait out their in-flight compute jobs.
        self.io_pool.shutdown();
        self.shared.work.wait_idle();
        let stats = self.shared.stats();
        let _ = std::fs::remove_file(&self.shared.socket);
        Ok(stats)
    }
}

fn handle_connection(stream: UnixStream, shared: &Arc<Shared>) {
    // An idle keepalive connection must not wedge the graceful drain:
    // cap how long the handler waits for the *next* frame. (Waiting for
    // a response is server-side compute, bounded separately.)
    let idle_cap = shared.timeout.saturating_mul(2).max(Duration::from_secs(1));
    let _ = stream.set_read_timeout(Some(idle_cap));
    let _ = stream.set_write_timeout(Some(idle_cap));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = BufWriter::new(stream);
    loop {
        let payload = match read_frame(&mut reader) {
            Ok(Some(p)) => p,
            Ok(None) | Err(_) => return,
        };
        let response = match Request::decode(&payload) {
            Ok(request) => dispatch(&payload, request, shared),
            Err(e) => {
                shared.errors.fetch_add(1, Ordering::Relaxed);
                Response::err(format!("bad request: {e}"))
            }
        };
        shared.requests.fetch_add(1, Ordering::Relaxed);
        if write_frame(&mut writer, &response.encode()).is_err() {
            return;
        }
        // Once a drain starts, keepalive ends: close after the response
        // in hand (including the shutdown acknowledgement itself) so an
        // open connection cannot hold the drain hostage.
        if shared.shutting.load(Ordering::SeqCst) {
            return;
        }
    }
}

fn dispatch(payload: &[u8], request: Request, shared: &Arc<Shared>) -> Response {
    match request {
        Request::Stats => Response::ok(shared.stats_json()),
        Request::Shutdown => {
            shared.shutting.store(true, Ordering::SeqCst);
            // The accept loop is blocked in `accept`; a throwaway
            // connection wakes it so it can observe the flag.
            let _ = UnixStream::connect(&shared.socket);
            Response::ok("{\"shutting_down\":true}")
        }
        Request::Analyze { .. } => analyze(payload, request, shared),
    }
}

fn analyze(payload: &[u8], request: Request, shared: &Arc<Shared>) -> Response {
    // Identical request bytes → identical canonical response; serve
    // repeats from the LRU front without touching a pipeline.
    let key = Fingerprint::of_bytes(payload);
    if let Ok(mut lru) = shared.lru.lock() {
        if let Some(hit) = lru.get(&key) {
            shared.lru_hits.fetch_add(1, Ordering::Relaxed);
            let mut response = hit.clone();
            response.cached = true;
            return response;
        }
    }

    let started = Instant::now();
    let (tx, rx) = mpsc::channel();
    let store = shared.store.clone();
    let submitted = shared.work.submit(move || {
        let _ = tx.send(compute(request, store));
    });
    if !submitted {
        shared.errors.fetch_add(1, Ordering::Relaxed);
        return Response::err("daemon is shutting down");
    }
    match rx.recv_timeout(shared.timeout) {
        Ok(Ok(body)) => {
            let mut response = Response::ok(body);
            response.elapsed_ns = started.elapsed().as_nanos() as u64;
            if let Ok(mut lru) = shared.lru.lock() {
                lru.insert(key, response.clone());
            }
            response
        }
        Ok(Err(message)) => {
            shared.errors.fetch_add(1, Ordering::Relaxed);
            Response::err(message)
        }
        Err(_) => {
            shared.timeouts.fetch_add(1, Ordering::Relaxed);
            Response::err(format!(
                "request timed out after {:?} (the job keeps running in the background)",
                shared.timeout
            ))
        }
    }
}

/// Runs one pipeline on a work-pool thread. The registry inside
/// [`Pipeline`] is `Rc`-based, so the pipeline is constructed *here*,
/// never shipped across threads.
fn compute(request: Request, store: Option<Arc<Store>>) -> Result<String, String> {
    let Request::Analyze {
        tool,
        program,
        profiling,
        testing,
        endpoints,
    } = request
    else {
        return Err("not an analyze request".to_string());
    };
    let program = parse_program(&program).map_err(|e| format!("parse error: {e}"))?;
    let endpoints = resolve_endpoints(&program, &endpoints)?;
    let mut pipeline = Pipeline::new(program).with_config(PipelineConfig::default());
    if let Some(store) = store {
        pipeline = pipeline.with_store(store);
    }
    Ok(match tool {
        Tool::OptFt => optft_canonical_json(&pipeline.run_optft(&profiling, &testing)),
        Tool::OptSlice => {
            let outcome = pipeline.run_optslice(&profiling, &testing, &endpoints);
            optslice_canonical_json(&outcome)
        }
    })
}

/// Maps raw endpoint ids to [`InstId`]s, defaulting to every `output`
/// instruction when the request names none.
fn resolve_endpoints(program: &Program, raw: &[u32]) -> Result<Vec<InstId>, String> {
    if raw.is_empty() {
        return Ok(program
            .insts()
            .filter(|i| matches!(i.kind, InstKind::Output { .. }))
            .map(|i| i.id)
            .collect());
    }
    let total = program.insts().count() as u32;
    raw.iter()
        .map(|&r| {
            if r < total {
                Ok(InstId::new(r))
            } else {
                Err(format!(
                    "endpoint i{r} out of range (program has {total} instructions)"
                ))
            }
        })
        .collect()
}
