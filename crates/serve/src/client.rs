//! A small blocking client for the daemon protocol, shared by the
//! `oha-client` binary, the benchmark harness and the test suite.
//!
//! Resilience: every socket read carries a deadline
//! ([`ClientConfig::read_timeout`]) so a half-open or wedged daemon
//! errors out instead of blocking the caller forever, and *idempotent*
//! requests (analyze, stats, metrics — everything but shutdown) are
//! retried with capped exponential backoff on transport errors and on
//! typed `Busy` load-shed responses. Retry is safe precisely because
//! the analyze protocol is idempotent: the request's cache key is a
//! pure function of its bytes, so replaying it can only re-derive (or
//! fetch from the LRU/store) the same canonical result. Backoff jitter
//! is deterministic — keyed off the request's cache-key fingerprint and
//! the attempt number — so a chaos run replays byte-identically.

use std::io::{self, BufReader, BufWriter};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use oha_faults::splitmix64;
use oha_ir::Fingerprint;

use crate::proto::{read_frame, write_frame, MetricsFormat, Request, Response, Tool};

/// Capped-exponential-backoff schedule for idempotent retries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries *after* the first attempt (0 disables retrying).
    pub max_retries: u32,
    /// Delay before the first retry; attempt `n` waits `base × 2ⁿ`.
    pub base_delay: Duration,
    /// Ceiling on any single backoff delay.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 4,
            base_delay: Duration::from_millis(25),
            max_delay: Duration::from_secs(1),
        }
    }
}

impl RetryPolicy {
    /// No retries at all: one attempt, errors surface immediately.
    pub fn none() -> Self {
        Self {
            max_retries: 0,
            ..Self::default()
        }
    }

    /// The backoff before retry number `attempt` (1-based), for the
    /// request whose cache key hashes to `key`: `base × 2^(attempt-1)`
    /// capped at [`max_delay`](RetryPolicy::max_delay), scaled by a
    /// deterministic jitter factor in `[0.5, 1.0)` drawn from
    /// `splitmix64(key ⊕ attempt)` — different requests desynchronize,
    /// identical runs replay identically.
    pub fn backoff(&self, key: u64, attempt: u32) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32 << (attempt - 1).min(16))
            .min(self.max_delay);
        let jitter =
            0.5 + ((splitmix64(key ^ u64::from(attempt)) >> 11) as f64 / (1u64 << 53) as f64) / 2.0;
        exp.mul_f64(jitter)
    }
}

/// Connection- and retry-behaviour knobs for [`Client`].
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Deadline on every socket read; `None` waits forever (not
    /// recommended — a half-open daemon then wedges the caller). The
    /// default (150 s) comfortably exceeds the daemon's own 120 s
    /// compute deadline, so the server times out first.
    pub read_timeout: Option<Duration>,
    /// Retry schedule for idempotent requests.
    pub retry: RetryPolicy,
    /// Deadline on establishing a connection. `ConnectionRefused` /
    /// `NotFound` are retried with a short doubling backoff until the
    /// deadline, so a client racing a daemon's startup (its socket not
    /// yet bound, or a stale file still in place) waits the daemon out
    /// instead of failing — scripts need no sleep-and-poll loops. Other
    /// connect errors, and `Duration::ZERO`, fail immediately.
    pub connect_timeout: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            read_timeout: Some(Duration::from_secs(150)),
            retry: RetryPolicy::default(),
            connect_timeout: Duration::from_secs(10),
        }
    }
}

/// Connects to a Unix socket, absorbing the startup race: while the
/// error is `ConnectionRefused` (stale socket file) or `NotFound` (not
/// bound yet) and the deadline has not passed, sleep briefly (5 ms
/// doubling to a 100 ms cap) and try again. Every other error — and the
/// deadline running out — surfaces to the caller.
pub(crate) fn connect_with_deadline(
    socket: &Path,
    connect_timeout: Duration,
) -> io::Result<UnixStream> {
    let deadline = Instant::now() + connect_timeout;
    let mut delay = Duration::from_millis(5);
    loop {
        match UnixStream::connect(socket) {
            Ok(stream) => return Ok(stream),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::ConnectionRefused | io::ErrorKind::NotFound
                ) && Instant::now() + delay <= deadline =>
            {
                std::thread::sleep(delay);
                delay = (delay * 2).min(Duration::from_millis(100));
            }
            Err(e) => return Err(e),
        }
    }
}

struct Conn {
    reader: BufReader<UnixStream>,
    writer: BufWriter<UnixStream>,
}

/// A client holding (at most) one connection to a running daemon.
/// Requests are answered in order over the same connection; after a
/// transport error the connection is dropped and the next attempt
/// reconnects.
pub struct Client {
    socket: PathBuf,
    config: ClientConfig,
    conn: Option<Conn>,
    retries: u64,
}

impl Client {
    /// Connects to the daemon's socket with default configuration.
    pub fn connect(socket: impl AsRef<Path>) -> io::Result<Self> {
        Self::connect_with(socket, ClientConfig::default())
    }

    /// Connects with explicit timeout/retry configuration.
    pub fn connect_with(socket: impl AsRef<Path>, config: ClientConfig) -> io::Result<Self> {
        let mut client = Self {
            socket: socket.as_ref().to_path_buf(),
            config,
            conn: None,
            retries: 0,
        };
        client.reconnect()?;
        Ok(client)
    }

    /// Transport-level retries performed so far (reconnects after I/O
    /// errors plus backoffs after `Busy` responses).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    fn reconnect(&mut self) -> io::Result<()> {
        self.conn = None;
        let stream = connect_with_deadline(&self.socket, self.config.connect_timeout)?;
        stream.set_read_timeout(self.config.read_timeout)?;
        stream.set_write_timeout(self.config.read_timeout)?;
        let reader = BufReader::new(stream.try_clone()?);
        self.conn = Some(Conn {
            reader,
            writer: BufWriter::new(stream),
        });
        Ok(())
    }

    /// One request/response exchange on the current connection. Any
    /// error poisons the connection (a frame may be half-read or
    /// half-written), so it is dropped for the next attempt.
    fn exchange(&mut self, request: &Request) -> io::Result<Response> {
        if self.conn.is_none() {
            self.reconnect()?;
        }
        let conn = self.conn.as_mut().expect("reconnect populated conn");
        let result = (|| {
            write_frame(&mut conn.writer, &request.encode())?;
            let payload = read_frame(&mut conn.reader)?.ok_or_else(|| {
                io::Error::new(io::ErrorKind::UnexpectedEof, "daemon closed the connection")
            })?;
            Response::decode(&payload).map_err(|e| {
                io::Error::new(io::ErrorKind::InvalidData, format!("bad response: {e}"))
            })
        })();
        if result.is_err() {
            self.conn = None;
        }
        result
    }

    /// Sends one request and waits for its response, retrying transport
    /// errors and `Busy` load-sheds with capped exponential backoff —
    /// except for `shutdown`, which is single-shot (replaying it against
    /// a *new* daemon instance on the same socket would not be
    /// idempotent).
    pub fn call(&mut self, request: &Request) -> io::Result<Response> {
        if matches!(request, Request::Shutdown) {
            return self.exchange(request);
        }
        let key = Fingerprint::of_bytes(&request.cache_key_bytes()).0 as u64;
        let mut attempt = 0u32;
        loop {
            let outcome = self.exchange(request);
            let retryable = match &outcome {
                Ok(response) => response.busy,
                Err(_) => true,
            };
            if !retryable || attempt >= self.config.retry.max_retries {
                return outcome;
            }
            attempt += 1;
            self.retries += 1;
            std::thread::sleep(self.config.retry.backoff(key, attempt));
        }
    }

    /// Runs a pipeline on a program shipped as IR text. Empty `endpoints`
    /// means "every `output` instruction" for OptSlice (ignored for
    /// OptFT).
    pub fn analyze(
        &mut self,
        tool: Tool,
        program: &str,
        profiling: &[Vec<i64>],
        testing: &[Vec<i64>],
        endpoints: &[u32],
    ) -> io::Result<Response> {
        self.analyze_traced(tool, program, profiling, testing, endpoints, 0)
    }

    /// Like [`Client::analyze`], but records the daemon-side events of
    /// this request under `trace_id` (0 asks the daemon to mint one;
    /// either way the ID used comes back in [`Response::trace_id`]).
    pub fn analyze_traced(
        &mut self,
        tool: Tool,
        program: &str,
        profiling: &[Vec<i64>],
        testing: &[Vec<i64>],
        endpoints: &[u32],
        trace_id: u64,
    ) -> io::Result<Response> {
        self.call(&Request::Analyze {
            tool,
            program: program.to_string(),
            profiling: profiling.to_vec(),
            testing: testing.to_vec(),
            endpoints: endpoints.to_vec(),
            trace_id,
        })
    }

    /// Fetches daemon statistics as JSON.
    pub fn stats(&mut self) -> io::Result<Response> {
        self.call(&Request::Stats)
    }

    /// Fetches live telemetry (gauges, counters, latency histograms) as
    /// a JSON snapshot or a Prometheus-style text exposition.
    pub fn metrics(&mut self, format: MetricsFormat) -> io::Result<Response> {
        self.call(&Request::Metrics { format })
    }

    /// Asks the daemon to drain and exit (never retried).
    pub fn shutdown(&mut self) -> io::Result<Response> {
        self.call(&Request::Shutdown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_caps_and_jitters_deterministically() {
        let policy = RetryPolicy::default();
        let a1 = policy.backoff(7, 1);
        let a2 = policy.backoff(7, 2);
        let a5 = policy.backoff(7, 5);
        // Jitter is bounded: each delay sits in [0.5, 1.0) × nominal.
        assert!(a1 >= Duration::from_micros(12_500) && a1 < Duration::from_millis(25));
        assert!(a2 >= Duration::from_millis(25) && a2 < Duration::from_millis(50));
        // Attempt 5 nominal is 400 ms, still under the 1 s cap.
        assert!(a5 >= Duration::from_millis(200) && a5 < Duration::from_millis(400));
        // Deterministic: same (key, attempt) → same delay.
        assert_eq!(policy.backoff(7, 3), policy.backoff(7, 3));
        // Distinct keys desynchronize.
        assert_ne!(policy.backoff(7, 3), policy.backoff(8, 3));
    }

    #[test]
    fn backoff_respects_the_cap_at_large_attempts() {
        let policy = RetryPolicy::default();
        for attempt in 6..40 {
            assert!(policy.backoff(1, attempt) < Duration::from_secs(1));
        }
    }

    #[test]
    fn connect_deadline_zero_fails_immediately_on_a_missing_socket() {
        let path = std::env::temp_dir().join(format!("oha-no-daemon-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let started = Instant::now();
        let err = connect_with_deadline(&path, Duration::ZERO).unwrap_err();
        assert!(matches!(
            err.kind(),
            io::ErrorKind::NotFound | io::ErrorKind::ConnectionRefused
        ));
        assert!(started.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn connect_retry_waits_out_a_daemon_that_binds_late() {
        use std::os::unix::net::UnixListener;
        let path = std::env::temp_dir().join(format!("oha-late-bind-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let bind_path = path.clone();
        let binder = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(150));
            let listener = UnixListener::bind(&bind_path).unwrap();
            // Accept the probe so the connect fully completes.
            let _ = listener.accept();
        });
        let stream = connect_with_deadline(&path, Duration::from_secs(10))
            .expect("retry must absorb the startup race");
        drop(stream);
        binder.join().unwrap();
        let _ = std::fs::remove_file(&path);
    }
}
