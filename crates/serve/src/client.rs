//! A small blocking client for the daemon protocol, shared by the
//! `oha-client` binary, the benchmark harness and the test suite.

use std::io::{self, BufReader, BufWriter};
use std::os::unix::net::UnixStream;
use std::path::Path;

use crate::proto::{read_frame, write_frame, MetricsFormat, Request, Response, Tool};

/// One connection to a running daemon. Requests are answered in order
/// over the same connection.
pub struct Client {
    reader: BufReader<UnixStream>,
    writer: BufWriter<UnixStream>,
}

impl Client {
    /// Connects to the daemon's socket.
    pub fn connect(socket: impl AsRef<Path>) -> io::Result<Self> {
        let stream = UnixStream::connect(socket.as_ref())?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Sends one request and waits for its response.
    pub fn call(&mut self, request: &Request) -> io::Result<Response> {
        write_frame(&mut self.writer, &request.encode())?;
        let payload = read_frame(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "daemon closed the connection")
        })?;
        Response::decode(&payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad response: {e}")))
    }

    /// Runs a pipeline on a program shipped as IR text. Empty `endpoints`
    /// means "every `output` instruction" for OptSlice (ignored for
    /// OptFT).
    pub fn analyze(
        &mut self,
        tool: Tool,
        program: &str,
        profiling: &[Vec<i64>],
        testing: &[Vec<i64>],
        endpoints: &[u32],
    ) -> io::Result<Response> {
        self.analyze_traced(tool, program, profiling, testing, endpoints, 0)
    }

    /// Like [`Client::analyze`], but records the daemon-side events of
    /// this request under `trace_id` (0 asks the daemon to mint one;
    /// either way the ID used comes back in [`Response::trace_id`]).
    pub fn analyze_traced(
        &mut self,
        tool: Tool,
        program: &str,
        profiling: &[Vec<i64>],
        testing: &[Vec<i64>],
        endpoints: &[u32],
        trace_id: u64,
    ) -> io::Result<Response> {
        self.call(&Request::Analyze {
            tool,
            program: program.to_string(),
            profiling: profiling.to_vec(),
            testing: testing.to_vec(),
            endpoints: endpoints.to_vec(),
            trace_id,
        })
    }

    /// Fetches daemon statistics as JSON.
    pub fn stats(&mut self) -> io::Result<Response> {
        self.call(&Request::Stats)
    }

    /// Fetches live telemetry (gauges, counters, latency histograms) as
    /// a JSON snapshot or a Prometheus-style text exposition.
    pub fn metrics(&mut self, format: MetricsFormat) -> io::Result<Response> {
        self.call(&Request::Metrics { format })
    }

    /// Asks the daemon to drain and exit.
    pub fn shutdown(&mut self) -> io::Result<Response> {
        self.call(&Request::Shutdown)
    }
}
