//! `oha-serve`: the OHA analysis daemon.
//!
//! The store (`oha-store`) makes the expensive phases of the pipeline
//! reusable across *processes*; this crate makes them reusable across
//! *clients*. A daemon holds one open [`Store`](oha_store::Store) and a
//! persistent worker pool, and serves `analyze` requests over a
//! Unix-domain socket: the first request for a `(program, corpus)` pair
//! pays for profiling and predicated static analysis, every later one —
//! from any client, concurrently — reuses the cached artifacts, or the
//! in-memory LRU front when the request bytes are identical.
//!
//! Responses to `analyze` are *canonical result JSON*
//! ([`oha_core::optft_canonical_json`]): timing-free and byte-identical
//! whether computed cold, served warm from disk, or replayed from the
//! LRU — the determinism suite holds the daemon to that contract.
//!
//! The protocol ([`proto`]) is length-prefixed frames in the
//! workspace's hand-rolled codec; ops are `analyze`, `stats`, `metrics`
//! (live gauges and latency histograms, as JSON or Prometheus text) and
//! `shutdown` (graceful drain). Each `analyze` request can carry a trace
//! ID; with tracing enabled ([`ServerConfig::trace`] or `--trace-out`)
//! the daemon records a causally-linked span tree per request. See the
//! `oha-serve` / `oha-client` binaries for the command-line surface.

#![warn(missing_docs)]

pub mod proto;

mod client;
mod server;

pub use client::{Client, ClientConfig, RetryPolicy};
pub use proto::{MetricsFormat, Request, Response, Tool, MAX_FRAME};
pub use server::{ServeStats, Server, ServerConfig};
