//! Worker-process supervision: spawn N `oha-serve` daemons, watch them,
//! restart crashes with capped backoff, and drain them in sequence on
//! shutdown.
//!
//! Each worker slot moves through a small state machine driven by a
//! single tick thread:
//!
//! ```text
//! Starting ──(stats probe answers)──▶ Up
//!    ▲                                │
//!    │                    (process exits, or a
//!    │ (backoff elapsed,   health probe fails — the
//!    │  respawn)           worker is then killed)
//!    │                                ▼
//!    └────────────────────────── Backoff
//! ```
//!
//! The health probe is the daemon's own `stats` op over its socket —
//! the same request any client could send — so "healthy" means "serving
//! the protocol", not merely "process alive". Each respawn doubles the
//! slot's backoff up to a cap; a probe success resets it, so a
//! crash-looping worker cannot hot-spin the supervisor while a healthy
//! fleet restarts quickly.
//!
//! Chaos: when the supervisor's [`FaultPlan`] arms
//! [`sites::CLUSTER_WORKER_KILL`], a firing tick SIGKILLs one live
//! worker, rotating deterministically through the slots — the recovery
//! path is exercised on demand by CI, not only by real crashes.

use std::io;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use oha_faults::{sites, FaultPlan};
use oha_serve::{Client, ClientConfig, RetryPolicy};

/// Environment variable naming the `oha-serve` binary workers run as,
/// consulted when [`WorkerSpec::serve_bin`] is unset.
pub const SERVE_BIN_ENV: &str = "OHA_SERVE_BIN";

/// How each worker process is launched.
#[derive(Clone, Debug, Default)]
pub struct WorkerSpec {
    /// Explicit `oha-serve` binary path. Unset falls back to
    /// `$OHA_SERVE_BIN`, then an `oha-serve` next to (or one directory
    /// above) the current executable — which finds the sibling target
    /// binary both for installed routers and for `cargo test` runners
    /// living in `target/<profile>/deps/`.
    pub serve_bin: Option<PathBuf>,
    /// Shared artifact-store directory passed to every worker; the
    /// store is multi-process safe, so one expensive analysis computed
    /// by any worker warms the whole fleet.
    pub store_dir: Option<PathBuf>,
    /// Worker compute threads (`0` = the worker's own default).
    pub threads: usize,
    /// Worker queue bound (`0` = the worker's own default).
    pub max_queue: usize,
    /// Fault-injection spec exported to workers as `OHA_FAULTS`. `None`
    /// explicitly *clears* the variable in the child environment, so a
    /// chaos plan armed on the router never leaks into workers
    /// implicitly.
    pub faults_spec: Option<String>,
}

/// Supervision knobs.
#[derive(Clone, Debug)]
pub struct SupervisorConfig {
    /// Fleet size.
    pub workers: usize,
    /// Directory for worker sockets (`worker-<i>.sock`) and log files
    /// (`worker-<i>.log`, stdout+stderr appended). Created if missing.
    pub dir: PathBuf,
    /// Launch parameters shared by every worker.
    pub spec: WorkerSpec,
    /// First restart delay after a worker dies; doubles per consecutive
    /// respawn of the same slot.
    pub restart_backoff: Duration,
    /// Ceiling on the per-slot restart delay.
    pub max_backoff: Duration,
    /// How often an `Up` worker is health-probed via its `stats` op.
    pub health_interval: Duration,
    /// Supervision loop period (exit detection latency).
    pub tick: Duration,
    /// Router-side fault plan; the supervisor consults
    /// [`sites::CLUSTER_WORKER_KILL`] once per tick.
    pub faults: FaultPlan,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            workers: 3,
            dir: PathBuf::from("oha-cluster"),
            spec: WorkerSpec::default(),
            restart_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_secs(5),
            health_interval: Duration::from_millis(500),
            tick: Duration::from_millis(20),
            faults: FaultPlan::disabled(),
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Spawned; not yet confirmed serving the protocol.
    Starting,
    /// Health-probed and serving.
    Up,
    /// Dead; respawn once the deadline passes.
    Backoff { until: Instant },
}

struct Slot {
    child: Option<Child>,
    phase: Phase,
    /// Next restart delay for this slot (doubles per respawn, reset by
    /// a passing health probe).
    backoff: Duration,
    last_health: Instant,
}

struct Inner {
    dir: PathBuf,
    spec: WorkerSpec,
    serve_bin: PathBuf,
    slots: Vec<Mutex<Slot>>,
    /// Lock-free liveness mirror of each slot's phase, read by the
    /// router on every request.
    up: Vec<AtomicBool>,
    restarts: AtomicU64,
    chaos_kills: AtomicU64,
    kill_rotation: AtomicU64,
    stopping: AtomicBool,
    restart_backoff: Duration,
    max_backoff: Duration,
    health_interval: Duration,
    tick: Duration,
    faults: FaultPlan,
}

impl Inner {
    fn socket(&self, worker: usize) -> PathBuf {
        self.dir.join(format!("worker-{worker}.sock"))
    }

    fn log(&self, worker: usize) -> PathBuf {
        self.dir.join(format!("worker-{worker}.log"))
    }

    fn spawn(&self, worker: usize) -> io::Result<Child> {
        // The previous incarnation's socket file would make the probe
        // see ConnectionRefused until the new process rebinds; removing
        // it first keeps NotFound (clean "not yet") the common case.
        let _ = std::fs::remove_file(self.socket(worker));
        let log = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.log(worker))?;
        let mut command = Command::new(&self.serve_bin);
        command
            .arg("--socket")
            .arg(self.socket(worker))
            .arg("--worker-id")
            .arg(worker.to_string())
            .stdin(Stdio::null())
            .stdout(log.try_clone()?)
            .stderr(log);
        if let Some(store) = &self.spec.store_dir {
            command.arg("--store").arg(store);
        }
        if self.spec.threads > 0 {
            command.arg("--threads").arg(self.spec.threads.to_string());
        }
        if self.spec.max_queue > 0 {
            command
                .arg("--max-queue")
                .arg(self.spec.max_queue.to_string());
        }
        match &self.spec.faults_spec {
            Some(spec) => {
                command.env("OHA_FAULTS", spec);
            }
            None => {
                command.env_remove("OHA_FAULTS");
            }
        }
        command.spawn()
    }

    /// A worker is healthy iff its `stats` op answers over the socket.
    fn probe(&self, worker: usize) -> bool {
        let config = ClientConfig {
            read_timeout: Some(Duration::from_secs(2)),
            retry: RetryPolicy::none(),
            // The tick thread must not park in connect retries; a
            // worker that is not accepting yet simply fails this probe
            // and gets the next tick.
            connect_timeout: Duration::ZERO,
        };
        match Client::connect_with(self.socket(worker), config) {
            Ok(mut client) => matches!(client.stats(), Ok(response) if response.ok),
            Err(_) => false,
        }
    }

    fn mark_down(&self, worker: usize, slot: &mut Slot, now: Instant) {
        self.up[worker].store(false, Ordering::Relaxed);
        slot.phase = Phase::Backoff {
            until: now + slot.backoff,
        };
        slot.backoff = (slot.backoff * 2).min(self.max_backoff);
    }

    fn tick_slot(&self, worker: usize) {
        let Ok(mut slot) = self.slots[worker].lock() else {
            return;
        };
        let now = Instant::now();
        // Exit detection first: a dead child trumps whatever phase the
        // slot thought it was in.
        if let Some(child) = slot.child.as_mut() {
            if matches!(child.try_wait(), Ok(Some(_))) {
                slot.child = None;
                self.mark_down(worker, &mut slot, now);
                return;
            }
        }
        match slot.phase {
            Phase::Backoff { until } => {
                if now >= until {
                    match self.spawn(worker) {
                        Ok(child) => {
                            slot.child = Some(child);
                            slot.phase = Phase::Starting;
                            self.restarts.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            // Spawn failure (fd pressure, unlinked
                            // binary): back off again rather than spin.
                            self.mark_down(worker, &mut slot, now);
                        }
                    }
                }
            }
            Phase::Starting => {
                if self.probe(worker) {
                    slot.phase = Phase::Up;
                    slot.backoff = self.restart_backoff;
                    slot.last_health = now;
                    self.up[worker].store(true, Ordering::Relaxed);
                }
            }
            Phase::Up => {
                if now.duration_since(slot.last_health) >= self.health_interval {
                    if self.probe(worker) {
                        slot.last_health = now;
                        slot.backoff = self.restart_backoff;
                    } else {
                        // Alive but not serving (wedged accept loop,
                        // deleted socket): kill it and let the restart
                        // path bring a fresh one up.
                        if let Some(child) = slot.child.as_mut() {
                            let _ = child.kill();
                            let _ = child.wait();
                        }
                        slot.child = None;
                        self.mark_down(worker, &mut slot, now);
                    }
                }
            }
        }
    }

    fn kill(&self, worker: usize) -> bool {
        let Ok(mut slot) = self.slots[worker].lock() else {
            return false;
        };
        let Some(child) = slot.child.as_mut() else {
            return false;
        };
        let _ = child.kill();
        let _ = child.wait();
        slot.child = None;
        self.mark_down(worker, &mut slot, Instant::now());
        true
    }

    fn run_ticks(&self) {
        while !self.stopping.load(Ordering::SeqCst) {
            if self.faults.should_inject(sites::CLUSTER_WORKER_KILL) {
                let victim = (self.kill_rotation.fetch_add(1, Ordering::Relaxed) as usize)
                    % self.slots.len();
                if self.kill(victim) {
                    self.chaos_kills.fetch_add(1, Ordering::Relaxed);
                }
            }
            for worker in 0..self.slots.len() {
                self.tick_slot(worker);
            }
            std::thread::sleep(self.tick);
        }
    }
}

/// Resolves the worker binary: explicit path → `$OHA_SERVE_BIN` → an
/// `oha-serve` next to the current executable or one directory above it
/// (test runners live in `target/<profile>/deps/`).
fn resolve_serve_bin(explicit: Option<&Path>) -> io::Result<PathBuf> {
    if let Some(path) = explicit {
        return Ok(path.to_path_buf());
    }
    if let Ok(env) = std::env::var(SERVE_BIN_ENV) {
        if !env.trim().is_empty() {
            return Ok(PathBuf::from(env.trim()));
        }
    }
    let exe = std::env::current_exe()?;
    let mut dirs = Vec::new();
    if let Some(dir) = exe.parent() {
        dirs.push(dir.to_path_buf());
        if let Some(parent) = dir.parent() {
            dirs.push(parent.to_path_buf());
        }
    }
    for dir in &dirs {
        let candidate = dir.join("oha-serve");
        if candidate.is_file() {
            return Ok(candidate);
        }
    }
    Err(io::Error::new(
        io::ErrorKind::NotFound,
        format!("cannot locate the oha-serve worker binary (set ${SERVE_BIN_ENV} or --serve-bin)"),
    ))
}

/// A running worker fleet. [`Supervisor::start`] spawns the workers and
/// the tick thread; [`Supervisor::drain`] shuts the fleet down
/// gracefully. Dropping an undrained supervisor kills any children it
/// still owns, so a panicking test cannot leak daemon processes.
pub struct Supervisor {
    inner: Arc<Inner>,
    tick: Mutex<Option<JoinHandle<()>>>,
}

impl Supervisor {
    /// Creates the fleet directory, spawns every worker and starts the
    /// supervision loop. Workers come up asynchronously — route through
    /// [`Supervisor::is_up`] or rely on client connect retries.
    pub fn start(config: SupervisorConfig) -> io::Result<Self> {
        assert!(config.workers > 0, "a cluster needs at least one worker");
        std::fs::create_dir_all(&config.dir)?;
        let serve_bin = resolve_serve_bin(config.spec.serve_bin.as_deref())?;
        let now = Instant::now();
        let inner = Arc::new(Inner {
            dir: config.dir,
            spec: config.spec,
            serve_bin,
            slots: (0..config.workers)
                .map(|_| {
                    Mutex::new(Slot {
                        child: None,
                        phase: Phase::Backoff { until: now },
                        backoff: config.restart_backoff,
                        last_health: now,
                    })
                })
                .collect(),
            up: (0..config.workers)
                .map(|_| AtomicBool::new(false))
                .collect(),
            restarts: AtomicU64::new(0),
            chaos_kills: AtomicU64::new(0),
            kill_rotation: AtomicU64::new(0),
            stopping: AtomicBool::new(false),
            restart_backoff: config.restart_backoff,
            max_backoff: config.max_backoff,
            health_interval: config.health_interval,
            tick: config.tick,
            faults: config.faults,
        });
        // The initial spawns go through the same Backoff→Starting path
        // as every respawn (one code path), but must not count as
        // restarts.
        for worker in 0..inner.slots.len() {
            inner.tick_slot(worker);
        }
        inner.restarts.store(0, Ordering::Relaxed);
        let tick_inner = Arc::clone(&inner);
        let tick = std::thread::Builder::new()
            .name("oha-supervisor".to_string())
            .spawn(move || tick_inner.run_ticks())?;
        Ok(Self {
            inner,
            tick: Mutex::new(Some(tick)),
        })
    }

    /// Fleet size.
    pub fn workers(&self) -> usize {
        self.inner.slots.len()
    }

    /// Socket path of worker `i`.
    pub fn socket(&self, worker: usize) -> PathBuf {
        self.inner.socket(worker)
    }

    /// Whether worker `i` last health-probed as serving.
    pub fn is_up(&self, worker: usize) -> bool {
        self.inner.up[worker].load(Ordering::Relaxed)
    }

    /// How many workers are currently up.
    pub fn live_workers(&self) -> u64 {
        self.inner
            .up
            .iter()
            .filter(|up| up.load(Ordering::Relaxed))
            .count() as u64
    }

    /// Respawns performed after worker deaths (initial spawns excluded).
    pub fn restarts_total(&self) -> u64 {
        self.inner.restarts.load(Ordering::Relaxed)
    }

    /// Workers SIGKILLed by the [`sites::CLUSTER_WORKER_KILL`] chaos
    /// site.
    pub fn chaos_kills_total(&self) -> u64 {
        self.inner.chaos_kills.load(Ordering::Relaxed)
    }

    /// Current PID per worker slot (`0` while a slot is down).
    pub fn worker_pids(&self) -> Vec<u64> {
        (0..self.workers())
            .map(|w| {
                self.inner.slots[w]
                    .lock()
                    .ok()
                    .and_then(|slot| slot.child.as_ref().map(|c| u64::from(c.id())))
                    .unwrap_or(0)
            })
            .collect()
    }

    /// SIGKILLs worker `i` (tests and chaos harnesses); the supervision
    /// loop restarts it after its backoff. Returns whether a live
    /// process was killed.
    pub fn kill_worker(&self, worker: usize) -> bool {
        self.inner.kill(worker)
    }

    /// Graceful sequential drain: stop supervising (no more restarts),
    /// then ask each worker in slot order to shut down and wait for it,
    /// escalating to SIGKILL only if a worker ignores the request.
    pub fn drain(&self) {
        self.inner.stopping.store(true, Ordering::SeqCst);
        if let Some(handle) = self.tick.lock().ok().and_then(|mut t| t.take()) {
            let _ = handle.join();
        }
        for worker in 0..self.workers() {
            self.inner.up[worker].store(false, Ordering::Relaxed);
            let Some(mut child) = self.inner.slots[worker]
                .lock()
                .ok()
                .and_then(|mut slot| slot.child.take())
            else {
                continue;
            };
            let config = ClientConfig {
                read_timeout: Some(Duration::from_secs(5)),
                retry: RetryPolicy::none(),
                connect_timeout: Duration::from_millis(250),
            };
            if let Ok(mut client) = Client::connect_with(self.inner.socket(worker), config) {
                let _ = client.shutdown();
            }
            let deadline = Instant::now() + Duration::from_secs(10);
            loop {
                match child.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if Instant::now() < deadline => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    _ => {
                        let _ = child.kill();
                        let _ = child.wait();
                        break;
                    }
                }
            }
        }
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        self.inner.stopping.store(true, Ordering::SeqCst);
        if let Some(handle) = self.tick.lock().ok().and_then(|mut t| t.take()) {
            let _ = handle.join();
        }
        for slot in &self.inner.slots {
            if let Some(mut child) = slot.lock().ok().and_then(|mut s| s.child.take()) {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }
}
