//! Rendezvous (highest-random-weight) shard topology.
//!
//! Every request key gets a full preference order over the workers:
//! worker `i` scores `splitmix64(key ⊕ seed_i)` and the ranking is the
//! descending sort of those scores. The first rank is the key's *home*
//! shard — routing repeats of the same `(program, corpus)` request to
//! the same worker maximizes that worker's LRU hit rate — and the rest
//! of the ranking is the deterministic failover order.
//!
//! Rendezvous hashing gives minimal disruption by construction: a
//! worker going down only remaps the keys homed on it (their rank-2
//! worker takes over), because removing one candidate from a ranking
//! never reorders the remaining candidates. The router exploits exactly
//! that — it filters the static ranking by liveness instead of
//! recomputing any topology.

use oha_faults::splitmix64;

/// Mixed into the per-worker seeds so shard scores are unrelated to any
/// other `splitmix64` use of the same key (retry jitter, fault rolls).
const TOPOLOGY_SALT: u64 = 0x4f48_415f_434c_5553; // "OHA_CLUS"

/// A fixed-size rendezvous-hashing topology over `workers` shards.
#[derive(Clone, Debug)]
pub struct Topology {
    seeds: Vec<u64>,
}

impl Topology {
    /// A topology over `workers` shards (at least one).
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "a cluster needs at least one worker");
        Self {
            seeds: (0..workers as u64)
                .map(|i| splitmix64(TOPOLOGY_SALT ^ i))
                .collect(),
        }
    }

    /// Number of shards.
    pub fn workers(&self) -> usize {
        self.seeds.len()
    }

    /// The rendezvous score of `key` on `worker`.
    fn score(&self, key: u64, worker: usize) -> u64 {
        splitmix64(key ^ self.seeds[worker])
    }

    /// The key's home shard: the worker with the highest score.
    pub fn home(&self, key: u64) -> usize {
        self.rank(key)[0]
    }

    /// The full preference order for `key`: every worker index, highest
    /// score first. Ties (astronomically unlikely) break toward the
    /// lower index so the order is total and deterministic.
    pub fn rank(&self, key: u64) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.workers()).collect();
        order.sort_by_key(|&w| (std::cmp::Reverse(self.score(key, w)), w));
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_is_a_deterministic_permutation_with_home_first() {
        let topology = Topology::new(5);
        for key in 0..200u64 {
            let rank = topology.rank(key);
            assert_eq!(rank[0], topology.home(key));
            let mut sorted = rank.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..5).collect::<Vec<_>>());
            assert_eq!(rank, topology.rank(key));
        }
    }

    #[test]
    fn keys_spread_over_every_shard() {
        let topology = Topology::new(4);
        let mut counts = [0usize; 4];
        for key in 0..4000u64 {
            counts[topology.home(splitmix64(key))] += 1;
        }
        // A uniform split is 1000 per shard; demand each shard holds at
        // least half its fair share.
        for (shard, &count) in counts.iter().enumerate() {
            assert!(count >= 500, "shard {shard} got only {count}/4000 keys");
        }
    }

    #[test]
    fn removing_a_worker_only_remaps_keys_homed_on_it() {
        let topology = Topology::new(4);
        for key in 0..500u64 {
            let rank = topology.rank(key);
            let down = rank[2];
            let filtered: Vec<usize> = rank.iter().copied().filter(|&w| w != down).collect();
            // Filtering preserves order, so the home never changes when
            // a non-home worker disappears.
            assert_eq!(filtered[0], rank[0]);
            assert_eq!(filtered.len(), 3);
        }
    }
}
