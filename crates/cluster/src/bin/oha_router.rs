//! The cluster router binary. See `--help`.

use std::path::PathBuf;
use std::process::exit;
use std::time::Duration;

use oha_cluster::{Router, RouterConfig};

const USAGE: &str = "\
oha-router: supervise an oha-serve worker fleet behind one socket

USAGE:
  oha-router [--socket PATH] [--workers N] [--dir DIR] [--store DIR]
             [--serve-bin PATH] [--worker-threads N] [--worker-max-queue N]
             [--worker-faults SPEC] [--retries N] [--retry-base-ms N]
             [--forward-timeout-ms N] [--health-ms N] [--backoff-ms N]
             [--faults SPEC]

OPTIONS:
  --socket PATH          Front socket clients connect to; speaks the ordinary
                         daemon protocol, so oha-client works unchanged
                         (default: oha-router.sock)
  --workers N            Worker fleet size (default: 3)
  --dir DIR              Directory for worker sockets and log files
                         (default: oha-cluster)
  --store DIR            Shared artifact-store directory passed to every
                         worker (default: $OHA_STORE_DIR, else none)
  --serve-bin PATH       Worker binary (default: $OHA_SERVE_BIN, else an
                         oha-serve next to this executable)
  --worker-threads N     Compute threads per worker (default: worker default)
  --worker-max-queue N   Queue bound per worker (default: worker default)
  --worker-faults SPEC   Fault plan exported to workers as OHA_FAULTS
                         (default: none; the router's own $OHA_FAULTS never
                         leaks into workers)
  --retries N            Failover passes over a key's shard ranking beyond
                         the first (default: 4)
  --retry-base-ms N      Base backoff between failover attempts; doubles per
                         attempt, capped at 1s, deterministic jitter
                         (default: 25)
  --forward-timeout-ms N Deadline on each forwarded response read
                         (default: 150000)
  --health-ms N          Worker health-probe interval (default: 500)
  --backoff-ms N         First restart delay after a worker death; doubles
                         per consecutive respawn, capped at 5s (default: 100)
  --faults SPEC          Router-side fault plan: cluster.route.delay,
                         cluster.worker.kill (default: $OHA_FAULTS, else
                         disabled)

Requests are routed by rendezvous hashing on the request's cache key: each
key has a home worker (maximizing LRU hits) and a deterministic failover
order. `stats` and `metrics` aggregate the whole fleet; `shutdown` drains
workers in sequence, then the router itself.
";

fn main() {
    let mut config = RouterConfig::default();
    if let Ok(dir) = std::env::var(oha_core_store_env()) {
        if !dir.trim().is_empty() {
            config.supervisor.spec.store_dir = Some(PathBuf::from(dir.trim()));
        }
    }
    config.faults = oha_faults::FaultPlan::from_env();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {name} needs a value\n\n{USAGE}");
                exit(2);
            })
        };
        match arg.as_str() {
            "--socket" => config.socket = PathBuf::from(value("--socket")),
            "--workers" => config.supervisor.workers = parse(&value("--workers"), "--workers"),
            "--dir" => config.supervisor.dir = PathBuf::from(value("--dir")),
            "--store" => config.supervisor.spec.store_dir = Some(PathBuf::from(value("--store"))),
            "--serve-bin" => {
                config.supervisor.spec.serve_bin = Some(PathBuf::from(value("--serve-bin")))
            }
            "--worker-threads" => {
                config.supervisor.spec.threads =
                    parse(&value("--worker-threads"), "--worker-threads")
            }
            "--worker-max-queue" => {
                config.supervisor.spec.max_queue =
                    parse(&value("--worker-max-queue"), "--worker-max-queue")
            }
            "--worker-faults" => {
                let spec = value("--worker-faults");
                // Validate eagerly so a typo fails the launch, not the
                // first worker spawn.
                if let Err(e) = oha_faults::FaultPlan::parse(&spec) {
                    eprintln!("error: --worker-faults: {e}\n\n{USAGE}");
                    exit(2);
                }
                config.supervisor.spec.faults_spec = Some(spec);
            }
            "--retries" => config.retry.max_retries = parse(&value("--retries"), "--retries"),
            "--retry-base-ms" => {
                config.retry.base_delay =
                    Duration::from_millis(parse(&value("--retry-base-ms"), "--retry-base-ms"))
            }
            "--forward-timeout-ms" => {
                config.forward_read_timeout = Duration::from_millis(parse(
                    &value("--forward-timeout-ms"),
                    "--forward-timeout-ms",
                ))
            }
            "--health-ms" => {
                config.supervisor.health_interval =
                    Duration::from_millis(parse(&value("--health-ms"), "--health-ms"))
            }
            "--backoff-ms" => {
                config.supervisor.restart_backoff =
                    Duration::from_millis(parse(&value("--backoff-ms"), "--backoff-ms"))
            }
            "--faults" => {
                let spec = value("--faults");
                config.faults = oha_faults::FaultPlan::parse(&spec).unwrap_or_else(|e| {
                    eprintln!("error: --faults: {e}\n\n{USAGE}");
                    exit(2);
                });
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return;
            }
            other => {
                eprintln!("error: unknown argument {other:?}\n\n{USAGE}");
                exit(2);
            }
        }
    }
    config.supervisor.faults = config.faults.clone();

    let router = match Router::bind(config.clone()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: cannot start cluster: {e}");
            exit(1);
        }
    };
    eprintln!(
        "oha-router: listening on {} ({} workers in {}, store: {})",
        router.socket().display(),
        config.supervisor.workers,
        config.supervisor.dir.display(),
        config
            .supervisor
            .spec
            .store_dir
            .as_ref()
            .map(|d| d.display().to_string())
            .unwrap_or_else(|| "none".to_string()),
    );
    match router.run() {
        Ok(stats) => {
            eprintln!(
                "oha-router: drained after {} requests ({} forwarded, {} failovers, {} errors)",
                stats.requests, stats.forwarded, stats.failovers, stats.router_errors
            );
        }
        Err(e) => {
            eprintln!("error: router loop failed: {e}");
            exit(1);
        }
    }
}

/// The store-dir env var name, without linking all of `oha-core` into
/// the router binary just for a constant.
fn oha_core_store_env() -> &'static str {
    "OHA_STORE_DIR"
}

fn parse<T: std::str::FromStr>(text: &str, flag: &str) -> T {
    text.parse().unwrap_or_else(|_| {
        eprintln!("error: {flag} got unparsable value {text:?}\n\n{USAGE}");
        exit(2);
    })
}
