//! The cluster front door: one socket speaking the ordinary daemon
//! protocol, backed by a supervised fleet of `oha-serve` workers.
//!
//! Routing: an `analyze` request's shard key is the fingerprint of its
//! cache-key bytes — the same bytes the workers' LRU fronts and the
//! retry jitter already key on — so identical requests always land on
//! the same *home* worker and its LRU absorbs the repeats. On a
//! transport error or a typed `busy` shed the router walks the key's
//! rendezvous ranking to the next live worker (capped-backoff delays
//! between attempts, the client crate's own discipline), which is safe
//! for exactly the reason client retries are: `analyze` is idempotent,
//! every worker derives the same canonical bytes. Non-busy error
//! responses (parse failures, bad endpoints) are *deterministic* —
//! every worker would say the same — so they return to the client
//! as-is, without failover.
//!
//! Telemetry: `stats` and `metrics` fan out to every worker and merge.
//! Counters sum; latency histograms merge bucket-by-bucket
//! ([`Histogram::merge`]), so the cluster-wide distribution is exact,
//! not an approximation. The Prometheus exposition renders through the
//! same [`oha_obs::prom`] module the workers use, plus
//! `oha_cluster_*` families for the fleet itself.
//!
//! Shutdown: the `shutdown` op acknowledges, stops accepting, finishes
//! in-flight requests, then drains workers in sequence before the
//! router exits — one graceful cascade from a single client call.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use oha_faults::{sites, FaultPlan};
use oha_ir::Fingerprint;
use oha_obs::{prom, Histogram, Json};
use oha_par::TaskPool;
use oha_serve::proto::{read_frame, write_frame};
use oha_serve::{Client, ClientConfig, MetricsFormat, Request, Response, RetryPolicy};

use crate::supervisor::{Supervisor, SupervisorConfig};
use crate::topology::Topology;

/// Router configuration.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// The socket clients connect to (`oha-client` works unchanged).
    pub socket: PathBuf,
    /// Fleet definition; the router starts and owns the supervisor.
    pub supervisor: SupervisorConfig,
    /// Connection-handler threads (`0` = `4 × workers + 4`).
    pub io_threads: usize,
    /// Deadline on each forwarded request's response read. The default
    /// (150 s) outlasts the workers' own 120 s compute deadline, so a
    /// worker times out (typed error) before the router gives up on it.
    pub forward_read_timeout: Duration,
    /// How long a forward attempt waits for a worker socket to accept
    /// (kept short: a restarting worker should cost one failover, not a
    /// long stall).
    pub forward_connect_timeout: Duration,
    /// Failover/retry schedule: `max_retries + 1` passes over the key's
    /// ranking, with `backoff(key, attempt)` sleeps between attempts.
    pub retry: RetryPolicy,
    /// Client-facing socket read/write deadline.
    pub io_timeout: Duration,
    /// Router-side fault plan ([`sites::CLUSTER_ROUTE_DELAY`] before
    /// each forward; the supervisor consults
    /// [`sites::CLUSTER_WORKER_KILL`]).
    pub faults: FaultPlan,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            socket: PathBuf::from("oha-router.sock"),
            supervisor: SupervisorConfig::default(),
            io_threads: 0,
            forward_read_timeout: Duration::from_secs(150),
            forward_connect_timeout: Duration::from_millis(500),
            retry: RetryPolicy::default(),
            io_timeout: Duration::from_secs(300),
            faults: FaultPlan::disabled(),
        }
    }
}

/// Counters the router reports through `stats` and returns from
/// [`Router::run`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Client requests answered (all ops).
    pub requests: u64,
    /// Analyze requests forwarded to a worker and answered.
    pub forwarded: u64,
    /// Answers that came from a non-home worker.
    pub failovers: u64,
    /// Analyze requests no worker could answer.
    pub router_errors: u64,
}

struct Shared {
    socket: PathBuf,
    topology: Topology,
    supervisor: Supervisor,
    retry: RetryPolicy,
    forward_config: ClientConfig,
    faults: FaultPlan,
    io_timeout: Duration,
    shutting: AtomicBool,
    requests: AtomicU64,
    forwarded: AtomicU64,
    failovers: AtomicU64,
    router_errors: AtomicU64,
    shard_requests: Vec<AtomicU64>,
}

/// Per-connection cache of worker clients: one lazily-opened connection
/// per worker per client connection, healing itself on transport errors
/// (the [`Client`] reconnects on the next call).
type WorkerClients = HashMap<usize, Client>;

impl Shared {
    fn stats(&self) -> RouterStats {
        RouterStats {
            requests: self.requests.load(Ordering::Relaxed),
            forwarded: self.forwarded.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
            router_errors: self.router_errors.load(Ordering::Relaxed),
        }
    }

    fn forward(
        &self,
        worker: usize,
        request: &Request,
        clients: &mut WorkerClients,
    ) -> io::Result<Response> {
        let client = match clients.entry(worker) {
            Entry::Occupied(occupied) => occupied.into_mut(),
            Entry::Vacant(vacant) => vacant.insert(Client::connect_with(
                self.supervisor.socket(worker),
                self.forward_config.clone(),
            )?),
        };
        client.call(request)
    }

    /// Routes one analyze request: home worker first, then the key's
    /// rendezvous failover order, `max_retries + 1` passes with backoff
    /// between attempts. Early passes skip workers the supervisor knows
    /// are down; the last pass tries everything, since supervision can
    /// lag reality in both directions.
    fn route(&self, request: &Request, clients: &mut WorkerClients) -> Response {
        let key = Fingerprint::of_bytes(&request.cache_key_bytes()).0 as u64;
        let ranking = self.topology.rank(key);
        let home = ranking[0];
        let passes = self.retry.max_retries as usize + 1;
        let mut attempt = 0u32;
        let mut last_busy: Option<Response> = None;
        for pass in 0..passes {
            for &worker in &ranking {
                if pass + 1 < passes && !self.supervisor.is_up(worker) {
                    continue;
                }
                if attempt > 0 {
                    std::thread::sleep(self.retry.backoff(key, attempt));
                }
                attempt += 1;
                if self.faults.should_inject(sites::CLUSTER_ROUTE_DELAY) {
                    std::thread::sleep(self.faults.delay());
                }
                match self.forward(worker, request, clients) {
                    Ok(response) if !response.busy => {
                        self.forwarded.fetch_add(1, Ordering::Relaxed);
                        self.shard_requests[worker].fetch_add(1, Ordering::Relaxed);
                        if worker != home {
                            self.failovers.fetch_add(1, Ordering::Relaxed);
                        }
                        return response;
                    }
                    Ok(busy) => last_busy = Some(busy),
                    Err(_) => {}
                }
            }
        }
        self.router_errors.fetch_add(1, Ordering::Relaxed);
        // A fleet-wide `busy` propagates as `busy` — still typed, still
        // safe for the client to retry with its own backoff.
        last_busy.unwrap_or_else(|| {
            Response::err(format!(
                "cluster: no worker answered after {attempt} attempts"
            ))
        })
    }

    /// Fans `request` out to every worker, `None` where a worker fails
    /// to answer.
    fn fan_out(&self, request: &Request, clients: &mut WorkerClients) -> Vec<Option<Response>> {
        (0..self.topology.workers())
            .map(|worker| match self.forward(worker, request, clients) {
                Ok(response) if response.ok => Some(response),
                _ => None,
            })
            .collect()
    }

    fn cluster_json(&self) -> Json {
        let s = self.stats();
        let num = |v: u64| Json::Num(v as f64);
        Json::Obj(vec![
            ("workers".to_string(), num(self.topology.workers() as u64)),
            (
                "live_workers".to_string(),
                num(self.supervisor.live_workers()),
            ),
            (
                "restarts".to_string(),
                num(self.supervisor.restarts_total()),
            ),
            (
                "chaos_kills".to_string(),
                num(self.supervisor.chaos_kills_total()),
            ),
            ("requests".to_string(), num(s.requests)),
            ("forwarded".to_string(), num(s.forwarded)),
            ("failovers".to_string(), num(s.failovers)),
            ("router_errors".to_string(), num(s.router_errors)),
            (
                "shard_requests".to_string(),
                Json::Arr(
                    self.shard_requests
                        .iter()
                        .map(|c| num(c.load(Ordering::Relaxed)))
                        .collect(),
                ),
            ),
            (
                "pids".to_string(),
                Json::Arr(self.supervisor.worker_pids().into_iter().map(num).collect()),
            ),
        ])
    }

    /// The cluster `stats` body: the fleet section, each worker's own
    /// stats snapshot (`null` for an unreachable worker) and the
    /// numeric sum over the reachable ones.
    fn stats_json(&self, clients: &mut WorkerClients) -> String {
        let snapshots: Vec<Option<Json>> = self
            .fan_out(&Request::Stats, clients)
            .into_iter()
            .map(|r| r.and_then(|response| Json::parse(&response.body).ok()))
            .collect();
        let totals = merge_snapshots(&snapshots, &[]);
        Json::Obj(vec![
            ("cluster".to_string(), self.cluster_json()),
            (
                "workers".to_string(),
                Json::Arr(
                    snapshots
                        .into_iter()
                        .map(|s| s.unwrap_or(Json::Null))
                        .collect(),
                ),
            ),
            ("totals".to_string(), totals),
        ])
        .to_string_compact()
    }

    /// The cluster `metrics` JSON: like stats, but the latency
    /// histograms are merged exactly instead of numerically summed.
    fn metrics_json(&self, clients: &mut WorkerClients) -> (Json, Vec<Option<Json>>) {
        let snapshots: Vec<Option<Json>> = self
            .fan_out(
                &Request::Metrics {
                    format: MetricsFormat::Json,
                },
                clients,
            )
            .into_iter()
            .map(|r| r.and_then(|response| Json::parse(&response.body).ok()))
            .collect();
        let totals = merge_snapshots(&snapshots, &["request_latency_ns", "queue_wait_ns"]);
        let merged = Json::Obj(vec![
            ("cluster".to_string(), self.cluster_json()),
            (
                "workers".to_string(),
                Json::Arr(
                    snapshots
                        .iter()
                        .map(|s| s.clone().unwrap_or(Json::Null))
                        .collect(),
                ),
            ),
            ("totals".to_string(), totals),
        ]);
        (merged, snapshots)
    }

    /// The cluster Prometheus exposition: the same families a single
    /// daemon exposes (summed counters, exactly-merged histograms) plus
    /// the `oha_cluster_*` fleet families — a scraper pointed here sees
    /// a strict superset of a worker's exposition.
    fn metrics_prometheus(&self, clients: &mut WorkerClients) -> String {
        let (_, snapshots) = self.metrics_json(clients);
        let totals = merge_snapshots(&snapshots, &["request_latency_ns", "queue_wait_ns"]);
        let field = |name: &str| totals.get(name).and_then(Json::as_u64).unwrap_or(0);
        let mut out = String::new();
        let counter = "counter";
        let gauge = "gauge";
        prom::sample(
            &mut out,
            counter,
            "oha_requests_total",
            "Requests answered (all ops, summed over workers).",
            field("requests"),
        );
        prom::sample(
            &mut out,
            counter,
            "oha_lru_hits_total",
            "Analyze responses served from worker LRU fronts.",
            field("lru_hits"),
        );
        prom::sample(
            &mut out,
            counter,
            "oha_lru_evictions_total",
            "Responses evicted from worker LRU fronts.",
            field("lru_evictions"),
        );
        prom::sample(
            &mut out,
            counter,
            "oha_timeouts_total",
            "Requests that overran a worker's compute deadline.",
            field("timeouts"),
        );
        prom::sample(
            &mut out,
            counter,
            "oha_errors_total",
            "Malformed or failed requests across the fleet.",
            field("errors"),
        );
        prom::sample(
            &mut out,
            counter,
            "oha_busy_rejections_total",
            "Analyze requests shed Busy at worker queue bounds.",
            field("busy_rejections"),
        );
        prom::sample(
            &mut out,
            counter,
            "oha_panicked_jobs_total",
            "Worker compute jobs whose closure panicked.",
            field("panicked_jobs"),
        );
        prom::sample(
            &mut out,
            gauge,
            "oha_queue_depth",
            "Compute jobs queued across the fleet.",
            field("queue_depth"),
        );
        prom::sample(
            &mut out,
            gauge,
            "oha_in_flight",
            "Analyze requests in flight across the fleet.",
            field("in_flight"),
        );
        prom::sample(
            &mut out,
            gauge,
            "oha_open_connections",
            "Open worker-side client connections.",
            field("open_connections"),
        );
        prom::sample(
            &mut out,
            gauge,
            "oha_lru_entries",
            "Entries held by worker LRU fronts.",
            field("lru_len"),
        );
        for (name, key, help) in [
            (
                "oha_request_latency_seconds",
                "request_latency_ns",
                "Wall-clock time per answered request (exact merge over workers).",
            ),
            (
                "oha_queue_wait_seconds",
                "queue_wait_ns",
                "Time compute jobs spent queued (exact merge over workers).",
            ),
        ] {
            let merged = totals
                .get(key)
                .and_then(|j| Histogram::from_json(j).ok())
                .unwrap_or_default();
            prom::histogram(&mut out, name, help, &merged);
        }
        let s = self.stats();
        prom::sample(
            &mut out,
            gauge,
            "oha_cluster_workers",
            "Configured fleet size.",
            self.topology.workers() as u64,
        );
        prom::sample(
            &mut out,
            gauge,
            "oha_cluster_live_workers",
            "Workers currently serving.",
            self.supervisor.live_workers(),
        );
        prom::sample(
            &mut out,
            counter,
            "oha_cluster_worker_restarts_total",
            "Worker respawns after deaths.",
            self.supervisor.restarts_total(),
        );
        prom::sample(
            &mut out,
            counter,
            "oha_cluster_forwarded_total",
            "Analyze requests forwarded to a worker and answered.",
            s.forwarded,
        );
        prom::sample(
            &mut out,
            counter,
            "oha_cluster_failovers_total",
            "Answers served by a non-home worker.",
            s.failovers,
        );
        prom::sample(
            &mut out,
            counter,
            "oha_cluster_router_errors_total",
            "Analyze requests no worker could answer.",
            s.router_errors,
        );
        out.push_str("# HELP oha_cluster_shard_requests_total Answered requests per shard.\n");
        out.push_str("# TYPE oha_cluster_shard_requests_total counter\n");
        for (shard, count) in self.shard_requests.iter().enumerate() {
            out.push_str(&format!(
                "oha_cluster_shard_requests_total{{shard=\"{shard}\"}} {}\n",
                count.load(Ordering::Relaxed)
            ));
        }
        out
    }
}

/// Sums worker snapshots field-by-field: numbers add, booleans OR,
/// objects recurse, `null`/missing contribute nothing, strings keep the
/// first value. Fields named in `histograms` (at any nesting level) are
/// merged through [`Histogram::merge`] instead — bucket-exact — and
/// per-worker identity fields (`worker_id`) are dropped.
fn merge_snapshots(snapshots: &[Option<Json>], histograms: &[&str]) -> Json {
    let mut totals = Json::Null;
    for snapshot in snapshots.iter().flatten() {
        totals = merge_value(totals, snapshot, "", histograms);
    }
    totals
}

fn merge_value(acc: Json, incoming: &Json, key: &str, histograms: &[&str]) -> Json {
    if histograms.contains(&key) {
        let mut merged = match Histogram::from_json(&acc) {
            Ok(h) => h,
            Err(_) => Histogram::new(),
        };
        if let Ok(h) = Histogram::from_json(incoming) {
            merged.merge(&h);
        }
        return merged.to_json();
    }
    match (acc, incoming) {
        (acc, Json::Null) => acc,
        (Json::Null, other) => merge_value(zero_like(other), other, key, histograms),
        (Json::Num(a), Json::Num(b)) => Json::Num(a + b),
        (Json::Bool(a), Json::Bool(b)) => Json::Bool(a || *b),
        (Json::Obj(acc_fields), Json::Obj(fields)) => {
            let mut acc_fields = acc_fields;
            for (k, v) in fields {
                if k == "worker_id" {
                    continue;
                }
                match acc_fields.iter_mut().find(|(name, _)| name == k) {
                    Some((_, slot)) => {
                        let prev = std::mem::replace(slot, Json::Null);
                        *slot = merge_value(prev, v, k, histograms);
                    }
                    None => {
                        acc_fields.push((k.clone(), merge_value(Json::Null, v, k, histograms)));
                    }
                }
            }
            Json::Obj(acc_fields)
        }
        (acc, _) => acc,
    }
}

/// The additive identity shaped like `value`, so the first snapshot
/// merges into a neutral accumulator instead of being copied verbatim
/// (which would skip the histogram special-casing).
fn zero_like(value: &Json) -> Json {
    match value {
        Json::Num(_) => Json::Num(0.0),
        Json::Bool(_) => Json::Bool(false),
        Json::Obj(_) => Json::Obj(Vec::new()),
        other => other.clone(),
    }
}

/// The cluster front door. [`Router::bind`] starts the worker fleet and
/// binds the client socket; [`Router::run`] serves until a `shutdown`
/// request, then drains the fleet and itself.
pub struct Router {
    listener: UnixListener,
    shared: Arc<Shared>,
    io_pool: TaskPool,
}

impl Router {
    /// Starts the supervisor (workers boot asynchronously) and binds
    /// the router socket.
    pub fn bind(config: RouterConfig) -> io::Result<Self> {
        let workers = config.supervisor.workers;
        let supervisor = Supervisor::start(config.supervisor)?;
        if config.socket.exists() {
            std::fs::remove_file(&config.socket)?;
        }
        let listener = UnixListener::bind(&config.socket)?;
        let io_threads = if config.io_threads == 0 {
            workers * 4 + 4
        } else {
            config.io_threads
        };
        let shared = Arc::new(Shared {
            socket: config.socket,
            topology: Topology::new(workers),
            supervisor,
            retry: config.retry,
            forward_config: ClientConfig {
                read_timeout: Some(config.forward_read_timeout),
                // The router *is* the retry loop; a forwarded attempt
                // must fail fast so failover stays prompt.
                retry: RetryPolicy::none(),
                connect_timeout: config.forward_connect_timeout,
            },
            faults: config.faults,
            io_timeout: config.io_timeout.max(Duration::from_secs(1)),
            shutting: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            forwarded: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            router_errors: AtomicU64::new(0),
            shard_requests: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        });
        Ok(Self {
            listener,
            shared,
            io_pool: TaskPool::new(io_threads),
        })
    }

    /// The socket path clients connect to.
    pub fn socket(&self) -> &Path {
        &self.shared.socket
    }

    /// The worker fleet (tests use it to kill workers and watch
    /// recovery).
    pub fn supervisor(&self) -> &Supervisor {
        &self.shared.supervisor
    }

    /// Serves until a `shutdown` request arrives, then drains: handlers
    /// finish, workers drain in sequence, the socket file is removed.
    pub fn run(self) -> io::Result<RouterStats> {
        for stream in self.listener.incoming() {
            if self.shared.shutting.load(Ordering::SeqCst) {
                break;
            }
            let stream = stream?;
            let shared = Arc::clone(&self.shared);
            self.io_pool
                .submit(move || handle_connection(stream, &shared));
        }
        self.io_pool.shutdown();
        self.shared.supervisor.drain();
        let stats = self.shared.stats();
        let _ = std::fs::remove_file(&self.shared.socket);
        Ok(stats)
    }
}

fn handle_connection(stream: UnixStream, shared: &Arc<Shared>) {
    // A stalled or half-open client must not pin a handler or wedge the
    // graceful drain: cap every socket read and write.
    let _ = stream.set_read_timeout(Some(shared.io_timeout));
    let _ = stream.set_write_timeout(Some(shared.io_timeout));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = BufWriter::new(stream);
    let mut clients: WorkerClients = HashMap::new();
    loop {
        let payload = match read_frame(&mut reader) {
            Ok(Some(p)) => p,
            Ok(None) | Err(_) => return,
        };
        let response = match Request::decode(&payload) {
            Ok(request) => dispatch(request, shared, &mut clients),
            Err(e) => Response::err(format!("bad request: {e}")),
        };
        shared.requests.fetch_add(1, Ordering::Relaxed);
        if write_frame(&mut writer, &response.encode()).is_err() {
            return;
        }
        if shared.shutting.load(Ordering::SeqCst) {
            return;
        }
    }
}

fn dispatch(request: Request, shared: &Arc<Shared>, clients: &mut WorkerClients) -> Response {
    match request {
        Request::Stats => Response::ok(shared.stats_json(clients)),
        Request::Metrics { format } => Response::ok(match format {
            MetricsFormat::Json => shared.metrics_json(clients).0.to_string_pretty(),
            MetricsFormat::Prometheus => shared.metrics_prometheus(clients),
        }),
        Request::Shutdown => {
            shared.shutting.store(true, Ordering::SeqCst);
            // Wake the accept loop so it can observe the flag; worker
            // drain happens in `run` after the handlers finish.
            let _ = UnixStream::connect(&shared.socket);
            Response::ok("{\"shutting_down\":true}")
        }
        Request::Analyze { .. } => shared.route(&request, clients),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn num(v: f64) -> Json {
        Json::Num(v)
    }

    #[test]
    fn merge_sums_numbers_and_recurses_into_objects() {
        let a = Json::Obj(vec![
            ("requests".to_string(), num(3.0)),
            ("worker_id".to_string(), num(0.0)),
            (
                "store".to_string(),
                Json::Obj(vec![("hits".to_string(), num(2.0))]),
            ),
        ]);
        let b = Json::Obj(vec![
            ("requests".to_string(), num(4.0)),
            ("worker_id".to_string(), num(1.0)),
            (
                "store".to_string(),
                Json::Obj(vec![("hits".to_string(), num(5.0))]),
            ),
        ]);
        let merged = merge_snapshots(&[Some(a), Some(b), None], &[]);
        assert_eq!(merged.get("requests").and_then(Json::as_u64), Some(7));
        assert_eq!(
            merged
                .get("store")
                .and_then(|s| s.get("hits"))
                .and_then(Json::as_u64),
            Some(7)
        );
        assert!(merged.get("worker_id").is_none());
    }

    #[test]
    fn merge_treats_named_histograms_exactly() {
        let mut h1 = Histogram::new();
        let mut h2 = Histogram::new();
        h1.record(100);
        h1.record(1_000);
        h2.record(100_000);
        let a = Json::Obj(vec![("request_latency_ns".to_string(), h1.to_json())]);
        let b = Json::Obj(vec![("request_latency_ns".to_string(), h2.to_json())]);
        let merged = merge_snapshots(&[Some(a), Some(b)], &["request_latency_ns"]);
        let hist = Histogram::from_json(merged.get("request_latency_ns").unwrap()).unwrap();
        let mut expected = h1.clone();
        expected.merge(&h2);
        assert_eq!(hist.count(), expected.count());
        assert_eq!(hist.sum(), expected.sum());
        assert_eq!(
            hist.to_json().to_string_compact(),
            expected.to_json().to_string_compact()
        );
    }
}
