//! `oha-cluster`: sharded multi-worker serving for the OHA daemon.
//!
//! The store (`oha-store`) amortizes one expensive predicated static
//! analysis across *processes*; `oha-serve` amortizes it across
//! *clients*; this crate amortizes it across *cores and failures*. An
//! [`Router`] daemon supervises N `oha-serve` worker processes over one
//! shared content-addressed store and speaks the ordinary daemon
//! protocol on a single front socket, so `oha-client` (and any
//! [`Client`](oha_serve::Client)) works against a fleet unchanged.
//!
//! The three layers:
//!
//! - [`topology`] — rendezvous hashing from a request's cache-key
//!   fingerprint to a home shard plus a deterministic failover order,
//! - [`supervisor`] — worker process lifecycle: spawn, `stats`-probe
//!   health checks, restart with capped backoff, chaos kills, graceful
//!   sequential drain,
//! - [`router`] — the request loop: route to the home worker, fail
//!   over along the ranking on transport errors and typed `busy`
//!   sheds, and serve exact aggregated telemetry (`stats`/`metrics`
//!   fan-out; histograms merge bucket-by-bucket, so cluster latency
//!   distributions are identities, not estimates).
//!
//! The contract the integration suite enforces is the repo-wide one:
//! with faults off, any request through the router returns bytes
//! identical to a single-daemon oracle; with workers dying mid-run,
//! clients see correct bytes or typed errors — never corrupt frames.

#![warn(missing_docs)]

pub mod router;
pub mod supervisor;
pub mod topology;

pub use router::{Router, RouterConfig, RouterStats};
pub use supervisor::{Supervisor, SupervisorConfig, WorkerSpec, SERVE_BIN_ENV};
pub use topology::Topology;
