//! End-to-end cluster tests: requests through the router must return
//! bytes identical to a serial in-process pipeline (the single-daemon
//! oracle), across concurrent clients, shards, and a worker SIGKILLed
//! mid-run under an armed fault plan.
//!
//! Workers are real `oha-serve` processes (resolved from the build's
//! `target/<profile>/` directory), because chaos kills need a process
//! boundary — killing a thread would take the whole test down.

use std::fs;
use std::path::{Path, PathBuf};
use std::thread;
use std::time::{Duration, Instant};

use oha_cluster::{Router, RouterConfig, SupervisorConfig, WorkerSpec};
use oha_core::{optft_canonical_json, optslice_canonical_json, Pipeline};
use oha_faults::FaultPlan;
use oha_ir::{print_program, Fingerprint, InstKind, Operand, Program, ProgramBuilder};
use oha_obs::Json;
use oha_serve::proto::Request;
use oha_serve::{Client, MetricsFormat, Tool};
use Operand::{Const, Reg as R};

const CLIENTS: usize = 16;
const WORKERS: usize = 3;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("oha-cluster-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Two workers increment a shared counter under a lock — the workload
/// the daemon suite uses, exercising both tools end to end.
fn locked_counter() -> Program {
    let mut pb = ProgramBuilder::new();
    let g = pb.global("shared", 1);
    let w = pb.declare("worker", 1);
    let mut m = pb.function("main", 0);
    let n1 = m.input();
    let t1 = m.spawn(w, R(n1));
    let t2 = m.spawn(w, R(n1));
    m.join(R(t1));
    m.join(R(t2));
    let ga = m.addr_global(g);
    let v = m.load(R(ga), 0);
    m.output(R(v));
    m.ret(None);
    let main = pb.finish_function(m);
    let mut wf = pb.function("worker", 1);
    let iters = wf.param(0);
    let head = wf.block();
    let body = wf.block();
    let exit = wf.block();
    let ga = wf.addr_global(g);
    let i = wf.copy(Const(0));
    wf.jump(head);
    wf.select(head);
    let c = wf.cmp(oha_ir::CmpOp::Lt, R(i), R(iters));
    wf.branch(R(c), body, exit);
    wf.select(body);
    wf.lock(R(ga));
    let v = wf.load(R(ga), 0);
    let v1 = wf.bin(oha_ir::BinOp::Add, R(v), Const(1));
    wf.store(R(ga), 0, R(v1));
    wf.unlock(R(ga));
    let i1 = wf.bin(oha_ir::BinOp::Add, R(i), Const(1));
    wf.copy_to(i, R(i1));
    wf.jump(head);
    wf.select(exit);
    wf.ret(None);
    pb.finish_function(wf);
    pb.finish(main).unwrap()
}

/// A corpus variant: (profiling inputs, testing inputs).
type Corpus = (Vec<Vec<i64>>, Vec<Vec<i64>>);

/// Several distinct corpora so the request keys spread over multiple
/// shards (one corpus would pin every request to one home worker).
fn corpus_variants() -> Vec<Corpus> {
    (0..4i64)
        .map(|variant| {
            let profiling = (1..4).map(|n| vec![n * 10 + variant]).collect();
            let testing = (1..3).map(|n| vec![n * 7 + variant]).collect();
            (profiling, testing)
        })
        .collect()
}

struct Oracle {
    text: String,
    /// Per corpus variant: (optft canonical JSON, optslice canonical
    /// JSON).
    expected: Vec<(String, String)>,
}

fn oracle() -> Oracle {
    let program = locked_counter();
    let text = print_program(&program);
    let endpoints: Vec<_> = program
        .insts()
        .filter(|i| matches!(i.kind, InstKind::Output { .. }))
        .map(|i| i.id)
        .collect();
    let expected = corpus_variants()
        .iter()
        .map(|(profiling, testing)| {
            let ft =
                optft_canonical_json(&Pipeline::new(program.clone()).run_optft(profiling, testing));
            let slice = optslice_canonical_json(
                &Pipeline::new(program.clone()).run_optslice(profiling, testing, &endpoints),
            );
            (ft, slice)
        })
        .collect();
    Oracle { text, expected }
}

fn router_config(dir: &Path) -> RouterConfig {
    RouterConfig {
        socket: dir.join("router.sock"),
        supervisor: SupervisorConfig {
            workers: WORKERS,
            dir: dir.join("fleet"),
            spec: WorkerSpec {
                store_dir: Some(dir.join("store")),
                threads: 2,
                ..WorkerSpec::default()
            },
            restart_backoff: Duration::from_millis(50),
            health_interval: Duration::from_millis(200),
            ..SupervisorConfig::default()
        },
        ..RouterConfig::default()
    }
}

/// The shard key the router derives for an analyze request, rebuilt
/// here so the kill test can target a key's home worker precisely.
fn shard_key(text: &str, tool: Tool, profiling: &[Vec<i64>], testing: &[Vec<i64>]) -> u64 {
    let request = Request::Analyze {
        tool,
        program: text.to_string(),
        profiling: profiling.to_vec(),
        testing: testing.to_vec(),
        endpoints: Vec::new(),
        trace_id: 0,
    };
    Fingerprint::of_bytes(&request.cache_key_bytes()).0 as u64
}

fn cluster_stats(socket: &Path) -> Json {
    let mut client = Client::connect(socket).unwrap();
    let response = client.stats().unwrap();
    assert!(response.ok, "stats failed: {}", response.body);
    Json::parse(&response.body).unwrap()
}

fn cluster_field(stats: &Json, field: &str) -> u64 {
    stats
        .get("cluster")
        .and_then(|c| c.get(field))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("stats missing cluster.{field}"))
}

#[test]
fn concurrent_clients_match_the_single_daemon_oracle_byte_for_byte() {
    let dir = tmp_dir("oracle");
    let oracle = oracle();
    let variants = corpus_variants();

    let config = router_config(&dir);
    let socket = config.socket.clone();
    let router = Router::bind(config).unwrap();
    let router_thread = thread::spawn(move || router.run().unwrap());

    thread::scope(|scope| {
        for n in 0..CLIENTS {
            let socket = &socket;
            let oracle = &oracle;
            let variants = &variants;
            scope.spawn(move || {
                let mut client = Client::connect(socket).unwrap();
                let (profiling, testing) = &variants[n % variants.len()];
                let (expected_ft, expected_slice) = &oracle.expected[n % variants.len()];
                let (tool, expected) = if n % 2 == 0 {
                    (Tool::OptFt, expected_ft)
                } else {
                    (Tool::OptSlice, expected_slice)
                };
                let response = client
                    .analyze(tool, &oracle.text, profiling, testing, &[])
                    .unwrap();
                assert!(response.ok, "client {n}: {}", response.body);
                assert_eq!(
                    &response.body, expected,
                    "client {n}: cluster bytes diverged from the oracle"
                );
            });
        }
    });

    // The fleet stayed whole and multiple shards did real work.
    let stats = cluster_stats(&socket);
    assert_eq!(cluster_field(&stats, "live_workers"), WORKERS as u64);
    assert_eq!(cluster_field(&stats, "restarts"), 0);
    assert!(cluster_field(&stats, "forwarded") >= CLIENTS as u64);
    let shards = stats
        .get("cluster")
        .and_then(|c| c.get("shard_requests"))
        .and_then(Json::as_arr)
        .unwrap();
    let busy: usize = shards
        .iter()
        .filter(|s| s.as_u64().unwrap_or(0) > 0)
        .count();
    assert!(
        busy >= 2,
        "requests all landed on one shard: {}",
        stats.to_string_compact()
    );
    // Worker snapshots carry their shard identity.
    let worker_ids: Vec<u64> = stats
        .get("workers")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .map(|w| w.get("worker_id").and_then(Json::as_u64).unwrap())
        .collect();
    assert_eq!(worker_ids, vec![0, 1, 2]);

    let mut client = Client::connect(&socket).unwrap();
    let shutdown = client.shutdown().unwrap();
    assert!(shutdown.ok);
    let final_stats = router_thread.join().unwrap();
    assert!(final_stats.forwarded >= CLIENTS as u64);
    assert_eq!(final_stats.router_errors, 0);
    assert!(!socket.exists(), "drain must remove the router socket");
}

#[test]
fn killing_a_worker_mid_run_fails_over_and_the_supervisor_restarts_it() {
    let dir = tmp_dir("failover");
    let oracle = oracle();
    let variants = corpus_variants();

    let mut config = router_config(&dir);
    // Armed plan on the route path: deterministic delays on every 5th
    // forward shake the failover interleavings without changing bytes.
    config.faults = FaultPlan::parse("seed=11; delay_ms=5; cluster.route.delay=%5").unwrap();
    // Keep the killed worker down for a full second while forwards give
    // up on it quickly — otherwise the connect retry would absorb the
    // restart and the failover path would never fire.
    config.supervisor.restart_backoff = Duration::from_secs(1);
    config.forward_connect_timeout = Duration::from_millis(100);
    let socket = config.socket.clone();
    let router = Router::bind(config).unwrap();

    // Wait for the full fleet before aiming the kill.
    let deadline = Instant::now() + Duration::from_secs(30);
    while router.supervisor().live_workers() < WORKERS as u64 {
        assert!(Instant::now() < deadline, "fleet never came up");
        thread::sleep(Duration::from_millis(20));
    }

    // Derive the first corpus variant's home worker with the same
    // rendezvous topology the router uses — that worker is the kill
    // target, so the retried request *must* fail over.
    let topology = oha_cluster::Topology::new(WORKERS);
    let (profiling, testing) = &variants[0];
    let expected = &oracle.expected[0].0;
    let home = topology.home(shard_key(&oracle.text, Tool::OptFt, profiling, testing));

    let router_thread = thread::spawn(move || router.run().unwrap());

    // Warm the home worker, then kill it and immediately re-ask: the
    // router must fail over to the next shard in the ranking and still
    // return oracle bytes. The client is scoped so its connection closes
    // here — an idle connection held across shutdown would pin its
    // handler (and drain) until the router's io timeout.
    {
        let mut warm_client = Client::connect(&socket).unwrap();
        let warm = warm_client
            .analyze(Tool::OptFt, &oracle.text, profiling, testing, &[])
            .unwrap();
        assert!(warm.ok, "{}", warm.body);
        assert_eq!(&warm.body, expected);
    }

    let stats_before = cluster_stats(&socket);
    let failovers_before = cluster_field(&stats_before, "failovers");

    // SIGKILL the home worker from outside the supervisor (its pid
    // comes from the stats op), so the test exercises real death
    // detection, not a cooperative code path.
    let pids = stats_before
        .get("cluster")
        .and_then(|c| c.get("pids"))
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .map(|p| p.as_u64().unwrap())
        .collect::<Vec<_>>();
    let victim = pids[home];
    assert!(victim > 0, "home worker has no pid");
    // The workspace links no libc crate, so signal through the
    // standard `kill` utility.
    let killed = std::process::Command::new("kill")
        .args(["-9", &victim.to_string()])
        .status()
        .unwrap();
    assert!(killed.success());

    // Concurrent clients through the kill window: every response must
    // be oracle bytes (failover) — typed errors would also satisfy the
    // protocol contract, but with retries budgeted this workload always
    // lands.
    thread::scope(|scope| {
        for n in 0..8 {
            let socket = &socket;
            let oracle = &oracle;
            scope.spawn(move || {
                let mut client = Client::connect(socket).unwrap();
                let response = client
                    .analyze(Tool::OptFt, &oracle.text, profiling, testing, &[])
                    .unwrap();
                assert!(response.ok, "client {n}: {}", response.body);
                assert_eq!(&response.body, expected, "client {n} got non-oracle bytes");
            });
        }
    });

    // The supervisor must notice the death and bring the worker back.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = cluster_stats(&socket);
        if cluster_field(&stats, "live_workers") == WORKERS as u64
            && cluster_field(&stats, "restarts") >= 1
        {
            assert!(
                cluster_field(&stats, "failovers") > failovers_before,
                "no failovers recorded despite the home worker dying: {}",
                stats.to_string_compact()
            );
            break;
        }
        assert!(
            Instant::now() < deadline,
            "supervisor never restarted the killed worker: {}",
            stats.to_string_compact()
        );
        thread::sleep(Duration::from_millis(50));
    }

    // Telemetry aggregation stays sound under churn: the Prometheus
    // exposition parses and carries the cluster families.
    let mut client = Client::connect(&socket).unwrap();
    let metrics = client.metrics(MetricsFormat::Prometheus).unwrap();
    assert!(metrics.ok);
    for family in [
        "oha_requests_total",
        "oha_request_latency_seconds_bucket{le=\"+Inf\"}",
        "oha_cluster_live_workers",
        "oha_cluster_worker_restarts_total",
        "oha_cluster_failovers_total",
        "oha_cluster_shard_requests_total{shard=\"0\"}",
    ] {
        assert!(
            metrics.body.contains(family),
            "exposition missing {family}:\n{}",
            metrics.body
        );
    }

    let shutdown = client.shutdown().unwrap();
    assert!(shutdown.ok);
    let final_stats = router_thread.join().unwrap();
    assert!(final_stats.failovers > 0);
}

#[test]
fn cluster_metrics_json_merges_worker_histograms_exactly() {
    let dir = tmp_dir("metrics");
    let oracle = oracle();
    let variants = corpus_variants();

    let config = router_config(&dir);
    let socket = config.socket.clone();
    let router = Router::bind(config).unwrap();
    let router_thread = thread::spawn(move || router.run().unwrap());

    let mut client = Client::connect(&socket).unwrap();
    for (profiling, testing) in &variants {
        let response = client
            .analyze(Tool::OptFt, &oracle.text, profiling, testing, &[])
            .unwrap();
        assert!(response.ok, "{}", response.body);
    }

    let metrics = client.metrics(MetricsFormat::Json).unwrap();
    assert!(metrics.ok);
    let doc = Json::parse(&metrics.body).unwrap();
    let total_hist = doc
        .get("totals")
        .and_then(|t| t.get("request_latency_ns"))
        .map(|j| oha_obs::Histogram::from_json(j).unwrap())
        .unwrap();
    let worker_hists: Vec<oha_obs::Histogram> = doc
        .get("workers")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .filter_map(|w| w.get("request_latency_ns"))
        .map(|j| oha_obs::Histogram::from_json(j).unwrap())
        .collect();
    assert_eq!(worker_hists.len(), WORKERS);
    let mut expected = oha_obs::Histogram::new();
    for h in &worker_hists {
        expected.merge(h);
    }
    // Exact aggregation: the cluster histogram IS the merge, bucket for
    // bucket, not an approximation of it.
    assert_eq!(
        total_hist.to_json().to_string_compact(),
        expected.to_json().to_string_compact()
    );
    // Every worker answered at least one request or stats probe; the
    // summed request counter covers the fan-out itself too.
    let total_requests = doc
        .get("totals")
        .and_then(|t| t.get("requests"))
        .and_then(Json::as_u64)
        .unwrap();
    assert!(total_requests >= variants.len() as u64);

    let shutdown = client.shutdown().unwrap();
    assert!(shutdown.ok);
    router_thread.join().unwrap();
}
