//! `RunReport`: the serializable artifact of one run — counters, gauges,
//! series, span timings, rendered tables, and nested child reports — with a
//! human text renderer and a stable JSON round-trip.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

use crate::hist::Histogram;
use crate::json::{Json, JsonError};

/// Counter name under which [`RunReport::to_json`] records how many
/// non-finite gauge/series values it refused to serialize.
pub const NON_FINITE_DROPPED: &str = "obs.json.non_finite_dropped";

/// Accumulated time for one span path, in serializable form.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanEntry {
    /// Total nanoseconds spent in the span.
    pub total_ns: u64,
    /// Number of completed entries.
    pub count: u64,
}

impl SpanEntry {
    /// Total time as a [`Duration`].
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.total_ns)
    }
}

/// A rendered table (headers plus string rows), kept verbatim so figure
/// binaries can embed exactly what they printed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TableArtifact {
    /// Table caption.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells, one `Vec` per row.
    pub rows: Vec<Vec<String>>,
}

/// The artifact of one observed run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunReport {
    /// Report name (e.g. the experiment or workload).
    pub name: String,
    /// Free-form key/value annotations (workload name, config, ...).
    pub meta: BTreeMap<String, String>,
    /// Monotonic counter values.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values.
    pub gauges: BTreeMap<String, f64>,
    /// Named series (e.g. the per-run invariant fact-count curve).
    pub series: BTreeMap<String, Vec<f64>>,
    /// Span timings keyed by `/`-joined path.
    pub spans: BTreeMap<String, SpanEntry>,
    /// Latency/size distributions (log₂-bucketed).
    pub hists: BTreeMap<String, Histogram>,
    /// Rendered tables.
    pub tables: Vec<TableArtifact>,
    /// Nested reports (e.g. one per workload under an experiment).
    pub children: Vec<RunReport>,
}

impl RunReport {
    /// An empty report with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        RunReport {
            name: name.into(),
            ..Self::default()
        }
    }

    /// Sets a meta annotation (builder-style).
    pub fn with_meta(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.meta.insert(key.into(), value.into());
        self
    }

    /// Adds a table artifact.
    pub fn push_table(&mut self, title: impl Into<String>, headers: &[&str], rows: &[Vec<String>]) {
        self.tables.push(TableArtifact {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: rows.to_vec(),
        });
    }

    /// Total recorded time for a span path, if present.
    pub fn span_total(&self, path: &str) -> Option<Duration> {
        self.spans.get(path).map(SpanEntry::total)
    }

    /// Looks up a counter, returning 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    // -- JSON ---------------------------------------------------------------

    /// Converts the report to a JSON value.
    ///
    /// JSON has no NaN or infinity, and a zero-duration span can produce
    /// exactly those in timing-derived gauges. Rather than emit an invalid
    /// document (or panic in the writer), non-finite gauges are *dropped*
    /// and non-finite series elements are *clamped to 0.0*; every such
    /// value is tallied in the [`NON_FINITE_DROPPED`] counter so the loss
    /// is visible in the output itself.
    pub fn to_json(&self) -> Json {
        let non_finite = self.gauges.values().filter(|v| !v.is_finite()).count()
            + self
                .series
                .values()
                .flat_map(|vs| vs.iter())
                .filter(|v| !v.is_finite())
                .count();
        let mut counters = self.counters.clone();
        if non_finite > 0 {
            *counters.entry(NON_FINITE_DROPPED.to_string()).or_insert(0) += non_finite as u64;
        }

        let mut fields = vec![("name".to_string(), Json::str(&self.name))];
        fields.push((
            "meta".to_string(),
            Json::Obj(
                self.meta
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::str(v)))
                    .collect(),
            ),
        ));
        fields.push((
            "counters".to_string(),
            Json::Obj(
                counters
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                    .collect(),
            ),
        ));
        fields.push((
            "gauges".to_string(),
            Json::Obj(
                self.gauges
                    .iter()
                    .filter(|(_, v)| v.is_finite())
                    .map(|(k, v)| (k.clone(), Json::Num(*v)))
                    .collect(),
            ),
        ));
        fields.push((
            "series".to_string(),
            Json::Obj(
                self.series
                    .iter()
                    .map(|(k, vs)| {
                        (
                            k.clone(),
                            Json::Arr(
                                vs.iter()
                                    .map(|&v| Json::Num(if v.is_finite() { v } else { 0.0 }))
                                    .collect(),
                            ),
                        )
                    })
                    .collect(),
            ),
        ));
        fields.push((
            "spans".to_string(),
            Json::Obj(
                self.spans
                    .iter()
                    .map(|(k, s)| {
                        (
                            k.clone(),
                            Json::Obj(vec![
                                ("total_ns".to_string(), Json::Num(s.total_ns as f64)),
                                ("count".to_string(), Json::Num(s.count as f64)),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ));
        fields.push((
            "hists".to_string(),
            Json::Obj(
                self.hists
                    .iter()
                    .map(|(k, h)| (k.clone(), h.to_json()))
                    .collect(),
            ),
        ));
        fields.push((
            "tables".to_string(),
            Json::Arr(
                self.tables
                    .iter()
                    .map(|t| {
                        Json::Obj(vec![
                            ("title".to_string(), Json::str(&t.title)),
                            (
                                "headers".to_string(),
                                Json::Arr(t.headers.iter().map(Json::str).collect()),
                            ),
                            (
                                "rows".to_string(),
                                Json::Arr(
                                    t.rows
                                        .iter()
                                        .map(|row| Json::Arr(row.iter().map(Json::str).collect()))
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ));
        fields.push((
            "children".to_string(),
            Json::Arr(self.children.iter().map(RunReport::to_json).collect()),
        ));
        Json::Obj(fields)
    }

    /// Serializes to pretty JSON.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string_pretty()
    }

    /// Reconstructs a report from a JSON value produced by [`to_json`].
    ///
    /// [`to_json`]: RunReport::to_json
    pub fn from_json(value: &Json) -> Result<RunReport, String> {
        let name = value
            .get("name")
            .and_then(Json::as_str)
            .ok_or("report missing string field 'name'")?
            .to_string();
        let mut report = RunReport::new(name);

        if let Some(fields) = value.get("meta").and_then(Json::as_obj) {
            for (k, v) in fields {
                let s = v.as_str().ok_or_else(|| format!("meta.{k} not a string"))?;
                report.meta.insert(k.clone(), s.to_string());
            }
        }
        if let Some(fields) = value.get("counters").and_then(Json::as_obj) {
            for (k, v) in fields {
                let n = v
                    .as_u64()
                    .ok_or_else(|| format!("counters.{k} not a u64"))?;
                report.counters.insert(k.clone(), n);
            }
        }
        if let Some(fields) = value.get("gauges").and_then(Json::as_obj) {
            for (k, v) in fields {
                let n = v
                    .as_f64()
                    .ok_or_else(|| format!("gauges.{k} not a number"))?;
                report.gauges.insert(k.clone(), n);
            }
        }
        if let Some(fields) = value.get("series").and_then(Json::as_obj) {
            for (k, v) in fields {
                let arr = v
                    .as_arr()
                    .ok_or_else(|| format!("series.{k} not an array"))?;
                let vs = arr
                    .iter()
                    .map(|x| {
                        x.as_f64()
                            .ok_or_else(|| format!("series.{k} has a non-number"))
                    })
                    .collect::<Result<Vec<f64>, String>>()?;
                report.series.insert(k.clone(), vs);
            }
        }
        if let Some(fields) = value.get("spans").and_then(Json::as_obj) {
            for (k, v) in fields {
                let entry = SpanEntry {
                    total_ns: v
                        .get("total_ns")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("spans.{k} missing total_ns"))?,
                    count: v
                        .get("count")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("spans.{k} missing count"))?,
                };
                report.spans.insert(k.clone(), entry);
            }
        }
        if let Some(fields) = value.get("hists").and_then(Json::as_obj) {
            for (k, v) in fields {
                let h = Histogram::from_json(v).map_err(|e| format!("hists.{k}: {e}"))?;
                report.hists.insert(k.clone(), h);
            }
        }
        if let Some(tables) = value.get("tables").and_then(Json::as_arr) {
            for t in tables {
                let title = t
                    .get("title")
                    .and_then(Json::as_str)
                    .ok_or("table missing title")?
                    .to_string();
                let headers = string_array(t.get("headers"), "table headers")?;
                let rows = t
                    .get("rows")
                    .and_then(Json::as_arr)
                    .ok_or("table missing rows")?
                    .iter()
                    .map(|row| string_array(Some(row), "table row"))
                    .collect::<Result<Vec<_>, String>>()?;
                report.tables.push(TableArtifact {
                    title,
                    headers,
                    rows,
                });
            }
        }
        if let Some(children) = value.get("children").and_then(Json::as_arr) {
            for child in children {
                report.children.push(RunReport::from_json(child)?);
            }
        }
        Ok(report)
    }

    /// Parses a report from JSON text.
    pub fn from_json_str(text: &str) -> Result<RunReport, String> {
        let value = Json::parse(text).map_err(|e: JsonError| e.to_string())?;
        RunReport::from_json(&value)
    }

    // -- Text ---------------------------------------------------------------

    /// Renders the report for humans.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        let _ = writeln!(out, "{pad}== {} ==", self.name);
        for (k, v) in &self.meta {
            let _ = writeln!(out, "{pad}  {k}: {v}");
        }
        if !self.spans.is_empty() {
            let _ = writeln!(out, "{pad}  spans:");
            for (path, s) in &self.spans {
                let _ = writeln!(out, "{pad}    {path:<40} {:>12.3?} x{}", s.total(), s.count);
            }
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "{pad}  counters:");
            for (k, v) in &self.counters {
                let _ = writeln!(out, "{pad}    {k:<40} {v:>12}");
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "{pad}  gauges:");
            for (k, v) in &self.gauges {
                let _ = writeln!(out, "{pad}    {k:<40} {v:>12.4}");
            }
        }
        if !self.hists.is_empty() {
            let _ = writeln!(out, "{pad}  histograms:");
            for (k, h) in &self.hists {
                let _ = writeln!(
                    out,
                    "{pad}    {k:<40} n={} mean={:.0} p50<={} p99<={} max={}",
                    h.count(),
                    h.mean(),
                    h.quantile(0.5),
                    h.quantile(0.99),
                    h.max()
                );
            }
        }
        for (k, vs) in &self.series {
            let rendered: Vec<String> = vs.iter().map(|v| format!("{v}")).collect();
            let _ = writeln!(out, "{pad}  series {k}: [{}]", rendered.join(", "));
        }
        for t in &self.tables {
            let _ = writeln!(out, "{pad}  table: {}", t.title);
        }
        for child in &self.children {
            child.render_into(out, depth + 1);
        }
    }
}

fn string_array(value: Option<&Json>, what: &str) -> Result<Vec<String>, String> {
    value
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{what} not an array"))?
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("{what} has a non-string"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> RunReport {
        let mut r = RunReport::new("fig5").with_meta("suite", "java");
        r.counters.insert("optft.hook.load".into(), 12345);
        r.counters.insert("optft.elided".into(), 678);
        r.gauges.insert("ctx.budget.used".into(), 0.25);
        r.series
            .insert("profile.fact_count".into(), vec![10.0, 14.0, 14.0]);
        r.spans.insert(
            "pipeline/profile".into(),
            SpanEntry {
                total_ns: 1_500_000,
                count: 3,
            },
        );
        let mut h = Histogram::new();
        for v in [0u64, 3, 900, 900, u64::MAX] {
            h.record(v);
        }
        r.hists.insert("store.load.hit_ns".into(), h);
        r.push_table(
            "runtimes",
            &["bench", "OptFT"],
            &[vec!["sor".into(), "0.42".into()]],
        );
        let mut child = RunReport::new("sor").with_meta("kind", "workload");
        child.counters.insert("hook.store".into(), 99);
        r.children.push(child);
        r
    }

    #[test]
    fn json_round_trip_is_exact() {
        let r = sample_report();
        let text = r.to_json_string();
        let back = RunReport::from_json_str(&text).unwrap();
        assert_eq!(back, r);
        // And the serialized form is stable.
        assert_eq!(back.to_json_string(), text);
    }

    #[test]
    fn empty_report_round_trips() {
        let r = RunReport::new("empty");
        let back = RunReport::from_json_str(&r.to_json_string()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn text_rendering_mentions_the_essentials() {
        let text = sample_report().render_text();
        assert!(text.contains("== fig5 =="));
        assert!(text.contains("pipeline/profile"));
        assert!(text.contains("optft.hook.load"));
        assert!(text.contains("profile.fact_count"));
        assert!(text.contains("== sor =="));
    }

    #[test]
    fn counter_lookup_defaults_to_zero() {
        assert_eq!(RunReport::new("x").counter("nope"), 0);
    }

    #[test]
    fn non_finite_gauges_are_dropped_with_a_counter() {
        let mut r = RunReport::new("nan");
        r.gauges.insert("fine".into(), 2.5);
        r.gauges.insert("speedup".into(), f64::NAN);
        r.gauges.insert("ratio".into(), f64::INFINITY);
        r.series
            .insert("curve".into(), vec![1.0, f64::NEG_INFINITY]);

        let text = r.to_json_string();
        let back = RunReport::from_json_str(&text).expect("output must stay valid JSON");
        assert_eq!(back.gauges.get("fine"), Some(&2.5));
        assert!(!back.gauges.contains_key("speedup"));
        assert!(!back.gauges.contains_key("ratio"));
        assert_eq!(back.series["curve"], [1.0, 0.0], "series values clamp");
        assert_eq!(back.counter(NON_FINITE_DROPPED), 3);

        // A clean report never grows the counter.
        let clean = RunReport::from_json_str(&back.to_json_string()).unwrap();
        assert_eq!(clean.counter(NON_FINITE_DROPPED), 3);
    }

    #[test]
    fn histograms_round_trip_through_json() {
        let r = sample_report();
        let back = RunReport::from_json_str(&r.to_json_string()).unwrap();
        assert_eq!(back.hists, r.hists);
        let h = &back.hists["store.load.hit_ns"];
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), u64::MAX);
    }
}
