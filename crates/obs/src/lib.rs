//! # oha-obs — observability substrate
//!
//! A zero-dependency metrics layer for the OHA pipeline:
//!
//! - [`MetricsRegistry`]: named monotonic [`Counter`]s, gauges, and value
//!   series behind cheap clonable handles. Detached handles (the default)
//!   make instrumentation free-when-unobserved.
//! - Hierarchical timing spans: [`MetricsRegistry::span`] returns an RAII
//!   [`SpanGuard`]; nested guards accumulate under `/`-joined paths like
//!   `optft/pred_static/pointsto`.
//! - Thread-safe ingestion for parallel sections: per-worker
//!   [`MetricsFrame`] shards absorbed in deterministic task order via
//!   [`MetricsRegistry::absorb`], or a mutex-merged shared [`SyncFrame`].
//! - [`RunReport`]: the serializable artifact of a run — counters, gauges,
//!   series, span timings, histograms, rendered tables, nested children —
//!   with a human text renderer ([`RunReport::render_text`]) and a stable
//!   JSON round-trip ([`RunReport::to_json_string`] /
//!   [`RunReport::from_json_str`]).
//! - [`Histogram`]: a log₂-bucketed latency distribution with a
//!   deterministic, order-independent merge, sharded through
//!   [`MetricsFrame`]s like counters.
//! - [`TraceLog`]: a bounded ring of begin/end/instant events with
//!   trace/span IDs and parent links, exported as Chrome trace-event JSON
//!   ([`TraceLog::to_chrome_json`], loadable in Perfetto). Disabled by
//!   default and free when off; enabled via [`TraceLog::enabled`] or the
//!   `OHA_TRACE` env knob ([`TraceLog::from_env`]).
//!
//! Metric naming convention (see DESIGN.md "Observability"): dot-separated
//! lowercase components, `<area>.<subsystem>.<metric>`, e.g.
//! `interp.hook.load`, `pointsto.cycle_collapses`, `optft.rollback.cause.lock_alias`.

mod frame;
mod hist;
pub mod json;
pub mod prom;
mod registry;
mod report;
mod trace;

pub use frame::{MetricsFrame, SyncFrame};
pub use hist::{bucket_bound, bucket_of, Histogram, HIST_BUCKETS};
pub use json::{Json, JsonError};
pub use registry::{Counter, MetricsRegistry, SpanGuard, SpanStat};
pub use report::{RunReport, SpanEntry, TableArtifact, NON_FINITE_DROPPED};
pub use trace::{TraceEvent, TraceEventKind, TraceLog, DEFAULT_TRACE_CAPACITY, TRACE_ENV};
