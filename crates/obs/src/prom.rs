//! Prometheus text-exposition rendering, shared by every process that
//! answers a `metrics` op (`oha-serve` per daemon, `oha-router` for the
//! merged cluster view).
//!
//! Keeping the renderer here — next to [`Histogram`] — guarantees the
//! single-daemon and aggregated expositions stay field-for-field
//! compatible: a scraper pointed at a worker and one pointed at the
//! router read the same families, and the router's histograms are exact
//! because [`Histogram::merge`] is element-wise bucket addition, not an
//! approximation.

use std::fmt::Write as _;

use crate::hist::{bucket_bound, Histogram};

/// Writes one `# HELP`/`# TYPE`-prefixed sample line.
/// `kind` is the Prometheus metric type (`counter` or `gauge`).
pub fn sample(out: &mut String, kind: &str, name: &str, help: &str, value: u64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
    let _ = writeln!(out, "{name} {value}");
}

/// Writes one histogram in Prometheus text-exposition form, converting
/// nanosecond samples to seconds. Bucket lines carry cumulative counts at
/// each occupied log₂ bound, ending with the mandatory `+Inf` bucket.
pub fn histogram(out: &mut String, name: &str, help: &str, h: &Histogram) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cumulative = 0u64;
    for (index, count) in h.nonzero_buckets() {
        cumulative += count;
        let le = bucket_bound(index) as f64 / 1e9;
        let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
    let _ = writeln!(out, "{name}_sum {}", h.sum() as f64 / 1e9);
    let _ = writeln!(out, "{name}_count {}", h.count());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_renders_help_type_and_value() {
        let mut out = String::new();
        sample(&mut out, "counter", "x_total", "things.", 7);
        assert_eq!(
            out,
            "# HELP x_total things.\n# TYPE x_total counter\nx_total 7\n"
        );
    }

    #[test]
    fn histogram_ends_with_inf_bucket_and_count() {
        let mut h = Histogram::new();
        h.record(1_000);
        h.record(2_000_000);
        let mut out = String::new();
        histogram(&mut out, "lat_seconds", "latency.", &h);
        assert!(out.contains("# TYPE lat_seconds histogram"));
        assert!(out.contains("lat_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(out.contains("lat_seconds_count 2"));
        // Cumulative: the second bucket line accounts for both samples.
        let buckets: Vec<&str> = out
            .lines()
            .filter(|l| l.starts_with("lat_seconds_bucket") && !l.contains("+Inf"))
            .collect();
        assert_eq!(buckets.len(), 2);
        assert!(buckets[1].ends_with(" 2"));
    }

    #[test]
    fn merged_histograms_expose_exact_bucket_sums() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [10u64, 100, 1_000] {
            a.record(v);
            b.record(v * 3);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), a.count() + b.count());
        assert_eq!(merged.sum(), a.sum() + b.sum());
        let mut out = String::new();
        histogram(&mut out, "m_seconds", "merged.", &merged);
        assert!(out.contains("m_seconds_count 6"));
    }
}
