//! The metrics registry: named monotonic counters, gauges, value series,
//! and hierarchical timing spans.
//!
//! Handles are cheap to clone and cheap to use: a [`Counter`] is an
//! `Rc<Cell<u64>>` behind an `Option`, so incrementing an attached counter
//! is a plain add and incrementing a detached one is a single branch.
//! [`SpanGuard`]s are RAII: the time between construction and drop (or an
//! explicit [`SpanGuard::finish`]) is accumulated under a `/`-joined path
//! reflecting span nesting. Detached guards do not even read the clock.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;
use std::time::{Duration, Instant};

use crate::frame::MetricsFrame;
use crate::hist::Histogram;
use crate::report::{RunReport, SpanEntry};
use crate::trace::TraceLog;

/// A monotonic counter handle. The default handle is detached: increments
/// are dropped at the cost of one branch, which keeps unobserved
/// instrumentation effectively free.
#[derive(Clone, Debug, Default)]
pub struct Counter(Option<Rc<Cell<u64>>>);

impl Counter {
    /// A detached counter that ignores increments.
    pub fn detached() -> Self {
        Counter(None)
    }

    /// Whether the counter is attached to a registry.
    pub fn is_attached(&self) -> bool {
        self.0.is_some()
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.set(cell.get().wrapping_add(n));
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (0 for detached counters).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |cell| cell.get())
    }
}

/// Accumulated time for one span path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Total time spent in the span.
    pub total: Duration,
    /// Number of completed entries.
    pub count: u64,
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, Rc<Cell<u64>>>,
    gauges: BTreeMap<String, f64>,
    series: BTreeMap<String, Vec<f64>>,
    spans: BTreeMap<String, SpanStat>,
    hists: BTreeMap<String, Histogram>,
    /// Currently-open spans: path segment plus the trace span ID (0 when
    /// tracing is disabled).
    stack: Vec<(String, u64)>,
    /// Event sink for span begin/end; disabled (free) by default.
    trace: TraceLog,
    /// Trace ID stamped on emitted events (0 = untraced context).
    trace_id: u64,
    /// Virtual viewer track allocated when a trace log is attached.
    tid: u64,
}

/// A registry of named metrics. Clones share state; the registry is
/// single-threaded by design (the whole interpreter is a deterministic
/// single-threaded simulation).
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    inner: Rc<RefCell<Inner>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns (creating on first use) the counter handle for `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.borrow_mut();
        let cell = inner
            .counters
            .entry(name.to_string())
            .or_insert_with(|| Rc::new(Cell::new(0)))
            .clone();
        Counter(Some(cell))
    }

    /// Adds `n` to the counter `name` (registering it on first use).
    pub fn add(&self, name: &str, n: u64) {
        self.counter(name).add(n);
    }

    /// Current value of counter `name`, or 0 if it was never registered.
    pub fn counter_value(&self, name: &str) -> u64 {
        self.inner
            .borrow()
            .counters
            .get(name)
            .map_or(0, |cell| cell.get())
    }

    /// Sets the gauge `name` to `value`.
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.inner
            .borrow_mut()
            .gauges
            .insert(name.to_string(), value);
    }

    /// Current value of gauge `name`.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.inner.borrow().gauges.get(name).copied()
    }

    /// Appends `value` to the series `name`.
    pub fn push_series(&self, name: &str, value: f64) {
        self.inner
            .borrow_mut()
            .series
            .entry(name.to_string())
            .or_default()
            .push(value);
    }

    /// A copy of the series `name` (empty if never written).
    pub fn series_values(&self, name: &str) -> Vec<f64> {
        self.inner
            .borrow()
            .series
            .get(name)
            .cloned()
            .unwrap_or_default()
    }

    /// Opens a timing span named `segment`, nested inside any span that is
    /// currently open on this registry. The returned guard records on drop.
    /// When a [`TraceLog`] is attached, the open and close are also emitted
    /// as causally-linked begin/end events.
    pub fn span(&self, segment: &str) -> SpanGuard {
        debug_assert!(
            !segment.contains('/'),
            "span segments must not contain '/': {segment:?}"
        );
        let (path, depth, span_id, parent) = {
            let mut inner = self.inner.borrow_mut();
            let parent = inner.stack.last().map_or(0, |(_, id)| *id);
            inner.stack.push((segment.to_string(), 0));
            let depth = inner.stack.len() - 1;
            let path = inner
                .stack
                .iter()
                .map(|(s, _)| s.as_str())
                .collect::<Vec<_>>()
                .join("/");
            let span_id = if inner.trace.is_enabled() {
                let id = inner.trace.begin(&path, inner.trace_id, parent, inner.tid);
                inner.stack.last_mut().expect("just pushed").1 = id;
                id
            } else {
                0
            };
            (path, depth, span_id, parent)
        };
        SpanGuard {
            inner: Some(SpanGuardInner {
                registry: self.clone(),
                path,
                depth,
                start: Instant::now(),
                span_id,
                parent,
            }),
        }
    }

    /// Attaches a trace log, allocating this registry its own viewer
    /// track. Spans opened afterwards emit begin/end events.
    pub fn set_trace(&self, trace: TraceLog) {
        let mut inner = self.inner.borrow_mut();
        inner.tid = trace.alloc_tid();
        inner.trace = trace;
    }

    /// The attached trace log (disabled by default).
    pub fn trace(&self) -> TraceLog {
        self.inner.borrow().trace.clone()
    }

    /// Stamps subsequent events with `trace_id` (carry an existing
    /// request's ID into a worker-side registry).
    pub fn set_trace_id(&self, trace_id: u64) {
        self.inner.borrow_mut().trace_id = trace_id;
    }

    /// The current trace ID (0 = untraced context).
    pub fn trace_id(&self) -> u64 {
        self.inner.borrow().trace_id
    }

    /// Allocates a fresh trace ID from the attached log and makes it
    /// current. Returns 0 when tracing is disabled.
    pub fn begin_trace(&self) -> u64 {
        let mut inner = self.inner.borrow_mut();
        inner.trace_id = inner.trace.next_trace_id();
        inner.trace_id
    }

    /// Emits a point event parented to the innermost open span. Free when
    /// no trace log is attached.
    pub fn trace_instant(&self, name: &str) {
        let inner = self.inner.borrow();
        if inner.trace.is_enabled() {
            let parent = inner.stack.last().map_or(0, |(_, id)| *id);
            inner.trace.instant(name, inner.trace_id, parent, inner.tid);
        }
    }

    /// Accumulated statistics for span `path` (`a/b/c`-style).
    pub fn span_stat(&self, path: &str) -> Option<SpanStat> {
        self.inner.borrow().spans.get(path).copied()
    }

    /// Snapshot of all counters.
    pub fn counters(&self) -> BTreeMap<String, u64> {
        self.inner
            .borrow()
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Snapshot of all gauges.
    pub fn gauges(&self) -> BTreeMap<String, f64> {
        self.inner.borrow().gauges.clone()
    }

    /// Snapshot of all series.
    pub fn series(&self) -> BTreeMap<String, Vec<f64>> {
        self.inner.borrow().series.clone()
    }

    /// Snapshot of all span statistics.
    pub fn spans(&self) -> BTreeMap<String, SpanStat> {
        self.inner.borrow().spans.clone()
    }

    /// Records `value` into the histogram `name` (creating it on first
    /// use).
    pub fn observe(&self, name: &str, value: u64) {
        self.inner
            .borrow_mut()
            .hists
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Records a duration (as nanoseconds) into the histogram `name`.
    pub fn observe_duration(&self, name: &str, d: Duration) {
        self.inner
            .borrow_mut()
            .hists
            .entry(name.to_string())
            .or_default()
            .record_duration(d);
    }

    /// Folds a pre-aggregated histogram into `name` (the ingestion
    /// counterpart of [`observe`](MetricsRegistry::observe)).
    pub fn merge_hist(&self, name: &str, h: &Histogram) {
        self.inner
            .borrow_mut()
            .hists
            .entry(name.to_string())
            .or_default()
            .merge(h);
    }

    /// A copy of the histogram `name`, if it was ever written.
    pub fn hist(&self, name: &str) -> Option<Histogram> {
        self.inner.borrow().hists.get(name).cloned()
    }

    /// Snapshot of all histograms.
    pub fn hists(&self) -> BTreeMap<String, Histogram> {
        self.inner.borrow().hists.clone()
    }

    /// Adds one pre-aggregated span statistic under `path` (the ingestion
    /// counterpart of [`MetricsRegistry::span`], for merging spans timed
    /// off-registry).
    pub fn add_span_stat(&self, path: &str, stat: SpanStat) {
        let mut inner = self.inner.borrow_mut();
        let s = inner.spans.entry(path.to_string()).or_default();
        s.total += stat.total;
        s.count += stat.count;
    }

    /// Snapshots the registry's data into a detachable, `Send`
    /// [`MetricsFrame`] — the sharded half of the thread-safe ingestion
    /// path: workers record into thread-local registries (or plain
    /// frames) and the coordinator [`absorb`](MetricsRegistry::absorb)s
    /// the frames in deterministic task order.
    pub fn frame(&self) -> MetricsFrame {
        let inner = self.inner.borrow();
        MetricsFrame {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: inner.gauges.clone(),
            series: inner.series.clone(),
            spans: inner.spans.clone(),
            hists: inner.hists.clone(),
        }
    }

    /// Merges a frame recorded elsewhere: counters, span stats and
    /// histograms add, series append in call order, gauges
    /// last-write-wins. Absorbing worker frames in task input order keeps
    /// the merged registry identical across thread counts.
    pub fn absorb(&self, frame: &MetricsFrame) {
        for (name, &v) in &frame.counters {
            if v > 0 {
                self.counter(name).add(v);
            } else {
                // Register the name so zero-valued counters still appear.
                self.counter(name);
            }
        }
        for (name, &v) in &frame.gauges {
            self.set_gauge(name, v);
        }
        for (name, vs) in &frame.series {
            for &v in vs {
                self.push_series(name, v);
            }
        }
        for (path, &stat) in &frame.spans {
            self.add_span_stat(path, stat);
        }
        for (name, h) in &frame.hists {
            self.merge_hist(name, h);
        }
    }

    /// Dumps the registry into a named [`RunReport`].
    pub fn report(&self, name: &str) -> RunReport {
        let inner = self.inner.borrow();
        RunReport {
            name: name.to_string(),
            meta: BTreeMap::new(),
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: inner.gauges.clone(),
            series: inner.series.clone(),
            spans: inner
                .spans
                .iter()
                .map(|(k, s)| {
                    (
                        k.clone(),
                        SpanEntry {
                            total_ns: s.total.as_nanos() as u64,
                            count: s.count,
                        },
                    )
                })
                .collect(),
            hists: inner.hists.clone(),
            tables: Vec::new(),
            children: Vec::new(),
        }
    }

    fn record_span(&self, path: &str, depth: usize, elapsed: Duration, span_id: u64, parent: u64) {
        let mut inner = self.inner.borrow_mut();
        if span_id != 0 {
            inner
                .trace
                .end(path, inner.trace_id, span_id, parent, inner.tid);
        }
        let stat = inner.spans.entry(path.to_string()).or_default();
        stat.total += elapsed;
        stat.count += 1;
        inner.stack.truncate(depth);
    }
}

#[derive(Debug)]
struct SpanGuardInner {
    registry: MetricsRegistry,
    path: String,
    depth: usize,
    start: Instant,
    span_id: u64,
    parent: u64,
}

/// RAII guard for a timing span. Records elapsed time under its path when
/// dropped or explicitly [`finish`](SpanGuard::finish)ed.
#[derive(Debug, Default)]
pub struct SpanGuard {
    inner: Option<SpanGuardInner>,
}

impl SpanGuard {
    /// A guard that records nothing (for disabled instrumentation paths).
    pub fn detached() -> Self {
        SpanGuard { inner: None }
    }

    /// Ends the span now and returns its elapsed time (zero if detached).
    pub fn finish(mut self) -> Duration {
        self.record()
    }

    fn record(&mut self) -> Duration {
        match self.inner.take() {
            Some(g) => {
                let elapsed = g.start.elapsed();
                g.registry
                    .record_span(&g.path, g.depth, elapsed, g.span_id, g.parent);
                elapsed
            }
            None => Duration::ZERO,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.record();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_state_across_handles() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.add(2);
        b.inc();
        assert_eq!(reg.counter_value("x"), 3);
        assert_eq!(a.get(), 3);
    }

    #[test]
    fn detached_counters_cost_nothing_and_record_nothing() {
        let c = Counter::detached();
        c.add(100);
        assert_eq!(c.get(), 0);
        assert!(!c.is_attached());
    }

    #[test]
    fn spans_nest_by_path() {
        let reg = MetricsRegistry::new();
        {
            let _outer = reg.span("pipeline");
            {
                let inner = reg.span("profile");
                std::thread::sleep(Duration::from_millis(1));
                let d = inner.finish();
                assert!(d >= Duration::from_millis(1));
            }
            let _second = reg.span("static");
        }
        let spans = reg.spans();
        assert_eq!(
            spans.keys().collect::<Vec<_>>(),
            ["pipeline", "pipeline/profile", "pipeline/static"]
        );
        assert_eq!(spans["pipeline/profile"].count, 1);
        assert!(spans["pipeline"].total >= spans["pipeline/profile"].total);
    }

    #[test]
    fn detached_span_is_a_no_op() {
        let g = SpanGuard::detached();
        assert_eq!(g.finish(), Duration::ZERO);
    }

    #[test]
    fn histograms_record_and_merge() {
        let reg = MetricsRegistry::new();
        reg.observe("lat", 100);
        reg.observe_duration("lat", Duration::from_nanos(100));
        let mut extra = Histogram::new();
        extra.record(7);
        reg.merge_hist("lat", &extra);
        let h = reg.hist("lat").unwrap();
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 207);
        assert!(reg.hist("nope").is_none());
        assert_eq!(reg.hists().len(), 1);
    }

    #[test]
    fn spans_emit_linked_trace_events_when_enabled() {
        let reg = MetricsRegistry::new();
        let log = TraceLog::enabled(64);
        reg.set_trace(log.clone());
        let trace_id = reg.begin_trace();
        assert_ne!(trace_id, 0);
        {
            let _outer = reg.span("optft");
            reg.trace_instant("cache-miss");
            let _inner = reg.span("profile");
        }
        let events = log.events();
        // B(optft), i(cache-miss), B(optft/profile), E(optft/profile), E(optft)
        assert_eq!(events.len(), 5);
        assert_eq!(events[0].name, "optft");
        assert_eq!(events[1].parent, events[0].span_id);
        assert_eq!(events[2].name, "optft/profile");
        assert_eq!(events[2].parent, events[0].span_id);
        assert_eq!(events[3].span_id, events[2].span_id);
        assert_eq!(events[4].span_id, events[0].span_id);
        assert!(events.iter().all(|e| e.trace_id == trace_id));
        // The aggregate span stats are unchanged by tracing.
        assert_eq!(reg.span_stat("optft/profile").unwrap().count, 1);
    }

    #[test]
    fn untraced_registry_emits_nothing() {
        let reg = MetricsRegistry::new();
        assert!(!reg.trace().is_enabled());
        assert_eq!(reg.begin_trace(), 0);
        reg.trace_instant("noop");
        reg.span("a").finish();
        assert_eq!(reg.trace().events().len(), 0);
        assert_eq!(reg.span_stat("a").unwrap().count, 1);
    }

    #[test]
    fn gauges_and_series_snapshot() {
        let reg = MetricsRegistry::new();
        reg.set_gauge("budget.used", 0.5);
        reg.push_series("facts", 10.0);
        reg.push_series("facts", 12.0);
        assert_eq!(reg.gauge_value("budget.used"), Some(0.5));
        assert_eq!(reg.series_values("facts"), [10.0, 12.0]);
    }
}
