//! The metrics registry: named monotonic counters, gauges, value series,
//! and hierarchical timing spans.
//!
//! Handles are cheap to clone and cheap to use: a [`Counter`] is an
//! `Rc<Cell<u64>>` behind an `Option`, so incrementing an attached counter
//! is a plain add and incrementing a detached one is a single branch.
//! [`SpanGuard`]s are RAII: the time between construction and drop (or an
//! explicit [`SpanGuard::finish`]) is accumulated under a `/`-joined path
//! reflecting span nesting. Detached guards do not even read the clock.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;
use std::time::{Duration, Instant};

use crate::frame::MetricsFrame;
use crate::report::{RunReport, SpanEntry};

/// A monotonic counter handle. The default handle is detached: increments
/// are dropped at the cost of one branch, which keeps unobserved
/// instrumentation effectively free.
#[derive(Clone, Debug, Default)]
pub struct Counter(Option<Rc<Cell<u64>>>);

impl Counter {
    /// A detached counter that ignores increments.
    pub fn detached() -> Self {
        Counter(None)
    }

    /// Whether the counter is attached to a registry.
    pub fn is_attached(&self) -> bool {
        self.0.is_some()
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.set(cell.get().wrapping_add(n));
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (0 for detached counters).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |cell| cell.get())
    }
}

/// Accumulated time for one span path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Total time spent in the span.
    pub total: Duration,
    /// Number of completed entries.
    pub count: u64,
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, Rc<Cell<u64>>>,
    gauges: BTreeMap<String, f64>,
    series: BTreeMap<String, Vec<f64>>,
    spans: BTreeMap<String, SpanStat>,
    /// Path segments of the currently-open spans.
    stack: Vec<String>,
}

/// A registry of named metrics. Clones share state; the registry is
/// single-threaded by design (the whole interpreter is a deterministic
/// single-threaded simulation).
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    inner: Rc<RefCell<Inner>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns (creating on first use) the counter handle for `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.borrow_mut();
        let cell = inner
            .counters
            .entry(name.to_string())
            .or_insert_with(|| Rc::new(Cell::new(0)))
            .clone();
        Counter(Some(cell))
    }

    /// Adds `n` to the counter `name` (registering it on first use).
    pub fn add(&self, name: &str, n: u64) {
        self.counter(name).add(n);
    }

    /// Current value of counter `name`, or 0 if it was never registered.
    pub fn counter_value(&self, name: &str) -> u64 {
        self.inner
            .borrow()
            .counters
            .get(name)
            .map_or(0, |cell| cell.get())
    }

    /// Sets the gauge `name` to `value`.
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.inner
            .borrow_mut()
            .gauges
            .insert(name.to_string(), value);
    }

    /// Current value of gauge `name`.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.inner.borrow().gauges.get(name).copied()
    }

    /// Appends `value` to the series `name`.
    pub fn push_series(&self, name: &str, value: f64) {
        self.inner
            .borrow_mut()
            .series
            .entry(name.to_string())
            .or_default()
            .push(value);
    }

    /// A copy of the series `name` (empty if never written).
    pub fn series_values(&self, name: &str) -> Vec<f64> {
        self.inner
            .borrow()
            .series
            .get(name)
            .cloned()
            .unwrap_or_default()
    }

    /// Opens a timing span named `segment`, nested inside any span that is
    /// currently open on this registry. The returned guard records on drop.
    pub fn span(&self, segment: &str) -> SpanGuard {
        debug_assert!(
            !segment.contains('/'),
            "span segments must not contain '/': {segment:?}"
        );
        let depth = {
            let mut inner = self.inner.borrow_mut();
            inner.stack.push(segment.to_string());
            inner.stack.len() - 1
        };
        let path = self.inner.borrow().stack.join("/");
        SpanGuard {
            inner: Some(SpanGuardInner {
                registry: self.clone(),
                path,
                depth,
                start: Instant::now(),
            }),
        }
    }

    /// Accumulated statistics for span `path` (`a/b/c`-style).
    pub fn span_stat(&self, path: &str) -> Option<SpanStat> {
        self.inner.borrow().spans.get(path).copied()
    }

    /// Snapshot of all counters.
    pub fn counters(&self) -> BTreeMap<String, u64> {
        self.inner
            .borrow()
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Snapshot of all gauges.
    pub fn gauges(&self) -> BTreeMap<String, f64> {
        self.inner.borrow().gauges.clone()
    }

    /// Snapshot of all series.
    pub fn series(&self) -> BTreeMap<String, Vec<f64>> {
        self.inner.borrow().series.clone()
    }

    /// Snapshot of all span statistics.
    pub fn spans(&self) -> BTreeMap<String, SpanStat> {
        self.inner.borrow().spans.clone()
    }

    /// Adds one pre-aggregated span statistic under `path` (the ingestion
    /// counterpart of [`MetricsRegistry::span`], for merging spans timed
    /// off-registry).
    pub fn add_span_stat(&self, path: &str, stat: SpanStat) {
        let mut inner = self.inner.borrow_mut();
        let s = inner.spans.entry(path.to_string()).or_default();
        s.total += stat.total;
        s.count += stat.count;
    }

    /// Snapshots the registry's data into a detachable, `Send`
    /// [`MetricsFrame`] — the sharded half of the thread-safe ingestion
    /// path: workers record into thread-local registries (or plain
    /// frames) and the coordinator [`absorb`](MetricsRegistry::absorb)s
    /// the frames in deterministic task order.
    pub fn frame(&self) -> MetricsFrame {
        let inner = self.inner.borrow();
        MetricsFrame {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: inner.gauges.clone(),
            series: inner.series.clone(),
            spans: inner.spans.clone(),
        }
    }

    /// Merges a frame recorded elsewhere: counters and span stats add,
    /// series append in call order, gauges last-write-wins. Absorbing
    /// worker frames in task input order keeps the merged registry
    /// identical across thread counts.
    pub fn absorb(&self, frame: &MetricsFrame) {
        for (name, &v) in &frame.counters {
            if v > 0 {
                self.counter(name).add(v);
            } else {
                // Register the name so zero-valued counters still appear.
                self.counter(name);
            }
        }
        for (name, &v) in &frame.gauges {
            self.set_gauge(name, v);
        }
        for (name, vs) in &frame.series {
            for &v in vs {
                self.push_series(name, v);
            }
        }
        for (path, &stat) in &frame.spans {
            self.add_span_stat(path, stat);
        }
    }

    /// Dumps the registry into a named [`RunReport`].
    pub fn report(&self, name: &str) -> RunReport {
        let inner = self.inner.borrow();
        RunReport {
            name: name.to_string(),
            meta: BTreeMap::new(),
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: inner.gauges.clone(),
            series: inner.series.clone(),
            spans: inner
                .spans
                .iter()
                .map(|(k, s)| {
                    (
                        k.clone(),
                        SpanEntry {
                            total_ns: s.total.as_nanos() as u64,
                            count: s.count,
                        },
                    )
                })
                .collect(),
            tables: Vec::new(),
            children: Vec::new(),
        }
    }

    fn record_span(&self, path: &str, depth: usize, elapsed: Duration) {
        let mut inner = self.inner.borrow_mut();
        let stat = inner.spans.entry(path.to_string()).or_default();
        stat.total += elapsed;
        stat.count += 1;
        inner.stack.truncate(depth);
    }
}

#[derive(Debug)]
struct SpanGuardInner {
    registry: MetricsRegistry,
    path: String,
    depth: usize,
    start: Instant,
}

/// RAII guard for a timing span. Records elapsed time under its path when
/// dropped or explicitly [`finish`](SpanGuard::finish)ed.
#[derive(Debug, Default)]
pub struct SpanGuard {
    inner: Option<SpanGuardInner>,
}

impl SpanGuard {
    /// A guard that records nothing (for disabled instrumentation paths).
    pub fn detached() -> Self {
        SpanGuard { inner: None }
    }

    /// Ends the span now and returns its elapsed time (zero if detached).
    pub fn finish(mut self) -> Duration {
        self.record()
    }

    fn record(&mut self) -> Duration {
        match self.inner.take() {
            Some(g) => {
                let elapsed = g.start.elapsed();
                g.registry.record_span(&g.path, g.depth, elapsed);
                elapsed
            }
            None => Duration::ZERO,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.record();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_state_across_handles() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.add(2);
        b.inc();
        assert_eq!(reg.counter_value("x"), 3);
        assert_eq!(a.get(), 3);
    }

    #[test]
    fn detached_counters_cost_nothing_and_record_nothing() {
        let c = Counter::detached();
        c.add(100);
        assert_eq!(c.get(), 0);
        assert!(!c.is_attached());
    }

    #[test]
    fn spans_nest_by_path() {
        let reg = MetricsRegistry::new();
        {
            let _outer = reg.span("pipeline");
            {
                let inner = reg.span("profile");
                std::thread::sleep(Duration::from_millis(1));
                let d = inner.finish();
                assert!(d >= Duration::from_millis(1));
            }
            let _second = reg.span("static");
        }
        let spans = reg.spans();
        assert_eq!(
            spans.keys().collect::<Vec<_>>(),
            ["pipeline", "pipeline/profile", "pipeline/static"]
        );
        assert_eq!(spans["pipeline/profile"].count, 1);
        assert!(spans["pipeline"].total >= spans["pipeline/profile"].total);
    }

    #[test]
    fn detached_span_is_a_no_op() {
        let g = SpanGuard::detached();
        assert_eq!(g.finish(), Duration::ZERO);
    }

    #[test]
    fn gauges_and_series_snapshot() {
        let reg = MetricsRegistry::new();
        reg.set_gauge("budget.used", 0.5);
        reg.push_series("facts", 10.0);
        reg.push_series("facts", 12.0);
        assert_eq!(reg.gauge_value("budget.used"), Some(0.5));
        assert_eq!(reg.series_values("facts"), [10.0, 12.0]);
    }
}
