//! A zero-dependency log-scaled latency histogram.
//!
//! Values (typically nanoseconds) land in power-of-two buckets: bucket 0
//! holds the value 0 and bucket `i` (1..=63) holds values in
//! `[2^(i-1), 2^i)`. Recording is a handful of integer ops, merging is
//! element-wise addition — commutative and associative, so sharded
//! histograms recorded by parallel workers merge to bit-identical bucket
//! counts in any order (the determinism contract `MetricsFrame`
//! absorption relies on).

use std::time::Duration;

use crate::json::Json;

/// Number of buckets: one for zero plus one per bit of a `u64`.
pub const HIST_BUCKETS: usize = 64;

/// A fixed-shape log₂ histogram with exact count/sum/min/max.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; HIST_BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            counts: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// The bucket a value lands in: 0 for 0, otherwise `64 - leading_zeros`
/// clamped into range (so bucket `i` covers `[2^(i-1), 2^i)`).
pub fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros() as usize).min(HIST_BUCKETS - 1)
    }
}

/// Inclusive upper bound of a bucket (`2^i - 1`; the last bucket is
/// unbounded and reports `u64::MAX`).
pub fn bucket_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= 63 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_of(value)] += 1;
        self.count += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Records one duration as nanoseconds (saturating at `u64::MAX`).
    pub fn record_duration(&mut self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Folds `other` in: element-wise bucket addition, exact count/sum,
    /// min/max of the extremes. Merging is order-independent.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Total values recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of all recorded values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The raw bucket counts.
    pub fn buckets(&self) -> &[u64; HIST_BUCKETS] {
        &self.counts
    }

    /// An upper bound on the `q`-quantile (`0.0 ..= 1.0`): the inclusive
    /// bound of the first bucket whose cumulative count reaches
    /// `ceil(q * count)`. Resolution is one power of two — plenty for
    /// tail-latency monitoring. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// The non-empty buckets as `(bucket_index, count)` pairs — the
    /// sparse form the JSON serialization uses.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }

    /// Rebuilds a histogram from its sparse serialized parts. Bucket
    /// indexes out of range are clamped into the last bucket (a decoding
    /// of foreign data must not panic).
    pub fn from_parts(buckets: &[(usize, u64)], sum: u128, min: u64, max: u64) -> Self {
        let mut h = Histogram::new();
        for &(i, c) in buckets {
            h.counts[i.min(HIST_BUCKETS - 1)] += c;
            h.count += c;
        }
        h.sum = sum;
        h.min = if h.count == 0 { u64::MAX } else { min };
        h.max = max;
        h
    }

    /// The sparse JSON form shared by [`RunReport`](crate::RunReport)
    /// artifacts and the daemon's `metrics` snapshot:
    /// `{"count", "sum", "min", "max", "buckets": [[index, count], ...]}`.
    /// The sum can exceed f64's exact-integer range (it is a `u128` of
    /// nanoseconds), so it travels as a decimal string.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("count".to_string(), Json::Num(self.count() as f64)),
            ("sum".to_string(), Json::str(self.sum().to_string())),
            ("min".to_string(), Json::Num(self.min() as f64)),
            ("max".to_string(), Json::Num(self.max() as f64)),
            (
                "buckets".to_string(),
                Json::Arr(
                    self.nonzero_buckets()
                        .iter()
                        .map(|&(i, c)| Json::Arr(vec![Json::Num(i as f64), Json::Num(c as f64)]))
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses the [`to_json`](Histogram::to_json) form back. The error
    /// names the offending field.
    pub fn from_json(value: &Json) -> Result<Self, String> {
        let buckets = value
            .get("buckets")
            .and_then(Json::as_arr)
            .ok_or("histogram missing buckets")?
            .iter()
            .map(|pair| {
                let pair = pair.as_arr().ok_or("histogram bucket not a pair")?;
                let index = pair
                    .first()
                    .and_then(Json::as_u64)
                    .ok_or("histogram bucket index not a u64")?;
                let count = pair
                    .get(1)
                    .and_then(Json::as_u64)
                    .ok_or("histogram bucket count not a u64")?;
                Ok((index as usize, count))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let sum = value
            .get("sum")
            .and_then(Json::as_str)
            .ok_or("histogram missing sum")?
            .parse::<u128>()
            .map_err(|_| "histogram sum not a u128".to_string())?;
        let min = value.get("min").and_then(Json::as_u64).unwrap_or(0);
        let max = value.get("max").and_then(Json::as_u64).unwrap_or(0);
        Ok(Histogram::from_parts(&buckets, sum, min, max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 63);
        assert_eq!(bucket_bound(0), 0);
        assert_eq!(bucket_bound(1), 1);
        assert_eq!(bucket_bound(10), 1023);
        assert_eq!(bucket_bound(63), u64::MAX);
    }

    #[test]
    fn records_and_summarizes() {
        let mut h = Histogram::new();
        for v in [0, 1, 5, 100, 100, 4096] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 4302);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 4096);
        assert!((h.mean() - 717.0).abs() < 1.0);
        assert_eq!(h.buckets()[bucket_of(100)], 2);
    }

    #[test]
    fn merge_is_order_independent() {
        let shard = |vals: &[u64]| {
            let mut h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let a = shard(&[1, 2, 3, 1_000_000]);
        let b = shard(&[0, 7, 7, 7]);
        let c = shard(&[u64::MAX]);
        let mut ab = a.clone();
        ab.merge(&b);
        ab.merge(&c);
        let mut cb = c.clone();
        cb.merge(&b);
        cb.merge(&a);
        assert_eq!(ab, cb, "merge order must be unobservable");
        assert_eq!(ab.count(), 9);
    }

    #[test]
    fn quantiles_bound_the_tail() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 1);
        let p50 = h.quantile(0.5);
        assert!((500..=1023).contains(&p50), "p50 = {p50}");
        assert_eq!(h.quantile(1.0), 1000, "p100 clamps to the true max");
        assert_eq!(Histogram::new().quantile(0.99), 0);
    }

    #[test]
    fn sparse_round_trip() {
        let mut h = Histogram::new();
        for v in [3, 9, 9, 12345] {
            h.record(v);
        }
        let back = Histogram::from_parts(&h.nonzero_buckets(), h.sum(), h.min(), h.max());
        assert_eq!(back, h);
        let empty = Histogram::from_parts(&[], 0, 0, 0);
        assert_eq!(empty, Histogram::new());
    }
}
